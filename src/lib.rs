//! Umbrella crate for the WANify reproduction workspace.
//!
//! This root package exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`); the implementation
//! lives in the `crates/` members. See the workspace `README.md` for the
//! layout and the [`wanify`] crate for the pipeline facade.

pub use wanify;
pub use wanify_experiments;
pub use wanify_forest;
pub use wanify_gda;
pub use wanify_netsim;
pub use wanify_workloads;
