//! The `BandwidthSource` abstraction exercised end to end: every
//! provenance (static-independent, static-simultaneous, predicted,
//! measured-runtime) flows through `Wanify::plan`, all three `wanify-gda`
//! schedulers, and the executor without any provenance-specific API.

use wanify::{
    BandwidthSource, MeasuredRuntime, PredictedRuntime, Pregauged, StaticIndependent,
    StaticSimultaneous, Wanify, WanifyConfig,
};
use wanify_experiments::common::{Belief, Effort, ExpEnv};
use wanify_gda::{run_job, Kimchi, Scheduler, Tetrium, TransferOptions, VanillaSpark};
use wanify_netsim::BwMatrix;
use wanify_workloads::terasort;

fn all_sources(env: &ExpEnv) -> Vec<Box<dyn BandwidthSource>> {
    vec![
        Box::new(StaticIndependent::new()),
        Box::new(StaticSimultaneous::default()),
        Box::new(PredictedRuntime::new(env.model.clone())),
        Box::new(MeasuredRuntime::default()),
    ]
}

/// `Wanify::plan` accepts every source impl through one signature and
/// produces a structurally valid plan for each.
#[test]
fn plan_works_with_every_source() {
    let env = ExpEnv::new(4, Effort::Quick, 801);
    let wanify = Wanify::new(WanifyConfig::default());
    for (k, mut source) in all_sources(&env).into_iter().enumerate() {
        let mut sim = env.sim(k as u64);
        let plan = wanify
            .plan(source.as_mut(), &mut sim)
            .unwrap_or_else(|e| panic!("{} failed to plan: {e}", source.name()));
        assert_eq!(plan.max_cons.len(), 4, "{}", source.name());
        assert!(
            plan.max_cons.iter_pairs().any(|(_, _, c)| c >= 1),
            "{} must open connections",
            source.name()
        );
        assert!(plan.achievable_bw().max_off_diag() > 0.0, "{}", source.name());
    }
}

/// Every scheduler consumes every source through the executor; the report
/// records the belief's provenance.
#[test]
fn every_scheduler_runs_on_every_source() {
    let env = ExpEnv::new(3, Effort::Quick, 802);
    let job = terasort::job(wanify_gda::DataLayout::uniform(3, 2.0));
    let schedulers: Vec<Box<dyn Scheduler>> =
        vec![Box::new(VanillaSpark::new()), Box::new(Tetrium::new()), Box::new(Kimchi::new())];
    let names = ["static-independent", "static-simultaneous", "predicted", "measured-runtime"];
    for sched in &schedulers {
        for (mut source, expected_name) in all_sources(&env).into_iter().zip(names) {
            let mut sim = env.sim(7);
            let report = run_job(
                &mut sim,
                &job,
                sched.as_ref(),
                source.as_mut(),
                TransferOptions::default(),
            )
            .unwrap();
            assert!(report.latency_s > 0.0, "{}/{expected_name}", sched.name());
            assert_eq!(report.belief, expected_name, "{}", sched.name());
        }
    }
}

/// The dyn-safe `Scheduler::place_reduce_from` plans directly from a
/// source, and the placement matches planning on the gauged matrix.
#[test]
fn place_reduce_from_matches_matrix_level_placement() {
    let env = ExpEnv::new(4, Effort::Quick, 803);
    let out_gb = vec![2.0, 1.0, 3.0, 0.5];
    for sched in [&VanillaSpark::new() as &dyn Scheduler, &Tetrium::new(), &Kimchi::new()] {
        // Static sources cache, so two gauges of one instance agree.
        let mut source = StaticIndependent::new();
        let mut sim = env.sim(1);
        let fractions = sched.place_reduce_from(&mut source, &mut sim, &out_gb, 1.0);
        assert_eq!(fractions.len(), 4);
        assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{}", sched.name());

        let gauged = source.gauge(&mut sim).unwrap();
        let again = sched.place_reduce_from(&mut Pregauged::from(gauged), &mut sim, &out_gb, 1.0);
        assert_eq!(fractions, again, "{}", sched.name());
    }
}

/// The provenance hierarchy the paper claims (§5.2, Fig. 11): against
/// fresh runtime measurements, the predicted belief is closer than the
/// static-independent belief in most epochs.
#[test]
fn predicted_source_closer_to_runtime_than_static() {
    let env = ExpEnv::new(4, Effort::Quick, 804);
    let mut sim = env.sim(3);
    let static_bw = env.gauge(Belief::StaticIndependent, &mut sim);
    let rounds = 5;
    let mut predicted_wins = 0;
    for _ in 0..rounds {
        sim.shuffle_time();
        let predicted = env.gauge(Belief::Predicted, &mut sim);
        let runtime = env.gauge(Belief::MeasuredRuntime, &mut sim);
        let err = |m: &BwMatrix| -> f64 {
            m.iter_pairs().map(|(i, j, v)| (v - runtime.get(i, j)).abs()).sum()
        };
        if err(&predicted) < err(&static_bw) {
            predicted_wins += 1;
        }
    }
    assert!(
        predicted_wins * 2 > rounds,
        "predicted belief should beat the stale static view in most epochs, won \
         {predicted_wins}/{rounds}"
    );
}

/// Static sources hold their first measurement while runtime sources track
/// the drifting network — the exact coupling Table 1 quantifies.
#[test]
fn static_sources_go_stale_runtime_sources_do_not() {
    let env = ExpEnv::new(3, Effort::Quick, 805);
    let mut sim = env.sim(4);
    let mut stale = StaticSimultaneous::default();
    let mut live = MeasuredRuntime::default();
    let first_stale = stale.gauge(&mut sim).unwrap();
    let first_live = live.gauge(&mut sim).unwrap();
    sim.shuffle_time();
    assert_eq!(first_stale, stale.gauge(&mut sim).unwrap());
    assert_ne!(first_live, live.gauge(&mut sim).unwrap());
}
