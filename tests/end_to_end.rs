//! End-to-end integration: netsim → prediction → planning → execution.

use wanify::{
    BandwidthAnalyzer, PredictedRuntime, Pregauged, WanPredictionModel, Wanify, WanifyConfig,
};
use wanify_experiments::common::{run_wanified, Belief, Effort, ExpEnv, WanifyMode};
use wanify_gda::{run_job, DataLayout, Tetrium, TransferOptions, VanillaSpark};
use wanify_netsim::{paper_testbed_n, ConnMatrix, LinkModelParams, NetSim, VmType};
use wanify_workloads::terasort;

/// The full pipeline of the paper, end to end: probe → train → predict →
/// infer relations → optimize globally → execute with agents — and the
/// result must beat the static single-connection baseline.
#[test]
fn full_pipeline_beats_static_baseline() {
    let env = ExpEnv::new(6, Effort::Quick, 404);
    let job = terasort::job(DataLayout::uniform(6, 12.0));
    let sched = VanillaSpark::new();

    let mut sim = env.sim(0);
    let baseline = env.run_baseline(&mut sim, &job, &sched, Belief::StaticIndependent);

    let mut sim = env.sim(1);
    let wanified = run_wanified(
        &mut sim,
        &job,
        &sched,
        env.source(Belief::Predicted).as_mut(),
        WanifyMode::full(),
        None,
    );

    assert!(
        wanified.latency_s < baseline.latency_s,
        "WANify {}s must beat the baseline {}s",
        wanified.latency_s,
        baseline.latency_s
    );
    assert!(wanified.min_bw_mbps > baseline.min_bw_mbps);
}

/// The prediction model trained by the analyzer plugs into planning
/// without any manual glue, across cluster sizes.
#[test]
fn predicted_matrix_feeds_planning_for_unseen_cluster_size() {
    let analyzer = BandwidthAnalyzer {
        vm: VmType::t2_medium(),
        params: LinkModelParams::default(),
        samples_per_size: 20,
    };
    let data = analyzer.collect(&[3, 5], 88);
    let model = WanPredictionModel::train(&data, 30, 2);

    // Size 4 was never trained on (§3.3.2 generalization); the predicted
    // source feeds planning directly through the provenance-agnostic API.
    let mut sim =
        NetSim::new(paper_testbed_n(VmType::t2_medium(), 4), LinkModelParams::default(), 99);
    let mut source = PredictedRuntime::new(model);
    let plan = Wanify::new(WanifyConfig::default())
        .plan(&mut source, &mut sim)
        .expect("model generalizes to the unseen size");
    assert_eq!(plan.max_cons.len(), 4);
    assert!(plan.max_cons.iter_pairs().any(|(_, _, c)| c > 1));
}

/// Agents drive live transfers: connection counts in the simulator change
/// over the course of a WANify-enabled run.
#[test]
fn agents_adjust_connections_during_execution() {
    let env = ExpEnv::new(4, Effort::Quick, 505);
    let mut sim = env.sim(0);
    let wanify = Wanify::new(WanifyConfig::default());
    let plan = wanify
        .plan(env.source(Belief::Predicted).as_mut(), &mut sim)
        .expect("predicted source matches topology");
    let mut agent = wanify.agent(&plan).traced(0);
    let job = terasort::job(DataLayout::uniform(4, 10.0));
    let conns = plan.initial_conns().clone();
    let _ = run_job(
        &mut sim,
        &job,
        &Tetrium::new(),
        &mut Pregauged::named(plan.achievable_bw().clone(), "wanify(predicted)"),
        TransferOptions { conns: Some(&conns), hook: Some(&mut agent) },
    )
    .unwrap();
    assert!(agent.updates() > 0, "agents must run during the shuffle");
    assert!(!agent.trace().is_empty());
}

/// Reproducibility: the same seed yields bit-identical end-to-end results.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let env = ExpEnv::new(4, Effort::Quick, 606);
        let mut sim = env.sim(0);
        let job = terasort::job(DataLayout::uniform(4, 5.0));
        let r = run_wanified(
            &mut sim,
            &job,
            &VanillaSpark::new(),
            env.source(Belief::Predicted).as_mut(),
            WanifyMode::full(),
            None,
        );
        (r.latency_s, r.cost.total_usd(), r.min_bw_mbps)
    };
    assert_eq!(run(), run());
}

/// Multi-cloud refactoring (§3.3.3/§5.8.3): an AWS+GCP cluster plans with
/// an rvec that discounts the minority provider, and the resulting plan
/// still lifts the weakest link on the live simulator.
#[test]
fn multi_cloud_refactoring_end_to_end() {
    use wanify::refactoring_vector;
    use wanify_netsim::{Region, Topology};

    let topo = Topology::builder()
        .dc(Region::UsEast, VmType::t2_medium(), 1)
        .dc(Region::UsWest, VmType::t2_medium(), 1)
        .dc(Region::ApSoutheast1, VmType::t2_medium(), 1)
        .dc(Region::GcpUsCentral, VmType::e2_medium(), 1)
        .build()
        .expect("4-DC multi-cloud cluster");
    let rvec = refactoring_vector(&topo);
    assert_eq!(rvec, vec![1.0, 1.0, 1.0, 0.8], "GCP DC discounted");

    let mut sim = NetSim::new(topo, LinkModelParams::default(), 909);
    let runtime = sim.measure_runtime(&ConnMatrix::filled(4, 1), 20).bw;
    let wanify = Wanify::new(WanifyConfig { rvec: Some(rvec), ..WanifyConfig::default() });
    let plan = wanify.plan_matrix(&runtime);

    // rvec scales achievable bandwidth for cross-provider pairs only.
    let base = Wanify::new(WanifyConfig::default()).plan_matrix(&runtime);
    let cross = plan.achievable_bw().get(0, 3) / base.achievable_bw().get(0, 3);
    let same = plan.achievable_bw().get(0, 1) / base.achievable_bw().get(0, 1);
    assert!((cross - 0.8).abs() < 1e-9, "cross-provider scaled by rvec: {cross}");
    assert!((same - 1.0).abs() < 1e-9, "intra-provider untouched: {same}");

    // The plan still raises the weakest link when executed.
    for (i, j, cap) in plan.initial_throttles.iter_pairs() {
        if cap.is_finite() {
            sim.set_throttle(wanify_netsim::DcId(i), wanify_netsim::DcId(j), cap);
        }
    }
    let balanced = sim.measure_runtime(plan.initial_conns(), 20).bw;
    assert!(
        balanced.min_off_diag() > runtime.min_off_diag(),
        "balanced {} vs single-connection {}",
        balanced.min_off_diag(),
        runtime.min_off_diag()
    );
}
