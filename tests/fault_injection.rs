//! Fault-injection acceptance: a full-DC outage in the middle of a
//! contended 8-DC fleet must never deadlock or panic — affected queries
//! either complete via retry + re-placement or are reported failed with
//! fault-attributed counters — and the committed scenario suite's
//! invariants must hold.

use wanify::Pregauged;
use wanify_gda::{
    Arrivals, FaultPolicy, FleetConfig, FleetEngine, FleetReport, JobProfile, RoundRobinShards,
    ShardedFleetEngine, Tetrium,
};
use wanify_netsim::{
    paper_testbed_n, Backbone, BwMatrix, DcId, FaultSchedule, LinkModelParams, NetSim, VmType,
};
use wanify_workloads::{mixed_trace, TraceConfig};

const N_DCS: usize = 8;
const N_JOBS: usize = 20;

fn faulted_engine(faults: &FaultSchedule, policy: FaultPolicy, seed: u64) -> FleetEngine {
    let mut sim =
        NetSim::new(paper_testbed_n(VmType::t2_medium(), N_DCS), LinkModelParams::frozen(), seed);
    sim.set_fault_schedule(faults.clone());
    FleetEngine::new(
        sim,
        Box::new(Tetrium::new()),
        Box::new(Pregauged::new(BwMatrix::filled(N_DCS, 300.0))),
        FleetConfig {
            max_concurrent: N_JOBS,
            regauge_every_s: f64::INFINITY,
            conns: None,
            faults: Some(policy),
            ..FleetConfig::default()
        },
    )
}

fn trace() -> Vec<JobProfile> {
    mixed_trace(&TraceConfig::new(N_DCS, N_JOBS, 31).scaled(0.25))
}

#[test]
fn full_dc_outage_mid_fleet_recovers_via_retry_and_replacement() {
    // Two DCs go dark while all 20 queries are in flight, then heal.
    let faults = FaultSchedule::new().dc_outage(DcId(3), 3.0, 40.0).dc_outage(DcId(6), 10.0, 35.0);
    let policy = FaultPolicy { stall_timeout_s: 5.0, max_retries: 6, backoff_base_s: 5.0 };
    let report = faulted_engine(&faults, policy, 17)
        .run(&trace(), &Arrivals::Closed { clients: N_JOBS, think_s: 0.0 })
        .expect("a healing outage must not error the fleet");

    assert_eq!(report.outcomes.len(), N_JOBS, "every query is accounted for");
    assert_eq!(report.failed_jobs(), 0, "healed outages must not fail jobs: {:?}", report.faults);
    assert!(report.faults.retries >= 1, "{:?}", report.faults);
    assert!(report.faults.replacements >= 1, "{:?}", report.faults);
    assert!(report.faults.stalled_flows >= 1, "{:?}", report.faults);
    assert!(report.faults.degraded_s > 0.0, "{:?}", report.faults);
}

#[test]
fn permanent_outage_fails_affected_queries_with_accounting() {
    let faults = FaultSchedule::new().at(0.0, wanify_netsim::FaultKind::DcDown(DcId(2)));
    let policy = FaultPolicy { stall_timeout_s: 4.0, max_retries: 2, backoff_base_s: 4.0 };
    let report = faulted_engine(&faults, policy, 23)
        .run(&trace(), &Arrivals::Closed { clients: N_JOBS, think_s: 0.0 })
        .expect("a permanent outage must terminate cleanly, not wedge");

    assert_eq!(report.outcomes.len(), N_JOBS, "failed queries still produce outcomes");
    assert!(report.failed_jobs() >= 1, "some shuffle must need the dead DC");
    assert_eq!(report.failed_jobs() as u64, report.faults.failed_jobs);
    assert!(report.faults.retries >= 2, "{:?}", report.faults);
    for o in report.outcomes.iter().filter(|o| o.failed) {
        assert!(o.report.latency_s > 0.0, "partial accounting carries elapsed time");
        assert!(o.completed_s >= o.admitted_s);
    }
}

#[test]
fn faulted_sharded_fleet_is_deterministic_and_accounted() {
    let faults = FaultSchedule::new().dc_outage(DcId(3), 3.0, 40.0);
    let policy = FaultPolicy { stall_timeout_s: 5.0, max_retries: 6, backoff_base_s: 5.0 };
    let topo = paper_testbed_n(VmType::t2_medium(), N_DCS);
    let run = || {
        ShardedFleetEngine::new(
            (0..4).map(|_| faulted_engine(&faults, policy, 17)).collect(),
            Box::new(RoundRobinShards::new()),
            Some(Backbone::continental(&topo, 4000.0, 30.0)),
        )
        .run(&trace(), &Arrivals::Closed { clients: N_JOBS, think_s: 0.0 })
        .expect("faulted sharded fleet runs")
    };
    let digest = |r: &FleetReport| -> Vec<(u64, u64, bool)> {
        r.outcomes
            .iter()
            .map(|o| (o.report.latency_s.to_bits(), o.completed_s.to_bits(), o.failed))
            .collect()
    };
    let a = run();
    let b = run();
    assert_eq!(a.fleet.outcomes.len(), N_JOBS);
    assert_eq!(digest(&a.fleet), digest(&b.fleet), "sharded faulted runs must be bit-identical");
    assert_eq!(a.fleet.faults, b.fleet.faults);
    assert!(a.fleet.faults.degraded_s > 0.0);
}

#[test]
fn committed_scenario_suite_passes_all_invariants() {
    for spec in wanify_scenarios::all() {
        let outcome = wanify_scenarios::run_scenario(&spec);
        assert!(
            outcome.passed(),
            "scenario {} failed: {:?}",
            spec.name,
            outcome.checks.iter().filter(|c| !c.pass).collect::<Vec<_>>()
        );
    }
}
