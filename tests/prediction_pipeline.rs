//! Integration of the prediction stack: analyzer → dataset → forest →
//! matrix prediction → staleness → warm-start retraining.

use wanify::features::FEATURE_COUNT;
use wanify::{BandwidthAnalyzer, WanPredictionModel};
use wanify_forest::{Dataset, ForestParams, RandomForest};
use wanify_netsim::{paper_testbed_n, ConnMatrix, LinkModelParams, NetSim, VmType};

fn analyzer(samples: usize) -> BandwidthAnalyzer {
    BandwidthAnalyzer {
        vm: VmType::t2_medium(),
        params: LinkModelParams::default(),
        samples_per_size: samples,
    }
}

/// The analyzer produces one row per directed pair per sample, with the
/// Table-3 feature arity.
#[test]
fn analyzer_dataset_shape() {
    let data = analyzer(5).collect(&[3, 4], 1);
    // 5 samples × (3·2 + 4·3) pairs.
    assert_eq!(data.len(), 5 * (6 + 12));
    assert_eq!(data.n_features(), FEATURE_COUNT);
    // Targets are plausible bandwidths.
    for (_, y) in data.iter() {
        assert!((0.0..20_000.0).contains(&y), "target {y} out of range");
    }
}

/// Prediction error against live runtime measurements stays in the same
/// band as the paper's accuracy claims (high 90s training, errors small
/// relative to static probing).
#[test]
fn prediction_error_small_relative_to_static() {
    let data = analyzer(40).collect(&[4], 2);
    let model = WanPredictionModel::train(&data, 40, 3);
    assert!(model.training_accuracy(&data) > 88.0);

    let mut sim =
        NetSim::new(paper_testbed_n(VmType::t2_medium(), 4), LinkModelParams::default(), 77);
    let mut pred_wins = 0;
    let rounds = 6;
    for _ in 0..rounds {
        sim.shuffle_time();
        let static_bw = sim.measure_static_independent();
        let snapshot = sim.snapshot(&ConnMatrix::filled(4, 1));
        let predicted = model.predict_matrix(&snapshot, sim.topology()).unwrap();
        let runtime = sim.measure_runtime(&ConnMatrix::filled(4, 1), 20).bw;
        let err = |m: &wanify_netsim::BwMatrix| -> f64 {
            m.iter_pairs().map(|(i, j, v)| (v - runtime.get(i, j)).abs()).sum()
        };
        if err(&predicted) < err(&static_bw) {
            pred_wins += 1;
        }
    }
    assert!(
        pred_wins >= rounds - 1,
        "prediction should beat static probing almost always, won {pred_wins}/{rounds}"
    );
}

/// The staleness loop closes: drift flags retraining, warm start absorbs
/// fresh data, the flag clears, and accuracy on the new regime improves.
#[test]
fn staleness_retraining_loop() {
    let old = analyzer(20).collect(&[4], 4);
    let mut model = WanPredictionModel::train(&old, 25, 5);

    // A "new regime": same topology, different era of training data.
    let new_data = analyzer(20).collect(&[4], 999);
    let predicted = wanify_netsim::BwMatrix::filled(4, 100.0);
    let actual = wanify_netsim::BwMatrix::filled(4, 900.0);
    model.record_error(&predicted, &actual);
    assert!(model.needs_retraining());

    let before_trees = model.n_trees();
    let mut merged = old.clone();
    merged.extend_from(&new_data).unwrap();
    model.retrain(&merged, 25);
    assert!(!model.needs_retraining());
    assert_eq!(model.n_trees(), before_trees + 25);
    assert!(model.training_accuracy(&merged) > 85.0);
}

/// Forest-level sanity on analyzer data: out-of-bag error is finite and
/// in the bandwidth scale, and deeper ensembles do not get worse.
#[test]
fn forest_quality_scales_with_ensemble_size() {
    let data: Dataset = analyzer(25).collect(&[4], 6);
    let small =
        RandomForest::fit(&data, &ForestParams { n_estimators: 5, ..ForestParams::default() }, 7);
    let large =
        RandomForest::fit(&data, &ForestParams { n_estimators: 50, ..ForestParams::default() }, 7);
    let small_oob = small.oob_mae(&data).unwrap();
    let large_oob = large.oob_mae(&data).unwrap();
    assert!(large_oob <= small_oob * 1.1, "50 trees ({large_oob}) vs 5 ({small_oob})");
}
