//! The paper's headline claims, asserted end to end at test scale.
//!
//! Each test corresponds to a claim in the abstract/conclusion; exact
//! magnitudes are testbed-dependent (documented in EXPERIMENTS.md), so the
//! assertions check directions and conservative lower bounds.

use wanify_experiments::{fig11, fig2, fig5, fig7, model, table1, table2, Effort};

/// "Existing GDA systems measure WAN BW statically ... such inaccurate WAN
/// BWs yield sub-optimal decisions" — a substantial fraction of pairs gap
/// significantly between static and runtime views (Table 1).
#[test]
fn claim_static_bandwidth_is_wrong_at_runtime() {
    let t = table1::run(42);
    assert!(t.total_significant() >= 10, "got {}", t.total_significant());
}

/// "Reduces ... WAN BW monitoring costs" by roughly an order of magnitude
/// (Table 2: ~96%).
#[test]
fn claim_monitoring_cost_savings() {
    let t = table2::run();
    assert!(t.savings_pct > 85.0, "got {:.1}%", t.savings_pct);
}

/// "WANify enhances WAN throughput by balancing between the strongest and
/// weakest WAN links" — heterogeneous connections raise the minimum link
/// while lowering the maximum (Fig. 2).
#[test]
fn claim_heterogeneous_connections_balance_links() {
    let f = fig2::run(42);
    let single = &f.strategies[0];
    let hetero = &f.strategies[2];
    assert!(hetero.bw.min_off_diag() > 1.5 * single.bw.min_off_diag());
    assert!(hetero.bw.max_off_diag() < single.bw.max_off_diag());
}

/// "Reduce latency ... with minimal effort" — enabling WANify on an
/// unmodified scheduler improves TeraSort latency, cost not worse than
/// marginally (Fig. 5).
#[test]
fn claim_wanify_tc_reduces_latency() {
    let f = fig5::run(Effort::Quick, 42);
    let base = f.row("No WANify");
    let tc = f.row("WANify-TC");
    assert!(tc.latency_s < base.latency_s);
    assert!(tc.cost_usd <= base.cost_usd * 1.02);
}

/// "Helps GDA systems reduce latency and cost" with a multi-fold minimum
/// bandwidth boost (Fig. 7: up to 24% latency, 3.3× min BW).
#[test]
fn claim_e2e_gains_on_gda_systems() {
    let f = fig7::run(Effort::Quick, 42);
    assert!(f.best_latency_pct() > 5.0, "best latency gain {:.1}%", f.best_latency_pct());
    assert!(f.best_min_bw_ratio() > 1.5, "best min BW ratio {:.2}x", f.best_min_bw_ratio());
}

/// "Predicting the runtime WAN BW with an accuracy of 98.51%" — the forest
/// fits its training data in the high 90s and beats the baselines.
#[test]
fn claim_prediction_accuracy() {
    let m = model::run(Effort::Quick, 42);
    assert!(m.forest().train_accuracy_pct > 90.0, "got {:.2}%", m.forest().train_accuracy_pct);
}

/// "Handling dynamics and heterogeneity efficiently" — predicted matrices
/// beat static ones across cluster sizes and VM fleets (Fig. 11).
#[test]
fn claim_prediction_beats_static_across_shapes() {
    let f = fig11::run(Effort::Quick, 42);
    let s: usize =
        f.by_cluster_size.iter().chain(&f.by_extra_vms).map(|r| r.static_significant).sum();
    let p: usize =
        f.by_cluster_size.iter().chain(&f.by_extra_vms).map(|r| r.predicted_significant).sum();
    assert!(p < s, "predicted {p} significant diffs vs static {s}");
}
