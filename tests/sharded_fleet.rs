//! Sharded-fleet acceptance: the 8-DC region-tagged trace served by a
//! 4-shard fleet completes deterministically — bit-identical across
//! repeated runs and rayon thread counts — and a 1-shard fleet matches
//! the single-engine `FleetEngine` exactly.
//!
//! CI additionally runs this under `RAYON_NUM_THREADS=1` and `=4` and
//! diffs `bench_sharded --digest` reports, so thread-count invariance is
//! enforced both in-process (here) and across processes (there).

use wanify_gda::{
    Arrivals, FleetConfig, FleetEngine, FleetReport, JobProfile, RoundRobinShards,
    ShardedFleetEngine, ShardedFleetReport, Tetrium,
};
use wanify_netsim::{paper_testbed_n, Backbone, LinkModelParams, NetSim, VmType};
use wanify_workloads::{regional_mixed_trace, TraceConfig};

const N_DCS: usize = 8;
const N_JOBS: usize = 48;

fn engine(max_concurrent: usize) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), N_DCS), LinkModelParams::frozen(), 5),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent,
            regauge_every_s: 300.0,
            conns: None,
            faults: None,
            ..FleetConfig::default()
        },
    )
}

fn trace() -> Vec<JobProfile> {
    let backbone =
        Backbone::continental(&paper_testbed_n(VmType::t2_medium(), N_DCS), 4000.0, 30.0);
    regional_mixed_trace(&TraceConfig::new(N_DCS, N_JOBS, 21).scaled(0.25), backbone.groups())
}

fn run_sharded(jobs: &[JobProfile], shards: usize) -> ShardedFleetReport {
    let backbone =
        Backbone::continental(&paper_testbed_n(VmType::t2_medium(), N_DCS), 4000.0, 30.0);
    ShardedFleetEngine::new(
        (0..shards).map(|_| engine(N_JOBS)).collect(),
        Box::new(RoundRobinShards::new()),
        Some(backbone),
    )
    .run(jobs, &Arrivals::Closed { clients: N_JOBS, think_s: 0.0 })
    .expect("trace matches the 8-DC testbed")
}

fn assert_bit_identical(a: &FleetReport, b: &FleetReport) {
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.report.job, y.report.job);
        assert_eq!(x.report.latency_s.to_bits(), y.report.latency_s.to_bits());
        assert_eq!(x.arrived_s.to_bits(), y.arrived_s.to_bits());
        assert_eq!(x.admitted_s.to_bits(), y.admitted_s.to_bits());
        assert_eq!(x.completed_s.to_bits(), y.completed_s.to_bits());
    }
    assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
    assert_eq!(a.gauges, b.gauges);
}

#[test]
fn four_shard_fleet_is_deterministic_at_any_thread_count() {
    let jobs = trace();

    let a = run_sharded(&jobs, 4);
    assert_eq!(a.fleet.outcomes.len(), N_JOBS, "every query must complete");
    assert_eq!(a.shards(), 4);
    assert_eq!(a.shard_sizes(), vec![12, 12, 12, 12], "round-robin balances 48 jobs 4 ways");
    assert!(a.fleet.duration_s > 0.0);

    // Bit-identical on repetition (ambient thread count).
    let b = run_sharded(&jobs, 4);
    assert_bit_identical(&a.fleet, &b.fleet);
    assert_eq!(a.backbone_syncs, b.backbone_syncs);

    // Bit-identical under explicit 1- and 4-thread pools.
    for threads in [1usize, 4] {
        let pooled = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool construction")
            .install(|| run_sharded(&jobs, 4));
        assert_bit_identical(&a.fleet, &pooled.fleet);
    }
}

#[test]
fn one_shard_fleet_matches_the_single_engine_exactly() {
    let jobs = trace();
    let single = engine(N_JOBS)
        .run(&jobs, &Arrivals::Closed { clients: N_JOBS, think_s: 0.0 })
        .expect("trace matches the 8-DC testbed");
    let sharded = run_sharded(&jobs, 1);
    assert_eq!(sharded.backbone_syncs, 0, "a lone shard never epoch-exchanges");
    assert_bit_identical(&sharded.fleet, &single);
}

#[test]
fn sharding_decomposes_contention() {
    // 48 tenants on one WAN vs 4 shards of 12: per-shard contention must
    // drop, so the sharded fleet's median makespan is strictly better.
    let jobs = trace();
    let single = engine(N_JOBS)
        .run(&jobs, &Arrivals::Closed { clients: N_JOBS, think_s: 0.0 })
        .expect("trace matches the 8-DC testbed");
    let sharded = run_sharded(&jobs, 4);
    assert!(
        sharded.fleet.makespan().p50 < single.makespan().p50,
        "sharded p50 {:.0}s vs single-engine p50 {:.0}s",
        sharded.fleet.makespan().p50,
        single.makespan().p50
    );
}
