//! Cross-crate scheduler behaviour on the live simulator.

use wanify::Pregauged;
use wanify_experiments::common::{Belief, Effort, ExpEnv};
use wanify_gda::{run_job, Kimchi, Scheduler, Tetrium, TransferOptions, VanillaSpark};
use wanify_netsim::BwMatrix;
use wanify_workloads::{terasort, TpcDsQuery};

/// WAN-aware schedulers beat vanilla Spark on a heterogeneous WAN for a
/// shuffle-heavy job, whatever the belief source.
#[test]
fn wan_aware_schedulers_beat_vanilla_on_terasort() {
    let env = ExpEnv::new(6, Effort::Quick, 701);
    let job = terasort::job(wanify_gda::DataLayout::uniform(6, 12.0));
    let mut latencies = Vec::new();
    let schedulers: Vec<Box<dyn Scheduler>> =
        vec![Box::new(VanillaSpark::new()), Box::new(Tetrium::new()), Box::new(Kimchi::new())];
    for sched in &schedulers {
        let mut sim = env.sim(0);
        let r = env.run_baseline(&mut sim, &job, sched.as_ref(), Belief::StaticSimultaneous);
        latencies.push((sched.name().to_string(), r.latency_s));
    }
    let vanilla = latencies[0].1;
    for (name, lat) in &latencies[1..] {
        assert!(*lat <= vanilla * 1.02, "{name} ({lat}s) should not lose to vanilla ({vanilla}s)");
    }
}

/// Kimchi spends less on the network than Tetrium when an expensive region
/// holds the data (its raison d'être), at bounded latency overhead.
#[test]
fn kimchi_trades_latency_for_cost() {
    let env = ExpEnv::new(6, Effort::Quick, 702);
    // All input in SA East (the priciest egress region of the testbed).
    let mut gb = vec![0.0; 6];
    gb[5] = 12.0;
    let job = wanify_gda::JobProfile::new(
        "sa-heavy",
        wanify_gda::DataLayout::from_gb(&gb),
        vec![
            wanify_gda::StageProfile::shuffling("map", 1.0, 1.0),
            wanify_gda::StageProfile::terminal("reduce", 0.1, 0.5),
        ],
    );
    let run_with = |sched: &dyn Scheduler, run_id: u64| {
        let mut sim = env.sim(run_id);
        env.run_baseline(&mut sim, &job, sched, Belief::StaticSimultaneous)
    };
    let tetrium = run_with(&Tetrium::new(), 0);
    let kimchi = run_with(&Kimchi::new(), 0);
    assert!(
        kimchi.cost.network_usd <= tetrium.cost.network_usd * 1.001,
        "kimchi network ${} should not exceed tetrium ${}",
        kimchi.cost.network_usd,
        tetrium.cost.network_usd
    );
}

/// A scheduler believing a degenerate matrix must still return valid
/// fractions and the executor must complete the job.
#[test]
fn schedulers_survive_degenerate_beliefs() {
    let env = ExpEnv::new(4, Effort::Quick, 703);
    let job = TpcDsQuery::Q95.job(4, 4.0);
    for matrix in [
        BwMatrix::filled(4, 0.0),
        BwMatrix::filled(4, 1e9),
        BwMatrix::from_fn(4, |i, j| if i == j { 0.0 } else { 1.0 }),
    ] {
        let mut sim = env.sim(0);
        let r = run_job(
            &mut sim,
            &job,
            &Tetrium::new(),
            &mut Pregauged::from(matrix),
            TransferOptions::default(),
        )
        .unwrap();
        assert!(r.latency_s.is_finite() && r.latency_s > 0.0);
    }
}

/// Input migration triggered by a stranded region actually moves the data
/// before the first stage and pays for it in the report.
#[test]
fn tetrium_migration_registers_in_the_report() {
    let env = ExpEnv::new(4, Effort::Quick, 704);
    let job = terasort::job(wanify_gda::DataLayout::uniform(4, 4.0));
    // A belief that marks DC2 as hopeless: best outgoing link 20 Mbps.
    let belief = BwMatrix::from_fn(4, |i, j| {
        if i == j {
            0.0
        } else if i == 2 {
            20.0
        } else {
            1000.0
        }
    });
    let mut sim = env.sim(0);
    let migrating = run_job(
        &mut sim,
        &job,
        &Tetrium::new(),
        &mut Pregauged::from(belief),
        TransferOptions::default(),
    )
    .unwrap();
    // DC2 must have exported its share of the input over the WAN.
    assert!(
        migrating.egress_gb[2] >= 0.9,
        "stranded DC2 should have migrated ~1 GB out, got {}",
        migrating.egress_gb[2]
    );
}
