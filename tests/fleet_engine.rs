//! Fleet acceptance: ≥ 50 concurrent mixed queries on the 8-DC paper
//! testbed complete deterministically and show measurable cross-query
//! contention.

use wanify_gda::{Arrivals, FleetConfig, FleetEngine, FleetReport, JobProfile, Tetrium};
use wanify_netsim::{paper_testbed_n, LinkModelParams, NetSim, VmType};
use wanify_workloads::{mixed_trace, TraceConfig};

const N_DCS: usize = 8;
const N_JOBS: usize = 55;

fn sim(seed: u64) -> NetSim {
    NetSim::new(paper_testbed_n(VmType::t2_medium(), N_DCS), LinkModelParams::frozen(), seed)
}

fn run_fleet(jobs: &[JobProfile], max_concurrent: usize, seed: u64) -> FleetReport {
    FleetEngine::new(
        sim(seed),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent,
            regauge_every_s: 300.0,
            conns: None,
            faults: None,
            ..FleetConfig::default()
        },
    )
    .run(jobs, &Arrivals::Closed { clients: max_concurrent, think_s: 0.0 })
    .expect("trace matches the 8-DC testbed")
}

#[test]
fn fifty_plus_concurrent_queries_complete_deterministically() {
    let trace = mixed_trace(&TraceConfig::new(N_DCS, N_JOBS, 21).scaled(0.25));

    // All 55 queries admitted at once: maximal contention.
    let a = run_fleet(&trace, N_JOBS, 5);
    assert_eq!(a.outcomes.len(), N_JOBS, "every query must complete");
    assert!(a.duration_s > 0.0);

    // Bit-identical across repeated runs.
    let b = run_fleet(&trace, N_JOBS, 5);
    assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
    assert_eq!(a.gauges, b.gauges);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.report.job, y.report.job);
        assert_eq!(x.report.latency_s.to_bits(), y.report.latency_s.to_bits());
        assert_eq!(x.report.min_bw_mbps.to_bits(), y.report.min_bw_mbps.to_bits());
        assert_eq!(x.completed_s.to_bits(), y.completed_s.to_bits());
        assert_eq!(x.admitted_s.to_bits(), y.admitted_s.to_bits());
    }

    // A different simulator seed is a different (but still valid) run.
    let c = run_fleet(&trace, N_JOBS, 6);
    assert_eq!(c.outcomes.len(), N_JOBS);

    // Contention is measurable: each query's fleet makespan must be at
    // least its solo makespan, and on average strictly (much) worse.
    let mut solo_mean = 0.0;
    let mut strictly_worse = 0usize;
    for (job, outcome) in trace.iter().zip(&a.outcomes_by_name()) {
        let solo = run_fleet(std::slice::from_ref(job), 1, 5);
        let solo_makespan = solo.outcomes[0].makespan_s();
        solo_mean += solo_makespan / N_JOBS as f64;
        if outcome.makespan_s() > solo_makespan {
            strictly_worse += 1;
        }
    }
    let fleet_mean = a.outcomes.iter().map(|o| o.makespan_s()).sum::<f64>() / N_JOBS as f64;
    assert!(
        fleet_mean > 2.0 * solo_mean,
        "contention must dominate: fleet mean {fleet_mean:.1}s vs solo mean {solo_mean:.1}s"
    );
    assert!(
        strictly_worse * 10 >= N_JOBS * 9,
        "under a 55-way overload nearly every query should be strictly slower than solo \
         ({strictly_worse}/{N_JOBS} were)"
    );
}

/// Maps completion-ordered outcomes back to trace order by job name.
trait ByName {
    fn outcomes_by_name(&self) -> Vec<wanify_gda::JobOutcome>;
}

impl ByName for FleetReport {
    fn outcomes_by_name(&self) -> Vec<wanify_gda::JobOutcome> {
        let mut by_trace = self.outcomes.clone();
        // Trace job names end in their trace index: "terasort-17".
        by_trace.sort_by_key(|o| {
            o.report
                .job
                .rsplit('-')
                .next()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(usize::MAX)
        });
        by_trace
    }
}
