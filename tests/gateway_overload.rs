//! Serving-gateway acceptance: the admission-controlled front end must
//! turn sustained overload into bounded, accounted-for degradation — a
//! full sweep past saturation keeps goodput near capacity while shed and
//! rejected counters absorb the excess — and the whole path must stay
//! bit-deterministic.

use wanify::Pregauged;
use wanify_gateway::{Gateway, GatewayConfig, GatewayReport, GatewayRequest, OverloadPolicy};
use wanify_gda::{FleetConfig, FleetEngine, Tetrium};
use wanify_netsim::{paper_testbed_n, BwMatrix, LinkModelParams, NetSim, VmType};
use wanify_workloads::{offered_load, rate_sweep, LoadSpec};

const N_DCS: usize = 3;
const JOBS: usize = 12;

fn engine(seed: u64) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), N_DCS), LinkModelParams::frozen(), seed),
        Box::new(Tetrium::new()),
        Box::new(Pregauged::new(BwMatrix::filled(N_DCS, 300.0))),
        FleetConfig { max_concurrent: 2, ..FleetConfig::default() },
    )
}

fn requests(spec: &LoadSpec) -> Vec<GatewayRequest> {
    offered_load(spec)
        .into_iter()
        .map(|o| GatewayRequest { job: o.job, arrival_s: o.arrival_s, deadline_s: o.deadline_s })
        .collect()
}

fn serve(cfg: GatewayConfig, spec: &LoadSpec) -> GatewayReport {
    Gateway::new(engine(spec.seed), cfg).serve(requests(spec)).expect("gateway run")
}

#[test]
fn overload_sweep_degrades_by_shedding_not_collapsing() {
    let base = LoadSpec::new(N_DCS, JOBS, 41, 0.01).scaled(0.8).with_deadline_slack(150.0);
    let cfg = || GatewayConfig { queue_depth: 6, ..GatewayConfig::default() };

    let mut goodputs = Vec::new();
    for (rate, _) in rate_sweep(&base, &[0.02, 0.08, 0.32]) {
        let r = serve(cfg(), &base.clone().at_rate(rate));
        let s = &r.fleet.serving;
        assert_eq!(s.offered, JOBS as u64, "every request is offered at rate {rate}");
        assert_eq!(
            r.served() as u64 + s.shed_jobs + s.rejected,
            JOBS as u64,
            "every request is accounted for at rate {rate}: {s:?}"
        );
        goodputs.push(r.good() as f64 / r.fleet.duration_s.max(1e-9));
    }
    let at_low = goodputs[0];
    let at_high = *goodputs.last().expect("sweep ran");
    assert!(at_low > 0.0, "unloaded point served nothing");
    assert!(at_high >= 0.5 * at_low, "goodput collapsed under a 16x rate increase: {goodputs:?}");
}

#[test]
fn block_policy_never_rejects_and_reject_policy_never_blocks_admissions() {
    let base = LoadSpec::new(N_DCS, JOBS, 7, 0.3).scaled(0.8);
    let blocking = serve(
        GatewayConfig { queue_depth: 2, overload: OverloadPolicy::Block, ..Default::default() },
        &base,
    );
    assert_eq!(blocking.fleet.serving.rejected, 0, "Block parks overflow instead of rejecting");
    assert_eq!(blocking.served(), JOBS, "Block eventually serves everyone");

    let rejecting = serve(GatewayConfig { queue_depth: 2, ..Default::default() }, &base);
    assert!(rejecting.fleet.serving.rejected > 0, "a 2-deep queue under burst must overflow");
    assert_eq!(
        rejecting.served() + rejecting.fleet.serving.rejected as usize,
        JOBS,
        "served + rejected covers the trace"
    );
}

#[test]
fn gateway_reports_are_bit_identical_across_runs() {
    let base = LoadSpec::new(N_DCS, JOBS, 23, 0.1).scaled(0.8).with_deadline_slack(200.0);
    let a = serve(GatewayConfig::default(), &base);
    let b = serve(GatewayConfig::default(), &base);
    assert_eq!(a.dispositions, b.dispositions);
    assert_eq!(a.fleet.serving, b.fleet.serving);
    assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
    assert_eq!(a.fleet.duration_s.to_bits(), b.fleet.duration_s.to_bits());
}
