//! Fig. 7: end-to-end TPC-DS with and without WANify (§5.4).
//!
//! Tetrium and Kimchi run queries 82, 95, 11 and 78, either as published
//! (static-independent beliefs, single connections) or WANify-enabled
//! (predicted beliefs + heterogeneous parallel connections + agents +
//! throttling). The paper reports up to 24% lower latency, up to 8% lower
//! cost, and a 3.3× higher minimum bandwidth.

use crate::common::{improvement_pct, render_table, Effort, ExpEnv, WanifyMode};
use wanify_gda::{Kimchi, Scheduler, Tetrium};
use wanify_workloads::TpcDsQuery;

/// One (query, scheduler) comparison.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Query label.
    pub query: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Baseline latency, seconds.
    pub base_latency_s: f64,
    /// WANify-enabled latency, seconds.
    pub wanify_latency_s: f64,
    /// Baseline cost, USD.
    pub base_cost_usd: f64,
    /// WANify-enabled cost, USD.
    pub wanify_cost_usd: f64,
    /// Minimum-bandwidth ratio (WANify / baseline).
    pub min_bw_ratio: f64,
}

impl Fig7Row {
    /// Latency improvement, percent.
    pub fn latency_pct(&self) -> f64 {
        improvement_pct(self.base_latency_s, self.wanify_latency_s)
    }

    /// Cost improvement, percent.
    pub fn cost_pct(&self) -> f64 {
        improvement_pct(self.base_cost_usd, self.wanify_cost_usd)
    }
}

/// Result of the Fig. 7 reproduction.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// All (query, scheduler) rows.
    pub rows: Vec<Fig7Row>,
}

impl Fig7 {
    /// Best latency improvement (paper: up to 24%).
    pub fn best_latency_pct(&self) -> f64 {
        self.rows.iter().map(Fig7Row::latency_pct).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Best minimum-bandwidth ratio (paper: 3.3×).
    pub fn best_min_bw_ratio(&self) -> f64 {
        self.rows.iter().map(|r| r.min_bw_ratio).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Rendered table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.query.clone(),
                    r.scheduler.clone(),
                    format!("{:.0}", r.base_latency_s),
                    format!("{:.0}", r.wanify_latency_s),
                    format!("{:+.1}%", r.latency_pct()),
                    format!("{:+.1}%", r.cost_pct()),
                    format!("{:.2}x", r.min_bw_ratio),
                ]
            })
            .collect();
        let mut s = String::from("Fig. 7: TPC-DS with/without WANify\n");
        s.push_str(&render_table(
            &["query", "scheduler", "base (s)", "WANify (s)", "latency", "cost", "minBW"],
            &rows,
        ));
        s.push_str("paper: up to 24% latency, 8% cost, 3.3x min BW\n");
        s
    }
}

/// Runs all queries on both schedulers through the shared
/// baseline-vs-WANify harness ([`ExpEnv::compare`]).
pub fn run(effort: Effort, seed: u64) -> Fig7 {
    let env = ExpEnv::new(8, effort, seed);
    let mut rows = Vec::new();
    for (qi, query) in TpcDsQuery::all().into_iter().enumerate() {
        let schedulers: Vec<Box<dyn Scheduler>> =
            vec![Box::new(Tetrium::new()), Box::new(Kimchi::new())];
        for (si, scheduler) in schedulers.iter().enumerate() {
            let run_id = (qi * 10 + si) as u64;
            let job = query.job(env.n, 100.0 * effort.input_scale());
            let cmp = env.compare(&job, scheduler.as_ref(), run_id, WanifyMode::full());
            rows.push(Fig7Row {
                query: query.name().to_string(),
                scheduler: scheduler.name().to_string(),
                base_latency_s: cmp.baseline.latency_s,
                wanify_latency_s: cmp.wanified.latency_s,
                base_cost_usd: cmp.baseline.cost.total_usd(),
                wanify_cost_usd: cmp.wanified.cost.total_usd(),
                min_bw_ratio: cmp.min_bw_ratio(),
            });
        }
    }
    Fig7 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wanify_reduces_latency_on_heavy_queries() {
        let f = run(Effort::Quick, 51);
        let q78: Vec<&Fig7Row> = f.rows.iter().filter(|r| r.query == "q78").collect();
        assert!(!q78.is_empty());
        for r in q78 {
            assert!(
                r.latency_pct() > 0.0,
                "q78 {} should improve, got {:+.1}%",
                r.scheduler,
                r.latency_pct()
            );
        }
    }

    #[test]
    fn min_bandwidth_rises_substantially() {
        let f = run(Effort::Quick, 52);
        assert!(
            f.best_min_bw_ratio() > 1.5,
            "paper reports 3.3x, got {:.2}x",
            f.best_min_bw_ratio()
        );
    }

    #[test]
    fn all_eight_rows_present() {
        let f = run(Effort::Quick, 53);
        assert_eq!(f.rows.len(), 8);
    }
}
