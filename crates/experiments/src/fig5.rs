//! Fig. 5: comparing parallel data transfer approaches on TeraSort
//! (§5.3.1) — no WAN-aware scheduling anywhere, pure transfer layer.
//!
//! Four approaches: vanilla single-connection Spark ("No WANify"),
//! WANify-P (uniform 8 connections), WANify-Dynamic (heterogeneous +
//! agents, no throttling), and WANify-TC (the default: + throttling).
//! The paper's shape: WANify-P *hurts* (congestion), Dynamic helps,
//! TC is best on latency, cost and minimum bandwidth.

use crate::common::{render_table, run_wanified, Belief, Effort, ExpEnv, WanifyMode};
use wanify_gda::{run_job, QueryReport, TransferOptions, VanillaSpark};
use wanify_netsim::ConnMatrix;
use wanify_workloads::terasort;

/// One transfer approach's outcome.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Approach label.
    pub name: String,
    /// Query latency, seconds.
    pub latency_s: f64,
    /// Total cost, USD.
    pub cost_usd: f64,
    /// Minimum observed bandwidth, Mbps.
    pub min_bw_mbps: f64,
}

/// Result of the Fig. 5 reproduction.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// No-WANify, WANify-P, WANify-Dynamic, WANify-TC in paper order.
    pub rows: Vec<Fig5Row>,
}

impl Fig5 {
    /// Finds a row by name.
    ///
    /// # Panics
    ///
    /// Panics if the approach does not exist.
    pub fn row(&self, name: &str) -> &Fig5Row {
        self.rows.iter().find(|r| r.name == name).expect("approach exists")
    }

    /// Rendered table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.0}", r.latency_s),
                    format!("${:.2}", r.cost_usd),
                    format!("{:.0}", r.min_bw_mbps),
                ]
            })
            .collect();
        let mut s = String::from("Fig. 5: parallel data transfer approaches (TeraSort)\n");
        s.push_str(&render_table(&["approach", "latency (s)", "cost", "min BW (Mbps)"], &rows));
        s.push_str("paper: TC best (61 min, $4.7, 790 Mbps); uniform-P worst\n");
        s
    }
}

/// Runs the four approaches.
pub fn run(effort: Effort, seed: u64) -> Fig5 {
    let env = ExpEnv::new(8, effort, seed);
    let job = terasort::job(wanify_gda::DataLayout::uniform(8, 100.0 * effort.input_scale()));
    let sched = VanillaSpark::new();
    let mut rows = Vec::new();

    // Baseline: locality-aware Spark, single connection, static beliefs.
    {
        let mut sim = env.sim(0);
        let r: QueryReport = env.run_baseline(&mut sim, &job, &sched, Belief::StaticIndependent);
        rows.push(row("No WANify", &r));
    }
    // WANify-P: uniform 8 parallel connections on predicted beliefs.
    {
        let mut sim = env.sim(1);
        let conns = ConnMatrix::from_fn(8, |i, j| if i == j { 1 } else { 8 });
        let r = run_job(
            &mut sim,
            &job,
            &sched,
            env.source(Belief::Predicted).as_mut(),
            TransferOptions { conns: Some(&conns), hook: None },
        )
        .expect("fig5 jobs match their topology");
        rows.push(row("WANify-P", &r));
    }
    // WANify-Dynamic: heterogeneous plan + agents, no throttling.
    {
        let mut sim = env.sim(2);
        let mut source = env.source(Belief::Predicted);
        let r = run_wanified(&mut sim, &job, &sched, source.as_mut(), WanifyMode::dynamic(), None);
        rows.push(row("WANify-Dynamic", &r));
    }
    // WANify-TC: the default model with throttling.
    {
        let mut sim = env.sim(3);
        let mut source = env.source(Belief::Predicted);
        let r = run_wanified(&mut sim, &job, &sched, source.as_mut(), WanifyMode::full(), None);
        rows.push(row("WANify-TC", &r));
    }
    Fig5 { rows }
}

fn row(name: &str, r: &QueryReport) -> Fig5Row {
    Fig5Row {
        name: name.to_string(),
        latency_s: r.latency_s,
        cost_usd: r.cost.total_usd(),
        min_bw_mbps: r.min_bw_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc_is_the_best_approach() {
        let f = run(Effort::Quick, 19);
        let tc = f.row("WANify-TC");
        let baseline = f.row("No WANify");
        assert!(
            tc.latency_s < baseline.latency_s,
            "TC {} should beat single-connection {}",
            tc.latency_s,
            baseline.latency_s
        );
        assert!(tc.min_bw_mbps > baseline.min_bw_mbps);
    }

    #[test]
    fn dynamic_beats_uniform_parallelism() {
        let f = run(Effort::Quick, 20);
        let dynamic = f.row("WANify-Dynamic");
        let uniform = f.row("WANify-P");
        // At quick-effort scale the AIMD agents only get a handful of
        // 5-second epochs to converge, so parity with uniform parallelism
        // is acceptable; the decisive paper claim (TC best) is asserted in
        // `tc_is_the_best_approach`.
        assert!(
            dynamic.latency_s <= uniform.latency_s * 1.15,
            "heterogeneous {} should not materially lose to uniform {}",
            dynamic.latency_s,
            uniform.latency_s
        );
        assert!(dynamic.min_bw_mbps >= uniform.min_bw_mbps * 0.9);
    }

    #[test]
    fn all_four_approaches_present() {
        let f = run(Effort::Quick, 21);
        assert_eq!(f.rows.len(), 4);
        assert!(f.render().contains("WANify-TC"));
    }
}
