//! Fleet scenario: belief provenances under cross-query contention.
//!
//! The solo-query experiments (fig5–fig8) already show that belief
//! quality determines latency when one query owns the WAN. This driver
//! asks the production question the ROADMAP's north star implies: with a
//! *fleet* of concurrent mixed queries contending on one shared WAN, how
//! do the §5.2 belief provenances rank, and what does each cost in
//! monitoring time? Every arm serves the identical deterministic trace
//! (same jobs, same Poisson arrivals, same seeds) through the
//! [`FleetEngine`], varying only the shared [`BandwidthSource`] — so the
//! differences are purely belief-driven, as in the paper's §5.2
//! methodology, but now measured as fleet throughput and tail makespan
//! instead of single-query latency.

use crate::common::{render_table, Belief, Effort, ExpEnv};
use wanify_gda::{Arrivals, FleetConfig, FleetEngine, FleetReport, Tetrium};
use wanify_workloads::{mixed_trace, TraceConfig};

/// One belief's fleet outcome.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Belief provenance label.
    pub belief: String,
    /// Completed queries per simulated second.
    pub throughput_jobs_per_s: f64,
    /// Median admission-to-completion makespan, seconds.
    pub p50_makespan_s: f64,
    /// 95th-percentile makespan, seconds.
    pub p95_makespan_s: f64,
    /// 99th-percentile makespan, seconds.
    pub p99_makespan_s: f64,
    /// Mean queue wait, seconds.
    pub mean_queue_wait_s: f64,
    /// Belief gauges performed over the whole run (the amortization the
    /// shared cache buys).
    pub gauges: u64,
    /// Total egress dollars across the fleet.
    pub network_cost_usd: f64,
}

impl FleetRow {
    fn from_report(report: &FleetReport) -> Self {
        let makespan = report.makespan();
        Self {
            belief: report.belief.clone(),
            throughput_jobs_per_s: report.throughput_jobs_per_s(),
            p50_makespan_s: makespan.p50,
            p95_makespan_s: makespan.p95,
            p99_makespan_s: makespan.p99,
            mean_queue_wait_s: report.queue_wait().mean,
            gauges: report.gauges,
            network_cost_usd: report.network_cost_usd(),
        }
    }
}

/// Outcome of [`run`].
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// One row per belief provenance.
    pub rows: Vec<FleetRow>,
    /// Queries in the trace.
    pub jobs: usize,
    /// Data centers in the testbed.
    pub n_dcs: usize,
}

impl FleetResult {
    /// The row for `belief`, if present.
    pub fn row(&self, belief: &str) -> Option<&FleetRow> {
        self.rows.iter().find(|r| r.belief == belief)
    }

    /// Renders the comparison as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fleet contention: {} mixed queries on {} DCs, Tetrium, shared belief cache\n\n",
            self.jobs, self.n_dcs
        );
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.belief.clone(),
                    format!("{:.4}", r.throughput_jobs_per_s),
                    format!("{:.0}", r.p50_makespan_s),
                    format!("{:.0}", r.p95_makespan_s),
                    format!("{:.0}", r.p99_makespan_s),
                    format!("{:.0}", r.mean_queue_wait_s),
                    format!("{}", r.gauges),
                    format!("${:.2}", r.network_cost_usd),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["belief", "jobs/s", "p50 mkspan", "p95", "p99", "mean wait", "gauges", "egress $"],
            &rows,
        ));
        out
    }
}

/// Runs the fleet comparison across belief provenances.
///
/// `Quick` effort serves 16 queries on 4 DCs; `Full` serves 60 on the
/// 8-DC paper testbed. Identical traces and arrivals per arm.
pub fn run(effort: Effort, seed: u64) -> FleetResult {
    let (n, jobs, rate) = match effort {
        Effort::Quick => (4, 16, 0.02),
        Effort::Full => (8, 60, 0.02),
    };
    let env = ExpEnv::new(n, effort, seed);
    let trace = mixed_trace(&TraceConfig::new(n, jobs, seed ^ 0xF1EE).scaled(0.5));
    let beliefs = [
        Belief::StaticIndependent,
        Belief::StaticSimultaneous,
        Belief::Predicted,
        Belief::MeasuredRuntime,
    ];
    let rows = beliefs
        .iter()
        .map(|&belief| {
            let report = FleetEngine::new(
                env.sim(100),
                Box::new(Tetrium::new()),
                env.source(belief),
                FleetConfig {
                    max_concurrent: 8,
                    regauge_every_s: 120.0,
                    conns: None,
                    faults: None,
                    ..FleetConfig::default()
                },
            )
            .run(&trace, &Arrivals::Poisson { rate_per_s: rate, seed: seed ^ 0xBEEF })
            .expect("fleet traces match their topology");
            FleetRow::from_report(&report)
        })
        .collect();
    FleetResult { rows, jobs, n_dcs: n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_belief_serves_the_whole_trace() {
        let result = run(Effort::Quick, 9);
        assert_eq!(result.rows.len(), 4);
        for row in &result.rows {
            assert!(row.throughput_jobs_per_s > 0.0, "{} served nothing", row.belief);
            assert!(row.p99_makespan_s >= row.p50_makespan_s);
        }
        assert!(result.render().contains("jobs/s"));
    }

    #[test]
    fn predicted_tracks_ground_truth_at_a_fraction_of_the_probe_cost() {
        // Each predicted gauge is a 1-second snapshot instead of a
        // 20-second stable measurement. The fleet-level claim that is
        // robust at any load: the predicted arm stays within a few percent
        // of the measured-runtime arm's throughput while paying a far
        // shorter probe per gauge — Table 2's monitoring-cost argument,
        // fleet-sized.
        let result = run(Effort::Quick, 4);
        let predicted = result.row("predicted").expect("predicted arm");
        let measured = result.row("measured-runtime").expect("measured arm");
        assert!(predicted.gauges >= 1 && measured.gauges >= 1);
        let ratio = predicted.throughput_jobs_per_s / measured.throughput_jobs_per_s;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "predicted should track ground truth closely, got ratio {ratio:.3}"
        );
    }
}
