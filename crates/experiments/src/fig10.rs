//! Fig. 10: handling skewed input data (§5.8.1).
//!
//! WordCount over 600 MB whose blocks are concentrated into four regions.
//! Four approaches per scheduler, all on predicted runtime bandwidths:
//! single connection, uniform parallel (-P), WANify without skew weights
//! (-WNS), and WANify with skew weights (-W). The paper: Tetrium-W
//! improves average latency by 26.5% / 20.3% / 7.1% over Tetrium /
//! Tetrium-P / Tetrium-WNS, with 1.2-2.1× higher minimum bandwidth.

use crate::common::{render_table, run_wanified, Belief, Effort, ExpEnv, WanifyMode};
use wanify_gda::{run_job, JobProfile, Kimchi, Scheduler, Tetrium, TransferOptions};
use wanify_netsim::ConnMatrix;
use wanify_workloads::wordcount;

/// One approach's outcome under one scheduler.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Scheduler label.
    pub scheduler: String,
    /// Approach label: `single`, `uniform-P`, `wanify-WNS`, `wanify-W`.
    pub approach: String,
    /// Latency, seconds.
    pub latency_s: f64,
    /// Cost, USD.
    pub cost_usd: f64,
    /// Minimum bandwidth, Mbps.
    pub min_bw_mbps: f64,
}

/// Result of the Fig. 10 reproduction.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// 4 approaches × 2 schedulers.
    pub rows: Vec<Fig10Row>,
}

impl Fig10 {
    /// Row lookup.
    ///
    /// # Panics
    ///
    /// Panics if the pair does not exist.
    pub fn row(&self, scheduler: &str, approach: &str) -> &Fig10Row {
        self.rows
            .iter()
            .find(|r| r.scheduler == scheduler && r.approach == approach)
            .expect("row exists")
    }

    /// Rendered table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scheduler.clone(),
                    r.approach.clone(),
                    format!("{:.1}", r.latency_s),
                    format!("${:.3}", r.cost_usd),
                    format!("{:.0}", r.min_bw_mbps),
                ]
            })
            .collect();
        let mut s = String::from("Fig. 10: skewed WordCount (600 MB in 4 DCs)\n");
        s.push_str(&render_table(
            &["scheduler", "approach", "latency (s)", "cost", "min BW"],
            &rows,
        ));
        s.push_str("paper: -W beats single/-P/-WNS by 26.5%/20.3%/7.1% (Tetrium)\n");
        s
    }
}

fn skewed_job(n: usize) -> JobProfile {
    // The paper uses 600 MB on t2.medium hardware where WordCount takes
    // minutes; the simulated fleet is ~20x faster, so the input is scaled
    // by the same factor to recreate the paper's relative WAN stress
    // (documented in EXPERIMENTS.md). Blocks concentrate in DCs 0-3.
    let layout = wordcount::skewed_layout(n, 600.0 * 20.0);
    wanify_gda::JobProfile::new(
        "wordcount-skewed",
        layout,
        vec![
            wanify_gda::StageProfile::shuffling("tokenize-map", 0.2, 2.5),
            wanify_gda::StageProfile::terminal("count-reduce", 0.2, 1.0),
        ],
    )
}

/// Runs all approaches on both schedulers.
pub fn run(effort: Effort, seed: u64) -> Fig10 {
    let env = ExpEnv::new(8, effort, seed);
    let job = skewed_job(env.n);
    let skew = job.layout.skew_weights();
    let mut rows = Vec::new();

    let schedulers: Vec<Box<dyn Scheduler>> =
        vec![Box::new(Tetrium::new()), Box::new(Kimchi::new())];
    for (si, scheduler) in schedulers.iter().enumerate() {
        let run_id = si as u64 * 100;
        // Single connection on predicted beliefs.
        {
            let mut sim = env.sim(run_id);
            let r = env.run_baseline(&mut sim, &job, scheduler.as_ref(), Belief::Predicted);
            rows.push(mk(scheduler.name(), "single", &r));
        }
        // Uniform parallel connections.
        {
            let mut sim = env.sim(run_id);
            let conns = ConnMatrix::from_fn(env.n, |i, j| if i == j { 1 } else { 8 });
            let r = run_job(
                &mut sim,
                &job,
                scheduler.as_ref(),
                env.source(Belief::Predicted).as_mut(),
                TransferOptions { conns: Some(&conns), hook: None },
            )
            .expect("fig10 jobs match their topology");
            rows.push(mk(scheduler.name(), "uniform-P", &r));
        }
        // WANify without skew weights.
        {
            let mut sim = env.sim(run_id);
            let r = run_wanified(
                &mut sim,
                &job,
                scheduler.as_ref(),
                env.source(Belief::Predicted).as_mut(),
                WanifyMode::full(),
                None,
            );
            rows.push(mk(scheduler.name(), "wanify-WNS", &r));
        }
        // WANify with skew weights from the storage layer.
        {
            let mut sim = env.sim(run_id);
            let r = run_wanified(
                &mut sim,
                &job,
                scheduler.as_ref(),
                env.source(Belief::Predicted).as_mut(),
                WanifyMode::full(),
                Some(skew.clone()),
            );
            rows.push(mk(scheduler.name(), "wanify-W", &r));
        }
    }
    Fig10 { rows }
}

fn mk(scheduler: &str, approach: &str, r: &wanify_gda::QueryReport) -> Fig10Row {
    Fig10Row {
        scheduler: scheduler.to_string(),
        approach: approach.to_string(),
        latency_s: r.latency_s,
        cost_usd: r.cost.total_usd(),
        min_bw_mbps: r.min_bw_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_aware_wanify_wins() {
        let f = run(Effort::Quick, 81);
        for sched in ["tetrium", "kimchi"] {
            let w = f.row(sched, "wanify-W");
            let single = f.row(sched, "single");
            assert!(
                w.latency_s < single.latency_s,
                "{sched}: -W {} must beat single {}",
                w.latency_s,
                single.latency_s
            );
        }
    }

    #[test]
    fn skew_weights_add_value_over_wns() {
        let f = run(Effort::Quick, 82);
        let w = f.row("tetrium", "wanify-W");
        let wns = f.row("tetrium", "wanify-WNS");
        assert!(
            w.latency_s <= wns.latency_s * 1.1,
            "-W ({}) should be at least competitive with -WNS ({})",
            w.latency_s,
            wns.latency_s
        );
    }

    #[test]
    fn eight_rows_present() {
        let f = run(Effort::Quick, 83);
        assert_eq!(f.rows.len(), 8);
    }
}
