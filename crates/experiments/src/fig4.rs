//! Fig. 4: impact on geo-distributed ML training (§5.6).
//!
//! Five quantized training variants over the MNIST-scale workload:
//! NoQ (full precision), SAGQ (static-independent BW beliefs), SimQ
//! (simultaneous), PredQ (predicted), and WQ (WANify: predicted beliefs +
//! heterogeneous parallel connections + agents). The paper reports SAGQ
//! −22% vs NoQ, SimQ/PredQ a further 13-14.5%, and WQ best (−26% vs SAGQ)
//! with a 2× minimum-bandwidth boost.

use crate::common::{improvement_pct, render_table, Belief, Effort, ExpEnv};
use wanify::{Wanify, WanifyConfig};
use wanify_netsim::{ConnMatrix, DcId};
use wanify_workloads::quantization::{run_training, QuantConfig, QuantPolicy, TrainingReport};

/// One training variant's outcome.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Variant label.
    pub name: String,
    /// Training time, seconds.
    pub training_s: f64,
    /// Total cost, USD.
    pub cost_usd: f64,
    /// Minimum observed bandwidth, Mbps.
    pub min_bw_mbps: f64,
}

/// Result of the Fig. 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// NoQ, SAGQ, SimQ, PredQ, WQ in paper order.
    pub rows: Vec<Fig4Row>,
}

impl Fig4 {
    /// Finds a row by name.
    ///
    /// # Panics
    ///
    /// Panics if the variant does not exist.
    pub fn row(&self, name: &str) -> &Fig4Row {
        self.rows.iter().find(|r| r.name == name).expect("variant exists")
    }

    /// WQ training-time improvement over SAGQ, percent (paper: ~26%).
    pub fn wq_over_sagq_pct(&self) -> f64 {
        improvement_pct(self.row("SAGQ").training_s, self.row("WQ").training_s)
    }

    /// Rendered table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.0}", r.training_s),
                    format!("${:.2}", r.cost_usd),
                    format!("{:.0}", r.min_bw_mbps),
                ]
            })
            .collect();
        let mut s = String::from("Fig. 4: quantized geo-distributed training\n");
        s.push_str(&render_table(&["variant", "training (s)", "cost", "min BW (Mbps)"], &rows));
        s.push_str(&format!(
            "WQ vs SAGQ: {:+.1}% training time (paper: ~26%)\n",
            self.wq_over_sagq_pct()
        ));
        s
    }
}

fn ml_config(effort: Effort) -> QuantConfig {
    QuantConfig {
        master: DcId(0),
        grad_mb_per_epoch: 1800.0 * effort.input_scale(),
        compute_s_per_epoch: 240.0 * effort.input_scale(),
        epochs: match effort {
            Effort::Quick => 3,
            Effort::Full => 10,
        },
        target_transfer_s: 25.0,
        ..QuantConfig::default()
    }
}

/// Runs all five variants.
pub fn run(effort: Effort, seed: u64) -> Fig4 {
    let env = ExpEnv::new(8, effort, seed);
    let cfg = ml_config(effort);
    let mut rows = Vec::new();

    let variants: [(&str, Option<Belief>); 4] = [
        ("NoQ", None),
        ("SAGQ", Some(Belief::StaticIndependent)),
        ("SimQ", Some(Belief::StaticSimultaneous)),
        ("PredQ", Some(Belief::Predicted)),
    ];
    for (i, (name, belief)) in variants.into_iter().enumerate() {
        let mut sim = env.sim(i as u64);
        let policy = match belief {
            Some(belief) => QuantPolicy::BwDriven(env.gauge(belief, &mut sim)),
            None => QuantPolicy::FullPrecision,
        };
        let report: TrainingReport = run_training(&mut sim, &cfg, &policy, None, None);
        rows.push(Fig4Row {
            name: name.to_string(),
            training_s: report.training_s,
            cost_usd: report.cost.total_usd(),
            min_bw_mbps: report.min_bw_mbps,
        });
    }

    // WQ: predicted beliefs + WANify connection plan + local agents.
    // Throttling stays off: SAGQ already equalizes per-link transfer times
    // by sizing payloads to believed bandwidth, so capping rich links would
    // only re-inflate the near workers' exchanges. The hub-and-spoke ML
    // pattern benefits from the heterogeneous connections and AIMD alone.
    let mut sim = env.sim(9);
    let predicted = env.gauge(Belief::Predicted, &mut sim);
    let wanify = Wanify::new(WanifyConfig { throttling: false, ..WanifyConfig::default() });
    let plan = wanify.plan_matrix(&predicted);
    let mut agent = wanify.agent(&plan);
    let conns: ConnMatrix = plan.initial_conns().clone();
    // WQ picks precision from the same predicted beliefs as PredQ — the
    // quantizer's accuracy/precision trade-off is unchanged — while the
    // transport layer additionally enjoys WANify's parallel heterogeneous
    // connections and throttling, which is where the extra speedup and the
    // 2x minimum-bandwidth boost come from (§5.6).
    let policy = QuantPolicy::BwDriven(predicted.clone());
    let report = run_training(&mut sim, &cfg, &policy, Some(&conns), Some(&mut agent));
    rows.push(Fig4Row {
        name: "WQ".to_string(),
        training_s: report.training_s,
        cost_usd: report.cost.total_usd(),
        min_bw_mbps: report.min_bw_mbps,
    });

    Fig4 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let f = run(Effort::Quick, 7);
        assert_eq!(f.rows.len(), 5);
        let noq = f.row("NoQ").training_s;
        let sagq = f.row("SAGQ").training_s;
        let wq = f.row("WQ").training_s;
        assert!(sagq <= noq, "quantization must not slow training: {sagq} vs {noq}");
        assert!(wq < sagq, "WANify must beat static quantization: {wq} vs {sagq}");
    }

    #[test]
    fn wq_boosts_minimum_bandwidth() {
        let f = run(Effort::Quick, 8);
        assert!(
            f.row("WQ").min_bw_mbps > 1.3 * f.row("SAGQ").min_bw_mbps,
            "paper: ~2x min BW boost, got {} vs {}",
            f.row("WQ").min_bw_mbps,
            f.row("SAGQ").min_bw_mbps
        );
    }

    #[test]
    fn accurate_beliefs_beat_static() {
        let f = run(Effort::Quick, 9);
        let sagq = f.row("SAGQ").training_s;
        let best_accurate = f.row("SimQ").training_s.min(f.row("PredQ").training_s);
        assert!(
            best_accurate <= sagq * 1.02,
            "accurate beliefs should not lose to static: {best_accurate} vs {sagq}"
        );
    }
}
