//! Fig. 11: prediction accuracy across cluster shapes (§5.8.2, §5.8.3).
//!
//! For each cluster configuration the static-independent and the
//! predicted matrices are compared against the actual runtime matrix,
//! counting significant differences (>100 Mbps). (a) varies the number of
//! DCs; (b) adds 1-5 extra VMs to three DCs (non-uniform fleets). The
//! paper's claim: predicted beats static everywhere.

use crate::common::{render_table, Effort, ExpEnv};
use wanify::{BandwidthSource, MeasuredRuntime, PredictedRuntime, StaticIndependent};
use wanify_netsim::DcId;

/// One configuration's accuracy comparison.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Configuration label (e.g. `"N=6"` or `"+3 VMs"`).
    pub label: String,
    /// Significant diffs of static-independent vs runtime.
    pub static_significant: usize,
    /// Significant diffs of predicted vs runtime.
    pub predicted_significant: usize,
    /// Number of directed pairs.
    pub n_pairs: usize,
}

/// Result of the Fig. 11 reproduction.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// (a) varying DC counts.
    pub by_cluster_size: Vec<AccuracyRow>,
    /// (b) non-uniform VM fleets.
    pub by_extra_vms: Vec<AccuracyRow>,
}

impl Fig11 {
    /// Rendered summary.
    pub fn render(&self) -> String {
        let fmt = |rows: &[AccuracyRow]| -> Vec<Vec<String>> {
            rows.iter()
                .map(|r| {
                    vec![
                        r.label.clone(),
                        format!("{}/{}", r.static_significant, r.n_pairs),
                        format!("{}/{}", r.predicted_significant, r.n_pairs),
                    ]
                })
                .collect()
        };
        let mut s = String::from("Fig. 11(a): significant diffs vs runtime, by cluster size\n");
        s.push_str(&render_table(
            &["config", "static-independent", "predicted"],
            &fmt(&self.by_cluster_size),
        ));
        s.push_str("\nFig. 11(b): with extra VMs at 3 DCs\n");
        s.push_str(&render_table(
            &["config", "static-independent", "predicted"],
            &fmt(&self.by_extra_vms),
        ));
        s.push_str("paper: predicted < static everywhere\n");
        s
    }
}

/// Significance bound in Mbps.
const SIGNIFICANT: f64 = 100.0;

fn compare(env: &ExpEnv, sim: &mut wanify_netsim::NetSim, label: &str) -> AccuracyRow {
    let n = sim.topology().len();
    let static_bw = StaticIndependent::new().gauge(sim).expect("static probe matches topology");
    sim.shuffle_time();
    let predicted =
        PredictedRuntime::new(env.model.clone()).gauge(sim).expect("snapshot matches topology");
    let runtime = MeasuredRuntime::default().gauge(sim).expect("runtime probe matches topology");
    AccuracyRow {
        label: label.to_string(),
        static_significant: static_bw.count_significant_diffs(&runtime, SIGNIFICANT),
        predicted_significant: predicted.count_significant_diffs(&runtime, SIGNIFICANT),
        n_pairs: n * (n - 1),
    }
}

/// Runs both sweeps.
pub fn run(effort: Effort, seed: u64) -> Fig11 {
    // One model trained across sizes serves every configuration (§3.3.2).
    let env = ExpEnv::new(8, effort, seed);

    let mut by_cluster_size = Vec::new();
    for n in 4..=8 {
        let mut sub_env_sim = wanify_netsim::NetSim::new(
            wanify_netsim::paper_testbed_n(env.vm.clone(), n),
            wanify_netsim::LinkModelParams::default(),
            seed.wrapping_add(n as u64 * 131),
        );
        by_cluster_size.push(compare(&env, &mut sub_env_sim, &format!("N={n}")));
    }

    let mut by_extra_vms = Vec::new();
    for extra in 1..=5u32 {
        // Three "randomly selected" DCs — fixed here for determinism: the
        // paper also fixes its selection per run.
        let topo = wanify_netsim::paper_testbed_n(env.vm.clone(), 8)
            .with_extra_vms(DcId(1), extra)
            .with_extra_vms(DcId(4), extra)
            .with_extra_vms(DcId(6), extra);
        let mut sim = wanify_netsim::NetSim::new(
            topo,
            wanify_netsim::LinkModelParams::default(),
            seed.wrapping_add(1000 + u64::from(extra)),
        );
        by_extra_vms.push(compare(&env, &mut sim, &format!("+{extra} VMs")));
    }

    Fig11 { by_cluster_size, by_extra_vms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_beats_static_overall() {
        let f = run(Effort::Quick, 91);
        let static_total: usize = f.by_cluster_size.iter().map(|r| r.static_significant).sum();
        let predicted_total: usize =
            f.by_cluster_size.iter().map(|r| r.predicted_significant).sum();
        assert!(
            predicted_total < static_total,
            "predicted ({predicted_total}) must beat static ({static_total})"
        );
    }

    #[test]
    fn heterogeneous_vms_also_favor_prediction() {
        let f = run(Effort::Quick, 92);
        let static_total: usize = f.by_extra_vms.iter().map(|r| r.static_significant).sum();
        let predicted_total: usize = f.by_extra_vms.iter().map(|r| r.predicted_significant).sum();
        assert!(predicted_total <= static_total);
    }

    #[test]
    fn sweeps_have_expected_lengths() {
        let f = run(Effort::Quick, 93);
        assert_eq!(f.by_cluster_size.len(), 5);
        assert_eq!(f.by_extra_vms.len(), 5);
        assert_eq!(f.by_cluster_size[0].label, "N=4");
    }
}
