//! Shared experiment infrastructure: environments, bandwidth beliefs and
//! rendering.
//!
//! Every figure/table driver used to hand-roll its own measure/predict
//! setup; they now share one harness built on the
//! [`BandwidthSource`] abstraction: [`ExpEnv::source`] produces the §5.2
//! beliefs as sources, [`ExpEnv::run_baseline`] runs a job on any belief,
//! and [`ExpEnv::compare`] performs the canonical baseline-vs-WANify
//! experiment that fig2/fig5/fig6/fig7/fig8 all reduce to.

use wanify::{
    BandwidthAnalyzer, BandwidthSource, MeasuredRuntime, PredictedRuntime, Pregauged,
    StaticIndependent, StaticSimultaneous, WanPredictionModel, Wanify, WanifyConfig, WanifyPlan,
};
use wanify_gda::{run_job, JobProfile, QueryReport, Scheduler, TransferOptions};
use wanify_netsim::{paper_testbed_n, BwMatrix, LinkModelParams, NetSim, VmType};

/// How much compute to spend on an experiment.
///
/// `Quick` keeps unit/integration tests fast; `Full` approaches the
/// paper's sample counts and is what the `repro` binary and the Criterion
/// benches use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small sample counts for tests.
    Quick,
    /// Paper-scale sample counts.
    Full,
}

impl Effort {
    /// Training samples per cluster size for the prediction model.
    pub fn samples_per_size(self) -> usize {
        match self {
            Effort::Quick => 25,
            Effort::Full => 100,
        }
    }

    /// Random-forest size (paper: 100 estimators).
    pub fn n_estimators(self) -> usize {
        match self {
            Effort::Quick => 25,
            Effort::Full => 100,
        }
    }

    /// Input scale factor applied to the big workloads.
    pub fn input_scale(self) -> f64 {
        match self {
            Effort::Quick => 0.25,
            Effort::Full => 1.0,
        }
    }
}

/// The bandwidth beliefs of §5.2, by provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Belief {
    /// One pair at a time, measured once (existing systems).
    StaticIndependent,
    /// All pairs at once for 20 s, measured once.
    StaticSimultaneous,
    /// WANify: fresh snapshot through the trained model per gauge.
    Predicted,
    /// Ground truth: fresh stable measurement per gauge.
    MeasuredRuntime,
}

impl Belief {
    /// The provenance label used in tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            Belief::StaticIndependent => "static-independent",
            Belief::StaticSimultaneous => "static-simultaneous",
            Belief::Predicted => "predicted",
            Belief::MeasuredRuntime => "measured-runtime",
        }
    }
}

/// The standard experiment environment: the 8-DC AWS testbed, a trained
/// prediction model and the three bandwidth beliefs of §5.2.
#[derive(Debug)]
pub struct ExpEnv {
    /// Number of DCs.
    pub n: usize,
    /// Worker VM flavor.
    pub vm: VmType,
    /// Base RNG seed; every run derives from it deterministically.
    pub seed: u64,
    /// Trained WAN prediction model, shared by every predicted source
    /// built from this environment.
    pub model: std::sync::Arc<WanPredictionModel>,
    /// Effort level used to build the environment.
    pub effort: Effort,
}

impl ExpEnv {
    /// Builds the environment, training the model on sizes `2..=n`
    /// (capped to 8) as §3.3.2 prescribes.
    pub fn new(n: usize, effort: Effort, seed: u64) -> Self {
        let sizes: Vec<usize> = (2..=n.min(8)).collect();
        let analyzer = BandwidthAnalyzer {
            vm: VmType::t2_medium(),
            params: LinkModelParams::default(),
            samples_per_size: effort.samples_per_size(),
        };
        let data = analyzer.collect(&sizes, seed ^ 0xA5A5);
        let model = std::sync::Arc::new(WanPredictionModel::train(
            &data,
            effort.n_estimators(),
            seed ^ 0x5A5A,
        ));
        Self { n, vm: VmType::t2_medium(), seed, model, effort }
    }

    /// A fresh simulator with the environment's topology, offset by `run`.
    pub fn sim(&self, run: u64) -> NetSim {
        NetSim::new(
            paper_testbed_n(self.vm.clone(), self.n),
            LinkModelParams::default(),
            self.seed.wrapping_add(run.wrapping_mul(0x9E37_79B9)),
        )
    }

    /// Builds a [`BandwidthSource`] for the requested belief.
    ///
    /// Predicted beliefs share the environment's trained model; static
    /// beliefs start cold and cache their first measurement.
    pub fn source(&self, belief: Belief) -> Box<dyn BandwidthSource> {
        match belief {
            Belief::StaticIndependent => Box::new(StaticIndependent::new()),
            Belief::StaticSimultaneous => Box::new(StaticSimultaneous::default()),
            Belief::Predicted => Box::new(PredictedRuntime::new(self.model.clone())),
            Belief::MeasuredRuntime => Box::new(MeasuredRuntime::default()),
        }
    }

    /// Gauges one belief matrix from `sim` (a convenience over
    /// [`ExpEnv::source`] for drivers that need the raw matrix).
    pub fn gauge(&self, belief: Belief, sim: &mut NetSim) -> BwMatrix {
        self.source(belief).gauge(sim).expect("environment sources match their topology")
    }

    /// Runs `job` under `scheduler` with a plain (non-WANify) transfer
    /// layer, planning on the given belief.
    pub fn run_baseline(
        &self,
        sim: &mut NetSim,
        job: &JobProfile,
        scheduler: &dyn Scheduler,
        belief: Belief,
    ) -> QueryReport {
        run_job(sim, job, scheduler, self.source(belief).as_mut(), TransferOptions::default())
            .expect("environment jobs match their topology")
    }

    /// The canonical experiment: the scheduler as published
    /// (static-independent belief, single connections) versus the same
    /// scheduler WANify-enabled (predicted belief, heterogeneous
    /// connections, agents, throttling per `mode`). Both runs use the same
    /// derived simulator seed.
    pub fn compare(
        &self,
        job: &JobProfile,
        scheduler: &dyn Scheduler,
        run_id: u64,
        mode: WanifyMode,
    ) -> WanifyComparison {
        let mut sim = self.sim(run_id);
        let baseline = self.run_baseline(&mut sim, job, scheduler, Belief::StaticIndependent);
        let mut sim = self.sim(run_id);
        let wanified = run_wanified(
            &mut sim,
            job,
            scheduler,
            self.source(Belief::Predicted).as_mut(),
            mode,
            None,
        );
        WanifyComparison { baseline, wanified }
    }
}

/// Outcome of [`ExpEnv::compare`].
#[derive(Debug, Clone)]
pub struct WanifyComparison {
    /// The scheduler as published.
    pub baseline: QueryReport,
    /// The same scheduler with WANify engaged.
    pub wanified: QueryReport,
}

impl WanifyComparison {
    /// Latency improvement of WANify over the baseline, percent.
    pub fn latency_pct(&self) -> f64 {
        improvement_pct(self.baseline.latency_s, self.wanified.latency_s)
    }

    /// Cost improvement of WANify over the baseline, percent.
    pub fn cost_pct(&self) -> f64 {
        improvement_pct(self.baseline.cost.total_usd(), self.wanified.cost.total_usd())
    }

    /// Minimum-bandwidth ratio (WANify / baseline); 1 when unobserved.
    pub fn min_bw_ratio(&self) -> f64 {
        if self.baseline.min_bw_mbps > 0.0 {
            self.wanified.min_bw_mbps / self.baseline.min_bw_mbps
        } else {
            1.0
        }
    }
}

/// Which WANify pieces to enable in [`run_wanified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WanifyMode {
    /// Use the heterogeneous connection plan (global optimization).
    pub global: bool,
    /// Run the AIMD local agents during shuffles.
    pub local: bool,
    /// Enable traffic-control throttling.
    pub throttling: bool,
}

impl WanifyMode {
    /// Everything on (the paper's default WANify / WANify-TC).
    pub fn full() -> Self {
        Self { global: true, local: true, throttling: true }
    }

    /// Global + local without throttling (WANify-Dynamic).
    pub fn dynamic() -> Self {
        Self { global: true, local: true, throttling: false }
    }

    /// Global optimization only (the Fig. 8 ablation arm).
    pub fn global_only() -> Self {
        Self { global: true, local: false, throttling: false }
    }

    /// Local agents only, on a static 1..=M window (Fig. 8 ablation arm).
    pub fn local_only() -> Self {
        Self { global: false, local: true, throttling: false }
    }
}

/// Runs `job` under `scheduler` with WANify engaged per `mode`, planning
/// from any [`BandwidthSource`].
///
/// The source is gauged once; WANify plans on the gauged matrix, the
/// scheduler receives the plan's feasible achievable-bandwidth belief,
/// transfers start from the plan's connection matrix and the agents
/// fine-tune from there.
pub fn run_wanified(
    sim: &mut NetSim,
    job: &JobProfile,
    scheduler: &dyn Scheduler,
    source: &mut dyn BandwidthSource,
    mode: WanifyMode,
    skew_weights: Option<Vec<f64>>,
) -> QueryReport {
    let predicted_bw = source.gauge(sim).expect("bandwidth source must match the topology");
    let n = sim.topology().len();
    let config =
        WanifyConfig { throttling: mode.throttling, skew_weights, ..WanifyConfig::default() };
    let wanify = Wanify::new(config.clone());
    let plan: WanifyPlan = if mode.global {
        wanify.plan_matrix(&predicted_bw)
    } else {
        // Local-only ablation: a flat 1..=M window on every pair, unaware
        // of inferred closeness (paper §5.5).
        let flat = BwMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 1.0 });
        let mut plan = wanify.plan_matrix(&flat);
        // Achievable BW still derives from the prediction so AIMD targets
        // are meaningful.
        plan.global.max_bw = BwMatrix::from_fn(n, |i, j| {
            predicted_bw.get(i, j) * f64::from(plan.global.max_cons.get(i, j))
        });
        plan.global.min_bw = predicted_bw.clone();
        plan.global.host_egress_mbps = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).map(|j| predicted_bw.get(i, j)).sum())
            .collect();
        plan
    };

    // Apply initial traffic-control caps.
    sim.clear_throttles();
    if mode.throttling {
        for (i, j, cap) in plan.initial_throttles.iter_pairs() {
            if cap.is_finite() {
                sim.set_throttle(wanify_netsim::DcId(i), wanify_netsim::DcId(j), cap);
            }
        }
    }

    let mut belief =
        Pregauged::named(plan.feasible_achievable_bw(), format!("wanify({})", source.name()));
    let conns = plan.initial_conns().clone();
    let mut agent = wanify.agent(&plan);
    let opts = TransferOptions {
        conns: Some(&conns),
        hook: if mode.local { Some(&mut agent) } else { None },
    };
    let report = run_job(sim, job, scheduler, &mut belief, opts)
        .expect("wanified jobs match their topology");
    sim.clear_throttles();
    report
}

/// Percentage improvement of `new` over `baseline` (positive = better/lower).
pub fn improvement_pct(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    100.0 * (baseline - new) / baseline
}

/// Renders rows of `(label, values…)` as an aligned table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            if k < widths.len() {
                widths[k] = widths[k].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (k, h) in header.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", h, w = widths[k]));
    }
    out.push('\n');
    for (k, _) in header.iter().enumerate() {
        out.push_str(&format!("{:-<w$}  ", "", w = widths[k]));
    }
    out.push('\n');
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[k]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanify_gda::{DataLayout, StageProfile, Tetrium};

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(100.0, 80.0) - 20.0).abs() < 1e-12);
        assert!(improvement_pct(100.0, 120.0) < 0.0);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "2".into()]],
        );
        assert!(s.contains("long-name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn env_beliefs_have_consistent_shape() {
        let env = ExpEnv::new(4, Effort::Quick, 3);
        let mut sim = env.sim(0);
        let a = env.gauge(Belief::StaticIndependent, &mut sim);
        let b = env.gauge(Belief::StaticSimultaneous, &mut sim);
        let c = env.gauge(Belief::Predicted, &mut sim);
        let d = env.gauge(Belief::MeasuredRuntime, &mut sim);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_eq!(c.len(), 4);
        assert_eq!(d.len(), 4);
        assert!(c.max_off_diag() > 0.0);
    }

    #[test]
    fn wanified_run_executes_all_modes() {
        let env = ExpEnv::new(3, Effort::Quick, 5);
        let job = JobProfile::new(
            "t",
            DataLayout::uniform(3, 2.0),
            vec![StageProfile::shuffling("m", 1.0, 1.0), StageProfile::terminal("r", 0.1, 0.5)],
        );
        for mode in [
            WanifyMode::full(),
            WanifyMode::dynamic(),
            WanifyMode::global_only(),
            WanifyMode::local_only(),
        ] {
            let mut sim = env.sim(1);
            let report = run_wanified(
                &mut sim,
                &job,
                &Tetrium::new(),
                env.source(Belief::Predicted).as_mut(),
                mode,
                None,
            );
            assert!(report.latency_s > 0.0, "{mode:?} must produce a run");
        }
    }

    #[test]
    fn compare_produces_both_arms() {
        let env = ExpEnv::new(3, Effort::Quick, 8);
        let job = JobProfile::new(
            "cmp",
            DataLayout::uniform(3, 2.0),
            vec![StageProfile::shuffling("m", 1.0, 1.0), StageProfile::terminal("r", 0.1, 0.5)],
        );
        let cmp = env.compare(&job, &Tetrium::new(), 2, WanifyMode::full());
        assert_eq!(cmp.baseline.belief, "static-independent");
        assert!(cmp.wanified.belief.starts_with("wanify("));
        assert!(cmp.min_bw_ratio() > 0.0);
    }

    #[test]
    fn belief_labels_match_source_names() {
        let env = ExpEnv::new(3, Effort::Quick, 9);
        for belief in [
            Belief::StaticIndependent,
            Belief::StaticSimultaneous,
            Belief::Predicted,
            Belief::MeasuredRuntime,
        ] {
            assert_eq!(env.source(belief).name(), belief.label());
        }
    }
}
