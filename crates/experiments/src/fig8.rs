//! Fig. 8: validation of WANify's design (§5.5).
//!
//! (a) Ablation on TPC-DS query 78: Vanilla (unmodified GDA system),
//! Global-only, Local-only (static 1..=8 window), and full WANify. The
//! paper's ordering: WANify (≈23%) > Global-only (≈16%) > Local-only
//! (≈11%) > Vanilla.
//!
//! (b) Prediction-error injection: ±100 Mbps (the significance bound) is
//! randomly added to the predicted matrix; the paper reports ~18% higher
//! latency, ~5% higher cost and a ~38% lower minimum bandwidth.

use crate::common::{
    improvement_pct, render_table, run_wanified, Belief, Effort, ExpEnv, WanifyMode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wanify::Pregauged;
use wanify_gda::{Kimchi, Scheduler, Tetrium};
use wanify_netsim::BwMatrix;
use wanify_workloads::TpcDsQuery;

/// One ablation arm's outcome for one scheduler.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Scheduler label.
    pub scheduler: String,
    /// Arm label.
    pub arm: String,
    /// Latency, seconds.
    pub latency_s: f64,
    /// Latency improvement vs Vanilla, percent.
    pub latency_pct: f64,
    /// Minimum bandwidth, Mbps.
    pub min_bw_mbps: f64,
}

/// Error-injection outcome.
#[derive(Debug, Clone)]
pub struct ErrorInjection {
    /// Latency increase of WANify-err vs WANify, percent.
    pub latency_increase_pct: f64,
    /// Cost increase, percent.
    pub cost_increase_pct: f64,
    /// Minimum-bandwidth decrease, percent.
    pub min_bw_decrease_pct: f64,
}

/// Result of the Fig. 8 reproduction.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Ablation rows (4 arms × 2 schedulers).
    pub ablation: Vec<AblationRow>,
    /// Error-injection comparison (Tetrium, q78).
    pub error_injection: ErrorInjection,
}

impl Fig8 {
    /// Ablation row lookup.
    ///
    /// # Panics
    ///
    /// Panics if the (scheduler, arm) pair does not exist.
    pub fn ablation_row(&self, scheduler: &str, arm: &str) -> &AblationRow {
        self.ablation.iter().find(|r| r.scheduler == scheduler && r.arm == arm).expect("arm exists")
    }

    /// Rendered summary.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .ablation
            .iter()
            .map(|r| {
                vec![
                    r.scheduler.clone(),
                    r.arm.clone(),
                    format!("{:.0}", r.latency_s),
                    format!("{:+.1}%", r.latency_pct),
                    format!("{:.0}", r.min_bw_mbps),
                ]
            })
            .collect();
        let mut s = String::from("Fig. 8(a): ablation on q78\n");
        s.push_str(&render_table(
            &["scheduler", "arm", "latency (s)", "vs vanilla", "min BW"],
            &rows,
        ));
        s.push_str("paper: WANify ~23% > Global-only ~16% > Local-only ~11%\n\n");
        s.push_str("Fig. 8(b): prediction-error injection (±100 Mbps)\n");
        s.push_str(&format!(
            "latency {:+.1}% (paper ~+18%), cost {:+.1}% (~+5%), min BW {:+.1}% (~-38%)\n",
            self.error_injection.latency_increase_pct,
            self.error_injection.cost_increase_pct,
            -self.error_injection.min_bw_decrease_pct
        ));
        s
    }
}

/// Randomly adds or subtracts `delta` Mbps to every off-diagonal cell
/// (the paper's WANify-err perturbation).
///
/// Values are floored at 15% of the original: the paper's matrices bottom
/// out near 121 Mbps, so its −100 Mbps shift cuts a weak link by at most
/// ~83%; our runtime matrices reach lower absolute values and an absolute
/// floor of ~1 Mbps would make the perturbation categorically harsher than
/// the paper's.
pub fn inject_error(bw: &BwMatrix, delta: f64, seed: u64) -> BwMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = bw.len();
    BwMatrix::from_fn(n, |i, j| {
        if i == j {
            bw.get(i, j)
        } else {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let v = bw.get(i, j);
            (v + sign * delta).max(0.15 * v).max(1.0)
        }
    })
}

/// Runs the ablation and error-injection studies.
pub fn run(effort: Effort, seed: u64) -> Fig8 {
    let env = ExpEnv::new(8, effort, seed);
    let job = TpcDsQuery::Q78.job(env.n, 100.0 * effort.input_scale());
    let mut ablation = Vec::new();

    let schedulers: Vec<Box<dyn Scheduler>> =
        vec![Box::new(Tetrium::new()), Box::new(Kimchi::new())];
    for (si, scheduler) in schedulers.iter().enumerate() {
        let run_id = si as u64;
        // Vanilla: static-independent beliefs, single connections.
        let mut sim = env.sim(run_id);
        let vanilla =
            env.run_baseline(&mut sim, &job, scheduler.as_ref(), Belief::StaticIndependent);
        ablation.push(AblationRow {
            scheduler: scheduler.name().to_string(),
            arm: "vanilla".to_string(),
            latency_s: vanilla.latency_s,
            latency_pct: 0.0,
            min_bw_mbps: vanilla.min_bw_mbps,
        });
        for (arm, mode) in [
            ("global-only", WanifyMode::global_only()),
            ("local-only", WanifyMode::local_only()),
            ("wanify", WanifyMode::full()),
        ] {
            let mut sim = env.sim(run_id);
            let r = run_wanified(
                &mut sim,
                &job,
                scheduler.as_ref(),
                env.source(Belief::Predicted).as_mut(),
                mode,
                None,
            );
            ablation.push(AblationRow {
                scheduler: scheduler.name().to_string(),
                arm: arm.to_string(),
                latency_s: r.latency_s,
                latency_pct: improvement_pct(vanilla.latency_s, r.latency_s),
                min_bw_mbps: r.min_bw_mbps,
            });
        }
    }

    // Error injection on Tetrium.
    let mut sim = env.sim(77);
    let clean = run_wanified(
        &mut sim,
        &job,
        &Tetrium::new(),
        env.source(Belief::Predicted).as_mut(),
        WanifyMode::full(),
        None,
    );
    let mut sim = env.sim(77);
    let predicted = env.gauge(Belief::Predicted, &mut sim);
    let erred = inject_error(&predicted, 100.0, seed ^ 0xE44);
    let noisy = run_wanified(
        &mut sim,
        &job,
        &Tetrium::new(),
        &mut Pregauged::named(erred, "predicted+err"),
        WanifyMode::full(),
        None,
    );
    let error_injection = ErrorInjection {
        latency_increase_pct: -improvement_pct(clean.latency_s, noisy.latency_s),
        cost_increase_pct: -improvement_pct(clean.cost.total_usd(), noisy.cost.total_usd()),
        min_bw_decrease_pct: improvement_pct(clean.min_bw_mbps, noisy.min_bw_mbps),
    };

    Fig8 { ablation, error_injection }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_wanify_beats_partial_arms() {
        let f = run(Effort::Quick, 61);
        for sched in ["tetrium", "kimchi"] {
            let full = f.ablation_row(sched, "wanify").latency_pct;
            let global = f.ablation_row(sched, "global-only").latency_pct;
            assert!(
                full >= global - 3.0,
                "{sched}: full ({full:.1}%) should be at least global-only ({global:.1}%)"
            );
            assert!(full > 0.0, "{sched}: full WANify must beat vanilla");
        }
    }

    #[test]
    fn error_injection_hurts() {
        let f = run(Effort::Quick, 62);
        assert!(
            f.error_injection.latency_increase_pct > -3.0,
            "±100 Mbps errors should not help latency: {:+.1}%",
            f.error_injection.latency_increase_pct
        );
    }

    #[test]
    fn inject_error_shifts_every_cell_by_delta() {
        let bw = BwMatrix::from_fn(3, |i, j| if i == j { 0.0 } else { 500.0 });
        let e = inject_error(&bw, 100.0, 9);
        for (_, _, v) in e.iter_pairs() {
            assert!((v - 400.0).abs() < 1e-9 || (v - 600.0).abs() < 1e-9);
        }
    }

    #[test]
    fn inject_error_floors_at_one() {
        let bw = BwMatrix::from_fn(2, |i, j| if i == j { 0.0 } else { 50.0 });
        let e = inject_error(&bw, 100.0, 1);
        for (_, _, v) in e.iter_pairs() {
            assert!(v >= 1.0);
        }
    }
}
