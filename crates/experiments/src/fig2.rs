//! Fig. 2: bandwidths and network latency for different connection
//! strategies on the 3-DC probe cluster.
//!
//! Three t3.nano DCs (two nearby, one distant) measure all six directed
//! links simultaneously under (a) single connections, (b) uniform 8
//! parallel connections and (c) WANify's heterogeneous connections; (d)
//! compares the slowest network time of a skewed reduce-stage exchange
//! under each approach. The paper's headline: heterogeneous connections
//! raise the minimum bandwidth ~2.1× over uniform parallelism.

use crate::common::render_table;
use wanify::{MeasuredRuntime, Wanify, WanifyConfig};
use wanify_netsim::{
    BwMatrix, ConnMatrix, DcId, LinkModelParams, NetSim, Region, Topology, Transfer, VmType,
};

/// One measured strategy.
#[derive(Debug, Clone)]
pub struct Strategy {
    /// Label, e.g. `"uniform-8"`.
    pub name: String,
    /// Connection matrix used.
    pub conns: ConnMatrix,
    /// Measured runtime bandwidth matrix, Mbps.
    pub bw: BwMatrix,
    /// Slowest network time of the Fig. 2(d) exchange, seconds.
    pub exchange_slowest_s: f64,
}

/// Result of the Fig. 2 reproduction.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Single / uniform-8 / heterogeneous, in paper order.
    pub strategies: Vec<Strategy>,
    /// DC labels.
    pub labels: Vec<String>,
}

impl Fig2 {
    /// Minimum-bandwidth improvement of heterogeneous over uniform
    /// (paper: ~2.1×).
    pub fn hetero_over_uniform_min_bw(&self) -> f64 {
        let uniform = self.strategies[1].bw.min_off_diag();
        let hetero = self.strategies[2].bw.min_off_diag();
        if uniform > 0.0 {
            hetero / uniform
        } else {
            f64::INFINITY
        }
    }

    /// Rendered summary.
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for s in &self.strategies {
            rows.push(vec![
                s.name.clone(),
                format!("{:.0}", s.bw.min_off_diag()),
                format!("{:.0}", s.bw.max_off_diag()),
                s.conns.total_off_diag().to_string(),
                format!("{:.1}", s.exchange_slowest_s),
            ]);
        }
        let mut out = String::from("Fig. 2: connection strategies on 3 DCs\n");
        out.push_str(&render_table(
            &["strategy", "min BW (Mbps)", "max BW (Mbps)", "total conns", "fig2d slowest (s)"],
            &rows,
        ));
        out.push_str(&format!(
            "heterogeneous/uniform min-BW ratio: {:.2}x (paper: ~2.1x)\n",
            self.hetero_over_uniform_min_bw()
        ));
        out
    }
}

/// The 3-DC probe topology: two nearby DCs and one distant (US East,
/// US West, AP SE).
pub fn probe_topology() -> Topology {
    Topology::builder()
        .dc(Region::UsEast, VmType::t3_nano(), 1)
        .dc(Region::UsWest, VmType::t3_nano(), 1)
        .dc(Region::ApSoutheast1, VmType::t3_nano(), 1)
        .build()
        .expect("3-DC probe cluster")
}

/// The Fig. 2(d) exchange: a WAN-aware system scheduled less data for the
/// weakly connected DC3, in gigabits.
fn exchange_transfers() -> Vec<Transfer> {
    vec![
        Transfer::new(DcId(0), DcId(1), 4.0),
        Transfer::new(DcId(1), DcId(0), 4.0),
        Transfer::new(DcId(0), DcId(2), 1.0),
        Transfer::new(DcId(1), DcId(2), 1.0),
        Transfer::new(DcId(2), DcId(0), 0.5),
        Transfer::new(DcId(2), DcId(1), 0.5),
    ]
}

fn measure_strategy(
    name: &str,
    conns: &ConnMatrix,
    seed: u64,
    caps: Option<&wanify_netsim::Grid<f64>>,
) -> Strategy {
    let mut sim = NetSim::new(probe_topology(), LinkModelParams::default(), seed);
    // WANify's default model measures and transfers with TC caps engaged
    // (§3.2.2); the baselines run uncapped.
    if let Some(caps) = caps {
        for (i, j, cap) in caps.iter_pairs() {
            if cap.is_finite() {
                sim.set_throttle(DcId(i), DcId(j), cap);
            }
        }
    }
    let bw = sim.measure_runtime(conns, 20).bw;
    let report = sim.run_transfers(&exchange_transfers(), conns, None);
    // (The per-strategy matrix keeps its custom connection pattern, so it
    // is measured directly rather than through a single-connection
    // `MeasuredRuntime` source.)
    Strategy {
        name: name.to_string(),
        conns: conns.clone(),
        bw,
        exchange_slowest_s: report.makespan_s,
    }
}

/// Runs the three strategies with the same seed.
pub fn run(seed: u64) -> Fig2 {
    let single = ConnMatrix::filled(3, 1);
    let uniform = ConnMatrix::from_fn(3, |i, j| if i == j { 1 } else { 8 });

    // Heterogeneous: WANify's plan from the single-connection runtime
    // view, gauged through the provenance-agnostic source API.
    let mut probe_sim = NetSim::new(probe_topology(), LinkModelParams::default(), seed);
    let wanify = Wanify::new(WanifyConfig::default());
    let plan = wanify
        .plan(&mut MeasuredRuntime::default(), &mut probe_sim)
        .expect("probe cluster plans cleanly");
    let hetero = plan.initial_conns().clone();

    let labels = probe_sim.topology().labels();
    Fig2 {
        strategies: vec![
            measure_strategy("single", &single, seed, None),
            measure_strategy("uniform-8", &uniform, seed, None),
            measure_strategy("heterogeneous", &hetero, seed, Some(&plan.initial_throttles)),
        ],
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_raises_minimum_bandwidth() {
        let f = run(3);
        let ratio = f.hetero_over_uniform_min_bw();
        assert!(ratio > 1.4, "paper: ~2.1x, got {ratio:.2}x");
    }

    #[test]
    fn uniform_parallelism_barely_helps_the_weak_link() {
        let f = run(4);
        let single_min = f.strategies[0].bw.min_off_diag();
        let uniform_min = f.strategies[1].bw.min_off_diag();
        assert!(
            uniform_min < single_min * 1.6,
            "uniform-8 min {uniform_min} should not be far above single {single_min}"
        );
    }

    #[test]
    fn heterogeneous_gives_fastest_exchange() {
        let f = run(5);
        let hetero = f.strategies[2].exchange_slowest_s;
        let single = f.strategies[0].exchange_slowest_s;
        assert!(hetero < single, "heterogeneous exchange {hetero}s should beat single {single}s");
    }

    #[test]
    fn hetero_assigns_more_connections_to_distant_pairs() {
        let f = run(6);
        let c = &f.strategies[2].conns;
        assert!(
            c.get(0, 2) > c.get(0, 1),
            "distant pair gets more connections: {:?} vs {:?}",
            c.get(0, 2),
            c.get(0, 1)
        );
    }
}
