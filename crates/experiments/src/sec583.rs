//! §5.8.3 "Benefits in GDA": heterogeneous compute capacities.
//!
//! TPC-DS query 78 on the 8-DC testbed with one extra t2.medium VM in
//! US East. Three arms: vanilla Tetrium (static-independent beliefs),
//! Tetrium-r (predicted beliefs, single connection) and full
//! WANify-enabled Tetrium. The paper reports 5%/1%/1.2× for Tetrium-r and
//! 15%/7.4%/2× for the full stack.

use crate::common::{improvement_pct, run_wanified, Effort, WanifyMode};
use wanify::{BandwidthAnalyzer, PredictedRuntime, StaticIndependent, WanPredictionModel};
use wanify_gda::{run_job, Tetrium, TransferOptions};
use wanify_netsim::{paper_testbed, DcId, LinkModelParams, NetSim, VmType};
use wanify_workloads::TpcDsQuery;

/// One arm's outcome.
#[derive(Debug, Clone)]
pub struct Sec583Row {
    /// Arm label.
    pub name: String,
    /// Latency improvement vs vanilla, percent.
    pub latency_pct: f64,
    /// Cost improvement vs vanilla, percent.
    pub cost_pct: f64,
    /// Minimum-bandwidth ratio vs vanilla.
    pub min_bw_ratio: f64,
}

/// Result of the §5.8.3 reproduction.
#[derive(Debug, Clone)]
pub struct Sec583 {
    /// Tetrium-r and WANify rows.
    pub rows: Vec<Sec583Row>,
}

impl Sec583 {
    /// Rendered summary.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Sec 5.8.3: q78 with an extra t2.medium VM in US East (vs vanilla Tetrium)\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:<12} latency {:+.1}%  cost {:+.1}%  minBW {:.2}x\n",
                r.name, r.latency_pct, r.cost_pct, r.min_bw_ratio
            ));
        }
        s.push_str("paper: Tetrium-r 5%/1%/1.2x; WANify 15%/7.4%/2x\n");
        s
    }
}

fn hetero_sim(seed: u64) -> NetSim {
    let topo = paper_testbed(VmType::t2_medium()).with_extra_vms(DcId(0), 1);
    NetSim::new(topo, LinkModelParams::default(), seed)
}

/// Runs the three arms.
pub fn run(effort: Effort, seed: u64) -> Sec583 {
    // Train the model on the homogeneous sizes; heterogeneous fleets are
    // covered by the host-metric features (§3.3.3).
    let analyzer = BandwidthAnalyzer {
        vm: VmType::t2_medium(),
        params: LinkModelParams::default(),
        samples_per_size: effort.samples_per_size(),
    };
    let data = analyzer.collect(&[6, 7, 8], seed ^ 0x583);
    let model = std::sync::Arc::new(WanPredictionModel::train(&data, effort.n_estimators(), seed));
    let job = TpcDsQuery::Q78.job(8, 100.0 * effort.input_scale());
    let sched = Tetrium::new();

    // Vanilla baseline.
    let mut sim = hetero_sim(seed);
    let vanilla =
        run_job(&mut sim, &job, &sched, &mut StaticIndependent::new(), TransferOptions::default())
            .expect("sec583 jobs match their topology");

    // Tetrium-r: predicted beliefs, still single connection.
    let mut sim = hetero_sim(seed);
    let tetrium_r = run_job(
        &mut sim,
        &job,
        &sched,
        &mut PredictedRuntime::new(model.clone()),
        TransferOptions::default(),
    )
    .expect("sec583 jobs match their topology");

    // Full WANify.
    let mut sim = hetero_sim(seed);
    let full = run_wanified(
        &mut sim,
        &job,
        &sched,
        &mut PredictedRuntime::new(model.clone()),
        WanifyMode::full(),
        None,
    );

    let mk = |name: &str, r: &wanify_gda::QueryReport| Sec583Row {
        name: name.to_string(),
        latency_pct: improvement_pct(vanilla.latency_s, r.latency_s),
        cost_pct: improvement_pct(vanilla.cost.total_usd(), r.cost.total_usd()),
        min_bw_ratio: if vanilla.min_bw_mbps > 0.0 {
            r.min_bw_mbps / vanilla.min_bw_mbps
        } else {
            1.0
        },
    };
    Sec583 { rows: vec![mk("Tetrium-r", &tetrium_r), mk("WANify", &full)] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_wanify_beats_prediction_only() {
        let s = run(Effort::Quick, 583);
        let r = &s.rows[0];
        let w = &s.rows[1];
        assert!(
            w.latency_pct >= r.latency_pct - 2.0,
            "full WANify ({:+.1}%) should be at least Tetrium-r ({:+.1}%)",
            w.latency_pct,
            r.latency_pct
        );
        assert!(w.min_bw_ratio > 1.0, "min BW must rise with parallel connections");
    }

    #[test]
    fn two_rows_rendered() {
        let s = run(Effort::Quick, 584);
        assert_eq!(s.rows.len(), 2);
        assert!(s.render().contains("Tetrium-r"));
    }
}
