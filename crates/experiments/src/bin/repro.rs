//! Regenerates the WANify paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--seed N] <id>|all
//! ```
//!
//! Ids: table1, table2, fig2, table4, fig4, fig5, fig6, fig7, fig8, fig9,
//! fig10, fig11, sec583, model, fleet, sharded.

use wanify_experiments as exp;
use wanify_experiments::Effort;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::Full;
    let mut seed = 42u64;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => effort = Effort::Quick,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage("no experiment id given");
    }
    let all = [
        "table1", "table2", "fig2", "table4", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "fig11", "sec583", "model", "fleet", "sharded",
    ];
    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        all.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    for id in selected {
        let start = std::time::Instant::now();
        let output = match id {
            "table1" => exp::table1::run(seed).render(),
            "table2" => exp::table2::run().render(),
            "fig2" => exp::fig2::run(seed).render(),
            "table4" => exp::table4::run(effort, seed).render(),
            "fig4" => exp::fig4::run(effort, seed).render(),
            "fig5" => exp::fig5::run(effort, seed).render(),
            "fig6" => exp::fig6::run(effort, seed).render(),
            "fig7" => exp::fig7::run(effort, seed).render(),
            "fig8" => exp::fig8::run(effort, seed).render(),
            "fig9" => exp::fig9::run(effort, seed).render(),
            "fig10" => exp::fig10::run(effort, seed).render(),
            "fig11" => exp::fig11::run(effort, seed).render(),
            "sec583" => exp::sec583::run(effort, seed).render(),
            "model" => exp::model::run(effort, seed).render(),
            "fleet" => exp::fleet::run(effort, seed).render(),
            "sharded" => exp::sharded::run(effort, seed).render(),
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        };
        println!("=== {id} ({:.1}s) ===", start.elapsed().as_secs_f64());
        println!("{output}");
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: repro [--quick] [--seed N] <id>|all\n\
         ids: table1 table2 fig2 table4 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 sec583 model \
         fleet sharded"
    );
    std::process::exit(2);
}
