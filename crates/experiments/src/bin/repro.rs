//! Regenerates the WANify paper's tables and figures (plus the
//! beyond-the-paper fleet and fault-injection studies).
//!
//! ```text
//! repro [--quick] [--seed N] <id>|all
//! ```
//!
//! Valid ids come from `wanify_experiments::registry` — the paper
//! artifacts (`table1` … `sec583`), the fleet studies (`fleet`,
//! `sharded`, `model`), the whole scenario suite (`scenarios`) and
//! individual `scenario:<name>` entries. An unknown id exits nonzero and
//! prints the full list.

use wanify_experiments::{registry, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::Full;
    let mut seed = 42u64;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => effort = Effort::Quick,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage("no experiment id given");
    }
    // `all` runs the base ids; the `scenarios` entry already covers every
    // individual `scenario:<name>`, so those aren't repeated.
    let selected: Vec<String> = if ids.iter().any(|i| i == "all") {
        registry::BASE_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };
    for id in selected {
        let start = std::time::Instant::now();
        let output = registry::run(&id, effort, seed).unwrap_or_else(|| {
            eprintln!("unknown experiment id: {id}");
            eprintln!("valid ids: {}", registry::experiment_ids().join(" "));
            std::process::exit(2);
        });
        println!("=== {id} ({:.1}s) ===", start.elapsed().as_secs_f64());
        println!("{output}");
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: repro [--quick] [--seed N] <id>|all\nids: {}",
        registry::experiment_ids().join(" ")
    );
    std::process::exit(2);
}
