//! Gateway overload study: goodput across an offered-load sweep.
//!
//! Beyond the paper: WANify measures how fast one analytics job runs;
//! this driver asks what happens when jobs keep *arriving*. An
//! admission-controlled serving gateway ([`wanify_gateway::Gateway`])
//! fronts the fleet engine while an open-loop Poisson source offers the
//! same deterministic job mix at multiples of the fleet's calibrated
//! saturation rate. A well-behaved gateway degrades by shedding and
//! rejecting — goodput (deadline-met completions per simulated second)
//! holds near capacity instead of collapsing as offered load passes
//! saturation.
//!
//! Simulated results are bit-identical across repeated runs and rayon
//! thread counts, like everything else in this workspace.

use crate::common::{render_table, Effort};
use wanify::Pregauged;
use wanify_gateway::{Gateway, GatewayConfig, GatewayReport, GatewayRequest};
use wanify_gda::{FleetConfig, FleetEngine, Tetrium};
use wanify_netsim::{paper_testbed_n, BwMatrix, LinkModelParams, NetSim, VmType};
use wanify_workloads::{offered_load, LoadSpec};

const N_DCS: usize = 3;
const MAX_CONCURRENT: usize = 2;
/// Deadline slack granted to every request, in unloaded mean makespans.
const SLACK_MAKESPANS: f64 = 4.0;

/// One offered-load point of the sweep.
#[derive(Debug, Clone)]
pub struct GatewayRow {
    /// Offered load as a multiple of the calibrated saturation rate.
    pub load_multiple: f64,
    /// Offered arrival rate, jobs per simulated second.
    pub rate_per_s: f64,
    /// Jobs offered to the gateway.
    pub offered: u64,
    /// Jobs served to completion.
    pub served: u64,
    /// Served jobs that met their deadline without faulting.
    pub good: u64,
    /// Jobs shed at admission (predicted to miss their deadline).
    pub shed: u64,
    /// Jobs rejected on queue overflow.
    pub rejected: u64,
    /// Served jobs that missed their deadline anyway.
    pub deadline_misses: u64,
    /// Good completions per simulated second.
    pub goodput_per_s: f64,
    /// 99th-percentile arrival-to-completion latency, seconds.
    pub latency_p99_s: f64,
}

/// Outcome of [`run`].
#[derive(Debug, Clone)]
pub struct GatewayResult {
    /// One row per offered-load multiple, in sweep order.
    pub rows: Vec<GatewayRow>,
    /// Calibrated saturation rate, jobs per simulated second.
    pub saturation_rate_per_s: f64,
    /// Jobs offered at every sweep point.
    pub jobs: usize,
}

impl GatewayResult {
    /// The row closest to `multiple` times saturation.
    pub fn at(&self, multiple: f64) -> Option<&GatewayRow> {
        self.rows.iter().min_by(|a, b| {
            (a.load_multiple - multiple).abs().total_cmp(&(b.load_multiple - multiple).abs())
        })
    }

    /// Renders the sweep as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Serving gateway under overload: {} jobs per point on {} DCs, \
             saturation {:.4} jobs/s, deadlines at {:.0}x unloaded makespan\n\n",
            self.jobs, N_DCS, self.saturation_rate_per_s, SLACK_MAKESPANS
        );
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}x", r.load_multiple),
                    format!("{}", r.offered),
                    format!("{}", r.served),
                    format!("{}", r.good),
                    format!("{}", r.shed),
                    format!("{}", r.rejected),
                    format!("{}", r.deadline_misses),
                    format!("{:.4}", r.goodput_per_s),
                    format!("{:.1}", r.latency_p99_s),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "load",
                "offered",
                "served",
                "good",
                "shed",
                "rejected",
                "misses",
                "goodput/s",
                "p99 s",
            ],
            &rows,
        ));
        out
    }
}

fn engine(seed: u64) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), N_DCS), LinkModelParams::frozen(), seed),
        Box::new(Tetrium::new()),
        Box::new(Pregauged::new(BwMatrix::filled(N_DCS, 300.0))),
        FleetConfig { max_concurrent: MAX_CONCURRENT, ..FleetConfig::default() },
    )
}

fn serve(seed: u64, requests: Vec<GatewayRequest>) -> GatewayReport {
    Gateway::new(engine(seed), GatewayConfig { queue_depth: 8, ..GatewayConfig::default() })
        .serve(requests)
        .expect("gateway sweep point failed to run")
}

fn to_requests(spec: &LoadSpec) -> Vec<GatewayRequest> {
    offered_load(spec)
        .into_iter()
        .map(|o| GatewayRequest { job: o.job, arrival_s: o.arrival_s, deadline_s: o.deadline_s })
        .collect()
}

/// Runs the offered-load sweep.
///
/// `Quick` effort offers 10 jobs per point at 0.5/1/2x saturation;
/// `Full` offers 40 at 0.5/1/1.5/2/3x.
pub fn run(effort: Effort, seed: u64) -> GatewayResult {
    let (jobs, multiples): (usize, &[f64]) = match effort {
        Effort::Quick => (10, &[0.5, 1.0, 2.0]),
        Effort::Full => (40, &[0.5, 1.0, 1.5, 2.0, 3.0]),
    };
    // Calibration: the same mix, trickled far below saturation with no
    // deadlines, gives the unloaded mean makespan.
    let base = LoadSpec::new(N_DCS, jobs, seed, 1e-3).scaled(0.8);
    let unloaded = serve(seed, to_requests(&base));
    let mean_makespan_s = unloaded.fleet.makespan().mean;
    let saturation_rate_per_s = MAX_CONCURRENT as f64 / mean_makespan_s.max(1e-9);
    let slack_s = SLACK_MAKESPANS * mean_makespan_s;

    let rows = multiples
        .iter()
        .map(|&m| {
            let rate = m * saturation_rate_per_s;
            let r =
                serve(seed, to_requests(&base.clone().at_rate(rate).with_deadline_slack(slack_s)));
            let s = &r.fleet.serving;
            GatewayRow {
                load_multiple: m,
                rate_per_s: rate,
                offered: s.offered,
                served: r.served() as u64,
                good: r.good() as u64,
                shed: s.shed_jobs,
                rejected: s.rejected,
                deadline_misses: s.deadline_misses,
                goodput_per_s: r.good() as f64 / r.fleet.duration_s.max(1e-9),
                latency_p99_s: r.latency.p99,
            }
        })
        .collect();
    GatewayResult { rows, saturation_rate_per_s, jobs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_holds_past_saturation() {
        let result = run(Effort::Quick, 77);
        assert_eq!(result.rows.len(), 3);
        let at_sat = result.at(1.0).expect("saturation point").goodput_per_s;
        let at_2x = result.at(2.0).expect("2x point").goodput_per_s;
        assert!(at_sat > 0.0, "saturation point served nothing");
        assert!(
            at_2x >= 0.8 * at_sat,
            "goodput collapsed past saturation: {at_2x:.4} vs {at_sat:.4}"
        );
        assert!(result.render().contains("goodput/s"));
    }

    #[test]
    fn simulated_results_are_reproducible() {
        let a = run(Effort::Quick, 5);
        let b = run(Effort::Quick, 5);
        assert_eq!(a.saturation_rate_per_s.to_bits(), b.saturation_rate_per_s.to_bits());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.goodput_per_s.to_bits(), y.goodput_per_s.to_bits());
            assert_eq!(x.latency_p99_s.to_bits(), y.latency_p99_s.to_bits());
            assert_eq!(
                (x.served, x.good, x.shed, x.rejected),
                (y.served, y.good, y.shed, y.rejected)
            );
        }
    }
}
