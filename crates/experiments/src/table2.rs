//! Table 2: accurate prediction saves ~96% in monitoring costs.

use crate::common::render_table;
use wanify::costs::{table2, table2_savings_pct, MonitoringCostParams, Table2Row};

/// Result of the Table 2 reproduction.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// One row per cluster size {4, 6, 8}.
    pub rows: Vec<Table2Row>,
    /// Overall savings of the prediction pipeline, percent.
    pub savings_pct: f64,
}

impl Table2 {
    /// Rendered table next to the paper's values.
    pub fn render(&self) -> String {
        let paper = [(703.0, 35.0, 29.0), (1055.0, 20.0, 16.0), (1406.0, 14.0, 11.0)];
        let mut rows = Vec::new();
        for (row, p) in self.rows.iter().zip(paper) {
            rows.push(vec![
                row.n_dcs.to_string(),
                format!("${:.0}", row.runtime_monitoring_usd),
                format!("${:.0}", row.training_usd),
                format!("${:.0}", row.predictions_usd),
                format!("${:.0} / ${:.0} / ${:.0}", p.0, p.1, p.2),
            ]);
        }
        let mut s = String::from("Table 2: annual BW monitoring costs\n");
        s.push_str(&render_table(
            &[
                "DCs",
                "runtime monitoring",
                "model training",
                "predictions",
                "paper (mon/train/pred)",
            ],
            &rows,
        ));
        s.push_str(&format!("overall savings: {:.1}% (paper: ~96%)\n", self.savings_pct));
        s
    }
}

/// Runs the cost model with the paper's parameters.
pub fn run() -> Table2 {
    let params = MonitoringCostParams::default();
    Table2 { rows: table2(&params), savings_pct: table2_savings_pct(&params) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitoring_dwarfs_prediction() {
        let t = run();
        assert_eq!(t.rows.len(), 3);
        assert!(t.savings_pct > 85.0, "got {:.1}%", t.savings_pct);
        for row in &t.rows {
            assert!(row.runtime_monitoring_usd > 5.0 * row.predictions_usd);
        }
    }

    #[test]
    fn n4_matches_paper_magnitude() {
        let t = run();
        let r = &t.rows[0];
        assert!((600.0..850.0).contains(&r.runtime_monitoring_usd), "paper: $703");
    }

    #[test]
    fn render_mentions_savings() {
        assert!(run().render().contains("savings"));
    }
}
