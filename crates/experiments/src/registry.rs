//! The experiment-id registry behind the `repro` binary.
//!
//! One place lists every runnable id — the paper's tables and figures,
//! the beyond-the-paper fleet studies, and one `scenario:<name>` id per
//! committed fault-injection scenario — so the binary's dispatch, its
//! usage text and its unknown-id diagnostics can never drift apart.

use crate::Effort;

/// The paper-artifact and fleet-study ids, in report order.
pub const BASE_IDS: [&str; 18] = [
    "table1",
    "table2",
    "fig2",
    "table4",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "sec583",
    "model",
    "fleet",
    "sharded",
    "gateway",
    "scenarios",
];

/// Every valid experiment id: [`BASE_IDS`] plus one `scenario:<name>`
/// per entry of the committed scenario catalog.
pub fn experiment_ids() -> Vec<String> {
    let mut ids: Vec<String> = BASE_IDS.iter().map(|s| s.to_string()).collect();
    ids.extend(wanify_scenarios::all().iter().map(|s| format!("scenario:{}", s.name)));
    ids
}

/// Whether `id` is runnable.
pub fn is_known(id: &str) -> bool {
    if BASE_IDS.contains(&id) {
        return true;
    }
    id.strip_prefix("scenario:").is_some_and(|name| wanify_scenarios::by_name(name).is_some())
}

/// Runs one experiment and returns its rendered output, or `None` for an
/// unknown id.
///
/// Scenario ids ignore `effort` and `seed`: committed scenario reports
/// pin their own seeds so the artifacts stay byte-reproducible.
pub fn run(id: &str, effort: Effort, seed: u64) -> Option<String> {
    if let Some(name) = id.strip_prefix("scenario:") {
        let spec = wanify_scenarios::by_name(name)?;
        return Some(wanify_scenarios::render_markdown(&[wanify_scenarios::run_scenario(&spec)]));
    }
    let out = match id {
        "table1" => crate::table1::run(seed).render(),
        "table2" => crate::table2::run().render(),
        "fig2" => crate::fig2::run(seed).render(),
        "table4" => crate::table4::run(effort, seed).render(),
        "fig4" => crate::fig4::run(effort, seed).render(),
        "fig5" => crate::fig5::run(effort, seed).render(),
        "fig6" => crate::fig6::run(effort, seed).render(),
        "fig7" => crate::fig7::run(effort, seed).render(),
        "fig8" => crate::fig8::run(effort, seed).render(),
        "fig9" => crate::fig9::run(effort, seed).render(),
        "fig10" => crate::fig10::run(effort, seed).render(),
        "fig11" => crate::fig11::run(effort, seed).render(),
        "sec583" => crate::sec583::run(effort, seed).render(),
        "model" => crate::model::run(effort, seed).render(),
        "fleet" => crate::fleet::run(effort, seed).render(),
        "sharded" => crate::sharded::run(effort, seed).render(),
        "gateway" => crate::gateway::run(effort, seed).render(),
        "scenarios" => {
            wanify_scenarios::render_markdown(&wanify_scenarios::run_all(&wanify_scenarios::all()))
        }
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_paper_and_scenario_ids() {
        let ids = experiment_ids();
        assert!(ids.iter().any(|i| i == "fig5"));
        assert!(ids.iter().any(|i| i == "sharded"));
        assert!(ids.iter().any(|i| i == "gateway"));
        assert!(ids.iter().any(|i| i == "scenario:outage-recovery"));
        assert!(ids.iter().any(|i| i == "scenario:sustained-overload-shedding"));
        assert!(ids.iter().any(|i| i == "scenario:belief-breaker-trip"));
        assert!(ids.len() >= BASE_IDS.len() + 8, "the scenario catalog rides along");
    }

    #[test]
    fn every_listed_id_is_known() {
        for id in experiment_ids() {
            assert!(is_known(&id), "{id} listed but not runnable");
        }
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(!is_known("fig99"));
        assert!(!is_known("scenario:no-such-scenario"));
        assert!(!is_known(""));
        assert!(run("fig99", Effort::Quick, 1).is_none());
        assert!(run("scenario:no-such-scenario", Effort::Quick, 1).is_none());
    }
}
