//! # wanify-experiments
//!
//! One runner per table and figure of the WANify paper. Every module
//! regenerates the corresponding artifact — same rows, same series — on
//! the simulated substrate, and returns a typed result plus a rendered
//! text table. The `repro` binary dispatches them by id:
//!
//! ```text
//! cargo run --release -p wanify-experiments --bin repro -- all
//! cargo run --release -p wanify-experiments --bin repro -- fig5
//! ```
//!
//! | id | paper artifact |
//! |----|----------------|
//! | `table1` | static vs runtime bandwidth gaps |
//! | `table2` | monitoring-cost savings |
//! | `fig2`   | single/uniform/heterogeneous connection bandwidths |
//! | `table4` | Tetrium/Kimchi gains from runtime bandwidth |
//! | `fig4`   | ML quantization variants |
//! | `fig5`   | parallel-transfer approaches on TeraSort |
//! | `fig6`   | WordCount intermediate-size sweep |
//! | `fig7`   | end-to-end TPC-DS with/without WANify |
//! | `fig8`   | ablation + prediction-error injection |
//! | `fig9`   | AIMD tracking of dynamics |
//! | `fig10`  | skewed-input handling |
//! | `fig11`  | prediction accuracy across cluster shapes |
//! | `sec583` | heterogeneous-VM benefits |
//! | `fleet`  | beyond the paper: belief provenances under multi-tenant contention |
//! | `sharded` | beyond the paper: shard-count sweep of the sharded multi-sim fleet |
//! | `gateway` | beyond the paper: serving-gateway goodput across an offered-load sweep |
//! | `model`  | prediction-model training quality |
//! | `scenarios` | beyond the paper: the fault-injection scenario suite |
//! | `scenario:<name>` | one committed fault-injection scenario |
//!
//! The [`registry`] module is the single source of truth for valid ids.

pub mod common;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod gateway;
pub mod model;
pub mod registry;
pub mod sec583;
pub mod sharded;
pub mod table1;
pub mod table2;
pub mod table4;

pub use common::Effort;
