//! Table 1: gaps between statically measured and runtime bandwidth.
//!
//! The paper measures every DC pair independently (the existing-systems
//! approach), then all pairs simultaneously during execution, and buckets
//! the significant differences (>100 Mbps): 7 in (100, 200], 8 in
//! (200, 250] and 3 above 250 Mbps — 18 significant gaps in total.

use crate::common::render_table;
use wanify::{BandwidthSource, MeasuredRuntime, StaticIndependent};
use wanify_netsim::{paper_testbed, LinkModelParams, NetSim, VmType};

/// Result of the Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Gaps in (100, 200] Mbps.
    pub bucket_100_200: usize,
    /// Gaps in (200, 250] Mbps.
    pub bucket_200_250: usize,
    /// Gaps above 250 Mbps.
    pub bucket_over_250: usize,
    /// Directed pairs measured (8 DCs ⇒ 56).
    pub n_pairs: usize,
    /// Example of a flipped "slowest DC" decision, if observed: DC labels
    /// `(from, static_slowest, runtime_slowest)` (the paper's SA East
    /// example, §2.2).
    pub flipped_slowest: Option<(String, String, String)>,
}

impl Table1 {
    /// Total significant gaps (paper: 18).
    pub fn total_significant(&self) -> usize {
        self.bucket_100_200 + self.bucket_200_250 + self.bucket_over_250
    }

    /// Rendered table next to the paper's values.
    pub fn render(&self) -> String {
        let mut s = String::from("Table 1: static vs runtime BW gap histogram\n");
        s.push_str(&render_table(
            &["difference interval (Mbps)", "measured count", "paper count"],
            &[
                vec!["(100, 200]".into(), self.bucket_100_200.to_string(), "7".into()],
                vec!["(200, 250]".into(), self.bucket_200_250.to_string(), "8".into()],
                vec!["> 250".into(), self.bucket_over_250.to_string(), "3".into()],
                vec!["total significant".into(), self.total_significant().to_string(), "18".into()],
            ],
        ));
        if let Some((from, st, rt)) = &self.flipped_slowest {
            s.push_str(&format!("slowest DC from {from}: static says {st}, runtime says {rt}\n"));
        }
        s
    }
}

/// Runs the experiment on the 8-DC testbed: the same network gauged
/// through the static and the runtime [`BandwidthSource`], then bucketed.
pub fn run(seed: u64) -> Table1 {
    let topo = paper_testbed(VmType::t2_medium());
    let mut sim = NetSim::new(topo, LinkModelParams::default(), seed);
    let static_bw =
        StaticIndependent::new().gauge(&mut sim).expect("static probe matches topology");
    sim.shuffle_time();
    let runtime =
        MeasuredRuntime::default().gauge(&mut sim).expect("runtime probe matches topology");

    let mut b1 = 0;
    let mut b2 = 0;
    let mut b3 = 0;
    for (i, j, s) in static_bw.iter_pairs() {
        let d = (s - runtime.get(i, j)).abs();
        if d > 250.0 {
            b3 += 1;
        } else if d > 200.0 {
            b2 += 1;
        } else if d > 100.0 {
            b1 += 1;
        }
    }

    // The paper's flipped-decision example: the slowest destination from a
    // source differs between static and runtime views.
    let labels = sim.topology().labels();
    let n = static_bw.len();
    let mut flipped = None;
    for i in 0..n {
        let slowest = |m: &wanify_netsim::BwMatrix| -> usize {
            (0..n)
                .filter(|&j| j != i)
                .min_by(|&a, &b| m.get(i, a).partial_cmp(&m.get(i, b)).expect("finite"))
                .expect("n >= 2")
        };
        let s = slowest(&static_bw);
        let r = slowest(&runtime);
        if s != r {
            flipped = Some((labels[i].clone(), labels[s].clone(), labels[r].clone()));
            break;
        }
    }

    Table1 {
        bucket_100_200: b1,
        bucket_200_250: b2,
        bucket_over_250: b3,
        n_pairs: n * (n - 1),
        flipped_slowest: flipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substantial_fraction_of_pairs_gap_significantly() {
        let t = run(11);
        assert_eq!(t.n_pairs, 56);
        assert!(
            t.total_significant() >= 10,
            "paper found 18/56 significant gaps, got {}",
            t.total_significant()
        );
        assert!(
            t.total_significant() <= 45,
            "gaps should not cover nearly all pairs, got {}",
            t.total_significant()
        );
    }

    #[test]
    fn render_includes_paper_reference() {
        let t = run(12);
        let s = t.render();
        assert!(s.contains("(100, 200]") && s.contains("18"));
    }
}
