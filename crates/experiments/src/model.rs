//! Prediction-model quality (§5.1): training accuracy and baselines.
//!
//! The paper trains a 100-estimator Random Forest on 600 datasets and
//! reports 98.51% training accuracy; CNN attempts plateaued near 85% and
//! classical regressors suffered from outliers. This experiment trains
//! the forest alongside OLS and kNN baselines and reports the accuracy of
//! each, plus the forest's out-of-bag error.

use crate::common::{render_table, Effort};
use wanify::BandwidthAnalyzer;
use wanify_forest::{metrics, Dataset, ForestParams, KnnRegressor, LinearRegressor, RandomForest};
use wanify_netsim::{LinkModelParams, VmType};

/// One model's accuracy numbers.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Model label.
    pub name: String,
    /// Training accuracy (100 − MAPE), percent.
    pub train_accuracy_pct: f64,
    /// Held-out accuracy, percent.
    pub test_accuracy_pct: f64,
}

/// Result of the model-quality experiment.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Random Forest, linear and kNN rows.
    pub rows: Vec<ModelRow>,
    /// Forest out-of-bag MAE in Mbps.
    pub oob_mae_mbps: Option<f64>,
    /// Training samples (datasets) collected.
    pub n_samples: usize,
    /// Feature rows derived from the samples.
    pub n_rows: usize,
}

impl ModelReport {
    /// The Random Forest row.
    ///
    /// # Panics
    ///
    /// Panics if absent (never, by construction).
    pub fn forest(&self) -> &ModelRow {
        self.rows.iter().find(|r| r.name == "random-forest").expect("forest row")
    }

    /// Rendered summary.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.2}%", r.train_accuracy_pct),
                    format!("{:.2}%", r.test_accuracy_pct),
                ]
            })
            .collect();
        let mut s = String::from("Model quality (paper: RF 98.51% training accuracy)\n");
        s.push_str(&render_table(&["model", "train acc", "test acc"], &rows));
        if let Some(oob) = self.oob_mae_mbps {
            s.push_str(&format!("forest OOB MAE: {oob:.1} Mbps\n"));
        }
        s.push_str(&format!(
            "{} samples ⇒ {} feature rows across cluster sizes\n",
            self.n_samples, self.n_rows
        ));
        s
    }
}

fn accuracy(preds: &[f64], targets: &[f64]) -> f64 {
    metrics::accuracy_pct(preds, targets)
}

/// Trains the forest and baselines.
pub fn run(effort: Effort, seed: u64) -> ModelReport {
    let sizes: Vec<usize> = vec![3, 4, 5, 6, 7, 8];
    let analyzer = BandwidthAnalyzer {
        vm: VmType::t2_medium(),
        params: LinkModelParams::default(),
        samples_per_size: effort.samples_per_size(),
    };
    let data = analyzer.collect(&sizes, seed);
    let n_samples = sizes.len() * effort.samples_per_size();
    let mut rng = rand::SeedableRng::seed_from_u64(seed ^ 0x71);
    let (train, test) = data.train_test_split(0.2, &mut rng);

    let forest = RandomForest::fit(
        &train,
        &ForestParams {
            n_estimators: effort.n_estimators(),
            features_per_split: Some(4),
            ..ForestParams::default()
        },
        seed,
    );
    let linear = LinearRegressor::fit(&train);
    let knn = KnnRegressor::fit(&train, 5);

    let eval = |f: &dyn Fn(&[f64]) -> f64, d: &Dataset| -> f64 {
        let preds: Vec<f64> = d.iter().map(|(x, _)| f(x)).collect();
        accuracy(&preds, d.targets())
    };

    let rows = vec![
        ModelRow {
            name: "random-forest".to_string(),
            train_accuracy_pct: eval(&|x| forest.predict(x), &train),
            test_accuracy_pct: eval(&|x| forest.predict(x), &test),
        },
        ModelRow {
            name: "linear-ols".to_string(),
            train_accuracy_pct: eval(&|x| linear.predict(x), &train),
            test_accuracy_pct: eval(&|x| linear.predict(x), &test),
        },
        ModelRow {
            name: "knn-5".to_string(),
            train_accuracy_pct: eval(&|x| knn.predict(x), &train),
            test_accuracy_pct: eval(&|x| knn.predict(x), &test),
        },
    ];
    ModelReport { oob_mae_mbps: forest.oob_mae(&train), rows, n_samples, n_rows: data.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_dominates_baselines_on_training_accuracy() {
        let m = run(Effort::Quick, 777);
        let rf = m.forest().train_accuracy_pct;
        for row in &m.rows {
            if row.name != "random-forest" {
                assert!(
                    rf >= row.train_accuracy_pct - 1.0,
                    "forest {rf:.1}% should not lose to {} {:.1}%",
                    row.name,
                    row.train_accuracy_pct
                );
            }
        }
        assert!(rf > 90.0, "paper: 98.51%, got {rf:.2}%");
    }

    #[test]
    fn generalization_is_reasonable() {
        let m = run(Effort::Quick, 778);
        let rf = m.forest();
        assert!(rf.test_accuracy_pct > 80.0, "held-out accuracy {:.1}%", rf.test_accuracy_pct);
    }

    #[test]
    fn oob_available() {
        let m = run(Effort::Quick, 779);
        assert!(m.oob_mae_mbps.is_some());
    }
}
