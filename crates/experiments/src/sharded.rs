//! Sharded-fleet scenario: shard-count sweep under one identical trace.
//!
//! The fleet experiment showed belief provenance matters under
//! contention; this driver asks the scale-out question the ROADMAP's
//! "sharded multi-sim fleets" item poses: serve the *same* region-tagged
//! mixed trace with 1, 2, 4 and 8 shards — tenants partitioned across
//! shard-local engines, coupled by a continental backbone — and measure
//! what sharding buys (wall-clock speedup from smaller per-shard event
//! loops running in parallel on rayon) and what it costs (the coarse
//! backbone reservation vs one engine's exact global fairness). A
//! single-engine [`FleetEngine`] arm anchors the comparison.
//!
//! Simulated results are bit-identical across repeated runs and thread
//! counts; only the wall-clock column is machine-dependent.

use crate::common::{render_table, Effort};
use std::time::Instant;
use wanify_gda::{
    Arrivals, FleetConfig, FleetEngine, JobProfile, RoundRobinShards, ShardedFleetEngine, Tetrium,
};
use wanify_netsim::{paper_testbed_n, Backbone, LinkModelParams, NetSim, VmType};
use wanify_workloads::{regional_mixed_trace, TraceConfig};

/// One arm of the shard sweep.
#[derive(Debug, Clone)]
pub struct ShardedRow {
    /// Number of shards (0 = the single-engine `FleetEngine` baseline).
    pub shards: usize,
    /// Wall-clock seconds for the arm.
    pub wall_s: f64,
    /// Wall-clock speedup vs the single-engine baseline.
    pub speedup: f64,
    /// Completed queries per simulated second.
    pub throughput_jobs_per_s: f64,
    /// Median admission-to-completion makespan, seconds.
    pub p50_makespan_s: f64,
    /// 95th-percentile makespan, seconds.
    pub p95_makespan_s: f64,
    /// Backbone epoch exchanges performed.
    pub backbone_syncs: u64,
}

/// Outcome of [`run`].
#[derive(Debug, Clone)]
pub struct ShardedResult {
    /// Baseline + one row per shard count.
    pub rows: Vec<ShardedRow>,
    /// Queries in the trace.
    pub jobs: usize,
    /// Data centers in the testbed.
    pub n_dcs: usize,
}

impl ShardedResult {
    /// The row for `shards` shards (0 = single-engine baseline).
    pub fn row(&self, shards: usize) -> Option<&ShardedRow> {
        self.rows.iter().find(|r| r.shards == shards)
    }

    /// Renders the sweep as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Sharded fleet scale-out: {} region-tagged queries on {} DCs, \
             round-robin shards, continental backbone\n\n",
            self.jobs, self.n_dcs
        );
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    if r.shards == 0 { "single".into() } else { format!("{}", r.shards) },
                    format!("{:.3}", r.wall_s),
                    format!("{:.2}x", r.speedup),
                    format!("{:.4}", r.throughput_jobs_per_s),
                    format!("{:.0}", r.p50_makespan_s),
                    format!("{:.0}", r.p95_makespan_s),
                    format!("{}", r.backbone_syncs),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["shards", "wall s", "speedup", "jobs/s", "p50 mkspan", "p95", "syncs"],
            &rows,
        ));
        out
    }
}

fn shard_engine(n: usize, seed: u64, max_concurrent: usize) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), seed),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent,
            regauge_every_s: 300.0,
            conns: None,
            faults: None,
            ..FleetConfig::default()
        },
    )
}

fn sharded_arm(
    trace: &[JobProfile],
    n: usize,
    shards: usize,
    seed: u64,
    max_concurrent: usize,
) -> (f64, wanify_gda::ShardedFleetReport) {
    let topo = paper_testbed_n(VmType::t2_medium(), n);
    let backbone = Backbone::continental(&topo, 4000.0, 30.0);
    // Round-robin placement: the continental backbone only has 2-3
    // region groups, so region-group placement would leave every shard
    // beyond the group count empty and the high-shard arms would
    // silently re-measure the low ones. Round-robin keeps all N shards
    // populated at every sweep point.
    let engine = ShardedFleetEngine::new(
        (0..shards).map(|_| shard_engine(n, seed, max_concurrent)).collect(),
        Box::new(RoundRobinShards::new()),
        Some(backbone),
    );
    let arrivals = Arrivals::Closed { clients: max_concurrent, think_s: 0.0 };
    let start = Instant::now();
    let report = engine.run(trace, &arrivals).expect("sharded trace matches its topology");
    (start.elapsed().as_secs_f64(), report)
}

/// Runs the shard sweep: a single-engine baseline, then 1/2/4/8 shards
/// over the identical trace.
///
/// `Quick` effort serves 16 queries on 4 DCs (shard counts 1/2/4);
/// `Full` serves 60 on the 8-DC paper testbed (1/2/4/8).
pub fn run(effort: Effort, seed: u64) -> ShardedResult {
    let (n, jobs, shard_counts): (usize, usize, &[usize]) = match effort {
        Effort::Quick => (4, 16, &[1, 2, 4]),
        Effort::Full => (8, 60, &[1, 2, 4, 8]),
    };
    let topo = paper_testbed_n(VmType::t2_medium(), n);
    let backbone = Backbone::continental(&topo, 4000.0, 30.0);
    let trace = regional_mixed_trace(
        &TraceConfig::new(n, jobs, seed ^ 0x5AD).scaled(0.5),
        backbone.groups(),
    );
    let max_concurrent = jobs; // everything admitted: maximal contention

    // Single-engine baseline.
    let start = Instant::now();
    let single = shard_engine(n, seed, max_concurrent)
        .run(&trace, &Arrivals::Closed { clients: max_concurrent, think_s: 0.0 })
        .expect("trace matches its topology");
    let single_wall = start.elapsed().as_secs_f64();
    let mut rows = vec![ShardedRow {
        shards: 0,
        wall_s: single_wall,
        speedup: 1.0,
        throughput_jobs_per_s: single.throughput_jobs_per_s(),
        p50_makespan_s: single.makespan().p50,
        p95_makespan_s: single.makespan().p95,
        backbone_syncs: 0,
    }];

    for &shards in shard_counts {
        let (wall, report) = sharded_arm(&trace, n, shards, seed, max_concurrent);
        rows.push(ShardedRow {
            shards,
            wall_s: wall,
            speedup: single_wall / wall.max(1e-9),
            throughput_jobs_per_s: report.fleet.throughput_jobs_per_s(),
            p50_makespan_s: report.fleet.makespan().p50,
            p95_makespan_s: report.fleet.makespan().p95,
            backbone_syncs: report.backbone_syncs,
        });
    }
    ShardedResult { rows, jobs, n_dcs: n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_serves_every_arm() {
        let result = run(Effort::Quick, 9);
        assert_eq!(result.rows.len(), 4, "baseline + three shard counts");
        for row in &result.rows {
            assert!(row.throughput_jobs_per_s > 0.0, "{} shards served nothing", row.shards);
            assert!(row.p95_makespan_s >= row.p50_makespan_s);
        }
        assert!(result.render().contains("speedup"));
    }

    #[test]
    fn simulated_results_are_reproducible() {
        let a = run(Effort::Quick, 4);
        let b = run(Effort::Quick, 4);
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.shards, y.shards);
            assert_eq!(x.throughput_jobs_per_s.to_bits(), y.throughput_jobs_per_s.to_bits());
            assert_eq!(x.p50_makespan_s.to_bits(), y.p50_makespan_s.to_bits());
            assert_eq!(x.backbone_syncs, y.backbone_syncs);
        }
    }
}
