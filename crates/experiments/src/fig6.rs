//! Fig. 6: efficacy against various shuffle sizes (§5.3.2).
//!
//! WordCount over all-distinct-word inputs whose intermediate data is
//! controlled directly. The paper's shape: at tiny shuffle sizes (≈2-4 MB)
//! WANify and vanilla tie; from ~7.4 MB upward WANify's heterogeneous
//! connections cut latency and cost and lift the minimum bandwidth.

use crate::common::{render_table, run_wanified, Belief, Effort, ExpEnv, WanifyMode};
use wanify_gda::VanillaSpark;
use wanify_workloads::wordcount;

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Intermediate (shuffle) data size in MB.
    pub intermediate_mb: f64,
    /// Vanilla single-connection latency, seconds.
    pub vanilla_latency_s: f64,
    /// WANify-TC latency, seconds.
    pub wanify_latency_s: f64,
    /// Vanilla cost, USD.
    pub vanilla_cost_usd: f64,
    /// WANify cost, USD.
    pub wanify_cost_usd: f64,
    /// Vanilla minimum bandwidth, Mbps.
    pub vanilla_min_bw: f64,
    /// WANify minimum bandwidth, Mbps.
    pub wanify_min_bw: f64,
}

/// Result of the Fig. 6 reproduction.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Sweep points in ascending shuffle size.
    pub points: Vec<Fig6Point>,
}

impl Fig6 {
    /// Rendered table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.intermediate_mb),
                    format!("{:.1}", p.vanilla_latency_s),
                    format!("{:.1}", p.wanify_latency_s),
                    format!("${:.3}", p.vanilla_cost_usd),
                    format!("${:.3}", p.wanify_cost_usd),
                    format!("{:.0}", p.vanilla_min_bw),
                    format!("{:.0}", p.wanify_min_bw),
                ]
            })
            .collect();
        let mut s = String::from("Fig. 6: WordCount shuffle-size sweep\n");
        s.push_str(&render_table(
            &[
                "intermediate (MB)",
                "vanilla lat (s)",
                "WANify lat (s)",
                "vanilla cost",
                "WANify cost",
                "vanilla minBW",
                "WANify minBW",
            ],
            &rows,
        ));
        s.push_str("paper: ties below ~4 MB; WANify wins from ~7.4 MB up\n");
        s
    }
}

/// The paper's sweep sizes in MB (x-axis of Fig. 6 plus larger tails).
pub const SWEEP_MB: [f64; 6] = [2.06, 3.63, 7.4, 40.0, 200.0, 600.0];

/// Runs the sweep.
pub fn run(effort: Effort, seed: u64) -> Fig6 {
    let env = ExpEnv::new(8, effort, seed);
    let sched = VanillaSpark::new();
    let mut points = Vec::new();
    for (k, &mb) in SWEEP_MB.iter().enumerate() {
        // Input in [100, 600] MB as §5.1; intermediate controlled directly.
        let input_mb = (mb * 20.0).clamp(100.0, 600.0);
        let job = wordcount::sweep_job(8, input_mb, mb);
        let mut sim_v = env.sim(100 + k as u64);
        let vanilla = env.run_baseline(&mut sim_v, &job, &sched, Belief::StaticIndependent);
        let mut sim_w = env.sim(100 + k as u64);
        let wanified = run_wanified(
            &mut sim_w,
            &job,
            &sched,
            env.source(Belief::Predicted).as_mut(),
            WanifyMode::full(),
            None,
        );
        points.push(Fig6Point {
            intermediate_mb: mb,
            vanilla_latency_s: vanilla.latency_s,
            wanify_latency_s: wanified.latency_s,
            vanilla_cost_usd: vanilla.cost.total_usd(),
            wanify_cost_usd: wanified.cost.total_usd(),
            vanilla_min_bw: vanilla.min_bw_mbps,
            wanify_min_bw: wanified.min_bw_mbps,
        });
    }
    Fig6 { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_shuffles_tie() {
        let f = run(Effort::Quick, 31);
        let p = &f.points[0]; // 2.06 MB
        let gap = (p.vanilla_latency_s - p.wanify_latency_s).abs();
        assert!(
            gap <= p.vanilla_latency_s * 0.35 + 3.0,
            "tiny shuffles should be close: vanilla {} vs wanify {}",
            p.vanilla_latency_s,
            p.wanify_latency_s
        );
    }

    #[test]
    fn large_shuffles_favor_wanify() {
        let f = run(Effort::Quick, 32);
        let p = f.points.last().unwrap(); // 600 MB
        assert!(
            p.wanify_latency_s < p.vanilla_latency_s,
            "600 MB shuffle: wanify {} should beat vanilla {}",
            p.wanify_latency_s,
            p.vanilla_latency_s
        );
        assert!(p.wanify_min_bw > p.vanilla_min_bw);
    }

    #[test]
    fn sweep_covers_paper_sizes() {
        let f = run(Effort::Quick, 33);
        assert_eq!(f.points.len(), SWEEP_MB.len());
        assert!((f.points[2].intermediate_mb - 7.4).abs() < 1e-9);
    }
}
