//! Fig. 9: handling dynamics — AIMD tracking accuracy (§5.7).
//!
//! A WANify-enabled Tetrium run traces the local optimizer of US East:
//! per 5-second epoch, the standard deviation of its target bandwidths to
//! every other region is compared with the standard deviation of the
//! actual monitored bandwidths (the simulator's ifTop). With 20% random
//! error injected into targets, the paper counts 6 epochs whose deltas
//! are significant (>100 Mbps) and observes more epochs overall.

use crate::common::{Belief, Effort, ExpEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wanify::{Wanify, WanifyConfig};
use wanify_gda::{run_job, Tetrium, TransferOptions};
use wanify_netsim::stats::std_dev;
use wanify_netsim::DcId;
use wanify_workloads::TpcDsQuery;

/// Per-epoch standard deviations of the traced source's bandwidths.
#[derive(Debug, Clone)]
pub struct EpochSd {
    /// Epoch time, seconds.
    pub time_s: f64,
    /// SD of local-optimizer target bandwidths (Mbps).
    pub target_sd: f64,
    /// SD of monitored runtime bandwidths (Mbps).
    pub observed_sd: f64,
}

/// Result of the Fig. 9 reproduction.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Clean-run SD trace.
    pub clean: Vec<EpochSd>,
    /// Error-injected SD trace (20% target noise).
    pub with_error: Vec<EpochSd>,
    /// Significant (>100 Mbps) SD deltas in the clean trace.
    pub clean_significant: usize,
    /// Significant deltas in the error-injected trace (paper: 6).
    pub error_significant: usize,
}

impl Fig9 {
    /// Rendered summary.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 9: AIMD tracking of runtime dynamics (US East)\n");
        s.push_str(&format!(
            "clean run: {} epochs, {} significant SD deltas (>100 Mbps)\n",
            self.clean.len(),
            self.clean_significant
        ));
        s.push_str(&format!(
            "20% error:  {} epochs, {} significant SD deltas (paper: 6 verticals)\n",
            self.with_error.len(),
            self.error_significant
        ));
        let preview: Vec<String> = self
            .clean
            .iter()
            .take(8)
            .map(|e| {
                format!(
                    "t={:>5.0}s target_sd={:>6.0} observed_sd={:>6.0}",
                    e.time_s, e.target_sd, e.observed_sd
                )
            })
            .collect();
        s.push_str(&preview.join("\n"));
        s.push('\n');
        s
    }
}

fn trace_run(env: &ExpEnv, perturb_pct: f64, seed: u64) -> Vec<EpochSd> {
    // Double the q78 input so shuffles span enough 5-second AIMD epochs to
    // populate the SD trace (the paper's runs last tens of minutes).
    let job = TpcDsQuery::Q78.job(env.n, 200.0 * env.effort.input_scale());
    let mut sim = env.sim(seed);
    let wanify = Wanify::new(WanifyConfig::default());
    let plan = wanify
        .plan(env.source(Belief::Predicted).as_mut(), &mut sim)
        .expect("predicted source matches the environment topology");
    for (i, j, cap) in plan.initial_throttles.iter_pairs() {
        if cap.is_finite() {
            sim.set_throttle(DcId(i), DcId(j), cap);
        }
    }
    let mut belief = wanify::Pregauged::named(plan.achievable_bw().clone(), "wanify(predicted)");
    let conns = plan.initial_conns().clone();
    let mut agent = wanify.agent(&plan).traced(0);
    let _ = run_job(
        &mut sim,
        &job,
        &Tetrium::new(),
        &mut belief,
        TransferOptions { conns: Some(&conns), hook: Some(&mut agent) },
    )
    .expect("fig9 jobs match their topology");
    sim.clear_throttles();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xF19);
    agent
        .trace()
        .iter()
        .map(|sample| {
            let mut targets: Vec<f64> = sample
                .target_bw
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != 0)
                .map(|(_, &v)| v)
                .collect();
            if perturb_pct > 0.0 {
                for t in &mut targets {
                    let e: f64 = rng.gen_range(-1.0..1.0) * perturb_pct;
                    *t *= 1.0 + e;
                }
            }
            let observed: Vec<f64> = sample
                .observed_bw
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != 0)
                .map(|(_, &v)| v)
                .collect();
            EpochSd {
                time_s: sample.time_s,
                target_sd: std_dev(&targets),
                observed_sd: std_dev(&observed),
            }
        })
        .collect()
}

fn significant(trace: &[EpochSd]) -> usize {
    trace.iter().filter(|e| (e.target_sd - e.observed_sd).abs() > 100.0).count()
}

/// Runs the clean and error-injected traces.
pub fn run(effort: Effort, seed: u64) -> Fig9 {
    let env = ExpEnv::new(8, effort, seed);
    let clean = trace_run(&env, 0.0, 201);
    let with_error = trace_run(&env, 0.20, 202);
    let clean_significant = significant(&clean);
    let error_significant = significant(&with_error);
    Fig9 { clean, with_error, clean_significant, error_significant }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_nonempty() {
        let f = run(Effort::Quick, 71);
        assert!(!f.clean.is_empty(), "agent must record AIMD epochs");
        assert!(!f.with_error.is_empty());
    }

    #[test]
    fn error_injection_increases_significant_deltas() {
        // Significance counts are integer-valued and noisy at quick-effort
        // scale (few AIMD epochs), so allow a ±1 band around the paper's
        // qualitative claim that injected error produces more deltas.
        let f = run(Effort::Quick, 72);
        assert!(
            f.error_significant + 1 >= f.clean_significant,
            "20% error should not reduce significant deltas: {} vs {}",
            f.error_significant,
            f.clean_significant
        );
    }

    #[test]
    fn sds_are_finite_and_nonnegative() {
        let f = run(Effort::Quick, 73);
        for e in f.clean.iter().chain(&f.with_error) {
            assert!(e.target_sd.is_finite() && e.target_sd >= 0.0);
            assert!(e.observed_sd.is_finite() && e.observed_sd >= 0.0);
        }
    }
}
