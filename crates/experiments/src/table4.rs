//! Table 4: performance/cost improvements from runtime bandwidth alone.
//!
//! Tetrium and Kimchi plan TPC-DS queries with three bandwidth beliefs —
//! static-independent (their default), static-simultaneous, and WANify's
//! predicted runtime matrix — all with single-connection transfers
//! (§5.2). The paper reports latency gains up to ~18% and cost gains up
//! to ~5.2%, with predicted ≈ simultaneous.

use crate::common::{improvement_pct, render_table, Belief, Effort, ExpEnv};
use wanify_gda::{Kimchi, QueryReport, Scheduler, Tetrium};
use wanify_workloads::TpcDsQuery;

/// One (query, scheduler, belief) cell.
#[derive(Debug, Clone)]
pub struct Table4Cell {
    /// Query label.
    pub query: String,
    /// Scheduler label.
    pub scheduler: String,
    /// Belief label: `static-simultaneous` or `predicted`.
    pub belief: String,
    /// Latency improvement vs static-independent, percent.
    pub perf_pct: f64,
    /// Cost improvement vs static-independent, percent.
    pub cost_pct: f64,
    /// Minimum-bandwidth ratio vs static-independent.
    pub min_bw_ratio: f64,
}

/// Result of the Table 4 reproduction.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// All cells in query-major order.
    pub cells: Vec<Table4Cell>,
}

impl Table4 {
    /// Best latency improvement across cells (paper: up to ~18%).
    pub fn best_perf_pct(&self) -> f64 {
        self.cells.iter().map(|c| c.perf_pct).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Rendered table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.query.clone(),
                    c.scheduler.clone(),
                    c.belief.clone(),
                    format!("{:+.1}%", c.perf_pct),
                    format!("{:+.1}%", c.cost_pct),
                    format!("{:.2}x", c.min_bw_ratio),
                ]
            })
            .collect();
        let mut s =
            String::from("Table 4: gains over static-independent BWs (single connection)\n");
        s.push_str(&render_table(
            &["query", "scheduler", "belief", "perf", "cost", "minBW"],
            &rows,
        ));
        s.push_str("paper: perf up to ~18%, cost up to ~5.2%, ~1.5x min BW on avg/heavy queries\n");
        s
    }
}

fn run_with_belief(
    env: &ExpEnv,
    query: TpcDsQuery,
    scheduler: &dyn Scheduler,
    belief: Belief,
    run_id: u64,
) -> QueryReport {
    let mut sim = env.sim(run_id);
    let job = query.job(env.n, 100.0 * env.effort.input_scale());
    env.run_baseline(&mut sim, &job, scheduler, belief)
}

/// Runs all queries × schedulers × beliefs.
pub fn run(effort: Effort, seed: u64) -> Table4 {
    let env = ExpEnv::new(8, effort, seed);
    let mut cells = Vec::new();
    for (qi, query) in TpcDsQuery::all().into_iter().enumerate() {
        let schedulers: Vec<Box<dyn Scheduler>> =
            vec![Box::new(Tetrium::new()), Box::new(Kimchi::new())];
        for (si, scheduler) in schedulers.iter().enumerate() {
            let run_id = (qi * 10 + si) as u64;
            let baseline =
                run_with_belief(&env, query, scheduler.as_ref(), Belief::StaticIndependent, run_id);
            for belief in [Belief::StaticSimultaneous, Belief::Predicted] {
                let report = run_with_belief(&env, query, scheduler.as_ref(), belief, run_id);
                cells.push(Table4Cell {
                    query: query.name().to_string(),
                    scheduler: scheduler.name().to_string(),
                    belief: belief.label().to_string(),
                    perf_pct: improvement_pct(baseline.latency_s, report.latency_s),
                    cost_pct: improvement_pct(baseline.cost.total_usd(), report.cost.total_usd()),
                    min_bw_ratio: if baseline.min_bw_mbps > 0.0 {
                        report.min_bw_mbps / baseline.min_bw_mbps
                    } else {
                        1.0
                    },
                });
            }
        }
    }
    Table4 { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_beliefs_help_nontrivial_queries() {
        let t = run(Effort::Quick, 42);
        assert_eq!(t.cells.len(), 16);
        assert!(
            t.best_perf_pct() > 2.0,
            "some query should gain from runtime BW, best {:.1}%",
            t.best_perf_pct()
        );
    }

    #[test]
    fn light_query_gains_little() {
        let t = run(Effort::Quick, 43);
        let q82_best = t
            .cells
            .iter()
            .filter(|c| c.query == "q82")
            .map(|c| c.perf_pct.abs())
            .fold(0.0, f64::max);
        let q78_best = t
            .cells
            .iter()
            .filter(|c| c.query == "q78")
            .map(|c| c.perf_pct)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            q82_best < q78_best.max(5.0) + 10.0,
            "q82 (tiny shuffle) should not dominate: q82 {q82_best:.1}% vs q78 {q78_best:.1}%"
        );
    }

    #[test]
    fn predicted_tracks_simultaneous() {
        let t = run(Effort::Quick, 44);
        // Across all cells, the mean gap between the two beliefs is small.
        let mut gaps = Vec::new();
        for pair in t.cells.chunks(2) {
            gaps.push((pair[0].perf_pct - pair[1].perf_pct).abs());
        }
        let mean_gap: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(mean_gap < 15.0, "predicted should track simultaneous, gap {mean_gap:.1}%");
    }
}
