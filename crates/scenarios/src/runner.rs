//! Executes scenario specs and renders the committed report.
//!
//! [`run_scenario`] drives one [`ScenarioSpec`] through every arm the
//! suite guarantees:
//!
//! * **solo, faulted, twice** — the two runs must produce bit-identical
//!   digests (simulated values compared via `f64::to_bits`);
//! * **sharded, faulted, twice** — same determinism bar, plus every job
//!   of the trace must be accounted for (completed or reported failed);
//! * **counterfactual arms on demand** — a no-fault rerun for
//!   [`Invariant::SlowdownAtLeast`], a static-belief rerun for
//!   [`Invariant::RuntimeBeliefNoWorse`];
//! * **invariant evaluation** — every declared [`Invariant`] against the
//!   solo faulted report.
//!
//! [`render_markdown`] emits the deterministic `SCENARIOS.md` (simulated
//! metrics only — no wall-clock — so CI can regenerate and
//! `git diff --exit-code` it), and [`render_digests`] the bit-exact
//! `SCENARIOS.digest` the thread-count determinism matrix compares.

use std::fmt::Write as _;

use crate::spec::{BeliefKind, CheckCtx, CheckResult, Invariant, ScenarioSpec};
use wanify_gda::{FleetReport, RoundRobinShards, ShardedFleetEngine, ShardedFleetReport};

/// One executed scenario: the reports of every arm plus the verdicts.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The spec that was run.
    pub spec: ScenarioSpec,
    /// The solo faulted run (the arm invariants are evaluated on). For a
    /// gateway scenario this is the gateway's fleet report, serving
    /// counters populated.
    pub solo: FleetReport,
    /// The sharded faulted run; `None` for gateway scenarios, whose
    /// serving front-end is solo-only.
    pub sharded: Option<ShardedFleetReport>,
    /// Duration of the no-fault counterfactual, when one was needed.
    pub nofault_duration_s: Option<f64>,
    /// Mean makespan of the static-belief counterfactual, when needed.
    pub static_mean_makespan_s: Option<f64>,
    /// One verdict per declared invariant, in declaration order.
    pub checks: Vec<CheckResult>,
}

impl ScenarioOutcome {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// Bit-exact digest of a fleet report's simulated outcomes — everything
/// the run produced except wall-clock time. Two runs are "identical"
/// iff their digests match.
pub fn digest(report: &FleetReport) -> String {
    let mut out = String::new();
    for o in &report.outcomes {
        writeln!(
            out,
            "{} latency={:016x} arrived={:016x} completed={:016x} failed={}",
            o.report.job,
            o.report.latency_s.to_bits(),
            o.arrived_s.to_bits(),
            o.completed_s.to_bits(),
            o.failed,
        )
        .expect("write to String");
    }
    let f = &report.faults;
    writeln!(
        out,
        "duration={:016x} gauges={} retries={} replacements={} stalled={} failed={} \
         degraded={:016x}",
        report.duration_s.to_bits(),
        report.gauges,
        f.retries,
        f.replacements,
        f.stalled_flows,
        f.failed_jobs,
        f.degraded_s.to_bits(),
    )
    .expect("write to String");
    let s = &report.serving;
    writeln!(
        out,
        "serving offered={} rejected={} quota_rejected={} shed={} misses={} trips={} \
         fallbacks={} recoveries={}",
        s.offered,
        s.rejected,
        s.quota_rejected,
        s.shed_jobs,
        s.deadline_misses,
        s.breaker_trips,
        s.breaker_fallbacks,
        s.breaker_recoveries,
    )
    .expect("write to String");
    out
}

fn run_solo(spec: &ScenarioSpec, faulted: bool, belief: BeliefKind) -> FleetReport {
    spec.engine_with(faulted, belief)
        .run(&spec.trace(), &spec.arrivals)
        .unwrap_or_else(|e| panic!("scenario {}: solo arm failed to run: {e:?}", spec.name))
}

fn run_gateway(spec: &ScenarioSpec) -> FleetReport {
    let (engine, handle) = spec.gateway_engine();
    let mut gateway = wanify_gateway::Gateway::new(engine, spec.gateway_config());
    if let Some(handle) = handle {
        gateway = gateway.with_breaker(handle);
    }
    gateway
        .serve(spec.gateway_requests())
        .unwrap_or_else(|e| panic!("scenario {}: gateway arm failed to run: {e:?}", spec.name))
        .fleet
}

fn run_sharded(spec: &ScenarioSpec) -> ShardedFleetReport {
    ShardedFleetEngine::new(
        (0..spec.shards).map(|_| spec.engine(true)).collect(),
        Box::new(RoundRobinShards::new()),
        Some(spec.backbone()),
    )
    .run(&spec.trace(), &spec.arrivals)
    .unwrap_or_else(|e| panic!("scenario {}: sharded arm failed to run: {e:?}", spec.name))
}

/// Runs one spec through every arm (see the module docs) and evaluates
/// its invariants.
///
/// # Panics
///
/// Panics if an arm fails to run, if repeated runs are not
/// bit-identical, or if the sharded arm loses track of a job — those are
/// harness guarantees, not scenario-dependent outcomes.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioOutcome {
    let gated = spec.gateway.is_some();
    let run_once = || if gated { run_gateway(spec) } else { run_solo(spec, true, spec.belief) };
    let solo = run_once();
    let solo_again = run_once();
    assert_eq!(
        digest(&solo),
        digest(&solo_again),
        "scenario {}: solo runs must be bit-identical",
        spec.name
    );

    let sharded = (!gated).then(|| {
        let sharded = run_sharded(spec);
        let sharded_again = run_sharded(spec);
        assert_eq!(
            digest(&sharded.fleet),
            digest(&sharded_again.fleet),
            "scenario {}: sharded runs must be bit-identical",
            spec.name
        );
        assert_eq!(
            sharded.fleet.outcomes.len(),
            spec.jobs,
            "scenario {}: the sharded arm must account for every job",
            spec.name
        );
        sharded
    });

    let nofault_duration_s = spec
        .invariants
        .iter()
        .any(Invariant::needs_nofault_arm)
        .then(|| run_solo(spec, false, spec.belief).duration_s);
    let static_mean_makespan_s = spec
        .invariants
        .iter()
        .any(Invariant::needs_static_arm)
        .then(|| run_solo(spec, true, BeliefKind::StaticIndependent).makespan().mean);

    let ctx = CheckCtx { jobs: spec.jobs, solo: &solo, nofault_duration_s, static_mean_makespan_s };
    let checks = spec.invariants.iter().map(|i| i.check(&ctx)).collect();
    ScenarioOutcome {
        spec: spec.clone(),
        solo,
        sharded,
        nofault_duration_s,
        static_mean_makespan_s,
        checks,
    }
}

/// Runs every spec in order.
pub fn run_all(specs: &[ScenarioSpec]) -> Vec<ScenarioOutcome> {
    specs.iter().map(run_scenario).collect()
}

/// Renders the committed markdown report: deterministic, simulated
/// metrics only.
pub fn render_markdown(outcomes: &[ScenarioOutcome]) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# Fault-injection scenario suite\n");
    let _ = writeln!(
        md,
        "Deterministic WAN-misbehaviour studies over the fleet engine: every \
         scenario composes a topology, a mixed trace, a `FaultSchedule` and a \
         recovery `FaultPolicy`, runs solo **and** sharded (each twice, \
         bit-identity asserted), and checks directional invariants. All numbers \
         are simulated — regenerating this file on any machine must produce the \
         identical bytes, which CI enforces.\n"
    );
    let _ = writeln!(
        md,
        "Regenerate: `cargo run --release -p wanify-scenarios --bin scenario_runner -- \
         --out SCENARIOS.md --digest SCENARIOS.digest`\n"
    );
    let passed = outcomes.iter().filter(|o| o.passed()).count();
    let _ = writeln!(md, "**{passed}/{} scenarios pass all invariants.**\n", outcomes.len());

    for o in outcomes {
        let spec = &o.spec;
        let _ = writeln!(md, "## {} — {}\n", spec.name, if o.passed() { "PASS" } else { "FAIL" });
        let _ = writeln!(md, "{}\n", spec.summary);
        let policy = match &spec.policy {
            Some(p) => format!(
                "timeout {:.0}s, {} retries, backoff {:.0}s",
                p.stall_timeout_s, p.max_retries, p.backoff_base_s
            ),
            None => "none (stall = error)".to_string(),
        };
        let _ = writeln!(md, "| knob | value |");
        let _ = writeln!(md, "|------|-------|");
        let _ = writeln!(md, "| topology | {}-DC paper-testbed prefix |", spec.n_dcs);
        let _ = writeln!(
            md,
            "| trace | {} jobs{}, seed {}, scale {:.2}, arrivals {} |",
            spec.jobs,
            if spec.regional { " (region-homed)" } else { "" },
            spec.seed,
            spec.scale,
            spec.arrivals_label(),
        );
        let _ = writeln!(
            md,
            "| scheduler / belief | {} / {} |",
            spec.sched.label(),
            spec.belief.label()
        );
        let _ = writeln!(md, "| faults / policy | {} events / {policy} |", spec.faults.len());
        if let Some(d) = &spec.dynamics {
            let _ = writeln!(md, "| dynamics | {} |", d.label());
        }
        if let Some(a) = &spec.agent {
            let _ = writeln!(
                md,
                "| agents | AIMD fleet, {:.0} s wake interval (faulted arms only) |",
                a.interval_s
            );
        }
        if let Some(g) = &spec.gateway {
            let deadline = match g.deadline_slack_s {
                Some(s) => format!("deadline +{s:.0}s (headroom {:.1})", g.shed_headroom),
                None => "no deadlines".to_string(),
            };
            let quota = match g.quota {
                Some(q) => format!(", quota {}/s burst {}", q.rate_per_s, q.burst),
                None => String::new(),
            };
            let breaker = match g.breaker {
                Some(b) => format!(
                    ", breaker(fail<{:.0}s, trip {}, cooldown {:.0}s)",
                    b.fail_until_s, b.failure_threshold, b.cooldown_s
                ),
                None => String::new(),
            };
            let _ = writeln!(
                md,
                "| gateway | queue {} ({:?}), {deadline}{quota}{breaker} |",
                g.queue_depth, g.overload
            );
        }
        let _ = writeln!(md);

        let row = |r: &FleetReport| {
            let m = r.makespan();
            format!(
                "{:.2} | {:.2} / {:.2} | {} / {} | {} | {} | {:.2}",
                r.duration_s,
                m.p50,
                m.p99,
                r.faults.retries,
                r.faults.replacements,
                r.faults.stalled_flows,
                r.failed_jobs(),
                r.faults.degraded_s,
            )
        };
        let _ = writeln!(
            md,
            "| arm | duration (s) | makespan p50 / p99 (s) | retries / re-placed | stalled \
             flows | failed jobs | degraded (s) |"
        );
        let _ = writeln!(md, "|-----|--------------|------------------------|---------------------|---------------|-------------|--------------|");
        let _ = writeln!(md, "| solo | {} |", row(&o.solo));
        if let Some(sharded) = &o.sharded {
            let _ = writeln!(md, "| sharded({}) | {} |", spec.shards, row(&sharded.fleet));
        }
        if spec.gateway.is_some() {
            let s = &o.solo.serving;
            let _ = writeln!(
                md,
                "\nServing: offered {} → served {}, shed {}, rejected {} (quota {}), \
                 deadline misses {}, breaker trips/fallbacks/recoveries {}/{}/{}.",
                s.offered,
                o.solo.outcomes.len(),
                s.shed_jobs,
                s.rejected,
                s.quota_rejected,
                s.deadline_misses,
                s.breaker_trips,
                s.breaker_fallbacks,
                s.breaker_recoveries,
            );
        }
        if let Some(base) = o.nofault_duration_s {
            let _ = writeln!(md, "| solo, no faults | {base:.2} | — | — | — | — | — |");
        }
        if let Some(stat) = o.static_mean_makespan_s {
            let _ = writeln!(
                md,
                "\nStatic-belief counterfactual mean makespan: {stat:.2} s \
                 (spec belief: {:.2} s).",
                o.solo.makespan().mean
            );
        }
        let _ = writeln!(md, "\nInvariants:\n");
        for c in &o.checks {
            let _ =
                writeln!(md, "- [{}] {} — {}", if c.pass { "x" } else { " " }, c.label, c.detail);
        }
        let _ = writeln!(md);
    }
    md
}

/// Renders the bit-exact digest file (one block per scenario, solo then
/// sharded) the CI determinism matrix diffs across thread counts.
pub fn render_digests(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        let _ = writeln!(out, "== {} solo ==", o.spec.name);
        out.push_str(&digest(&o.solo));
        if let Some(sharded) = &o.sharded {
            let _ = writeln!(out, "== {} sharded({}) ==", o.spec.name, o.spec.shards);
            out.push_str(&digest(&sharded.fleet));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SchedKind;
    use wanify_gda::FaultPolicy;
    use wanify_netsim::{DcId, FaultSchedule};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("tiny", "smallest runnable scenario")
            .jobs(2)
            .scale(0.3)
            .scheduler(SchedKind::Vanilla)
            .faults(FaultSchedule::new().dc_outage(DcId(1), 2.0, 12.0))
            .policy(Some(FaultPolicy { stall_timeout_s: 3.0, max_retries: 4, backoff_base_s: 3.0 }))
            .expect(Invariant::AllComplete)
            .expect(Invariant::DegradedBetween(0.5, 10.5))
    }

    #[test]
    fn tiny_scenario_runs_and_passes() {
        let outcome = run_scenario(&tiny_spec());
        assert!(outcome.passed(), "checks: {:?}", outcome.checks);
        assert_eq!(outcome.solo.outcomes.len(), 2);
        assert_eq!(
            outcome.sharded.as_ref().expect("batch spec runs sharded").fleet.outcomes.len(),
            2
        );
    }

    #[test]
    fn gateway_scenario_skips_the_sharded_arm_and_counts_serving() {
        use crate::spec::GatewaySpec;
        use wanify_gda::Arrivals;
        let spec = ScenarioSpec::new("tiny-gated", "gateway smoke")
            .jobs(3)
            .scale(0.3)
            .scheduler(SchedKind::Vanilla)
            .arrivals(Arrivals::Poisson { rate_per_s: 0.05, seed: 3 })
            .faults(FaultSchedule::new().straggler(DcId(1), 0.5, 2.0).straggler(DcId(1), 1.0, 30.0))
            .gateway(GatewaySpec::default())
            .expect(Invariant::ServedAtLeast(3));
        let outcome = run_scenario(&spec);
        assert!(outcome.passed(), "checks: {:?}", outcome.checks);
        assert!(outcome.sharded.is_none(), "gateway scenarios are solo-only");
        assert_eq!(outcome.solo.serving.offered, 3);
        let d = digest(&outcome.solo);
        assert!(d.contains("serving offered=3"), "digest records serving counters:\n{d}");
    }

    #[test]
    fn renders_are_deterministic() {
        let a = run_scenario(&tiny_spec());
        let b = run_scenario(&tiny_spec());
        assert_eq!(render_markdown(&[a]), render_markdown(&[b]));
    }

    #[test]
    fn failing_invariant_is_reported_not_panicked() {
        let spec = tiny_spec().expect(Invariant::FailedAtLeast(99));
        let outcome = run_scenario(&spec);
        assert!(!outcome.passed());
        let md = render_markdown(&[outcome]);
        assert!(md.contains("FAIL"));
        assert!(md.contains("- [ ]"), "unmet invariants render unchecked");
    }

    #[test]
    fn digest_captures_fault_counters() {
        let outcome = run_scenario(&tiny_spec());
        let d = digest(&outcome.solo);
        assert!(d.contains("retries="));
        assert!(d.contains("degraded="));
        assert_eq!(d, digest(&outcome.solo));
    }
}
