//! Declarative scenario specs: topology + trace + faults + invariants.
//!
//! A [`ScenarioSpec`] is built fluently and composes everything one
//! fault-injection study needs — the paper-testbed topology prefix, the
//! deterministic mixed trace, the arrival process, the belief provenance
//! and scheduler under test, a [`FaultSchedule`], the fleet's recovery
//! [`FaultPolicy`], and the directional [`Invariant`]s the run must
//! satisfy. Adding a scenario to the suite is ~20 lines of spec in
//! [`crate::catalog`], not a new binary.

use wanify::{
    infer_dc_relations, optimize_global, BandwidthSource, MeasuredRuntime, Pregauged,
    StaticIndependent, WanifyAgent,
};
use wanify_gateway::{
    BreakerConfig, BreakerHandle, CircuitBreakerSource, FlakySource, GatewayConfig, GatewayRequest,
    OverloadPolicy, QuotaConfig,
};
use wanify_gda::{
    poisson_arrival_times, Arrivals, FaultPolicy, FleetAgent, FleetConfig, FleetEngine,
    FleetReport, JobProfile, Kimchi, Scheduler, Tetrium, VanillaSpark,
};
use wanify_netsim::{
    paper_testbed_n, Backbone, BwMatrix, ConnMatrix, FaultSchedule, LinkModelParams, NetSim,
    Topology, VmType,
};
use wanify_workloads::{mixed_trace, regional_mixed_trace, TraceConfig};

/// Which bandwidth-belief provenance the fleet plans with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BeliefKind {
    /// A pre-supplied uniform matrix (Mbps): gauging costs no simulated
    /// time, so arrivals land exactly on schedule.
    Pregauged(f64),
    /// Per-pair independent static probes (the paper's classic baseline).
    StaticIndependent,
    /// Simultaneous runtime measurement over a probe window (seconds).
    MeasuredRuntime(u32),
}

impl BeliefKind {
    /// Builds the source for an `n`-DC fleet.
    pub fn build(&self, n: usize) -> Box<dyn BandwidthSource> {
        match *self {
            BeliefKind::Pregauged(mbps) => Box::new(Pregauged::new(BwMatrix::filled(n, mbps))),
            BeliefKind::StaticIndependent => Box::new(StaticIndependent::new()),
            BeliefKind::MeasuredRuntime(probe_s) => Box::new(MeasuredRuntime::new(probe_s)),
        }
    }

    /// Short human label for reports.
    pub fn label(&self) -> String {
        match *self {
            BeliefKind::Pregauged(mbps) => format!("pregauged({mbps:.0} Mbps)"),
            BeliefKind::StaticIndependent => "static-independent".to_string(),
            BeliefKind::MeasuredRuntime(s) => format!("measured-runtime({s}s)"),
        }
    }
}

/// Live WAN dynamics of a scenario's simulator (`None` on a
/// [`ScenarioSpec`] keeps the legacy frozen network).
///
/// The OU process and the optional diurnal sinusoid are quantized on
/// `tick_s`, so rate changes stay schedulable and the fleet keeps the
/// event-coalescing fast path even with bandwidth moving all run long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsSpec {
    /// Relative amplitude of the OU bandwidth noise.
    pub sigma: f64,
    /// Mean-reversion rate of the OU process (per second).
    pub theta: f64,
    /// Quantization tick in seconds (rate changes fire only here).
    pub tick_s: f64,
    /// Optional diurnal wave: `(relative amplitude, period seconds)`.
    pub diurnal: Option<(f64, f64)>,
}

impl DynamicsSpec {
    /// Short human label for reports.
    pub fn label(&self) -> String {
        match self.diurnal {
            Some((a, p)) => format!(
                "ou(σ={}, θ={}, tick {:.0}s) + diurnal(±{:.0}%, {:.0}s)",
                self.sigma,
                self.theta,
                self.tick_s,
                a * 100.0,
                p
            ),
            None => format!("ou(σ={}, θ={}, tick {:.0}s)", self.sigma, self.theta, self.tick_s),
        }
    }
}

/// An AIMD agent fleet riding the scenario's faulted arms: every shard
/// gets its own [`WanifyAgent`] planned from a runtime probe of the
/// clean network, waking every `interval_s` simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentSpec {
    /// Simulated seconds between agent wakes.
    pub interval_s: f64,
}

/// A deterministic gauge outage driving the belief circuit breaker on a
/// gateway scenario: the spec's primary belief source fails every gauge
/// before `fail_until_s`, answered by a pregauged fallback while the
/// breaker is open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerSpec {
    /// Simulated instant the primary gauge heals.
    pub fail_until_s: f64,
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// Open-state cooldown before a half-open probe.
    pub cooldown_s: f64,
    /// Uniform bandwidth of the pregauged fallback belief, Mbps.
    pub fallback_mbps: f64,
}

/// The serving front-end of a gateway scenario: requests flow through a
/// [`wanify_gateway::Gateway`] instead of being batch-submitted, so the
/// scenario can overload the fleet and assert on shedding, rejection and
/// breaker behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewaySpec {
    /// Bounded submission-queue depth.
    pub queue_depth: usize,
    /// Policy when the queue is full.
    pub overload: OverloadPolicy,
    /// Relative completion deadline granted to every request (`None`
    /// never sheds).
    pub deadline_slack_s: Option<f64>,
    /// Safety factor on predicted makespans for shedding.
    pub shed_headroom: f64,
    /// Per-tenant-class admission quota.
    pub quota: Option<QuotaConfig>,
    /// Gauge-outage + circuit-breaker arm.
    pub breaker: Option<BreakerSpec>,
}

impl Default for GatewaySpec {
    fn default() -> Self {
        Self {
            queue_depth: 32,
            overload: OverloadPolicy::Reject,
            deadline_slack_s: None,
            shed_headroom: 1.0,
            quota: None,
            breaker: None,
        }
    }
}

/// Which scheduler serves the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// Locality-aware maps, uniform reduces.
    Vanilla,
    /// Latency-optimal task + data placement.
    Tetrium,
    /// Network-cost-aware placement.
    Kimchi,
}

impl SchedKind {
    /// Builds the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedKind::Vanilla => Box::new(VanillaSpark::new()),
            SchedKind::Tetrium => Box::new(Tetrium::new()),
            SchedKind::Kimchi => Box::new(Kimchi::new()),
        }
    }

    /// Short human label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedKind::Vanilla => "vanilla-spark",
            SchedKind::Tetrium => "tetrium",
            SchedKind::Kimchi => "kimchi",
        }
    }
}

/// A directional property the scenario's (faulted, solo) run must hold.
///
/// Invariants are evaluated against the solo faulted [`FleetReport`];
/// two of them additionally demand a counterfactual arm the runner
/// executes on demand (a no-fault rerun, a static-belief rerun).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Invariant {
    /// Every job of the trace completes and none is reported failed.
    AllComplete,
    /// At least this many jobs are aborted by the fault policy.
    FailedAtLeast(u64),
    /// At most this many jobs are aborted by the fault policy.
    FailedAtMost(u64),
    /// The fault policy performs at least this many retries.
    RetriesAtLeast(u64),
    /// The fault policy performs at most this many retries (0 = the
    /// watchdog must never fire: the fault rides through on its own).
    RetriesAtMost(u64),
    /// At least this many transfers are re-placed to an alive DC.
    ReplacementsAtLeast(u64),
    /// Simulated seconds with any fault active lies in `[lo, hi]`.
    DegradedBetween(f64, f64),
    /// Faulted duration ≥ `factor` × the no-fault counterfactual's
    /// duration (faults must cost simulated time, never save it).
    SlowdownAtLeast(f64),
    /// Makespan p99 ≤ `factor` × p50: degradation stays graceful, no
    /// pathological tail.
    TailWithin(f64),
    /// Mean makespan under the spec's (runtime) belief ≤
    /// `(1 + tolerance)` × mean makespan of a static-independent-belief
    /// rerun — the paper's runtime-beats-static claim under faults.
    RuntimeBeliefNoWorse(f64),
    /// At least this many requests run to completion (gateway arm).
    ServedAtLeast(u64),
    /// At least this many queued requests are deadline-shed (gateway
    /// arm).
    ShedAtLeast(u64),
    /// At least this many requests are refused at the front door —
    /// queue overflow or tenant quota (gateway arm).
    RejectedAtLeast(u64),
    /// At most this many served requests miss their deadline (gateway
    /// arm): admission control must keep late finishes rare.
    DeadlineMissesAtMost(u64),
    /// The belief circuit breaker trips at least this often (gateway
    /// arm).
    BreakerTripsAtLeast(u64),
    /// The belief circuit breaker recovers its primary at least this
    /// often (gateway arm).
    BreakerRecoveriesAtLeast(u64),
}

/// Inputs an [`Invariant::check`] can draw on.
#[derive(Debug)]
pub struct CheckCtx<'a> {
    /// Jobs in the trace.
    pub jobs: usize,
    /// The solo faulted run.
    pub solo: &'a FleetReport,
    /// Duration of the no-fault counterfactual, when one was run.
    pub nofault_duration_s: Option<f64>,
    /// Mean makespan of the static-belief counterfactual, when run.
    pub static_mean_makespan_s: Option<f64>,
}

/// Outcome of one invariant check.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// What was asserted.
    pub label: String,
    /// Whether it held.
    pub pass: bool,
    /// The observed numbers behind the verdict.
    pub detail: String,
}

impl Invariant {
    /// Whether this invariant needs the no-fault counterfactual arm.
    pub fn needs_nofault_arm(&self) -> bool {
        matches!(self, Invariant::SlowdownAtLeast(_))
    }

    /// Whether this invariant needs the static-belief counterfactual arm.
    pub fn needs_static_arm(&self) -> bool {
        matches!(self, Invariant::RuntimeBeliefNoWorse(_))
    }

    /// Evaluates the invariant.
    pub fn check(&self, ctx: &CheckCtx) -> CheckResult {
        let f = &ctx.solo.faults;
        let s = &ctx.solo.serving;
        let (label, pass, detail) = match *self {
            Invariant::AllComplete => (
                format!("all {} jobs complete, none failed", ctx.jobs),
                ctx.solo.outcomes.len() == ctx.jobs && ctx.solo.failed_jobs() == 0,
                format!("completed={} failed={}", ctx.solo.outcomes.len(), ctx.solo.failed_jobs()),
            ),
            Invariant::FailedAtLeast(n) => (
                format!("≥ {n} job(s) aborted by the fault policy"),
                f.failed_jobs >= n,
                format!("failed_jobs={}", f.failed_jobs),
            ),
            Invariant::FailedAtMost(n) => (
                format!("≤ {n} job(s) aborted by the fault policy"),
                f.failed_jobs <= n,
                format!("failed_jobs={}", f.failed_jobs),
            ),
            Invariant::RetriesAtLeast(n) => (
                format!("≥ {n} stall retr{}", if n == 1 { "y" } else { "ies" }),
                f.retries >= n,
                format!("retries={}", f.retries),
            ),
            Invariant::RetriesAtMost(n) => (
                format!("≤ {n} stall retr{}", if n == 1 { "y" } else { "ies" }),
                f.retries <= n,
                format!("retries={}", f.retries),
            ),
            Invariant::ReplacementsAtLeast(n) => (
                format!("≥ {n} transfer(s) re-placed to an alive DC"),
                f.replacements >= n,
                format!("replacements={}", f.replacements),
            ),
            Invariant::DegradedBetween(lo, hi) => (
                format!("degraded time in [{lo:.0}, {hi:.0}] s"),
                (lo..=hi).contains(&f.degraded_s),
                format!("degraded_s={:.2}", f.degraded_s),
            ),
            Invariant::SlowdownAtLeast(factor) => {
                let base = ctx.nofault_duration_s.expect("runner provides the no-fault arm");
                (
                    format!("faults slow the fleet ≥ {factor:.2}x vs no-fault"),
                    ctx.solo.duration_s >= factor * base,
                    format!(
                        "faulted={:.2}s nofault={:.2}s ratio={:.2}",
                        ctx.solo.duration_s,
                        base,
                        ctx.solo.duration_s / base.max(1e-12)
                    ),
                )
            }
            Invariant::TailWithin(factor) => {
                let m = ctx.solo.makespan();
                (
                    format!("makespan p99 ≤ {factor:.1}x p50 (graceful tail)"),
                    m.p99 <= factor * m.p50,
                    format!(
                        "p50={:.2}s p99={:.2}s ratio={:.2}",
                        m.p50,
                        m.p99,
                        m.p99 / m.p50.max(1e-12)
                    ),
                )
            }
            Invariant::RuntimeBeliefNoWorse(tol) => {
                let stat =
                    ctx.static_mean_makespan_s.expect("runner provides the static-belief arm");
                let mine = ctx.solo.makespan().mean;
                (
                    format!("runtime belief ≤ {:.0}% worse than static belief", tol * 100.0),
                    mine <= (1.0 + tol) * stat,
                    format!("runtime-mean={mine:.2}s static-mean={stat:.2}s"),
                )
            }
            Invariant::ServedAtLeast(n) => (
                format!("≥ {n} request(s) served to completion"),
                ctx.solo.outcomes.len() as u64 >= n,
                format!("served={}", ctx.solo.outcomes.len()),
            ),
            Invariant::ShedAtLeast(n) => (
                format!("≥ {n} request(s) deadline-shed"),
                s.shed_jobs >= n,
                format!("shed_jobs={}", s.shed_jobs),
            ),
            Invariant::RejectedAtLeast(n) => (
                format!("≥ {n} request(s) refused at the front door"),
                s.rejected + s.quota_rejected >= n,
                format!("rejected={} quota_rejected={}", s.rejected, s.quota_rejected),
            ),
            Invariant::DeadlineMissesAtMost(n) => (
                format!("≤ {n} served request(s) miss their deadline"),
                s.deadline_misses <= n,
                format!("deadline_misses={}", s.deadline_misses),
            ),
            Invariant::BreakerTripsAtLeast(n) => (
                format!("belief breaker trips ≥ {n} time(s)"),
                s.breaker_trips >= n,
                format!("breaker_trips={}", s.breaker_trips),
            ),
            Invariant::BreakerRecoveriesAtLeast(n) => (
                format!("belief breaker recovers ≥ {n} time(s)"),
                s.breaker_recoveries >= n,
                format!("breaker_recoveries={}", s.breaker_recoveries),
            ),
        };
        CheckResult { label, pass, detail }
    }
}

/// One declarative fault-injection scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Unique kebab-case id (the `scenario:<name>` experiment key).
    pub name: &'static str,
    /// One-sentence story of what the scenario exercises.
    pub summary: &'static str,
    /// Paper-testbed prefix size (2..=8 DCs).
    pub n_dcs: usize,
    /// Jobs in the trace.
    pub jobs: usize,
    /// Seed of both the trace sampler and the simulator.
    pub seed: u64,
    /// Input-size multiplier on the trace.
    pub scale: f64,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Belief provenance the fleet plans with.
    pub belief: BeliefKind,
    /// Scheduler under test.
    pub sched: SchedKind,
    /// The injected fault timeline.
    pub faults: FaultSchedule,
    /// Stall detection/recovery policy (`None` = legacy stall-is-error).
    pub policy: Option<FaultPolicy>,
    /// Admission limit.
    pub max_concurrent: usize,
    /// Shared-belief staleness bound.
    pub regauge_every_s: f64,
    /// Shard count of the sharded arm (≥ 2).
    pub shards: usize,
    /// Whether the trace is region-homed to the backbone's groups.
    pub regional: bool,
    /// Live WAN dynamics (`None` = frozen network).
    pub dynamics: Option<DynamicsSpec>,
    /// AIMD agent fleet on the faulted arms (`None` = agent-free).
    pub agent: Option<AgentSpec>,
    /// Serving gateway front-end (`None` = batch submission). Gateway
    /// scenarios run the solo arm through the gateway and skip the
    /// sharded arm.
    pub gateway: Option<GatewaySpec>,
    /// Directional properties the solo faulted run must satisfy.
    pub invariants: Vec<Invariant>,
}

impl ScenarioSpec {
    /// A scenario skeleton with fleet-sized defaults.
    pub fn new(name: &'static str, summary: &'static str) -> Self {
        Self {
            name,
            summary,
            n_dcs: 3,
            jobs: 4,
            seed: 42,
            scale: 0.5,
            arrivals: Arrivals::Closed { clients: 4, think_s: 0.0 },
            belief: BeliefKind::Pregauged(300.0),
            sched: SchedKind::Tetrium,
            faults: FaultSchedule::new(),
            policy: Some(FaultPolicy::default()),
            max_concurrent: 16,
            regauge_every_s: f64::INFINITY,
            shards: 2,
            regional: false,
            dynamics: None,
            agent: None,
            gateway: None,
            invariants: Vec::new(),
        }
    }

    /// Sets the admission limit (concurrent queries).
    #[must_use]
    pub fn concurrent(mut self, max_concurrent: usize) -> Self {
        assert!(max_concurrent >= 1, "admission limit must allow at least one query");
        self.max_concurrent = max_concurrent;
        self
    }

    /// Sets the shared-belief staleness bound.
    #[must_use]
    pub fn regauge_every(mut self, every_s: f64) -> Self {
        self.regauge_every_s = every_s;
        self
    }

    /// Fronts the solo arm with a serving gateway. Gateway scenarios
    /// need an open-loop arrival process (Poisson or Scheduled) — a
    /// closed loop can never overload the fleet.
    #[must_use]
    pub fn gateway(mut self, gateway: GatewaySpec) -> Self {
        assert!(
            !matches!(self.arrivals, Arrivals::Closed { .. }),
            "gateway scenarios need open-loop arrivals: set .arrivals(...) first"
        );
        self.gateway = Some(gateway);
        self
    }

    /// Sets the paper-testbed prefix size.
    #[must_use]
    pub fn dcs(mut self, n: usize) -> Self {
        self.n_dcs = n;
        self
    }

    /// Sets the trace length.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the trace + simulator seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trace input-size multiplier.
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the arrival process.
    #[must_use]
    pub fn arrivals(mut self, arrivals: Arrivals) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the belief provenance.
    #[must_use]
    pub fn belief(mut self, belief: BeliefKind) -> Self {
        self.belief = belief;
        self
    }

    /// Sets the scheduler.
    #[must_use]
    pub fn scheduler(mut self, sched: SchedKind) -> Self {
        self.sched = sched;
        self
    }

    /// Installs the fault timeline.
    #[must_use]
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the recovery policy (`None` = legacy stall-is-error).
    #[must_use]
    pub fn policy(mut self, policy: Option<FaultPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the sharded arm's shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 2, "the sharded arm needs at least 2 shards");
        self.shards = shards;
        self
    }

    /// Homes the trace's tenants to the backbone's region groups.
    #[must_use]
    pub fn regional(mut self) -> Self {
        self.regional = true;
        self
    }

    /// Installs live tick-quantized WAN dynamics.
    #[must_use]
    pub fn dynamics(mut self, dynamics: DynamicsSpec) -> Self {
        assert!(dynamics.tick_s > 0.0, "scenario dynamics must be schedulable (tick_s > 0)");
        self.dynamics = Some(dynamics);
        self
    }

    /// Rides an AIMD agent fleet on the faulted arms, waking every
    /// `interval_s` simulated seconds.
    #[must_use]
    pub fn agents(mut self, interval_s: f64) -> Self {
        self.agent = Some(AgentSpec { interval_s });
        self
    }

    /// Whether the scenario's network moves on its own (live dynamics
    /// installed), independently of any fault schedule.
    pub fn has_live_dynamics(&self) -> bool {
        self.dynamics.is_some()
    }

    /// Appends one invariant.
    #[must_use]
    pub fn expect(mut self, invariant: Invariant) -> Self {
        self.invariants.push(invariant);
        self
    }

    /// Short human label of the arrival process for reports.
    pub fn arrivals_label(&self) -> String {
        match &self.arrivals {
            Arrivals::Poisson { rate_per_s, seed } => {
                format!("poisson({rate_per_s}/s, seed {seed})")
            }
            Arrivals::Closed { clients, think_s } => {
                format!("closed({clients} clients, think {think_s:.0}s)")
            }
            Arrivals::Scheduled { times } => {
                let bursts = times.iter().filter(|t| **t == 0.0).count();
                format!("scheduled({} times, {bursts} at t=0)", times.len())
            }
        }
    }

    /// The scenario's topology: the first `n_dcs` paper-testbed regions.
    pub fn topology(&self) -> Topology {
        paper_testbed_n(VmType::t2_medium(), self.n_dcs)
    }

    /// The backbone coupling the sharded arm (continental grouping).
    pub fn backbone(&self) -> Backbone {
        Backbone::continental(&self.topology(), 4000.0, 30.0)
    }

    /// The deterministic job trace.
    pub fn trace(&self) -> Vec<JobProfile> {
        let cfg = TraceConfig::new(self.n_dcs, self.jobs, self.seed).scaled(self.scale);
        if self.regional {
            regional_mixed_trace(&cfg, self.backbone().groups())
        } else {
            mixed_trace(&cfg)
        }
    }

    /// A fresh simulator — frozen unless a [`DynamicsSpec`] is
    /// installed; `faulted` installs the fault schedule (the no-fault
    /// counterfactual passes `false`; live dynamics ride both arms).
    pub fn sim(&self, faulted: bool) -> NetSim {
        let params = match self.dynamics {
            Some(d) => LinkModelParams {
                dynamics_sigma: d.sigma,
                dynamics_theta: d.theta,
                dynamics_tick_s: d.tick_s,
                snapshot_noise: 0.0,
                ..LinkModelParams::default()
            },
            None => LinkModelParams::frozen(),
        };
        let mut sim = NetSim::new(self.topology(), params, self.seed);
        if let Some(DynamicsSpec { diurnal: Some((amplitude, period_s)), .. }) = self.dynamics {
            sim.dynamics_mut().set_diurnal(amplitude, period_s, 0.0);
        }
        if faulted && !self.faults.is_empty() {
            sim.set_fault_schedule(self.faults.clone());
        }
        sim
    }

    /// Builds the spec's [`FleetAgent`]: a [`WanifyAgent`] planned from
    /// a runtime probe of the clean (no-fault) network, exactly as the
    /// paper's gauging step would run before the workload arrives.
    ///
    /// # Panics
    ///
    /// Panics if no [`AgentSpec`] is installed or planning fails.
    pub fn build_agent(&self) -> FleetAgent {
        let spec = self.agent.expect("spec declares an agent");
        let mut probe = self.sim(false);
        let bw = probe.measure_runtime(&ConnMatrix::filled(self.n_dcs, 1), 5).bw;
        let relations = infer_dc_relations(&bw, 30.0)
            .unwrap_or_else(|e| panic!("scenario {}: relation inference failed: {e:?}", self.name));
        let plan = optimize_global(&bw, &relations, 8, None, None)
            .unwrap_or_else(|e| panic!("scenario {}: global planning failed: {e:?}", self.name));
        FleetAgent {
            conns: plan.max_cons.clone(),
            hook: Box::new(WanifyAgent::new(&plan).with_relations(relations)),
            interval_s: spec.interval_s,
        }
    }

    /// The fleet-layer config (admission, regauge, recovery policy).
    pub fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            max_concurrent: self.max_concurrent,
            regauge_every_s: self.regauge_every_s,
            conns: None,
            faults: self.policy,
            ..FleetConfig::default()
        }
    }

    /// A fresh solo fleet engine with the spec's belief.
    pub fn engine(&self, faulted: bool) -> FleetEngine {
        self.engine_with(faulted, self.belief)
    }

    /// A fresh solo fleet engine with an overridden belief (the
    /// counterfactual-arm hook). A declared agent rides only the
    /// faulted arms: the no-fault counterfactual stays agent-free, so
    /// [`Invariant::SlowdownAtLeast`] compares the hooked fleet against
    /// an unassisted clean baseline.
    pub fn engine_with(&self, faulted: bool, belief: BeliefKind) -> FleetEngine {
        let engine = FleetEngine::new(
            self.sim(faulted),
            self.sched.build(),
            belief.build(self.n_dcs),
            self.fleet_config(),
        );
        if faulted && self.agent.is_some() {
            engine.with_agent(self.build_agent())
        } else {
            engine
        }
    }

    /// The gateway arm's fleet engine: the spec's belief source,
    /// wrapped — when a [`BreakerSpec`] is declared — in a deterministic
    /// gauge outage ([`FlakySource`]) behind a [`CircuitBreakerSource`]
    /// with a pregauged fallback. Returns the engine plus the breaker's
    /// stats handle when one was installed.
    ///
    /// # Panics
    ///
    /// Panics if no [`GatewaySpec`] is installed.
    pub fn gateway_engine(&self) -> (FleetEngine, Option<BreakerHandle>) {
        let gw = self.gateway.expect("spec declares a gateway");
        let (source, handle): (Box<dyn BandwidthSource>, _) = match gw.breaker {
            Some(b) => {
                let primary =
                    Box::new(FlakySource::new(self.belief.build(self.n_dcs), b.fail_until_s));
                let breaker = CircuitBreakerSource::new(
                    primary,
                    Box::new(Pregauged::new(BwMatrix::filled(self.n_dcs, b.fallback_mbps))),
                    BreakerConfig {
                        failure_threshold: b.failure_threshold,
                        cooldown_s: b.cooldown_s,
                    },
                );
                let handle = breaker.stats_handle();
                (Box::new(breaker), Some(handle))
            }
            None => (self.belief.build(self.n_dcs), None),
        };
        let engine =
            FleetEngine::new(self.sim(true), self.sched.build(), source, self.fleet_config());
        let engine =
            if self.agent.is_some() { engine.with_agent(self.build_agent()) } else { engine };
        (engine, handle)
    }

    /// The gateway arm's [`GatewayConfig`].
    ///
    /// # Panics
    ///
    /// Panics if no [`GatewaySpec`] is installed.
    pub fn gateway_config(&self) -> GatewayConfig {
        let gw = self.gateway.expect("spec declares a gateway");
        GatewayConfig {
            queue_depth: gw.queue_depth,
            overload: gw.overload,
            quota: gw.quota,
            shed_headroom: gw.shed_headroom,
        }
    }

    /// The gateway arm's request stream: the spec's trace with arrival
    /// times drawn from its open-loop arrival process and deadlines from
    /// the [`GatewaySpec`]'s slack.
    ///
    /// # Panics
    ///
    /// Panics if no [`GatewaySpec`] is installed, if the arrival process
    /// is closed-loop, or if a scheduled arrival list does not cover the
    /// trace.
    pub fn gateway_requests(&self) -> Vec<GatewayRequest> {
        let gw = self.gateway.expect("spec declares a gateway");
        let times: Vec<f64> = match &self.arrivals {
            Arrivals::Poisson { rate_per_s, seed } => {
                poisson_arrival_times(self.jobs, *rate_per_s, *seed).unwrap_or_else(|e| {
                    panic!("scenario {}: bad Poisson arrivals: {e:?}", self.name)
                })
            }
            Arrivals::Scheduled { times } => {
                assert_eq!(
                    times.len(),
                    self.jobs,
                    "scenario {}: scheduled arrivals must cover the trace",
                    self.name
                );
                times.clone()
            }
            Arrivals::Closed { .. } => {
                panic!("scenario {}: gateway arm needs open-loop arrivals", self.name)
            }
        };
        self.trace()
            .into_iter()
            .zip(times)
            .map(|(job, arrival_s)| GatewayRequest {
                job,
                arrival_s,
                deadline_s: gw.deadline_slack_s.map(|slack| arrival_s + slack),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanify_netsim::DcId;

    #[test]
    fn builder_composes_a_spec() {
        let spec = ScenarioSpec::new("t", "test")
            .dcs(4)
            .jobs(7)
            .seed(9)
            .scale(0.25)
            .scheduler(SchedKind::Kimchi)
            .belief(BeliefKind::StaticIndependent)
            .faults(FaultSchedule::new().dc_outage(DcId(1), 10.0, 20.0))
            .shards(3)
            .expect(Invariant::AllComplete);
        assert_eq!(spec.n_dcs, 4);
        assert_eq!(spec.jobs, 7);
        assert_eq!(spec.faults.len(), 2);
        assert_eq!(spec.shards, 3);
        assert_eq!(spec.invariants.len(), 1);
        assert_eq!(spec.trace().len(), 7);
        assert_eq!(spec.topology().len(), 4);
    }

    #[test]
    fn trace_is_deterministic_per_spec() {
        let spec = ScenarioSpec::new("t", "test").dcs(4).jobs(6);
        assert_eq!(spec.trace(), spec.trace());
        let regional = spec.clone().regional();
        assert_eq!(regional.trace(), regional.trace());
        assert!(regional.trace()[0].name.contains("@g"));
    }

    #[test]
    fn counterfactual_sim_carries_no_faults() {
        let spec = ScenarioSpec::new("t", "test").faults(FaultSchedule::new().dc_outage(
            DcId(0),
            1.0,
            2.0,
        ));
        assert!(spec.sim(true).has_pending_faults());
        assert!(!spec.sim(false).has_pending_faults());
    }

    #[test]
    fn invariant_arm_requirements() {
        assert!(Invariant::SlowdownAtLeast(1.0).needs_nofault_arm());
        assert!(Invariant::RuntimeBeliefNoWorse(0.1).needs_static_arm());
        assert!(!Invariant::AllComplete.needs_nofault_arm());
        assert!(!Invariant::RetriesAtLeast(1).needs_static_arm());
    }

    #[test]
    #[should_panic(expected = "at least 2 shards")]
    fn single_shard_arm_is_rejected() {
        let _ = ScenarioSpec::new("t", "test").shards(1);
    }

    #[test]
    fn dynamics_and_agent_compose() {
        let spec = ScenarioSpec::new("t", "test")
            .dynamics(DynamicsSpec {
                sigma: 0.05,
                theta: 0.2,
                tick_s: 30.0,
                diurnal: Some((0.2, 100.0)),
            })
            .agents(5.0);
        assert!(spec.has_live_dynamics());
        let mut sim = spec.sim(false);
        assert!(sim.coalescible(), "scenario dynamics must stay schedulable");
        assert!(sim.dynamics_mut().next_change_after(0.0).is_some());
        // The faulted arm builds its agent (probe + plan) without issue.
        let _ = spec.engine(true);
    }

    #[test]
    #[should_panic(expected = "schedulable")]
    fn continuous_dynamics_are_rejected() {
        let _ = ScenarioSpec::new("t", "test").dynamics(DynamicsSpec {
            sigma: 0.05,
            theta: 0.2,
            tick_s: 0.0,
            diurnal: None,
        });
    }
}
