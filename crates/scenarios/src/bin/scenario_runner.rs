//! Runs the fault-injection scenario suite and writes the committed
//! report artifacts.
//!
//! ```text
//! scenario_runner [--smoke] [--out PATH] [--digest PATH] [name...]
//! ```
//!
//! * `--smoke`   — run only the two fastest scenarios (CI sanity lane).
//! * `--out`     — write the markdown report (the committed copy lives
//!   at `SCENARIOS.md`; CI regenerates it and fails on drift).
//! * `--digest`  — write the bit-exact outcome digests (committed as
//!   `SCENARIOS.digest`; the determinism matrix diffs it across
//!   `RAYON_NUM_THREADS` values).
//! * `name...`   — run only the named scenarios.
//!
//! Exits nonzero if any scenario's invariants fail, printing the
//! offending checks.

use wanify_scenarios::{catalog, render_digests, render_markdown, run_all};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path_arg = |flag: &str| match args.iter().position(|a| a == flag) {
        Some(i) => match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => Some(path.clone()),
            _ => {
                eprintln!("error: {flag} requires a path argument");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let out = path_arg("--out");
    let digest_path = path_arg("--digest");
    let mut names: Vec<&str> = Vec::new();
    let mut skip_next = false;
    for (i, a) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        match a.as_str() {
            "--smoke" => {}
            "--out" | "--digest" => skip_next = true,
            "--help" | "-h" => usage(""),
            other if other.starts_with("--") => usage(&format!("unknown flag {other}")),
            other => {
                let _ = i;
                names.push(other);
            }
        }
    }

    let mut specs = catalog::all();
    if !names.is_empty() {
        let known: Vec<&str> = specs.iter().map(|s| s.name).collect();
        for name in &names {
            if !known.contains(name) {
                usage(&format!("unknown scenario {name}; known: {}", known.join(" ")));
            }
        }
        specs.retain(|s| names.contains(&s.name));
    } else if smoke {
        // The two cheapest studies: one recovery path, one failure path.
        specs.retain(|s| s.name == "permanent-outage" || s.name == "link-flap");
    }

    let outcomes = run_all(&specs);
    let md = render_markdown(&outcomes);
    print!("{md}");
    if let Some(path) = out {
        std::fs::write(&path, &md).expect("write scenario report");
        eprintln!("wrote {path}");
    }
    if let Some(path) = digest_path {
        std::fs::write(&path, render_digests(&outcomes)).expect("write scenario digests");
        eprintln!("wrote {path}");
    }

    let failed: Vec<&str> = outcomes.iter().filter(|o| !o.passed()).map(|o| o.spec.name).collect();
    if !failed.is_empty() {
        eprintln!("scenario invariants failed: {}", failed.join(", "));
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: scenario_runner [--smoke] [--out PATH] [--digest PATH] [name...]\n\
         scenarios: {}",
        wanify_scenarios::all().iter().map(|s| s.name).collect::<Vec<_>>().join(" ")
    );
    std::process::exit(2);
}
