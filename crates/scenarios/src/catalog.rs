//! The committed scenario suite: fault-injection and live-dynamics
//! studies.
//!
//! Each entry is ~20 lines of declarative spec — the point of the
//! harness. [`all`] returns them in report order; [`by_name`] resolves a
//! `scenario:<name>` experiment id.

use crate::spec::{
    BeliefKind, BreakerSpec, DynamicsSpec, GatewaySpec, Invariant, ScenarioSpec, SchedKind,
};
use wanify_gda::{Arrivals, FaultPolicy};
use wanify_netsim::{DcId, FaultSchedule};

/// Mid-run full-DC outage that heals: stalls must be detected, the
/// remainder re-placed onto alive DCs, and every job must still finish.
fn outage_recovery() -> ScenarioSpec {
    ScenarioSpec::new(
        "outage-recovery",
        "A full DC goes dark for 40 s while every client's first shuffle is in flight; \
         the stall watchdog cancels wedged shuffles, re-places the dead-destination \
         remainder through the scheduler, and the healed WAN drains the resubmissions — \
         nobody fails.",
    )
    .dcs(4)
    .jobs(6)
    .scale(0.4)
    .arrivals(Arrivals::Closed { clients: 6, think_s: 0.0 })
    .faults(FaultSchedule::new().dc_outage(DcId(1), 4.0, 45.0))
    .policy(Some(FaultPolicy { stall_timeout_s: 5.0, max_retries: 5, backoff_base_s: 5.0 }))
    .expect(Invariant::AllComplete)
    .expect(Invariant::RetriesAtLeast(1))
    .expect(Invariant::ReplacementsAtLeast(1))
    .expect(Invariant::DegradedBetween(5.0, 41.5))
    .expect(Invariant::SlowdownAtLeast(1.2))
}

/// Periodic degradation of one directed pair in both directions: rates
/// never hit zero, so the fleet rides through without any intervention.
fn link_flap() -> ScenarioSpec {
    ScenarioSpec::new(
        "link-flap",
        "The UsEast↔UsWest pair flaps to 15 % capacity every 20 s; rates stay nonzero so \
         the watchdog never fires, and a runtime-measured belief must not place \
         meaningfully worse than a static-independent one.",
    )
    .jobs(6)
    .belief(BeliefKind::MeasuredRuntime(5))
    .arrivals(Arrivals::Closed { clients: 6, think_s: 0.0 })
    .faults(FaultSchedule::new().link_flap(DcId(0), DcId(1), 0.15, 10.0, 20.0, 6).link_flap(
        DcId(1),
        DcId(0),
        0.15,
        10.0,
        20.0,
        6,
    ))
    .expect(Invariant::AllComplete)
    .expect(Invariant::RetriesAtMost(0))
    .expect(Invariant::DegradedBetween(1.0, 120.5))
    .expect(Invariant::RuntimeBeliefNoWorse(0.15))
}

/// A flash crowd arriving into a straggling DC: load spike and slow
/// links overlap, but degradation must stay graceful.
fn flash_crowd_straggler() -> ScenarioSpec {
    ScenarioSpec::new(
        "flash-crowd-straggler",
        "Five queries arrive at t=0 and five more in one burst at t=30 while every link \
         of a straggler DC runs at 25 % until t=120; the queue drains gracefully with no \
         failures and no pathological tail.",
    )
    .dcs(4)
    .jobs(10)
    .scale(0.3)
    .scheduler(SchedKind::Vanilla)
    .arrivals(Arrivals::Scheduled {
        times: vec![0.0, 0.0, 0.0, 0.0, 0.0, 30.0, 30.0, 30.0, 30.0, 30.0],
    })
    .faults(FaultSchedule::new().straggler(DcId(3), 0.25, 10.0).straggler(DcId(3), 1.0, 120.0))
    .expect(Invariant::AllComplete)
    .expect(Invariant::DegradedBetween(5.0, 110.5))
    .expect(Invariant::TailWithin(50.0))
}

/// A diurnal bandwidth wave with no recovery policy installed: factors
/// never reach zero, so the legacy stall-is-error path must never trip.
fn diurnal_wave() -> ScenarioSpec {
    ScenarioSpec::new(
        "diurnal-wave",
        "Two 200 s raised-cosine bandwidth cycles dipping to 40 % hit a Poisson-arriving \
         fleet running without any fault policy; the wave slows the fleet but can never \
         stall it, so the policy-free legacy path stays safe.",
    )
    .jobs(8)
    .scheduler(SchedKind::Kimchi)
    .belief(BeliefKind::StaticIndependent)
    .arrivals(Arrivals::Poisson { rate_per_s: 0.05, seed: 7 })
    .faults(FaultSchedule::new().diurnal(200.0, 0.4, 8, 2))
    .policy(None)
    .expect(Invariant::AllComplete)
    .expect(Invariant::DegradedBetween(10.0, 400.5))
    .expect(Invariant::SlowdownAtLeast(1.0))
}

/// A DC that never comes back: jobs whose shuffles need it must be
/// aborted after bounded retries with partial accounting — the fleet
/// must not wedge and must not error.
fn permanent_outage() -> ScenarioSpec {
    ScenarioSpec::new(
        "permanent-outage",
        "One DC is dark from t=0 and never recovers; every query that must move data to \
         or from it exhausts its two retries and is reported failed with partial \
         accounting, while the fleet itself keeps serving and terminates cleanly.",
    )
    .jobs(3)
    .scale(0.4)
    .scheduler(SchedKind::Vanilla)
    .arrivals(Arrivals::Closed { clients: 3, think_s: 0.0 })
    .faults(FaultSchedule::new().at(0.0, wanify_netsim::FaultKind::DcDown(DcId(1))))
    .policy(Some(FaultPolicy { stall_timeout_s: 4.0, max_retries: 2, backoff_base_s: 4.0 }))
    .expect(Invariant::FailedAtLeast(1))
    .expect(Invariant::FailedAtMost(3))
    .expect(Invariant::RetriesAtLeast(2))
    .expect(Invariant::DegradedBetween(1.0, f64::INFINITY))
}

/// A regional storm over a sharded fleet: an outage plus a straggler in
/// different continents, tenants homed to region groups.
fn regional_storm() -> ScenarioSpec {
    ScenarioSpec::new(
        "regional-storm",
        "A 6-DC fleet with region-homed tenants takes a 38 s AP outage and a NA \
         straggler at once; solo and 3-shard arms both recover every query through \
         retry + re-placement.",
    )
    .dcs(6)
    .jobs(12)
    .scale(0.3)
    .regional()
    .shards(3)
    .arrivals(Arrivals::Closed { clients: 6, think_s: 0.0 })
    .faults(
        FaultSchedule::new().dc_outage(DcId(2), 2.0, 40.0).straggler(DcId(1), 0.3, 5.0).straggler(
            DcId(1),
            1.0,
            50.0,
        ),
    )
    .policy(Some(FaultPolicy { stall_timeout_s: 4.0, max_retries: 6, backoff_base_s: 4.0 }))
    .expect(Invariant::AllComplete)
    .expect(Invariant::RetriesAtLeast(1))
    .expect(Invariant::DegradedBetween(5.0, 49.5))
    .expect(Invariant::SlowdownAtLeast(1.2))
}

/// Live tick-quantized dynamics with no injected faults: the network
/// moves on its own (OU noise composed with a diurnal wave), and the
/// runtime-measured belief must still hold its own against static.
fn diurnal_live_dynamics() -> ScenarioSpec {
    ScenarioSpec::new(
        "diurnal-live-dynamics",
        "No faults at all — instead the WAN itself breathes: OU noise on a 30 s tick \
         composed with a ±30 % diurnal wave. The coalescing engine schedules every rate \
         change, every job completes, and a runtime-measured belief must not place \
         meaningfully worse than a static-independent one on the moving network.",
    )
    .jobs(8)
    .scale(0.4)
    .belief(BeliefKind::MeasuredRuntime(5))
    .arrivals(Arrivals::Closed { clients: 4, think_s: 0.0 })
    .dynamics(DynamicsSpec { sigma: 0.06, theta: 0.25, tick_s: 30.0, diurnal: Some((0.3, 240.0)) })
    .expect(Invariant::AllComplete)
    .expect(Invariant::TailWithin(50.0))
    .expect(Invariant::RuntimeBeliefNoWorse(0.15))
}

/// An AIMD agent fleet riding a faulted, live-dynamics WAN: every shard
/// carries its own WANify agent waking on a 5 s analytic schedule, so
/// the hooked run still coalesces between wakes.
fn aimd_agents_fleet() -> ScenarioSpec {
    ScenarioSpec::new(
        "aimd-agents-fleet",
        "WANify's per-DC AIMD agents steer the fleet's connection matrix every 5 s while \
         OU dynamics drift the links and a mid-run straggler bites; the agents schedule \
         their wakes analytically, the faulted run costs real time over the agent-free \
         clean baseline, and nobody fails.",
    )
    .dcs(4)
    .jobs(8)
    .scale(0.8)
    .arrivals(Arrivals::Closed { clients: 4, think_s: 0.0 })
    .dynamics(DynamicsSpec { sigma: 0.06, theta: 0.25, tick_s: 30.0, diurnal: None })
    .agents(5.0)
    .faults(FaultSchedule::new().straggler(DcId(2), 0.08, 2.0).straggler(DcId(2), 1.0, 80.0))
    .expect(Invariant::AllComplete)
    .expect(Invariant::RetriesAtMost(0))
    .expect(Invariant::DegradedBetween(5.0, 78.5))
    .expect(Invariant::SlowdownAtLeast(1.05))
}

/// Open-loop arrivals far beyond the fleet's service rate, pushed
/// through the serving gateway: deadline shedding must hold goodput up
/// instead of letting every queued request rot past its deadline.
fn sustained_overload_shedding() -> ScenarioSpec {
    ScenarioSpec::new(
        "sustained-overload-shedding",
        "Poisson arrivals at roughly three times the two-slot fleet's service rate hit \
         the gateway for 16 queries straight; the deadline-aware admission control sheds \
         the hopeless requests from the queue, keeps the admitted ones largely on time, \
         and the fleet never collapses into serving only late work.",
    )
    .jobs(16)
    .scale(1.0)
    .concurrent(1)
    .arrivals(Arrivals::Poisson { rate_per_s: 0.5, seed: 21 })
    .gateway(GatewaySpec {
        queue_depth: 8,
        deadline_slack_s: Some(45.0),
        shed_headroom: 1.2,
        ..GatewaySpec::default()
    })
    .expect(Invariant::ServedAtLeast(4))
    .expect(Invariant::ShedAtLeast(1))
    .expect(Invariant::RejectedAtLeast(1))
    .expect(Invariant::DeadlineMissesAtMost(3))
}

/// A monitoring-plane outage under a serving gateway: every gauge fails
/// for the first half of the run, the circuit breaker trips to a static
/// fallback belief, and a half-open probe recovers the primary once the
/// plane heals — queries degrade, none fail.
fn belief_breaker_trip() -> ScenarioSpec {
    ScenarioSpec::new(
        "belief-breaker-trip",
        "The runtime-measurement plane is down until t=250 s, so every re-gauge fails; \
         after two consecutive failures the breaker opens and serves a pregauged \
         fallback belief, then a post-outage half-open probe recovers runtime \
         measurement — every query completes, none ever sees a gauge error.",
    )
    .jobs(8)
    .scale(0.4)
    .belief(BeliefKind::MeasuredRuntime(5))
    .regauge_every(40.0)
    .arrivals(Arrivals::Poisson { rate_per_s: 0.02, seed: 13 })
    .gateway(GatewaySpec {
        breaker: Some(BreakerSpec {
            fail_until_s: 250.0,
            failure_threshold: 2,
            cooldown_s: 60.0,
            fallback_mbps: 200.0,
        }),
        ..GatewaySpec::default()
    })
    .expect(Invariant::ServedAtLeast(8))
    .expect(Invariant::FailedAtMost(0))
    .expect(Invariant::BreakerTripsAtLeast(1))
    .expect(Invariant::BreakerRecoveriesAtLeast(1))
}

/// Every committed scenario, in report order.
pub fn all() -> Vec<ScenarioSpec> {
    vec![
        outage_recovery(),
        link_flap(),
        flash_crowd_straggler(),
        diurnal_wave(),
        permanent_outage(),
        regional_storm(),
        diurnal_live_dynamics(),
        aimd_agents_fleet(),
        sustained_overload_shedding(),
        belief_breaker_trip(),
    ]
}

/// Resolves a scenario by name (the `scenario:<name>` experiment id).
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_at_least_six_unique_scenarios() {
        let specs = all();
        assert!(specs.len() >= 6, "got {}", specs.len());
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "scenario names must be unique");
    }

    #[test]
    fn every_scenario_declares_a_directional_invariant() {
        for spec in all() {
            assert!(!spec.invariants.is_empty(), "{} has no invariants", spec.name);
            assert!(
                !spec.faults.is_empty() || spec.has_live_dynamics() || spec.gateway.is_some(),
                "{} neither injects faults, moves the network, nor stresses the gateway",
                spec.name
            );
        }
    }

    #[test]
    fn names_are_kebab_case_ids() {
        for spec in all() {
            assert!(
                spec.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} is not kebab-case",
                spec.name
            );
        }
    }

    #[test]
    fn by_name_resolves_and_rejects() {
        assert!(by_name("outage-recovery").is_some());
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn traces_fit_their_topologies() {
        for spec in all() {
            let trace = spec.trace();
            assert_eq!(trace.len(), spec.jobs, "{}", spec.name);
            for job in &trace {
                assert_eq!(job.layout.len(), spec.n_dcs, "{}", spec.name);
            }
        }
    }
}
