//! # wanify-scenarios
//!
//! A declarative fault-injection scenario harness over the fleet engine.
//!
//! The WANify paper measures a *healthy* WAN; production WANs misbehave.
//! This crate turns the netsim fault layer
//! ([`wanify_netsim::FaultSchedule`]) and the fleet's recovery machinery
//! ([`wanify_gda::FaultPolicy`]) into a scenario suite:
//!
//! * [`spec`] — [`ScenarioSpec`], a fluent builder composing a
//!   paper-testbed topology, a deterministic mixed trace, an arrival
//!   process, a belief provenance, a scheduler, a fault timeline, a
//!   recovery policy and a list of directional [`Invariant`]s;
//! * [`catalog`] — the six committed scenarios (DC outage + recovery,
//!   link flap, flash crowd into a straggler, diurnal wave, permanent
//!   outage, sharded regional storm);
//! * [`runner`] — executes each spec solo **and** sharded (twice each,
//!   digest-asserted bit-identical), runs counterfactual arms on demand
//!   (no-fault, static-belief), evaluates the invariants, and renders
//!   the committed `SCENARIOS.md` / `SCENARIOS.digest` artifacts.
//!
//! Everything is simulated and deterministic: regenerating the report on
//! any machine — at any rayon thread count — must reproduce it byte for
//! byte, which CI enforces with a drift check.
//!
//! ## Adding a scenario
//!
//! ```
//! use wanify_scenarios::{Invariant, ScenarioSpec};
//! use wanify_gda::FaultPolicy;
//! use wanify_netsim::{DcId, FaultSchedule};
//!
//! let spec = ScenarioSpec::new("my-outage", "what it shows")
//!     .dcs(4)
//!     .jobs(6)
//!     .scale(0.4)
//!     .faults(FaultSchedule::new().dc_outage(DcId(1), 4.0, 45.0))
//!     .policy(Some(FaultPolicy { stall_timeout_s: 5.0, max_retries: 5, backoff_base_s: 5.0 }))
//!     .expect(Invariant::AllComplete)
//!     .expect(Invariant::RetriesAtLeast(1));
//! let outcome = wanify_scenarios::run_scenario(&spec);
//! assert!(outcome.passed());
//! ```

pub mod catalog;
pub mod runner;
pub mod spec;

pub use catalog::{all, by_name};
pub use runner::{digest, render_digests, render_markdown, run_all, run_scenario, ScenarioOutcome};
pub use spec::{
    BeliefKind, BreakerSpec, CheckCtx, CheckResult, GatewaySpec, Invariant, ScenarioSpec, SchedKind,
};
