//! Fleet-level agent hooks: a [`FleetAgent`] wakes on its own timer,
//! observes the shared WAN, and steers the fleet's connection matrix —
//! without perturbing the simulation when it chooses not to act, and
//! deterministically when it does (including across rayon thread counts
//! and live tick-quantized dynamics).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use wanify::{infer_dc_relations, optimize_global, GlobalPlan, WanifyAgent};
use wanify_gda::{
    Arrivals, FleetAgent, FleetConfig, FleetEngine, FleetReport, RoundRobinShards,
    ShardedFleetEngine, Tetrium,
};
use wanify_netsim::{
    paper_testbed_n, Backbone, ConnMatrix, EpochCtx, EpochHook, LinkModelParams, NetSim, VmType,
};
use wanify_workloads::{mixed_trace, TraceConfig};

const N_DCS: usize = 4;

fn live_params(tick_s: f64) -> LinkModelParams {
    LinkModelParams { dynamics_tick_s: tick_s, snapshot_noise: 0.0, ..Default::default() }
}

fn fleet(params: LinkModelParams, seed: u64, conns: Option<ConnMatrix>) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), N_DCS), params, seed),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent: 8,
            regauge_every_s: 300.0,
            conns,
            faults: None,
            ..FleetConfig::default()
        },
    )
}

fn plan() -> GlobalPlan {
    let mut probe =
        NetSim::new(paper_testbed_n(VmType::t2_medium(), N_DCS), LinkModelParams::frozen(), 17);
    let bw = probe.measure_runtime(&ConnMatrix::filled(N_DCS, 1), 5).bw;
    let rel = infer_dc_relations(&bw, 30.0).unwrap();
    optimize_global(&bw, &rel, 8, None, None).unwrap()
}

fn run_key(report: &FleetReport) -> Vec<(String, u64, u64)> {
    report
        .outcomes
        .iter()
        .map(|o| (o.report.job.clone(), o.report.latency_s.to_bits(), o.completed_s.to_bits()))
        .collect()
}

/// A hook that never touches the context: the agent machinery around it
/// (wake timers, observation matrices, throttle write-back, connection
/// push-down) must then leave every outcome unchanged up to epoch
/// re-quantization — a wake timer chops the engine's advance windows
/// exactly like a mid-flight submission does, which can re-phase a
/// flow's epoch grid by at most one `epoch_dt_s`.
struct Inert {
    wakes: Arc<AtomicUsize>,
}

impl EpochHook for Inert {
    fn on_epoch(&mut self, _ctx: &mut EpochCtx<'_>) {
        self.wakes.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn inert_agent_leaves_fleet_outcomes_unchanged_up_to_requantization() {
    let trace = mixed_trace(&TraceConfig::new(N_DCS, 8, 5).scaled(0.5));
    let arrivals = Arrivals::Closed { clients: 3, think_s: 0.0 };
    let conns = ConnMatrix::filled(N_DCS, 2);

    let plain =
        fleet(LinkModelParams::frozen(), 11, Some(conns.clone())).run(&trace, &arrivals).unwrap();
    let wakes = Arc::new(AtomicUsize::new(0));
    let agent =
        FleetAgent { hook: Box::new(Inert { wakes: Arc::clone(&wakes) }), interval_s: 5.0, conns };
    let hooked = fleet(LinkModelParams::frozen(), 11, None)
        .with_agent(agent)
        .run(&trace, &arrivals)
        .unwrap();

    assert_eq!(hooked.outcomes.len(), 8);
    assert!(wakes.load(Ordering::Relaxed) >= 2, "the run spans several 5 s wake intervals");
    let dt = LinkModelParams::default().epoch_dt_s;
    for (a, b) in plain.outcomes.iter().zip(&hooked.outcomes) {
        assert_eq!(a.report.job, b.report.job, "completion order must not change");
        assert!(
            (a.report.latency_s - b.report.latency_s).abs() <= dt + 1e-9,
            "{}: inert-agent latency {} vs plain {}",
            a.report.job,
            b.report.latency_s,
            a.report.latency_s
        );
        assert!((a.completed_s - b.completed_s).abs() <= dt + 1e-9);
    }
}

#[test]
fn aimd_agent_fleet_is_deterministic_and_completes() {
    let trace = mixed_trace(&TraceConfig::new(N_DCS, 10, 3).scaled(0.5));
    let arrivals = Arrivals::Poisson { rate_per_s: 0.05, seed: 7 };
    let run = || {
        let p = plan();
        let agent = FleetAgent {
            hook: Box::new(WanifyAgent::new(&p)),
            interval_s: 5.0,
            conns: p.max_cons.clone(),
        };
        fleet(live_params(30.0), 29, None).with_agent(agent).run(&trace, &arrivals).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcomes.len(), 10, "every job must complete under the live agent");
    assert_eq!(run_key(&a), run_key(&b), "agent-hooked fleets must be reproducible");
    assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
}

#[test]
fn sharded_agent_fleet_is_thread_count_invariant_under_live_dynamics() {
    // Each shard carries its own AIMD agent and its own tick-quantized
    // dynamics process; the rayon scale-out must not change a bit.
    let trace = mixed_trace(&TraceConfig::new(N_DCS, 10, 2).scaled(0.5));
    let topo = paper_testbed_n(VmType::t2_medium(), N_DCS);
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            let shards = (0..2)
                .map(|_| {
                    let p = plan();
                    let agent = FleetAgent {
                        hook: Box::new(WanifyAgent::new(&p)),
                        interval_s: 5.0,
                        conns: p.max_cons.clone(),
                    };
                    fleet(live_params(30.0), 11, None).with_agent(agent)
                })
                .collect();
            ShardedFleetEngine::new(
                shards,
                Box::new(RoundRobinShards::new()),
                Some(Backbone::continental(&topo, 2000.0, 5.0)),
            )
            .run(&trace, &Arrivals::Closed { clients: 4, think_s: 0.0 })
            .unwrap()
        })
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(serial.fleet.outcomes.len(), 10);
    assert_eq!(run_key(&serial.fleet), run_key(&parallel.fleet));
    assert_eq!(serial.fleet.duration_s.to_bits(), parallel.fleet.duration_s.to_bits());
}
