//! Sharded fleet behaviour: completion, deterministic merge, rayon
//! thread-count invariance, and backbone pressure.

use wanify_gda::{
    Arrivals, FleetConfig, FleetEngine, RoundRobinShards, ShardedFleetEngine, ShardedFleetReport,
    Tetrium,
};
use wanify_netsim::{paper_testbed_n, Backbone, LinkModelParams, NetSim, VmType};
use wanify_workloads::{mixed_trace, TraceConfig};

fn shard_engine(n: usize, seed: u64, max_concurrent: usize) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), seed),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent,
            regauge_every_s: 300.0,
            conns: None,
            faults: None,
            ..FleetConfig::default()
        },
    )
}

fn sharded(n_dcs: usize, n_shards: usize, trunk_mbps: f64, sync_s: f64) -> ShardedFleetEngine {
    let topo = paper_testbed_n(VmType::t2_medium(), n_dcs);
    let backbone = Backbone::continental(&topo, trunk_mbps, sync_s);
    ShardedFleetEngine::new(
        (0..n_shards).map(|_| shard_engine(n_dcs, 11, 16)).collect(),
        Box::new(RoundRobinShards::new()),
        Some(backbone),
    )
}

fn run_key(report: &ShardedFleetReport) -> Vec<(String, u64, u64, u64)> {
    report
        .fleet
        .outcomes
        .iter()
        .map(|o| {
            (
                o.report.job.clone(),
                o.report.latency_s.to_bits(),
                o.completed_s.to_bits(),
                o.admitted_s.to_bits(),
            )
        })
        .collect()
}

#[test]
fn every_job_completes_across_shards() {
    let trace = mixed_trace(&TraceConfig::new(4, 12, 5).scaled(0.5));
    let report = sharded(4, 3, 2000.0, 5.0)
        .run(&trace, &Arrivals::Closed { clients: 4, think_s: 0.0 })
        .unwrap();
    assert_eq!(report.fleet.outcomes.len(), 12);
    assert_eq!(report.shards(), 3);
    assert_eq!(report.shard_sizes(), vec![4, 4, 4], "round-robin balances the trace");
    assert!(report.backbone_syncs > 0);
    assert_eq!(report.policy, "round-robin");
    // Merged outcomes are in global completion order.
    for pair in report.fleet.outcomes.windows(2) {
        assert!(pair[0].completed_s <= pair[1].completed_s);
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let trace = mixed_trace(&TraceConfig::new(4, 10, 9).scaled(0.5));
    let run = || {
        sharded(4, 2, 1500.0, 5.0)
            .run(&trace, &Arrivals::Poisson { rate_per_s: 0.05, seed: 3 })
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(run_key(&a), run_key(&b));
    assert_eq!(a.fleet.duration_s.to_bits(), b.fleet.duration_s.to_bits());
    assert_eq!(a.backbone_syncs, b.backbone_syncs);
}

#[test]
fn thread_count_does_not_change_results() {
    let trace = mixed_trace(&TraceConfig::new(4, 10, 2).scaled(0.5));
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            sharded(4, 4, 1000.0, 5.0)
                .run(&trace, &Arrivals::Closed { clients: 3, think_s: 1.0 })
                .unwrap()
        })
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(run_key(&serial), run_key(&parallel));
    assert_eq!(serial.fleet.duration_s.to_bits(), parallel.fleet.duration_s.to_bits());
}

#[test]
fn poisson_arrival_process_is_independent_of_the_shard_count() {
    // The global stream is sampled once and thinned across shards, so
    // the set of (job, arrival time) pairs must not depend on how many
    // shards serve the trace — sharding must never compress load.
    let trace = mixed_trace(&TraceConfig::new(4, 14, 6).scaled(0.5));
    let arrivals = Arrivals::Poisson { rate_per_s: 0.05, seed: 9 };
    let arrivals_of = |shards: usize| {
        let report = sharded(4, shards, 1500.0, 5.0).run(&trace, &arrivals).unwrap();
        let mut v: Vec<(String, u64)> = report
            .fleet
            .outcomes
            .iter()
            .map(|o| (o.report.job.clone(), o.arrived_s.to_bits()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(arrivals_of(1), arrivals_of(4));
}

#[test]
fn closed_loop_clients_split_across_shards() {
    // 4 clients over 2 shards: 2 each, so at most 2 jobs per shard are
    // in flight and the fleet-wide concurrency matches the single
    // engine's 4, not 8.
    let trace = mixed_trace(&TraceConfig::new(4, 12, 3).scaled(0.5));
    let report = sharded(4, 2, 2000.0, 5.0)
        .run(&trace, &Arrivals::Closed { clients: 4, think_s: 0.0 })
        .unwrap();
    assert_eq!(report.fleet.outcomes.len(), 12);
    for shard in &report.per_shard {
        // With 2 clients per shard, no more than 2 of a shard's jobs can
        // ever have arrived before the first completion.
        let at_zero = shard.outcomes.iter().filter(|o| o.arrived_s == 0.0).count();
        assert!(at_zero <= 2, "shard admitted {at_zero} jobs at t=0 with 2 clients");
    }
}

#[test]
fn tight_backbone_slows_cross_group_tenants() {
    // Big enough shuffles to outlive the first sync window, and a 2 s
    // exchange cadence so the 40 Mbps trunks actually get reserved.
    let trace = mixed_trace(&TraceConfig::new(4, 8, 7).scaled(4.0));
    let arrivals = Arrivals::Closed { clients: 4, think_s: 0.0 };
    let wide = sharded(4, 2, f64::INFINITY, 2.0).run(&trace, &arrivals).unwrap();
    let narrow = sharded(4, 2, 40.0, 2.0).run(&trace, &arrivals).unwrap();
    assert!(
        narrow.fleet.makespan().mean > wide.fleet.makespan().mean,
        "a 40 Mbps backbone must hurt: narrow {:.0}s vs wide {:.0}s",
        narrow.fleet.makespan().mean,
        wide.fleet.makespan().mean
    );
}

#[test]
fn backbone_group_map_must_cover_the_topology() {
    let trace = mixed_trace(&TraceConfig::new(4, 2, 1));
    let bad = Backbone::uniform(vec![0, 1], 100.0, 10.0); // 2 DCs, topo has 4
    let err = ShardedFleetEngine::new(
        vec![shard_engine(4, 1, 4), shard_engine(4, 1, 4)],
        Box::new(RoundRobinShards::new()),
        Some(bad),
    )
    .run(&trace, &Arrivals::Closed { clients: 1, think_s: 0.0 })
    .unwrap_err();
    assert!(matches!(err, wanify::WanifyError::DimensionMismatch { expected: 4, got: 2 }));
}

#[test]
fn empty_shards_are_harmless() {
    // 5 shards, 3 jobs: two shards serve nothing.
    let trace = mixed_trace(&TraceConfig::new(4, 3, 8).scaled(0.5));
    let topo = paper_testbed_n(VmType::t2_medium(), 4);
    let report = ShardedFleetEngine::new(
        (0..5).map(|_| shard_engine(4, 2, 8)).collect(),
        Box::new(RoundRobinShards::new()),
        Some(Backbone::continental(&topo, 2000.0, 20.0)),
    )
    .run(&trace, &Arrivals::Closed { clients: 2, think_s: 0.0 })
    .unwrap();
    assert_eq!(report.fleet.outcomes.len(), 3);
    assert_eq!(report.shard_sizes(), vec![1, 1, 1, 0, 0]);
}
