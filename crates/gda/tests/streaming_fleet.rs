//! Streaming arrivals and constant-memory accounting: a streamed run is
//! bit-identical to the materialized one, the retention cap bounds
//! per-job state without losing aggregate accuracy, and the sketched
//! report's percentiles stay close to the exact order statistics.

use wanify_gda::{
    poisson_times_iter, Arrivals, FleetConfig, FleetEngine, FleetReport, FleetRun, Tetrium,
};
use wanify_netsim::{paper_testbed_n, LinkModelParams, NetSim, VmType};
use wanify_workloads::{mixed_trace, trace_iter, TraceConfig};

const RATE_PER_S: f64 = 0.08;
const SEED: u64 = 17;

fn engine(n: usize, max_concurrent: usize, retain: usize) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), 7),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent,
            regauge_every_s: 300.0,
            retain_outcomes: retain,
            ..FleetConfig::default()
        },
    )
}

fn cfg(jobs: usize) -> TraceConfig {
    TraceConfig::new(4, jobs, 5).scaled(0.5)
}

/// The streaming arrival source: the same trace and Poisson times the
/// materialized run uses, zipped lazily.
fn stream(jobs: usize) -> Box<dyn Iterator<Item = (f64, wanify_gda::JobProfile)> + Send> {
    let times = poisson_times_iter(RATE_PER_S, SEED).unwrap();
    Box::new(times.zip(trace_iter(&cfg(jobs))))
}

fn materialized(jobs: usize, retain: usize) -> FleetReport {
    engine(4, 8, retain)
        .run(&mixed_trace(&cfg(jobs)), &Arrivals::Poisson { rate_per_s: RATE_PER_S, seed: SEED })
        .unwrap()
}

fn report_key(report: &FleetReport) -> Vec<(String, u64, u64, u64)> {
    report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.report.job.clone(),
                o.report.latency_s.to_bits(),
                o.completed_s.to_bits(),
                o.admitted_s.to_bits(),
            )
        })
        .collect()
}

#[test]
fn streamed_run_is_bit_identical_to_materialized() {
    let exact = materialized(24, usize::MAX);
    let streamed = engine(4, 8, usize::MAX).run_stream(24, stream(24)).unwrap();
    assert_eq!(report_key(&exact), report_key(&streamed));
    assert_eq!(exact.duration_s.to_bits(), streamed.duration_s.to_bits());
    assert_eq!(exact.gauges, streamed.gauges);
    assert!(!streamed.sketched());
    assert_eq!(streamed.completed(), 24);
}

#[test]
fn retention_cap_keeps_totals_exact_and_percentiles_close() {
    // 3 admission slots against a hot offered rate: real queueing, so
    // the queue-wait distribution is non-degenerate and the sketch has
    // an actual shape to track.
    let hot = 1.0;
    let exact = engine(4, 3, usize::MAX)
        .run(&mixed_trace(&cfg(160)), &Arrivals::Poisson { rate_per_s: hot, seed: SEED })
        .unwrap();
    let times = poisson_times_iter(hot, SEED).unwrap();
    let capped =
        engine(4, 3, 8).run_stream(160, Box::new(times.zip(trace_iter(&cfg(160))))).unwrap();

    // The timeline itself is untouched by accounting: the retained
    // prefix matches the exact run's first outcomes bit for bit.
    assert!(capped.sketched());
    assert_eq!(capped.outcomes.len(), 8);
    assert_eq!(report_key(&exact)[..8], report_key(&capped)[..]);
    assert_eq!(capped.completed(), 160);
    assert_eq!(capped.duration_s.to_bits(), exact.duration_s.to_bits());

    // Sums and counts absorb in the same order, so they stay bitwise
    // equal to the exact run's.
    assert_eq!(capped.failed_jobs(), exact.failed_jobs());
    assert_eq!(capped.total_egress_gb().to_bits(), exact.total_egress_gb().to_bits());
    assert_eq!(capped.total_cost_usd().to_bits(), exact.total_cost_usd().to_bits());
    assert_eq!(capped.network_cost_usd().to_bits(), exact.network_cost_usd().to_bits());
    assert_eq!(capped.throughput_jobs_per_s().to_bits(), exact.throughput_jobs_per_s().to_bits());

    // Percentiles come from the P² sketches: estimates, but close. 160
    // non-stationary samples (the queue grows through the run) is a
    // stress case for a 5-marker sketch, so the bounds here are loose —
    // this test pins the *wiring*; the dedicated sketch unit tests pin
    // 1% accuracy at 20k i.i.d. samples.
    for (sk, ex) in
        [(capped.makespan(), exact.makespan()), (capped.queue_wait(), exact.queue_wait())]
    {
        for (s, e, rel) in [(sk.p50, ex.p50, 0.25), (sk.p95, ex.p95, 0.35), (sk.p99, ex.p99, 0.35)]
        {
            // Relative bound with a small absolute floor (exact p50
            // queue wait is 0.0 when admissions are uncontended).
            let tol = rel * e.abs() + 0.05;
            assert!((s - e).abs() <= tol, "sketched {s} vs exact {e} (tol {tol})");
        }
        // The exact mean sums in sorted order, the sketch in completion
        // order: same values, different rounding — ulp-level agreement.
        assert!(
            (sk.mean - ex.mean).abs() <= 1e-9 * ex.mean.abs().max(1.0),
            "{} {}",
            sk.mean,
            ex.mean
        );
        assert_eq!(sk.max.to_bits(), ex.max.to_bits(), "max absorbs exactly");
    }
}

#[test]
fn per_class_aggregates_cover_every_job() {
    let report = engine(4, 8, 8).run_stream(40, stream(40)).unwrap();
    let classes = report.classes();
    assert!(!classes.is_empty());
    assert_eq!(classes.total_jobs(), 40, "every completion lands in exactly one class");
    for (name, stats) in classes.iter() {
        assert!(stats.jobs > 0, "class {name} exists but holds no jobs");
        assert!(stats.makespan.count() == stats.jobs);
    }
}

#[test]
fn streamed_peak_tracked_stays_bounded_by_the_cap() {
    let mut materialized_run = FleetRun::start(
        engine(4, 8, usize::MAX),
        mixed_trace(&cfg(40)),
        &Arrivals::Poisson { rate_per_s: RATE_PER_S, seed: SEED },
    )
    .unwrap();
    materialized_run.run_until(f64::INFINITY).unwrap();
    // Materialized: the whole trace plus every outcome is held at once.
    assert!(materialized_run.peak_tracked() >= 40);

    let mut streamed_run = FleetRun::start_stream(engine(4, 8, 8), 40, stream(40)).unwrap();
    streamed_run.run_until(f64::INFINITY).unwrap();
    assert!(streamed_run.finished());
    // Streamed + capped: one look-ahead arrival, the pending queue, and
    // at most `retain_outcomes` outcomes — far below the trace length.
    assert!(
        streamed_run.peak_tracked() < materialized_run.peak_tracked(),
        "streamed peak {} must undercut materialized peak {}",
        streamed_run.peak_tracked(),
        materialized_run.peak_tracked()
    );
    assert!(streamed_run.peak_tracked() <= 8 + 40, "peak {}", streamed_run.peak_tracked());
}

#[test]
fn stream_that_runs_dry_reports_a_stall_not_a_hang() {
    // Promise 10 jobs, deliver 4: the run must surface a stall error
    // once the last delivered job drains, not spin or succeed.
    let err = engine(4, 8, usize::MAX).run_stream(10, stream(4)).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("stalled"), "unexpected error: {msg}");
}

#[test]
fn decreasing_streamed_arrivals_are_rejected() {
    let jobs: Vec<_> = mixed_trace(&cfg(3));
    let ooo = vec![(5.0, jobs[0].clone()), (2.0, jobs[1].clone()), (9.0, jobs[2].clone())];
    let err = engine(4, 8, usize::MAX).run_stream(3, Box::new(ooo.into_iter())).unwrap_err();
    assert!(format!("{err}").contains("non-decreasing"), "{err}");
}
