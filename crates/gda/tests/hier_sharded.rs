//! Hierarchical backbone coupling and window-streamed sharded serving:
//! completion, determinism across repeats and thread counts, coupling
//! pressure, and equivalence between the materialized and streamed
//! drivers.

use wanify_gda::{
    poisson_arrival_times, Arrivals, FleetConfig, FleetEngine, RoundRobinShards,
    ShardedFleetEngine, ShardedFleetReport, Tetrium,
};
use wanify_netsim::{paper_testbed_n, BackboneHierarchy, LinkModelParams, NetSim, VmType};
use wanify_workloads::{mixed_trace, trace_iter, TraceConfig};

const N_DCS: usize = 8;

fn shard_engine(seed: u64, max_concurrent: usize) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), N_DCS), LinkModelParams::frozen(), seed),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig { max_concurrent, regauge_every_s: 300.0, ..FleetConfig::default() },
    )
}

/// 8 one-DC regions under a 2-tier coupling: regional trunks exchanged
/// every 2 s, continental trunks every 6 s (ratio 3).
fn hierarchy(regional_mbps: f64, continental_mbps: f64) -> BackboneHierarchy {
    let topo = paper_testbed_n(VmType::t2_medium(), N_DCS);
    BackboneHierarchy::regional_continental(&topo, regional_mbps, continental_mbps, 2.0, 6.0)
}

fn hier_sharded(n_shards: usize, regional_mbps: f64, continental_mbps: f64) -> ShardedFleetEngine {
    ShardedFleetEngine::new(
        (0..n_shards).map(|_| shard_engine(11, 16)).collect(),
        Box::new(RoundRobinShards::new()),
        None,
    )
    .with_hierarchy(hierarchy(regional_mbps, continental_mbps))
}

fn run_key(report: &ShardedFleetReport) -> Vec<(String, u64, u64, u64)> {
    report
        .fleet
        .outcomes
        .iter()
        .map(|o| {
            (
                o.report.job.clone(),
                o.report.latency_s.to_bits(),
                o.completed_s.to_bits(),
                o.admitted_s.to_bits(),
            )
        })
        .collect()
}

#[test]
fn hierarchical_fleet_completes_and_exchanges_both_tiers() {
    let trace = mixed_trace(&TraceConfig::new(N_DCS, 12, 5).scaled(0.5));
    let report = hier_sharded(3, 3000.0, 6000.0)
        .run(&trace, &Arrivals::Closed { clients: 4, think_s: 0.0 })
        .unwrap();
    assert_eq!(report.fleet.completed(), 12);
    assert_eq!(report.shards(), 3);
    // The fine tier exchanges every window, the coarse tier every third:
    // more exchanges than windows, fewer than two per window.
    assert!(report.backbone_syncs > 0);
    for pair in report.fleet.outcomes.windows(2) {
        assert!(pair[0].completed_s <= pair[1].completed_s);
    }
}

#[test]
fn hierarchical_runs_are_bit_identical_across_repeats_and_threads() {
    let trace = mixed_trace(&TraceConfig::new(N_DCS, 10, 9).scaled(0.5));
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            hier_sharded(4, 2500.0, 5000.0)
                .run(&trace, &Arrivals::Poisson { rate_per_s: 0.05, seed: 3 })
                .unwrap()
        })
    };
    let a = run_with(1);
    let b = run_with(1);
    let c = run_with(4);
    assert_eq!(run_key(&a), run_key(&b), "repeats must be bit-identical");
    assert_eq!(run_key(&a), run_key(&c), "thread count must not change results");
    assert_eq!(a.fleet.duration_s.to_bits(), c.fleet.duration_s.to_bits());
    assert_eq!(a.backbone_syncs, c.backbone_syncs);
}

#[test]
fn tight_continental_tier_slows_the_fleet() {
    // Shuffles big enough to outlive several sync windows. The regional
    // tier is wide in both runs; only the continental trunks narrow.
    let trace = mixed_trace(&TraceConfig::new(N_DCS, 8, 7).scaled(2.0));
    let arrivals = Arrivals::Closed { clients: 4, think_s: 0.0 };
    let wide = hier_sharded(2, f64::INFINITY, f64::INFINITY).run(&trace, &arrivals).unwrap();
    let narrow = hier_sharded(2, f64::INFINITY, 50.0).run(&trace, &arrivals).unwrap();
    assert!(
        narrow.fleet.makespan().mean > wide.fleet.makespan().mean,
        "a 50 Mbps continental tier must hurt: narrow {:.0}s vs wide {:.0}s",
        narrow.fleet.makespan().mean,
        wide.fleet.makespan().mean
    );
}

#[test]
fn streamed_sharded_run_matches_materialized() {
    // Same trace, same thinned Poisson schedule, same hierarchy: the
    // window-streamed driver must reproduce the materialized one.
    let cfg = TraceConfig::new(N_DCS, 16, 6).scaled(0.5);
    let trace = mixed_trace(&cfg);
    let times = poisson_arrival_times(16, 0.08, 21).unwrap();

    let materialized = hier_sharded(3, 3000.0, 6000.0)
        .run(&trace, &Arrivals::Scheduled { times: times.clone() })
        .unwrap();
    let streamed = hier_sharded(3, 3000.0, 6000.0)
        .run_stream(16, Box::new(times.into_iter().zip(trace_iter(&cfg))), usize::MAX)
        .unwrap();

    assert_eq!(run_key(&materialized), run_key(&streamed));
    assert_eq!(materialized.fleet.duration_s.to_bits(), streamed.fleet.duration_s.to_bits());
    assert_eq!(materialized.fleet.gauges, streamed.fleet.gauges);
    assert_eq!(materialized.backbone_syncs, streamed.backbone_syncs);
    assert!(!streamed.fleet.sketched(), "uncapped streamed run stays exact");
}

#[test]
fn streamed_sharded_run_caps_outcomes_without_losing_totals() {
    let cfg = TraceConfig::new(N_DCS, 24, 6).scaled(0.5);
    let times = poisson_arrival_times(24, 0.08, 21).unwrap();
    let exact = hier_sharded(3, 3000.0, 6000.0)
        .run(&mixed_trace(&cfg), &Arrivals::Scheduled { times: times.clone() })
        .unwrap();
    let capped = hier_sharded(3, 3000.0, 6000.0)
        .run_stream(24, Box::new(times.into_iter().zip(trace_iter(&cfg))), 6)
        .unwrap();

    assert!(capped.fleet.sketched());
    assert_eq!(capped.fleet.outcomes.len(), 6);
    assert_eq!(capped.fleet.completed(), 24);
    assert_eq!(capped.shard_sizes().iter().sum::<usize>(), 24);
    assert_eq!(capped.fleet.failed_jobs(), exact.fleet.failed_jobs());
    assert_eq!(
        capped.fleet.total_egress_gb().to_bits(),
        exact.fleet.total_egress_gb().to_bits(),
        "sums absorb in the same global order"
    );
    assert_eq!(capped.fleet.total_cost_usd().to_bits(), exact.fleet.total_cost_usd().to_bits());
    assert_eq!(capped.fleet.duration_s.to_bits(), exact.fleet.duration_s.to_bits());
}

#[test]
fn streamed_sharded_run_is_thread_count_invariant() {
    let cfg = TraceConfig::new(N_DCS, 12, 2).scaled(0.5);
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            let times = poisson_arrival_times(12, 0.08, 4).unwrap();
            hier_sharded(4, 2500.0, 5000.0)
                .run_stream(12, Box::new(times.into_iter().zip(trace_iter(&cfg))), 4)
                .unwrap()
        })
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(run_key(&serial), run_key(&parallel));
    assert_eq!(serial.fleet.duration_s.to_bits(), parallel.fleet.duration_s.to_bits());
    assert_eq!(serial.fleet.total_cost_usd().to_bits(), parallel.fleet.total_cost_usd().to_bits());
}

#[test]
fn streamed_stream_that_runs_dry_errors() {
    let cfg = TraceConfig::new(N_DCS, 4, 6).scaled(0.5);
    let times = poisson_arrival_times(4, 0.08, 21).unwrap();
    let err = hier_sharded(2, 3000.0, 6000.0)
        .run_stream(9, Box::new(times.into_iter().zip(trace_iter(&cfg))), usize::MAX)
        .unwrap_err();
    assert!(format!("{err}").contains("ran dry"), "{err}");
}
