//! Sharded-vs-single parity and determinism properties.
//!
//! * A **1-shard** [`ShardedFleetEngine`] must reproduce
//!   [`FleetEngine::run`] **bit for bit** across random topologies,
//!   traces, arrival processes and schedulers: a lone shard owns every
//!   backbone trunk, so no sync deadlines are imposed and the partition /
//!   merge machinery must be an exact identity.
//! * **Multi-shard** runs must be bit-identical across repeated runs and
//!   across rayon thread counts — the wall-clock scale-out must never
//!   leak into the simulated results.

use proptest::prelude::*;
use wanify_gda::{
    Arrivals, FleetConfig, FleetEngine, FleetReport, RoundRobinShards, ShardedFleetEngine, Tetrium,
    VanillaSpark,
};
use wanify_netsim::{paper_testbed_n, Backbone, LinkModelParams, NetSim, VmType};
use wanify_workloads::{mixed_trace, TraceConfig};

fn engine(n: usize, seed: u64, max_concurrent: usize, sched_id: usize) -> FleetEngine {
    let sim = NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), seed);
    let scheduler: Box<dyn wanify_gda::Scheduler> = match sched_id {
        0 => Box::new(VanillaSpark::new()),
        _ => Box::new(Tetrium::new()),
    };
    FleetEngine::new(
        sim,
        scheduler,
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent,
            regauge_every_s: 120.0,
            conns: None,
            faults: None,
            ..FleetConfig::default()
        },
    )
}

fn assert_reports_bit_identical(a: &FleetReport, b: &FleetReport) {
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.report.job, y.report.job);
        assert_eq!(x.report.latency_s.to_bits(), y.report.latency_s.to_bits(), "latency");
        assert_eq!(x.report.min_bw_mbps.to_bits(), y.report.min_bw_mbps.to_bits(), "min bw");
        assert_eq!(x.report.shuffle_gb.to_bits(), y.report.shuffle_gb.to_bits(), "shuffle");
        assert_eq!(x.arrived_s.to_bits(), y.arrived_s.to_bits(), "arrived");
        assert_eq!(x.admitted_s.to_bits(), y.admitted_s.to_bits(), "admitted");
        assert_eq!(x.completed_s.to_bits(), y.completed_s.to_bits(), "completed");
        for (e, f) in x.report.egress_gb.iter().zip(&y.report.egress_gb) {
            assert_eq!(e.to_bits(), f.to_bits(), "egress");
        }
    }
    assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits(), "duration");
    assert_eq!(a.gauges, b.gauges, "gauges");
    assert_eq!(a.scheduler, b.scheduler);
    assert_eq!(a.belief, b.belief);
    let (pa, pb) = (a.makespan(), b.makespan());
    assert_eq!(pa.p50.to_bits(), pb.p50.to_bits());
    assert_eq!(pa.p99.to_bits(), pb.p99.to_bits());
}

#[allow(clippy::too_many_arguments)]
fn check_one_shard_parity(
    n: usize,
    jobs: usize,
    trace_seed: u64,
    sim_seed: u64,
    max_concurrent: usize,
    sched_id: usize,
    poisson: bool,
    with_backbone: bool,
) {
    let trace = mixed_trace(&TraceConfig::new(n, jobs, trace_seed).scaled(0.5));
    let arrivals = if poisson {
        Arrivals::Poisson { rate_per_s: 0.05, seed: trace_seed ^ 0xA1 }
    } else {
        Arrivals::Closed { clients: 1 + (jobs % 3), think_s: 0.5 }
    };

    let single = engine(n, sim_seed, max_concurrent, sched_id).run(&trace, &arrivals).unwrap();

    let topo = paper_testbed_n(VmType::t2_medium(), n);
    let backbone = with_backbone.then(|| Backbone::continental(&topo, 500.0, 10.0));
    let sharded = ShardedFleetEngine::new(
        vec![engine(n, sim_seed, max_concurrent, sched_id)],
        Box::new(RoundRobinShards::new()),
        backbone,
    )
    .run(&trace, &arrivals)
    .unwrap();

    assert_eq!(sharded.shards(), 1);
    assert_eq!(sharded.backbone_syncs, 0, "a lone shard never epoch-exchanges");
    assert_reports_bit_identical(&sharded.fleet, &single);
    assert_reports_bit_identical(&sharded.per_shard[0], &single);
}

proptest! {
    #[test]
    fn one_shard_is_bit_identical_to_the_single_engine_fleet(
        n in 2usize..6,
        jobs in 1usize..7,
        trace_seed in 0u64..500,
        sim_seed in 0u64..100,
        max_concurrent in 1usize..5,
        sched_id in 0usize..2,
        poisson_bit in 0usize..2,
        backbone_bit in 0usize..2,
    ) {
        check_one_shard_parity(
            n,
            jobs,
            trace_seed,
            sim_seed,
            max_concurrent,
            sched_id,
            poisson_bit == 1,
            backbone_bit == 1,
        );
    }

    #[test]
    fn multi_shard_runs_are_bit_identical_across_runs_and_thread_counts(
        n in 3usize..6,
        jobs in 2usize..9,
        shards in 2usize..5,
        trace_seed in 0u64..200,
        trunk in 100.0f64..2000.0,
    ) {
        let trace = mixed_trace(&TraceConfig::new(n, jobs, trace_seed).scaled(0.5));
        let topo = paper_testbed_n(VmType::t2_medium(), n);
        let arrivals = Arrivals::Closed { clients: 2, think_s: 0.0 };
        let build = || ShardedFleetEngine::new(
            (0..shards).map(|_| engine(n, 7, 8, 1)).collect(),
            Box::new(RoundRobinShards::new()),
            Some(Backbone::continental(&topo, trunk, 5.0)),
        );
        let run_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| build().run(&trace, &arrivals).unwrap())
        };
        let a = run_with(1);
        let b = run_with(1);
        let c = run_with(4);
        assert_reports_bit_identical(&a.fleet, &b.fleet);
        assert_reports_bit_identical(&a.fleet, &c.fleet);
        prop_assert_eq!(a.backbone_syncs, c.backbone_syncs);
        prop_assert_eq!(a.fleet.outcomes.len(), jobs);
    }
}
