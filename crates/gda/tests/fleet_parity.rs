//! Single-vs-multi parity: one job driven through the fleet event loop
//! must reproduce the legacy blocking `run_job` report **bit for bit**.
//!
//! Both paths share the per-query semantics (`JobRun` mirrors `run_job`'s
//! migrate → compute → shuffle progression) but execute through entirely
//! different machinery — `run_transfers` vs `NetEngine` completion events
//! — so this property pins the refactor: a fleet of one *is* the old
//! executor.

use proptest::prelude::*;
use wanify::Pregauged;
use wanify_gda::{
    run_job, Arrivals, DataLayout, FleetConfig, FleetEngine, JobProfile, Kimchi, QueryReport,
    Scheduler, StageProfile, Tetrium, TransferOptions, VanillaSpark,
};
use wanify_netsim::{paper_testbed_n, BwMatrix, ConnMatrix, LinkModelParams, NetSim, VmType};

fn sim(n: usize, seed: u64) -> NetSim {
    NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), seed)
}

fn scheduler(id: usize) -> Box<dyn Scheduler> {
    match id {
        0 => Box::new(VanillaSpark::new()),
        1 => Box::new(Tetrium::new()),
        _ => Box::new(Kimchi::new()),
    }
}

fn assert_bit_identical(fleet: &QueryReport, legacy: &QueryReport) {
    assert_eq!(fleet.job, legacy.job);
    assert_eq!(fleet.scheduler, legacy.scheduler);
    assert_eq!(fleet.belief, legacy.belief);
    assert_eq!(fleet.latency_s.to_bits(), legacy.latency_s.to_bits(), "latency");
    assert_eq!(fleet.min_bw_mbps.to_bits(), legacy.min_bw_mbps.to_bits(), "min_bw");
    assert_eq!(fleet.shuffle_gb.to_bits(), legacy.shuffle_gb.to_bits(), "shuffle_gb");
    assert_eq!(fleet.cost.compute_usd.to_bits(), legacy.cost.compute_usd.to_bits());
    assert_eq!(fleet.cost.network_usd.to_bits(), legacy.cost.network_usd.to_bits());
    assert_eq!(fleet.cost.storage_usd.to_bits(), legacy.cost.storage_usd.to_bits());
    assert_eq!(fleet.egress_gb.len(), legacy.egress_gb.len());
    for (a, b) in fleet.egress_gb.iter().zip(&legacy.egress_gb) {
        assert_eq!(a.to_bits(), b.to_bits(), "egress");
    }
    assert_eq!(fleet.stage_latencies_s.len(), legacy.stage_latencies_s.len());
    for (a, b) in fleet.stage_latencies_s.iter().zip(&legacy.stage_latencies_s) {
        assert_eq!(a.to_bits(), b.to_bits(), "stage latency");
    }
}

#[allow(clippy::too_many_arguments)]
fn check_parity(
    n: usize,
    gb: f64,
    skew_to_first: bool,
    sel: f64,
    compute: f64,
    sched_id: usize,
    conns_per_pair: u32,
    bw_scale: f64,
    seed: u64,
) {
    let mut layout = DataLayout::uniform(n, gb);
    if skew_to_first {
        let half = layout.blocks_per_dc[1] / 2;
        layout.move_blocks(1, 0, half);
    }
    let job = JobProfile::new(
        "parity",
        layout,
        vec![
            StageProfile::shuffling("map", sel, compute),
            StageProfile::shuffling("join", 0.6, 0.5 * compute),
            StageProfile::terminal("agg", 0.1, 0.2),
        ],
    );
    // A synthetic, topology-shaped belief: no probing, no RNG, so both
    // paths plan on exactly the same matrix.
    let bw = BwMatrix::from_fn(n, |i, j| {
        if i == j {
            0.0
        } else {
            bw_scale * (1.0 + ((i * 7 + j * 3) % 5) as f64 * 0.25)
        }
    });
    let conns = ConnMatrix::from_fn(n, |i, j| if i == j { 1 } else { conns_per_pair });

    let legacy = run_job(
        &mut sim(n, seed),
        &job,
        scheduler(sched_id).as_ref(),
        &mut Pregauged::new(bw.clone()),
        TransferOptions { conns: Some(&conns), hook: None },
    )
    .unwrap();

    let fleet_report = FleetEngine::new(
        sim(n, seed),
        scheduler(sched_id),
        Box::new(Pregauged::new(bw)),
        FleetConfig {
            max_concurrent: 1,
            regauge_every_s: f64::INFINITY,
            conns: Some(conns),
            faults: None,
            ..FleetConfig::default()
        },
    )
    .run(std::slice::from_ref(&job), &Arrivals::Closed { clients: 1, think_s: 0.0 })
    .unwrap();

    assert_eq!(fleet_report.outcomes.len(), 1);
    assert_bit_identical(&fleet_report.outcomes[0].report, &legacy);
}

proptest! {
    #[test]
    fn lone_fleet_job_matches_blocking_run_job(
        n in 2usize..5,
        gb in 0.0f64..6.0,
        skew_bit in 0usize..2,
        sel in 0.05f64..1.2,
        compute in 0.0f64..3.0,
        sched_id in 0usize..3,
        conns_per_pair in 1u32..5,
        bw_scale in 50.0f64..1500.0,
        seed in 0u64..1_000,
    ) {
        check_parity(n, gb, skew_bit == 1, sel, compute, sched_id, conns_per_pair, bw_scale, seed);
    }
}

#[test]
fn parity_holds_on_the_paper_testbed_with_migration() {
    // Kimchi migrates input; 8 DCs exercises every region pair.
    check_parity(8, 12.0, true, 1.0, 2.0, 2, 4, 400.0, 77);
}

#[test]
fn parity_holds_for_a_computeless_shuffleless_job() {
    check_parity(3, 0.0, false, 0.5, 0.0, 0, 1, 200.0, 5);
}
