//! Multi-tenant fleet engine: many queries, one shared WAN.
//!
//! [`run_job`](crate::run_job) grants each query exclusive use of the
//! simulator, so cross-query contention — the regime Tetrium (Hung et
//! al., EuroSys'18) and Kimchi (Oh et al., TPDS'21) actually target — is
//! unrepresentable there. [`FleetEngine`] lifts the same per-job state
//! machine ([`JobRun`]) onto the resumable
//! [`NetEngine`](wanify_netsim::NetEngine): every admitted query's
//! shuffles are job-tagged flow groups contending under weighted max-min
//! fairness with everyone else's, and the engine's completion events
//! drive the per-job `migrate → compute → shuffle` progressions.
//!
//! The fleet adds the serving-layer concerns around that core:
//!
//! * an **arrival queue** — deterministic seeded Poisson ([`Arrivals::Poisson`])
//!   or closed-loop clients ([`Arrivals::Closed`]);
//! * **admission control** — at most [`FleetConfig::max_concurrent`]
//!   queries run at once, the rest wait (queue time is reported);
//! * a **shared belief cache** — one [`BandwidthSource`] serves every
//!   tenant, re-gauged only when older than
//!   [`FleetConfig::regauge_every_s`] simulated seconds, amortizing the
//!   monitoring cost the paper's Table 2 measures across queries;
//! * **fleet statistics** — completed/s, queue-wait and makespan
//!   percentiles, egress dollars.
//!
//! Everything is seeded and deterministic: identical inputs produce
//! bit-identical [`FleetReport`]s.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::executor::{JobRun, JobStep};
use crate::job::JobProfile;
use crate::scheduler::Scheduler;
use crate::QueryReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wanify::source::BandwidthSource;
use wanify::WanifyError;
use wanify_netsim::{BwMatrix, ConnMatrix, GroupId, NetEngine, NetSim};

/// Serving-layer knobs of a [`FleetEngine`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Admission limit: queries running concurrently (≥ 1).
    pub max_concurrent: usize,
    /// Shared-belief staleness bound, simulated seconds: a gauge older
    /// than this is refreshed at the next admission. `f64::INFINITY`
    /// gauges exactly once; `0.0` re-gauges per admission (per-query
    /// monitoring, as `run_job` does).
    pub regauge_every_s: f64,
    /// Per-shuffle parallel-connection matrix applied to every job;
    /// `None` means single connections (vanilla Spark).
    pub conns: Option<ConnMatrix>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self { max_concurrent: 16, regauge_every_s: 60.0, conns: None }
    }
}

/// How jobs arrive at the fleet.
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Open loop: Poisson arrivals at `rate_per_s`, sampled with a
    /// dedicated seeded stream (deterministic, independent of the
    /// simulator's seed).
    Poisson {
        /// Mean arrivals per simulated second (> 0).
        rate_per_s: f64,
        /// Seed of the interarrival stream.
        seed: u64,
    },
    /// Closed loop: `clients` concurrent clients submit one job each at
    /// t = 0 and the next one `think_s` seconds after their previous job
    /// completes.
    Closed {
        /// Number of concurrent clients (≥ 1).
        clients: usize,
        /// Think time between a completion and the next submission.
        think_s: f64,
    },
}

/// One query's fleet-level outcome.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The per-query report, exactly as `run_job` would shape it.
    pub report: QueryReport,
    /// Simulated time the job entered the arrival queue.
    pub arrived_s: f64,
    /// Simulated time the job was admitted (started running).
    pub admitted_s: f64,
    /// Simulated time the job finished.
    pub completed_s: f64,
}

impl JobOutcome {
    /// Seconds spent waiting in the arrival queue.
    pub fn queue_wait_s(&self) -> f64 {
        self.admitted_s - self.arrived_s
    }

    /// Wall-clock makespan from admission to completion (includes
    /// contention slowdown and any monitoring windows).
    pub fn makespan_s(&self) -> f64 {
        self.completed_s - self.admitted_s
    }
}

/// Order statistics of a sample, nearest-rank percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Computes the statistics of `values` (all zero when empty).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { p50: 0.0, p95: 0.0, p99: 0.0, mean: 0.0, max: 0.0 };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        Self {
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Aggregate outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-job outcomes in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Simulated seconds from the first arrival to the last completion.
    pub duration_s: f64,
    /// How often the shared belief was actually gauged (the amortization
    /// the belief cache buys; `run_job` would have gauged once per query).
    pub gauges: u64,
    /// Scheduler that served the fleet.
    pub scheduler: String,
    /// Provenance of the shared bandwidth belief.
    pub belief: String,
}

impl FleetReport {
    /// Completed queries per simulated second.
    pub fn throughput_jobs_per_s(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.outcomes.len() as f64 / self.duration_s
        } else {
            0.0
        }
    }

    /// Queue-wait order statistics.
    pub fn queue_wait(&self) -> Percentiles {
        let w: Vec<f64> = self.outcomes.iter().map(JobOutcome::queue_wait_s).collect();
        Percentiles::of(&w)
    }

    /// Admission-to-completion makespan order statistics.
    pub fn makespan(&self) -> Percentiles {
        let m: Vec<f64> = self.outcomes.iter().map(JobOutcome::makespan_s).collect();
        Percentiles::of(&m)
    }

    /// Total egress gigabytes that crossed the WAN.
    pub fn total_egress_gb(&self) -> f64 {
        self.outcomes.iter().map(|o| o.report.egress_gb.iter().sum::<f64>()).sum()
    }

    /// Total dollars across all queries (compute + network + storage).
    pub fn total_cost_usd(&self) -> f64 {
        self.outcomes.iter().map(|o| o.report.cost.total_usd()).sum()
    }

    /// Network (egress) dollars across all queries.
    pub fn network_cost_usd(&self) -> f64 {
        self.outcomes.iter().map(|o| o.report.cost.network_usd).sum()
    }
}

/// A timer in the fleet's event queue. Ordered by time then sequence
/// number, so ties break deterministically in insertion order.
#[derive(Debug)]
struct Timer {
    at_s: f64,
    seq: u64,
    kind: TimerKind,
}

#[derive(Debug)]
enum TimerKind {
    /// Job `job_idx` joins the arrival queue.
    Arrival(usize),
    /// The compute phase of the run in `slot` finishes.
    ComputeDone(usize),
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest timer pops
        // first.
        other.at_s.total_cmp(&self.at_s).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A running query: its state machine plus fleet-level timestamps.
#[derive(Debug)]
struct ActiveRun {
    run: JobRun,
    arrived_s: f64,
    admitted_s: f64,
}

/// The multi-tenant serving engine. See the module docs.
///
/// Construction wires a simulator, one scheduler and one shared
/// [`BandwidthSource`]; [`FleetEngine::run`] consumes the engine and a
/// job trace and returns the [`FleetReport`].
pub struct FleetEngine {
    engine: NetEngine,
    scheduler: Box<dyn Scheduler>,
    source: Box<dyn BandwidthSource>,
    config: FleetConfig,
    /// Shared belief cache: the gauged matrix and when it was gauged.
    belief: Option<(BwMatrix, f64)>,
    gauges: u64,
}

impl std::fmt::Debug for FleetEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetEngine")
            .field("scheduler", &self.scheduler.name())
            .field("belief", &self.source.name())
            .field("config", &self.config)
            .field("gauges", &self.gauges)
            .finish()
    }
}

impl FleetEngine {
    /// Builds a fleet over `sim`, serving every query with `scheduler`
    /// planning on the shared `source` belief.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_concurrent` is 0.
    pub fn new(
        sim: NetSim,
        scheduler: Box<dyn Scheduler>,
        source: Box<dyn BandwidthSource>,
        config: FleetConfig,
    ) -> Self {
        assert!(config.max_concurrent >= 1, "admission limit must allow at least one query");
        Self { engine: NetEngine::new(sim), scheduler, source, config, belief: None, gauges: 0 }
    }

    /// Read access to the underlying simulator (topology, time, stats).
    pub fn sim(&self) -> &NetSim {
        self.engine.sim()
    }

    /// Runs `jobs` to completion under the given arrival process and
    /// returns the fleet report. Deterministic: same inputs, bit-identical
    /// output.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] when the shared source fails to gauge the
    /// network, when a job's layout does not match the topology, or when
    /// the configuration cannot make progress (e.g. a Poisson rate that is
    /// not finite and positive).
    pub fn run(
        mut self,
        jobs: &[JobProfile],
        arrivals: &Arrivals,
    ) -> Result<FleetReport, WanifyError> {
        let mut timers: BinaryHeap<Timer> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let push = |timers: &mut BinaryHeap<Timer>, seq: &mut u64, at_s: f64, kind: TimerKind| {
            timers.push(Timer { at_s, seq: *seq, kind });
            *seq += 1;
        };

        // Closed-loop bookkeeping: the index of the next unsubmitted job.
        let mut next_closed_job = 0usize;
        let mut closed_think_s = 0.0;
        match arrivals {
            Arrivals::Poisson { rate_per_s, seed } => {
                if !(rate_per_s.is_finite() && *rate_per_s > 0.0) {
                    return Err(WanifyError::InvalidConfig(format!(
                        "Poisson arrival rate must be finite and positive, got {rate_per_s}"
                    )));
                }
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = 0.0;
                for idx in 0..jobs.len() {
                    // Exponential interarrivals: -ln(1-U)/λ, U ∈ [0, 1).
                    let u: f64 = rng.gen();
                    t += -(1.0 - u).ln() / rate_per_s;
                    push(&mut timers, &mut seq, t, TimerKind::Arrival(idx));
                }
            }
            Arrivals::Closed { clients, think_s } => {
                if *clients == 0 {
                    return Err(WanifyError::InvalidConfig(
                        "closed-loop arrivals need at least one client".into(),
                    ));
                }
                closed_think_s = think_s.max(0.0);
                next_closed_job = (*clients).min(jobs.len());
                for idx in 0..next_closed_job {
                    push(&mut timers, &mut seq, 0.0, TimerKind::Arrival(idx));
                }
            }
        }
        let closed_loop = matches!(arrivals, Arrivals::Closed { .. });
        let closed_clients = next_closed_job;

        let mut pending: VecDeque<(usize, f64)> = VecDeque::new();
        let mut slots: Vec<Option<ActiveRun>> = Vec::new();
        let mut group_owner: HashMap<GroupId, usize> = HashMap::new();
        let mut running = 0usize;
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
        let mut first_arrival_s = f64::INFINITY;

        while outcomes.len() < jobs.len() {
            let now = self.engine.sim().time_s();

            // Closed loop: every completion frees a client, who thinks for
            // `think_s` and submits the next job. Checked at the loop top
            // so completions from any path (timer or engine event) pace
            // the next submission.
            if closed_loop {
                while next_closed_job < jobs.len()
                    && next_closed_job < closed_clients + outcomes.len()
                {
                    push(
                        &mut timers,
                        &mut seq,
                        now + closed_think_s,
                        TimerKind::Arrival(next_closed_job),
                    );
                    next_closed_job += 1;
                }
            }

            // Fire every timer that is due (ties in insertion order).
            let mut fired = false;
            while timers.peek().is_some_and(|t| t.at_s <= now + 1e-9) {
                fired = true;
                let timer = timers.pop().expect("peeked");
                match timer.kind {
                    TimerKind::Arrival(idx) => {
                        first_arrival_s = first_arrival_s.min(now);
                        pending.push_back((idx, now));
                    }
                    TimerKind::ComputeDone(slot) => {
                        let step = {
                            let active =
                                slots[slot].as_mut().expect("compute timer for a live run");
                            active.run.on_compute_done(
                                self.scheduler.as_ref(),
                                self.engine.sim().topology(),
                            )
                        };
                        self.dispatch(
                            slot,
                            step,
                            &mut timers,
                            &mut seq,
                            &mut slots,
                            &mut group_owner,
                            &mut running,
                            &mut outcomes,
                        );
                    }
                }
            }

            // Admit from the queue while the limit allows.
            while running < self.config.max_concurrent && !pending.is_empty() {
                let (idx, arrived_s) = pending.pop_front().expect("non-empty");
                let slot = self.admit(&jobs[idx], arrived_s, &mut slots)?;
                let step = {
                    let active = slots[slot].as_mut().expect("just admitted");
                    active.run.start(self.scheduler.as_ref(), self.engine.sim().topology())
                };
                running += 1;
                self.dispatch(
                    slot,
                    step,
                    &mut timers,
                    &mut seq,
                    &mut slots,
                    &mut group_owner,
                    &mut running,
                    &mut outcomes,
                );
            }
            if fired {
                // Firing may have queued work that changes what "next
                // timer" means; re-evaluate before advancing time.
                continue;
            }
            if outcomes.len() == jobs.len() {
                break;
            }

            let next_timer_s = timers.peek().map_or(f64::INFINITY, |t| t.at_s);
            if self.engine.is_idle() && next_timer_s.is_infinite() {
                return Err(WanifyError::InvalidConfig(format!(
                    "fleet stalled with {} of {} jobs unfinished",
                    jobs.len() - outcomes.len(),
                    jobs.len()
                )));
            }
            let events = self.engine.advance_until(next_timer_s);
            if events.is_empty()
                && next_timer_s.is_infinite()
                && !self.engine.is_idle()
                && !self.engine.has_live_flows()
            {
                // No timer to wake us, groups in flight, and every
                // remaining flow is rate-zero (e.g. a 0-Mbps throttle on
                // a shuffled pair): no amount of stepping will ever drain
                // them. Surface the stall instead of spinning forever.
                // (An empty result with *live* flows just means the
                // engine's per-call epoch budget ran out on a slow
                // transfer; the next iteration keeps advancing it.)
                return Err(WanifyError::InvalidConfig(format!(
                    "fleet stalled: in-flight transfers cannot make progress \
                     ({} of {} jobs unfinished)",
                    jobs.len() - outcomes.len(),
                    jobs.len()
                )));
            }
            for event in events {
                let slot = group_owner.remove(&event.group).expect("every group has an owner");
                let step = {
                    let active = slots[slot].as_mut().expect("group completion for a live run");
                    active.run.on_shuffle_done(&event, self.engine.sim().topology())
                };
                self.dispatch(
                    slot,
                    step,
                    &mut timers,
                    &mut seq,
                    &mut slots,
                    &mut group_owner,
                    &mut running,
                    &mut outcomes,
                );
            }
        }

        let duration_s = if first_arrival_s.is_finite() {
            self.engine.sim().time_s() - first_arrival_s
        } else {
            0.0
        };
        Ok(FleetReport {
            outcomes,
            duration_s,
            gauges: self.gauges,
            scheduler: self.scheduler.name().to_string(),
            belief: self.source.name().to_string(),
        })
    }

    /// Admits one job: refreshes the shared belief if stale and builds its
    /// state machine in a free slot.
    fn admit(
        &mut self,
        job: &JobProfile,
        arrived_s: f64,
        slots: &mut Vec<Option<ActiveRun>>,
    ) -> Result<usize, WanifyError> {
        let now = self.engine.sim().time_s();
        let stale = match &self.belief {
            None => true,
            Some((_, gauged_at)) => now - gauged_at >= self.config.regauge_every_s,
        };
        if stale {
            // Gauging probes the live network and costs simulated time —
            // the monitoring cost the shared cache amortizes over tenants.
            let bw = self.source.gauge(self.engine.sim_mut())?;
            let gauged_at = self.engine.sim().time_s();
            self.belief = Some((bw, gauged_at));
            self.gauges += 1;
        }
        let (bw, _) = self.belief.as_ref().expect("belief gauged above");
        let run = JobRun::new(
            job.clone(),
            bw.clone(),
            self.source.name(),
            self.scheduler.as_ref(),
            self.engine.sim().topology(),
            self.config.conns.clone(),
        )?;
        let admitted_s = self.engine.sim().time_s();
        let active = ActiveRun { run, arrived_s, admitted_s };
        let slot = slots.iter().position(Option::is_none).unwrap_or_else(|| {
            slots.push(None);
            slots.len() - 1
        });
        slots[slot] = Some(active);
        Ok(slot)
    }

    /// Executes one [`JobStep`]: schedules a timer, submits a flow group,
    /// or finalizes the run.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        slot: usize,
        step: JobStep,
        timers: &mut BinaryHeap<Timer>,
        seq: &mut u64,
        slots: &mut [Option<ActiveRun>],
        group_owner: &mut HashMap<GroupId, usize>,
        running: &mut usize,
        outcomes: &mut Vec<JobOutcome>,
    ) {
        let now = self.engine.sim().time_s();
        match step {
            JobStep::Compute { seconds } => {
                timers.push(Timer {
                    at_s: now + seconds,
                    seq: *seq,
                    kind: TimerKind::ComputeDone(slot),
                });
                *seq += 1;
            }
            JobStep::Shuffle { transfers, conns, migration: _ } => {
                let id = self.engine.submit(&transfers, &conns);
                group_owner.insert(id, slot);
            }
            JobStep::Done(report) => {
                let active = slots[slot].take().expect("finalizing a live run");
                *running -= 1;
                outcomes.push(JobOutcome {
                    report: *report,
                    arrived_s: active.arrived_s,
                    admitted_s: active.admitted_s,
                    completed_s: now,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::StageProfile;
    use crate::scheduler::{Tetrium, VanillaSpark};
    use crate::storage::DataLayout;
    use wanify::Pregauged;
    use wanify_netsim::{paper_testbed_n, LinkModelParams, VmType};

    fn sim(n: usize, seed: u64) -> NetSim {
        NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), seed)
    }

    fn small_job(n: usize, gb: f64, name: &str) -> JobProfile {
        JobProfile::new(
            name,
            DataLayout::uniform(n, gb),
            vec![
                StageProfile::shuffling("map", 1.0, 1.0),
                StageProfile::terminal("reduce", 0.05, 0.5),
            ],
        )
    }

    fn fleet(n: usize, seed: u64, config: FleetConfig) -> FleetEngine {
        FleetEngine::new(
            sim(n, seed),
            Box::new(Tetrium::new()),
            Box::new(wanify::StaticIndependent::new()),
            config,
        )
    }

    #[test]
    fn poisson_fleet_completes_every_job() {
        let jobs: Vec<JobProfile> =
            (0..8).map(|i| small_job(3, 1.0 + 0.5 * i as f64, &format!("j{i}"))).collect();
        let report = fleet(3, 1, FleetConfig::default())
            .run(&jobs, &Arrivals::Poisson { rate_per_s: 0.05, seed: 9 })
            .unwrap();
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.duration_s > 0.0);
        assert!(report.throughput_jobs_per_s() > 0.0);
        for o in &report.outcomes {
            assert!(o.report.latency_s > 0.0);
            assert!(o.completed_s >= o.admitted_s);
            assert!(o.admitted_s >= o.arrived_s);
        }
    }

    #[test]
    fn closed_loop_respects_client_count() {
        let jobs: Vec<JobProfile> = (0..6).map(|i| small_job(3, 2.0, &format!("c{i}"))).collect();
        let report = fleet(3, 2, FleetConfig::default())
            .run(&jobs, &Arrivals::Closed { clients: 2, think_s: 1.0 })
            .unwrap();
        assert_eq!(report.outcomes.len(), 6);
        // With 2 clients, at most 2 jobs overlap; arrival times beyond the
        // first two must be strictly after some completion.
        let later_arrivals = report.outcomes.iter().filter(|o| o.arrived_s > 0.0).count();
        assert_eq!(later_arrivals, 4);
    }

    #[test]
    fn admission_limit_queues_excess_jobs() {
        let jobs: Vec<JobProfile> = (0..4).map(|i| small_job(3, 4.0, &format!("q{i}"))).collect();
        let config = FleetConfig { max_concurrent: 1, ..FleetConfig::default() };
        let report =
            fleet(3, 3, config).run(&jobs, &Arrivals::Closed { clients: 4, think_s: 0.0 }).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        assert!(report.queue_wait().max > 0.0, "with one admission slot, someone must have waited");
    }

    #[test]
    fn shared_belief_cache_amortizes_gauges() {
        let jobs: Vec<JobProfile> = (0..6).map(|i| small_job(3, 1.0, &format!("g{i}"))).collect();
        let fresh = FleetEngine::new(
            sim(3, 4),
            Box::new(Tetrium::new()),
            Box::new(wanify::MeasuredRuntime::default()),
            FleetConfig { regauge_every_s: 0.0, ..FleetConfig::default() },
        )
        .run(&jobs, &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap();
        let cached = FleetEngine::new(
            sim(3, 4),
            Box::new(Tetrium::new()),
            Box::new(wanify::MeasuredRuntime::default()),
            FleetConfig { regauge_every_s: f64::INFINITY, ..FleetConfig::default() },
        )
        .run(&jobs, &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap();
        assert_eq!(fresh.gauges, 6, "regauge_every_s = 0 gauges per admission");
        assert_eq!(cached.gauges, 1, "an infinite staleness bound gauges once");
        assert!(cached.duration_s < fresh.duration_s, "monitoring costs simulated time");
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let jobs: Vec<JobProfile> =
            (0..5).map(|i| small_job(4, 1.0 + i as f64, &format!("d{i}"))).collect();
        let run = || {
            fleet(4, 7, FleetConfig::default())
                .run(&jobs, &Arrivals::Poisson { rate_per_s: 0.02, seed: 11 })
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.report.latency_s.to_bits(), y.report.latency_s.to_bits());
            assert_eq!(x.completed_s.to_bits(), y.completed_s.to_bits());
        }
        assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
    }

    #[test]
    fn layout_mismatch_surfaces_as_error() {
        let jobs = vec![small_job(3, 1.0, "bad")];
        let err = fleet(4, 5, FleetConfig::default())
            .run(&jobs, &Arrivals::Closed { clients: 1, think_s: 0.0 })
            .unwrap_err();
        assert!(matches!(err, WanifyError::DimensionMismatch { expected: 4, got: 3 }));
    }

    #[test]
    fn wrong_sized_conns_matrix_is_an_error_not_a_panic() {
        let jobs = vec![small_job(4, 1.0, "c")];
        let err = FleetEngine::new(
            sim(4, 5),
            Box::new(Tetrium::new()),
            Box::new(wanify::StaticIndependent::new()),
            FleetConfig { conns: Some(ConnMatrix::filled(3, 2)), ..FleetConfig::default() },
        )
        .run(&jobs, &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap_err();
        assert!(matches!(err, WanifyError::DimensionMismatch { expected: 4, got: 3 }));
    }

    #[test]
    fn zero_rate_transfers_stall_with_an_error_not_a_hang() {
        use wanify_netsim::DcId;
        let mut s = sim(3, 8);
        // A 0-Mbps throttle on a pair every uniform shuffle must cross:
        // the transfer can never drain.
        s.set_throttle(DcId(0), DcId(1), 0.0);
        let err = FleetEngine::new(
            s,
            Box::new(VanillaSpark::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            FleetConfig::default(),
        )
        .run(&[small_job(3, 2.0, "stuck")], &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap_err();
        assert!(matches!(err, WanifyError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn invalid_poisson_rate_is_rejected() {
        let jobs = vec![small_job(3, 1.0, "r")];
        let err = fleet(3, 5, FleetConfig::default())
            .run(&jobs, &Arrivals::Poisson { rate_per_s: 0.0, seed: 1 })
            .unwrap_err();
        assert!(matches!(err, WanifyError::InvalidConfig(_)));
    }

    #[test]
    fn vanilla_fleet_runs_with_pregauged_belief() {
        let n = 3;
        let jobs: Vec<JobProfile> = (0..3).map(|i| small_job(n, 2.0, &format!("p{i}"))).collect();
        let belief = Pregauged::new(BwMatrix::filled(n, 300.0));
        let report = FleetEngine::new(
            sim(n, 6),
            Box::new(VanillaSpark::new()),
            Box::new(belief),
            FleetConfig::default(),
        )
        .run(&jobs, &Arrivals::Closed { clients: 3, think_s: 0.0 })
        .unwrap();
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.belief, "pregauged");
        assert_eq!(report.gauges, 1);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = Percentiles::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.p95, 4.0);
        assert_eq!(p.max, 4.0);
        assert!((p.mean - 2.5).abs() < 1e-12);
        let empty = Percentiles::of(&[]);
        assert_eq!(empty.p99, 0.0);
    }
}
