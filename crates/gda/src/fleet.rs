//! Multi-tenant fleet engine: many queries, one shared WAN.
//!
//! [`run_job`](crate::run_job) grants each query exclusive use of the
//! simulator, so cross-query contention — the regime Tetrium (Hung et
//! al., EuroSys'18) and Kimchi (Oh et al., TPDS'21) actually target — is
//! unrepresentable there. [`FleetEngine`] lifts the same per-job state
//! machine ([`JobRun`]) onto the resumable
//! [`NetEngine`](wanify_netsim::NetEngine): every admitted query's
//! shuffles are job-tagged flow groups contending under weighted max-min
//! fairness with everyone else's, and the engine's completion events
//! drive the per-job `migrate → compute → shuffle` progressions.
//!
//! The fleet adds the serving-layer concerns around that core:
//!
//! * an **arrival queue** — deterministic seeded Poisson ([`Arrivals::Poisson`])
//!   or closed-loop clients ([`Arrivals::Closed`]);
//! * **admission control** — at most [`FleetConfig::max_concurrent`]
//!   queries run at once, the rest wait (queue time is reported);
//! * a **shared belief cache** — one [`BandwidthSource`] serves every
//!   tenant, re-gauged only when older than
//!   [`FleetConfig::regauge_every_s`] simulated seconds, amortizing the
//!   monitoring cost the paper's Table 2 measures across queries;
//! * **fleet statistics** — completed/s, queue-wait and makespan
//!   percentiles, egress dollars.
//!
//! Everything is seeded and deterministic: identical inputs produce
//! bit-identical [`FleetReport`]s.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use crate::executor::{JobRun, JobStep};
use crate::job::JobProfile;
use crate::scheduler::Scheduler;
use crate::sketch::{ClassAggregates, StreamingPercentiles};
use crate::QueryReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wanify::source::BandwidthSource;
use wanify::WanifyError;
use wanify_netsim::{BwMatrix, ConnMatrix, DcId, EpochCtx, EpochHook, GroupId, NetEngine, NetSim};

/// Recovery knobs for a failure-aware fleet.
///
/// With a policy installed (see [`FleetConfig::faults`]), a flow group
/// whose every remaining pair holds a zero rate — e.g. because a
/// [`wanify_netsim::FaultSchedule`] downed a DC it must cross — is put
/// under watch; if it is still stalled `stall_timeout_s` later, the fleet
/// cancels it, re-places the dead-destination remainder through the
/// scheduler, and resubmits after an exponential backoff. A job whose
/// shuffle stalls more than `max_retries` times is aborted and reported
/// failed (with its partial accounting) instead of wedging the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Seconds a group must stay rate-zero before the fleet intervenes
    /// (short transients — a link flap healing on its own — ride through).
    pub stall_timeout_s: f64,
    /// Stall interventions allowed per job before it is failed.
    pub max_retries: u32,
    /// Base of the exponential resubmit backoff: retry `k` resubmits
    /// `backoff_base_s · 2^(k-1)` seconds after the cancel.
    pub backoff_base_s: f64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self { stall_timeout_s: 30.0, max_retries: 3, backoff_base_s: 15.0 }
    }
}

/// Fault-attributed counters of one fleet run (all zero without faults).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultCounters {
    /// Undelivered transfers collected from cancelled stalled groups.
    pub stalled_flows: u64,
    /// Stall interventions that led to a resubmission.
    pub retries: u64,
    /// Transfers re-placed to a different (alive) destination DC.
    pub replacements: u64,
    /// Jobs aborted after exhausting [`FaultPolicy::max_retries`].
    pub failed_jobs: u64,
    /// Simulated seconds the WAN spent with any fault active (from
    /// [`wanify_netsim::NetSim::degraded_s`]).
    pub degraded_s: f64,
}

/// Serving-layer counters of a gateway-fronted run (all zero when the
/// fleet replayed a plain trace with no gateway in front).
///
/// The gateway crate folds its admission decisions into these so one
/// [`FleetReport`] carries the whole serving story: how much load was
/// offered, how much was refused at the front door, shed from the queue,
/// or served late, and how the belief circuit breaker behaved.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServingCounters {
    /// Requests offered to the gateway (admitted or not).
    pub offered: u64,
    /// Requests refused because the submission queue was full.
    pub rejected: u64,
    /// Requests refused by a per-tenant-class token bucket.
    pub quota_rejected: u64,
    /// Queued requests shed because their predicted makespan could no
    /// longer meet their deadline.
    pub shed_jobs: u64,
    /// Requests served to completion but past their deadline.
    pub deadline_misses: u64,
    /// Times the belief circuit breaker tripped open (including re-trips
    /// from a failed half-open probe).
    pub breaker_trips: u64,
    /// Gauges answered by the fallback belief while the primary was
    /// failing or the breaker was open.
    pub breaker_fallbacks: u64,
    /// Half-open probes that found the primary healthy again.
    pub breaker_recoveries: u64,
}

/// Serving-layer knobs of a [`FleetEngine`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Admission limit: queries running concurrently (≥ 1).
    pub max_concurrent: usize,
    /// Shared-belief staleness bound, simulated seconds: a gauge older
    /// than this is refreshed at the next admission. `f64::INFINITY`
    /// gauges exactly once; `0.0` re-gauges per admission (per-query
    /// monitoring, as `run_job` does).
    pub regauge_every_s: f64,
    /// Per-shuffle parallel-connection matrix applied to every job;
    /// `None` means single connections (vanilla Spark).
    pub conns: Option<ConnMatrix>,
    /// Stall detection and recovery; `None` keeps the legacy behaviour
    /// (a permanently stalled flow is a fleet error, not a retry).
    pub faults: Option<FaultPolicy>,
    /// Per-query [`JobOutcome`] retention cap. Completions beyond this
    /// many are still fully accounted — streaming P² percentile sketches
    /// and per-tenant-class aggregates absorb every query — but their
    /// individual outcomes are dropped, bounding the run's memory at any
    /// fleet size. The default (`usize::MAX`) retains everything, so
    /// reports stay exact and bit-identical to the uncapped engine; a
    /// capped run's report is [`sketched`](FleetReport::sketched).
    pub retain_outcomes: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            max_concurrent: 16,
            regauge_every_s: 60.0,
            conns: None,
            faults: None,
            retain_outcomes: usize::MAX,
        }
    }
}

/// How jobs arrive at the fleet.
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Open loop: Poisson arrivals at `rate_per_s`, sampled with a
    /// dedicated seeded stream (deterministic, independent of the
    /// simulator's seed).
    Poisson {
        /// Mean arrivals per simulated second (> 0).
        rate_per_s: f64,
        /// Seed of the interarrival stream.
        seed: u64,
    },
    /// Closed loop: `clients` concurrent clients submit one job each at
    /// t = 0 and the next one `think_s` seconds after their previous job
    /// completes.
    Closed {
        /// Number of concurrent clients (≥ 1).
        clients: usize,
        /// Think time between a completion and the next submission.
        think_s: f64,
    },
    /// Open loop with explicit absolute arrival times: job `i` arrives at
    /// `times[i]` simulated seconds. The scenario harness uses this for
    /// deterministic flash crowds (many arrivals at one instant) timed
    /// against a fault schedule.
    Scheduled {
        /// Arrival time per job of the trace (finite, ≥ 0).
        times: Vec<f64>,
    },
}

/// One query's fleet-level outcome.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Index of the job in the run's submission order (the trace index,
    /// or the value [`FleetRun::submit_job`] returned). Outcomes land in
    /// completion order, so this is the join key back to the request.
    pub job_idx: usize,
    /// The per-query report, exactly as `run_job` would shape it.
    pub report: QueryReport,
    /// Simulated time the job entered the arrival queue.
    pub arrived_s: f64,
    /// Simulated time the job was admitted (started running).
    pub admitted_s: f64,
    /// Simulated time the job finished.
    pub completed_s: f64,
    /// Whether the job was aborted after exhausting its fault-policy
    /// retries (its report then carries partial accounting).
    pub failed: bool,
}

impl JobOutcome {
    /// Seconds spent waiting in the arrival queue.
    pub fn queue_wait_s(&self) -> f64 {
        self.admitted_s - self.arrived_s
    }

    /// Wall-clock makespan from admission to completion (includes
    /// contention slowdown and any monitoring windows).
    pub fn makespan_s(&self) -> f64 {
        self.completed_s - self.admitted_s
    }
}

/// Order statistics of a sample, nearest-rank percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Computes the statistics of `values` (all zero when empty).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { p50: 0.0, p95: 0.0, p99: 0.0, mean: 0.0, max: 0.0 };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        Self {
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Constant-memory accounting of a fleet run: everything the report
/// needs that would otherwise be recomputed by iterating the retained
/// [`JobOutcome`]s — which a capped run no longer has. Fed one outcome
/// at a time in completion order, so an uncapped run's totals are
/// bit-identical to iterating its outcome vector.
#[derive(Debug, Clone, Default)]
pub struct StreamingTotals {
    /// Queries completed (including failed ones).
    pub completed: usize,
    /// Queries aborted by the fault policy.
    pub failed: usize,
    /// Streaming queue-wait statistics (arrival → admission).
    pub queue_wait: StreamingPercentiles,
    /// Streaming makespan statistics (admission → completion).
    pub makespan: StreamingPercentiles,
    /// Total egress gigabytes that crossed the WAN.
    pub egress_gb: f64,
    /// Total dollars across all queries (compute + network + storage).
    pub cost_usd: f64,
    /// Network (egress) dollars across all queries.
    pub network_cost_usd: f64,
    /// Per-tenant-class roll-ups, keyed by workload family.
    pub classes: ClassAggregates,
}

impl StreamingTotals {
    /// Absorbs one completed query, in completion order.
    pub fn absorb(&mut self, outcome: &JobOutcome) {
        self.completed += 1;
        if outcome.failed {
            self.failed += 1;
        }
        let makespan_s = outcome.makespan_s();
        let queue_wait_s = outcome.queue_wait_s();
        self.queue_wait.observe(queue_wait_s);
        self.makespan.observe(makespan_s);
        let egress = outcome.report.egress_gb.iter().sum::<f64>();
        self.egress_gb += egress;
        self.cost_usd += outcome.report.cost.total_usd();
        self.network_cost_usd += outcome.report.cost.network_usd;
        self.classes.record(&outcome.report.job, makespan_s, queue_wait_s, egress, outcome.failed);
    }
}

/// Aggregate outcome of one fleet run.
///
/// Built through [`FleetReport::new`] (exact: order statistics computed
/// once from the full outcome vector) or [`FleetReport::streamed`]
/// (sketched: the run completed more queries than its
/// [`FleetConfig::retain_outcomes`] cap, `outcomes` holds only the
/// retained prefix and the statistics come from the streaming sketches).
/// [`FleetReport::queue_wait`] and [`FleetReport::makespan`] return the
/// cached values either way.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-job outcomes in completion order. In a
    /// [`sketched`](FleetReport::sketched) report this is only the
    /// retained prefix — use [`FleetReport::completed`] for the real
    /// count and the aggregate accessors for totals.
    pub outcomes: Vec<JobOutcome>,
    /// Simulated seconds from the first arrival to the last completion.
    pub duration_s: f64,
    /// How often the shared belief was actually gauged (the amortization
    /// the belief cache buys; `run_job` would have gauged once per query).
    pub gauges: u64,
    /// Scheduler that served the fleet.
    pub scheduler: String,
    /// Provenance of the shared bandwidth belief.
    pub belief: String,
    /// Fault-attributed counters (all zero when no faults were injected).
    pub faults: FaultCounters,
    /// Serving-layer counters (all zero when no gateway fronted the run).
    pub serving: ServingCounters,
    /// Streaming aggregates (exact replays of the outcome vector for an
    /// uncapped run).
    totals: StreamingTotals,
    /// Whether the percentile statistics are sketch estimates rather
    /// than exact order statistics.
    sketched: bool,
    /// Queue-wait order statistics, computed at construction.
    queue_wait: Percentiles,
    /// Makespan order statistics, computed at construction.
    makespan: Percentiles,
}

impl FleetReport {
    /// Assembles an exact report, computing the order statistics of
    /// `outcomes` exactly once.
    pub fn new(
        outcomes: Vec<JobOutcome>,
        duration_s: f64,
        gauges: u64,
        scheduler: String,
        belief: String,
        faults: FaultCounters,
    ) -> Self {
        let waits: Vec<f64> = outcomes.iter().map(JobOutcome::queue_wait_s).collect();
        let makespans: Vec<f64> = outcomes.iter().map(JobOutcome::makespan_s).collect();
        let mut totals = StreamingTotals::default();
        for outcome in &outcomes {
            totals.absorb(outcome);
        }
        Self {
            outcomes,
            duration_s,
            gauges,
            scheduler,
            belief,
            faults,
            serving: ServingCounters::default(),
            totals,
            sketched: false,
            queue_wait: Percentiles::of(&waits),
            makespan: Percentiles::of(&makespans),
        }
    }

    /// Assembles a sketched report from a capped run: `outcomes` is the
    /// retained prefix, `totals` carries the full-run accounting, and
    /// the percentile statistics are the sketches' snapshots.
    pub fn streamed(
        outcomes: Vec<JobOutcome>,
        duration_s: f64,
        gauges: u64,
        scheduler: String,
        belief: String,
        faults: FaultCounters,
        totals: StreamingTotals,
    ) -> Self {
        let queue_wait = totals.queue_wait.snapshot();
        let makespan = totals.makespan.snapshot();
        Self {
            outcomes,
            duration_s,
            gauges,
            scheduler,
            belief,
            faults,
            serving: ServingCounters::default(),
            totals,
            sketched: true,
            queue_wait,
            makespan,
        }
    }

    /// Attaches the gateway's serving-layer counters; builder-style, so
    /// the trace-replay constructors stay untouched.
    #[must_use]
    pub fn with_serving(mut self, serving: ServingCounters) -> Self {
        self.serving = serving;
        self
    }

    /// Whether the percentile statistics are streaming-sketch estimates
    /// (the run outgrew its outcome-retention cap) rather than exact
    /// order statistics.
    pub fn sketched(&self) -> bool {
        self.sketched
    }

    /// Queries completed, including any whose individual outcomes were
    /// dropped by the retention cap.
    pub fn completed(&self) -> usize {
        self.totals.completed
    }

    /// Per-tenant-class roll-ups, keyed by workload family.
    pub fn classes(&self) -> &ClassAggregates {
        &self.totals.classes
    }

    /// Number of jobs that were aborted by the fault policy.
    pub fn failed_jobs(&self) -> usize {
        self.totals.failed
    }

    /// Completed queries per simulated second.
    pub fn throughput_jobs_per_s(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.totals.completed as f64 / self.duration_s
        } else {
            0.0
        }
    }

    /// Queue-wait order statistics (cached at construction; sketch
    /// estimates in a [`sketched`](FleetReport::sketched) report).
    pub fn queue_wait(&self) -> Percentiles {
        self.queue_wait
    }

    /// Admission-to-completion makespan order statistics (cached at
    /// construction; sketch estimates in a
    /// [`sketched`](FleetReport::sketched) report).
    pub fn makespan(&self) -> Percentiles {
        self.makespan
    }

    /// Total egress gigabytes that crossed the WAN.
    pub fn total_egress_gb(&self) -> f64 {
        self.totals.egress_gb
    }

    /// Total dollars across all queries (compute + network + storage).
    pub fn total_cost_usd(&self) -> f64 {
        self.totals.cost_usd
    }

    /// Network (egress) dollars across all queries.
    pub fn network_cost_usd(&self) -> f64 {
        self.totals.network_cost_usd
    }
}

/// A timer in the fleet's event queue. Ordered by time then sequence
/// number, so ties break deterministically in insertion order.
#[derive(Debug)]
struct Timer {
    at_s: f64,
    seq: u64,
    kind: TimerKind,
}

#[derive(Debug)]
enum TimerKind {
    /// Job `job_idx` joins the arrival queue.
    Arrival(usize),
    /// The compute phase of the run in `slot` finishes.
    ComputeDone(usize),
    /// A watched group's stall grace period expires: if the group is
    /// still stalled, the fault policy intervenes.
    StallCheck(GroupId),
    /// The backoff of the run in `slot` expires: resubmit its re-placed
    /// shuffle remainder.
    RetrySubmit(usize),
    /// The fleet-level agent's next observation is due (recurring while
    /// jobs remain; see [`FleetAgent`]).
    AgentWake,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest timer pops
        // first.
        other.at_s.total_cmp(&self.at_s).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A running query: its state machine plus fleet-level timestamps.
#[derive(Debug)]
struct ActiveRun {
    run: JobRun,
    job_idx: usize,
    arrived_s: f64,
    admitted_s: f64,
    /// Stall interventions this job has absorbed so far.
    attempts: u32,
    /// A re-placed shuffle remainder waiting out its backoff.
    retry: Option<(Vec<wanify_netsim::Transfer>, ConnMatrix)>,
}

/// A fleet-level WANify agent: an [`EpochHook`] driven on a fixed timer
/// cadence over the whole multi-tenant engine, instead of per-epoch over
/// one exclusive `run_transfers` call. At each wake the agent observes
/// the engine's aggregate per-pair rates and remaining payloads, may
/// retune the shared connection matrix (applied to every in-flight group
/// and preferred over [`FleetConfig::conns`] at admission) and install
/// traffic-control throttles. Wakes are ordinary timers in the fleet's
/// event queue, so the engine still coalesces whole windows between them
/// — a live agent at near-frozen wall-clock cost.
pub struct FleetAgent {
    /// The agent logic (typically `wanify::WanifyAgent`).
    pub hook: Box<dyn EpochHook + Send>,
    /// Simulated seconds between wakes (finite and positive). The first
    /// wake fires one interval after the run starts: at t = 0 nothing
    /// has been through a fairness solve, so there is nothing to observe.
    pub interval_s: f64,
    /// The shared connection matrix the agent steers.
    pub conns: ConnMatrix,
}

impl std::fmt::Debug for FleetAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetAgent")
            .field("interval_s", &self.interval_s)
            .field("conns", &self.conns)
            .finish()
    }
}

/// The multi-tenant serving engine. See the module docs.
///
/// Construction wires a simulator, one scheduler and one shared
/// [`BandwidthSource`]; [`FleetEngine::run`] consumes the engine and a
/// job trace and returns the [`FleetReport`].
pub struct FleetEngine {
    engine: NetEngine,
    scheduler: Box<dyn Scheduler>,
    source: Box<dyn BandwidthSource>,
    config: FleetConfig,
    /// Shared belief cache: the gauged matrix and when it was gauged.
    belief: Option<(BwMatrix, f64)>,
    gauges: u64,
    /// An optional fleet-level agent, driven by a recurring timer.
    agent: Option<FleetAgent>,
}

impl std::fmt::Debug for FleetEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetEngine")
            .field("scheduler", &self.scheduler.name())
            .field("belief", &self.source.name())
            .field("config", &self.config)
            .field("gauges", &self.gauges)
            .field("agent", &self.agent)
            .finish()
    }
}

impl FleetEngine {
    /// Builds a fleet over `sim`, serving every query with `scheduler`
    /// planning on the shared `source` belief.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_concurrent` is 0, or if a fault policy has a
    /// non-positive stall timeout or a negative/non-finite backoff.
    pub fn new(
        sim: NetSim,
        scheduler: Box<dyn Scheduler>,
        source: Box<dyn BandwidthSource>,
        config: FleetConfig,
    ) -> Self {
        assert!(config.max_concurrent >= 1, "admission limit must allow at least one query");
        if let Some(policy) = &config.faults {
            assert!(
                policy.stall_timeout_s.is_finite() && policy.stall_timeout_s > 0.0,
                "stall timeout must be finite and positive, got {}",
                policy.stall_timeout_s
            );
            assert!(
                policy.backoff_base_s.is_finite() && policy.backoff_base_s >= 0.0,
                "backoff base must be finite and non-negative, got {}",
                policy.backoff_base_s
            );
        }
        Self {
            engine: NetEngine::new(sim),
            scheduler,
            source,
            config,
            belief: None,
            gauges: 0,
            agent: None,
        }
    }

    /// Installs a fleet-level agent (see [`FleetAgent`]); builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `agent.interval_s` is not finite and positive, or its
    /// connection matrix does not match the topology size.
    pub fn with_agent(mut self, agent: FleetAgent) -> Self {
        assert!(
            agent.interval_s.is_finite() && agent.interval_s > 0.0,
            "agent interval must be finite and positive, got {}",
            agent.interval_s
        );
        assert_eq!(
            agent.conns.len(),
            self.engine.sim().topology().len(),
            "agent connection matrix must match topology size"
        );
        self.agent = Some(agent);
        self
    }

    /// Read access to the underlying simulator (topology, time, stats).
    pub fn sim(&self) -> &NetSim {
        self.engine.sim()
    }

    /// Runs `jobs` to completion under the given arrival process and
    /// returns the fleet report. Deterministic: same inputs, bit-identical
    /// output.
    ///
    /// Equivalent to [`FleetRun::start`] followed by one unbounded
    /// [`FleetRun::run_until`]; drivers that need to interleave the fleet
    /// with other work (the sharded fleet's sync windows, a future async
    /// front-end) use [`FleetRun`] directly.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] when the shared source fails to gauge the
    /// network, when a job's layout does not match the topology, or when
    /// the configuration cannot make progress (e.g. a Poisson rate that is
    /// not finite and positive).
    pub fn run(self, jobs: &[JobProfile], arrivals: &Arrivals) -> Result<FleetReport, WanifyError> {
        let mut run = FleetRun::start(self, jobs.to_vec(), arrivals)?;
        run.run_until(f64::INFINITY)?;
        Ok(run.into_report())
    }

    /// Runs `total_jobs` arrivals pulled lazily from `stream` —
    /// `(arrival_s, profile)` pairs in non-decreasing time order — to
    /// completion without ever materializing the trace (see
    /// [`FleetRun::start_stream`]). Pair with a
    /// [`FleetConfig::retain_outcomes`] cap for O(in-flight) memory end
    /// to end; the report is then [`FleetReport::streamed`].
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] exactly as [`FleetEngine::run`] does, plus
    /// [`WanifyError::InvalidConfig`] for invalid streamed arrival times
    /// or a stream that runs dry before `total_jobs`.
    pub fn run_stream(
        self,
        total_jobs: usize,
        stream: Box<dyn Iterator<Item = (f64, JobProfile)> + Send>,
    ) -> Result<FleetReport, WanifyError> {
        let mut run = FleetRun::start_stream(self, total_jobs, stream)?;
        run.run_until(f64::INFINITY)?;
        Ok(run.into_report())
    }
}

/// Samples the absolute arrival time of each of `jobs` jobs from a
/// seeded Poisson stream — the one arrival-time source shared by
/// [`FleetRun::start`], the sharded fleet's thinning path, and the
/// serving gateway's open-loop load generator, so all of them draw
/// bit-identical schedules from identical inputs.
///
/// # Errors
///
/// Returns [`WanifyError::InvalidConfig`] for a rate that is not finite
/// and positive.
pub fn poisson_arrival_times(
    jobs: usize,
    rate_per_s: f64,
    seed: u64,
) -> Result<Vec<f64>, WanifyError> {
    Ok(poisson_times_iter(rate_per_s, seed)?.take(jobs).collect())
}

/// The streaming form of [`poisson_arrival_times`]: an unbounded,
/// seeded, clonable iterator of absolute arrival times. Taking the
/// first `n` items reproduces the materialized schedule bit for bit,
/// so a million-query stream costs O(1) memory instead of a Vec.
///
/// # Errors
///
/// Returns [`WanifyError::InvalidConfig`] for a rate that is not finite
/// and positive.
pub fn poisson_times_iter(rate_per_s: f64, seed: u64) -> Result<PoissonTimes, WanifyError> {
    if !(rate_per_s.is_finite() && rate_per_s > 0.0) {
        return Err(WanifyError::InvalidConfig(format!(
            "Poisson arrival rate must be finite and positive, got {rate_per_s}"
        )));
    }
    Ok(PoissonTimes { rng: StdRng::seed_from_u64(seed), rate_per_s, t: 0.0 })
}

/// Unbounded seeded Poisson arrival-time stream; see
/// [`poisson_times_iter`].
#[derive(Debug, Clone)]
pub struct PoissonTimes {
    rng: StdRng,
    rate_per_s: f64,
    t: f64,
}

impl Iterator for PoissonTimes {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        // Exponential interarrivals: -ln(1-U)/λ, U ∈ [0, 1).
        let u: f64 = self.rng.gen();
        self.t += -(1.0 - u).ln() / self.rate_per_s;
        Some(self.t)
    }
}

/// Validates an explicit arrival schedule: one finite non-negative time
/// per job of the trace.
pub(crate) fn validate_schedule(times: &[f64], jobs: usize) -> Result<(), WanifyError> {
    if times.len() != jobs {
        return Err(WanifyError::InvalidConfig(format!(
            "arrival schedule covers {} jobs but the trace has {jobs}",
            times.len()
        )));
    }
    if let Some(t) = times.iter().find(|t| !(t.is_finite() && **t >= 0.0)) {
        return Err(WanifyError::InvalidConfig(format!(
            "arrival times must be finite and non-negative, got {t}"
        )));
    }
    Ok(())
}

/// A fleet mid-flight: the resumable core behind [`FleetEngine::run`].
///
/// [`FleetRun::start`] seeds the arrival timers; [`FleetRun::run_until`]
/// then advances the event loop — timer firing, admission, engine
/// completion events — up to an absolute simulated deadline, and can be
/// called again to continue. This windowed drive is the seam both the
/// sharded fleet (which pauses every shard at backbone sync points) and a
/// future async front-end (which would pause at submission-channel polls)
/// plug into. A single `run_until(f64::INFINITY)` reproduces the
/// uninterrupted [`FleetEngine::run`] timeline bit for bit.
pub struct FleetRun {
    fleet: FleetEngine,
    jobs: Vec<JobProfile>,
    timers: BinaryHeap<Timer>,
    seq: u64,
    pending: VecDeque<(usize, f64, JobProfile)>,
    slots: Vec<Option<ActiveRun>>,
    group_owner: HashMap<GroupId, usize>,
    /// Stalled groups already holding a pending [`TimerKind::StallCheck`].
    stall_watch: HashSet<GroupId>,
    counters: FaultCounters,
    running: usize,
    /// Retained outcomes in completion order — the full run below the
    /// [`FleetConfig::retain_outcomes`] cap, a prefix above it.
    outcomes: Vec<JobOutcome>,
    first_arrival_s: f64,
    /// Closed-loop bookkeeping: the index of the next unsubmitted job.
    next_closed_job: usize,
    closed_think_s: f64,
    closed_clients: usize,
    closed_loop: bool,
    /// Jobs this run will see in total (the trace length for the
    /// materialized constructors; grows per submission for the serving
    /// and shard-fed paths).
    total_jobs: usize,
    /// Jobs whose arrival timers have been armed so far.
    issued: usize,
    /// Jobs completed — `>= outcomes.len()` once the retention cap drops
    /// individual outcomes.
    completed: usize,
    /// Constant-memory accounting, fed every outcome in completion order.
    totals: StreamingTotals,
    /// Streamed/fed profiles whose arrival timers are armed but have not
    /// fired yet. FIFO: arrivals are issued in non-decreasing time order,
    /// so the front always matches the next arrival timer.
    incoming: VecDeque<JobProfile>,
    /// Pull-based arrival source: `(arrival_s, profile)` pairs with
    /// non-decreasing times, pulled one ahead so the timer heap always
    /// knows the next arrival without materializing the rest.
    stream: Option<Box<dyn Iterator<Item = (f64, JobProfile)> + Send>>,
    /// Last arrival time pulled from `stream` (monotonicity guard).
    stream_last_t: f64,
    /// High-water mark of per-job state held at once (retained outcomes
    /// plus queued arrivals plus materialized profiles) — the memory
    /// proxy the scale benchmark tracks.
    peak_tracked: usize,
}

impl std::fmt::Debug for FleetRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRun")
            .field("fleet", &self.fleet)
            .field("total_jobs", &self.total_jobs)
            .field("completed", &self.completed)
            .field("running", &self.running)
            .finish()
    }
}

impl FleetRun {
    /// The shared skeleton behind every constructor: a run holding
    /// `jobs`, no timers armed yet.
    fn fresh(fleet: FleetEngine, jobs: Vec<JobProfile>) -> Self {
        let total_jobs = jobs.len();
        let retained = total_jobs.min(fleet.config.retain_outcomes);
        Self {
            timers: BinaryHeap::new(),
            seq: 0,
            pending: VecDeque::new(),
            slots: Vec::new(),
            group_owner: HashMap::new(),
            stall_watch: HashSet::new(),
            counters: FaultCounters::default(),
            running: 0,
            outcomes: Vec::with_capacity(retained),
            first_arrival_s: f64::INFINITY,
            next_closed_job: 0,
            closed_think_s: 0.0,
            closed_clients: 0,
            closed_loop: false,
            total_jobs,
            issued: total_jobs,
            completed: 0,
            totals: StreamingTotals::default(),
            incoming: VecDeque::new(),
            stream: None,
            stream_last_t: 0.0,
            peak_tracked: 0,
            fleet,
            jobs,
        }
    }

    /// Seeds the run: validates `arrivals` and schedules the arrival
    /// timers for `jobs`.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError::InvalidConfig`] for a non-positive Poisson
    /// rate or a zero-client closed loop.
    pub fn start(
        fleet: FleetEngine,
        jobs: Vec<JobProfile>,
        arrivals: &Arrivals,
    ) -> Result<Self, WanifyError> {
        let mut run = Self::fresh(fleet, jobs);
        run.closed_loop = matches!(arrivals, Arrivals::Closed { .. });
        match arrivals {
            Arrivals::Poisson { rate_per_s, seed } => {
                let times = poisson_arrival_times(run.jobs.len(), *rate_per_s, *seed)?;
                for (idx, t) in times.into_iter().enumerate() {
                    run.push_timer(t, TimerKind::Arrival(idx));
                }
            }
            Arrivals::Scheduled { times } => {
                validate_schedule(times, run.jobs.len())?;
                for (idx, &t) in times.iter().enumerate() {
                    run.push_timer(t, TimerKind::Arrival(idx));
                }
            }
            Arrivals::Closed { clients, think_s } => {
                if *clients == 0 {
                    return Err(WanifyError::InvalidConfig(
                        "closed-loop arrivals need at least one client".into(),
                    ));
                }
                run.closed_think_s = think_s.max(0.0);
                run.next_closed_job = (*clients).min(run.jobs.len());
                run.closed_clients = run.next_closed_job;
                for idx in 0..run.next_closed_job {
                    run.push_timer(0.0, TimerKind::Arrival(idx));
                }
            }
        }
        run.arm_agent();
        Ok(run)
    }

    /// Seeds an open-loop run with explicit absolute arrival times,
    /// `arrival_times[i]` being job `i`'s arrival. The sharded fleet uses
    /// this to *thin* one global Poisson stream across shards: arrival
    /// times are sampled once for the whole trace and travel with the
    /// jobs, so the fleet-wide arrival process is independent of the
    /// shard count.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError::InvalidConfig`] when the schedule length
    /// does not match the job count.
    pub(crate) fn start_at(
        fleet: FleetEngine,
        jobs: Vec<JobProfile>,
        arrival_times: Vec<f64>,
    ) -> Result<Self, WanifyError> {
        if arrival_times.len() != jobs.len() {
            return Err(WanifyError::InvalidConfig(format!(
                "arrival schedule covers {} jobs but the trace has {}",
                arrival_times.len(),
                jobs.len()
            )));
        }
        let mut run = Self::fresh(fleet, jobs);
        for (idx, t) in arrival_times.into_iter().enumerate() {
            run.push_timer(t, TimerKind::Arrival(idx));
        }
        run.arm_agent();
        Ok(run)
    }

    /// Seeds a streaming run: `total_jobs` arrivals pulled lazily from
    /// `stream`, which yields `(arrival_s, profile)` pairs in
    /// non-decreasing time order. Only one unfired arrival is
    /// materialized at a time, so the per-job memory held by the run is
    /// O(in-flight + retained outcomes) instead of O(trace). With the
    /// same jobs and arrival times, the timeline is bit-identical to the
    /// materialized [`FleetRun::start`].
    ///
    /// A `stream` longer than `total_jobs` is truncated; one that runs
    /// dry early strands the run, which then reports a stall instead of
    /// finishing.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError::InvalidConfig`] when the first streamed
    /// arrival time is invalid (later pulls surface the same error from
    /// the run-driving calls).
    pub fn start_stream(
        fleet: FleetEngine,
        total_jobs: usize,
        stream: Box<dyn Iterator<Item = (f64, JobProfile)> + Send>,
    ) -> Result<Self, WanifyError> {
        let mut run = Self::fresh(fleet, Vec::new());
        run.total_jobs = total_jobs;
        run.stream = Some(stream);
        run.refill_stream()?;
        run.arm_agent();
        Ok(run)
    }

    /// Feeds one externally-scheduled job (the sharded driver's seam for
    /// window-by-window streaming): `idx` is the caller's global job
    /// index, which travels with the outcome. Arrivals must be fed in
    /// non-decreasing `arrival_s` order, at or after this run's current
    /// simulated time.
    pub(crate) fn feed_job(&mut self, idx: usize, job: JobProfile, arrival_s: f64) {
        self.total_jobs += 1;
        self.issued += 1;
        self.incoming.push_back(job);
        self.push_timer(arrival_s, TimerKind::Arrival(idx));
        self.note_tracked();
    }

    /// Pulls the next arrival (if any) from the stream and arms its
    /// timer. Called once at start and once per fired arrival, keeping
    /// exactly one unfired streamed arrival materialized.
    fn refill_stream(&mut self) -> Result<(), WanifyError> {
        if self.issued >= self.total_jobs {
            return Ok(());
        }
        let Some(stream) = self.stream.as_mut() else { return Ok(()) };
        let Some((at_s, job)) = stream.next() else { return Ok(()) };
        if !(at_s.is_finite() && at_s >= 0.0) {
            return Err(WanifyError::InvalidConfig(format!(
                "streamed arrival times must be finite and non-negative, got {at_s}"
            )));
        }
        if at_s < self.stream_last_t {
            return Err(WanifyError::InvalidConfig(format!(
                "streamed arrivals must be non-decreasing, got {at_s} after {}",
                self.stream_last_t
            )));
        }
        self.stream_last_t = at_s;
        let idx = self.issued;
        self.issued += 1;
        self.incoming.push_back(job);
        self.push_timer(at_s, TimerKind::Arrival(idx));
        self.note_tracked();
        Ok(())
    }

    /// Seeds an empty serving run: no trace, no arrival timers. A
    /// front-end (the gateway crate) feeds it incrementally through
    /// [`FleetRun::submit_job`] and steps it with [`FleetRun::serve_step`],
    /// owning queueing and admission policy itself — this run's internal
    /// pending queue only ever holds jobs the front-end has already
    /// decided to admit.
    pub fn start_serving(fleet: FleetEngine) -> Self {
        let mut run = Self::fresh(fleet, Vec::new());
        run.arm_agent();
        run
    }

    /// Submits one job arriving *now* (an arrival timer at the current
    /// simulated time) and returns its job index — the key its
    /// [`JobOutcome`] can later be matched by, since outcomes land in
    /// completion order. The serving seam: a front-end calls this between
    /// [`FleetRun::serve_step`] windows.
    pub fn submit_job(&mut self, job: JobProfile) -> usize {
        let idx = self.jobs.len();
        self.jobs.push(job);
        self.total_jobs += 1;
        self.issued += 1;
        let now = self.fleet.engine.sim().time_s();
        self.push_timer(now, TimerKind::Arrival(idx));
        self.note_tracked();
        idx
    }

    /// Queries currently running (admitted, not yet completed).
    pub fn running(&self) -> usize {
        self.running
    }

    /// Submitted jobs not yet completed: running, queued inside the run,
    /// or holding an unfired arrival timer. A serving front-end admits
    /// while `in_service() < max_concurrent()` so nothing it submits
    /// waits invisibly inside the run.
    pub fn in_service(&self) -> usize {
        self.issued - self.completed
    }

    /// The admission limit of the underlying fleet.
    pub fn max_concurrent(&self) -> usize {
        self.fleet.config.max_concurrent
    }

    /// Retained outcomes so far, in completion order (the full set below
    /// the [`FleetConfig::retain_outcomes`] cap, a prefix above it — see
    /// [`FleetRun::completed`] for the true count).
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Queries completed so far, including any whose individual outcomes
    /// were dropped by the retention cap.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// High-water mark of per-job state this run has held at once:
    /// retained outcomes + queued arrivals + materialized profiles. The
    /// memory proxy the scale benchmark tracks — O(trace) for the
    /// materialized constructors, O(in-flight + retained) for
    /// [`FleetRun::start_stream`] under a retention cap.
    pub fn peak_tracked(&self) -> usize {
        self.peak_tracked
    }

    /// Records the high-water mark of per-job state held right now.
    fn note_tracked(&mut self) {
        let tracked =
            self.outcomes.len() + self.pending.len() + self.incoming.len() + self.jobs.len();
        self.peak_tracked = self.peak_tracked.max(tracked);
    }

    /// The shared belief cache's current bandwidth matrix, if anything
    /// has been gauged yet (admission-control estimators read this).
    pub fn belief_bw(&self) -> Option<&BwMatrix> {
        self.fleet.belief.as_ref().map(|(bw, _)| bw)
    }

    /// Read access to the underlying simulator (topology, time, stats).
    pub fn sim(&self) -> &NetSim {
        self.fleet.engine.sim()
    }

    /// Schedules the installed agent's first wake, one interval in.
    fn arm_agent(&mut self) {
        if let Some(agent) = &self.fleet.agent {
            let at = self.fleet.engine.sim().time_s() + agent.interval_s;
            self.push_timer(at, TimerKind::AgentWake);
        }
    }

    /// Whether every job has completed.
    pub fn finished(&self) -> bool {
        self.completed == self.total_jobs
    }

    /// Current simulated time of this fleet's WAN.
    pub fn time_s(&self) -> f64 {
        self.fleet.engine.sim().time_s()
    }

    /// Advances the event loop until every job completes or simulated
    /// time reaches `deadline_s`, whichever comes first. In-flight
    /// transfers are served up to — including fractionally into — the
    /// deadline, exactly as a foreign tenant's timer would pause them.
    ///
    /// **Deadline/timer tie semantics** (pinned; incremental drivers like
    /// the sharded fleet's sync windows and the serving gateway rely on
    /// them): a timer due *exactly* at `deadline_s` fires before the call
    /// returns, and its same-instant consequences — queue admissions, the
    /// admitted job's first compute timer or shuffle submission — are
    /// fully processed. Anything such a timer schedules *strictly later*
    /// than the deadline stays pending for the next call. The deadline is
    /// therefore inclusive: `run_until(t)` leaves the run exactly as an
    /// unbounded run would look the instant after time `t`'s events fired.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] on gauge/layout failures and when the fleet
    /// can no longer make progress (no pending timers and only rate-zero
    /// flows in flight), independent of the deadline.
    pub fn run_until(&mut self, deadline_s: f64) -> Result<(), WanifyError> {
        self.drive(deadline_s, false).map(|_| ())
    }

    /// Advances one serving window: runs until simulated time reaches
    /// `deadline_s` or at least one job completes, whichever comes first,
    /// and returns how many jobs completed during the call. Unlike
    /// [`FleetRun::run_until`], a run whose every submitted job has
    /// already finished idles *forward* — the WAN clock (and any live
    /// dynamics or scheduled faults) advances to the window's edge — so a
    /// front-end can interleave [`FleetRun::submit_job`] calls with
    /// fixed-size windows and the quiet stretches between arrivals still
    /// cost simulated time. Returning on the first completion lets the
    /// front-end refill freed admission slots mid-window; the same
    /// deadline-tie semantics as `run_until` apply.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_s` is not finite (a serving window needs an
    /// edge to idle toward).
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] exactly as [`FleetRun::run_until`] does.
    pub fn serve_step(&mut self, deadline_s: f64) -> Result<usize, WanifyError> {
        assert!(deadline_s.is_finite(), "serving windows need a finite deadline, got {deadline_s}");
        let done = self.drive(deadline_s, true)?;
        if done > 0 {
            return Ok(done);
        }
        // Nothing completed and nothing is left to do: idle the WAN
        // forward to the window's edge (scheduled faults and dynamics
        // still apply along the way).
        while self.finished() && self.time_s() < deadline_s {
            let before = self.time_s();
            let events = self.fleet.engine.advance_until(deadline_s);
            debug_assert!(events.is_empty(), "an idle fleet has no flow groups to complete");
            if self.time_s() <= before {
                break;
            }
        }
        Ok(0)
    }

    /// The event-loop core behind [`FleetRun::run_until`] and
    /// [`FleetRun::serve_step`]: advances until every job completes, the
    /// deadline is reached, or — with `stop_on_completion` — at least one
    /// job has completed and its instant is fully processed. Returns the
    /// number of jobs completed during the call.
    fn drive(&mut self, deadline_s: f64, stop_on_completion: bool) -> Result<usize, WanifyError> {
        let completed_at_entry = self.completed;
        while self.completed < self.total_jobs {
            if stop_on_completion && self.completed > completed_at_entry {
                break;
            }
            let now = self.fleet.engine.sim().time_s();

            // Closed loop: every completion frees a client, who thinks for
            // `think_s` and submits the next job. Checked at the loop top
            // so completions from any path (timer or engine event) pace
            // the next submission.
            if self.closed_loop {
                while self.next_closed_job < self.total_jobs
                    && self.next_closed_job < self.closed_clients + self.completed
                {
                    let idx = self.next_closed_job;
                    self.push_timer(now + self.closed_think_s, TimerKind::Arrival(idx));
                    self.next_closed_job += 1;
                }
            }

            // Fire every timer that is due (ties in insertion order).
            let mut fired = false;
            while self.timers.peek().is_some_and(|t| t.at_s <= now + 1e-9) {
                fired = true;
                let timer = self.timers.pop().expect("peeked");
                match timer.kind {
                    TimerKind::Arrival(idx) => {
                        self.first_arrival_s = self.first_arrival_s.min(now);
                        // Streamed/fed arrivals carry their profile in the
                        // FIFO; materialized runs clone from the trace —
                        // the same value the admit path used to clone.
                        let job = match self.incoming.pop_front() {
                            Some(job) => job,
                            None => self.jobs[idx].clone(),
                        };
                        self.pending.push_back((idx, now, job));
                        self.note_tracked();
                        self.refill_stream()?;
                    }
                    TimerKind::ComputeDone(slot) => {
                        let step = self.slots[slot]
                            .as_mut()
                            .expect("compute timer for a live run")
                            .run
                            .on_compute_done(
                                self.fleet.scheduler.as_ref(),
                                self.fleet.engine.sim().topology(),
                            );
                        self.dispatch(slot, step);
                    }
                    TimerKind::StallCheck(gid) => {
                        self.stall_watch.remove(&gid);
                        // Only intervene if the group is still in flight
                        // and still rate-zero: a fault that healed inside
                        // the grace period needs no recovery.
                        if self.group_owner.contains_key(&gid)
                            && self.fleet.engine.is_group_stalled(gid)
                        {
                            self.recover_stalled(gid);
                        }
                    }
                    TimerKind::RetrySubmit(slot) => {
                        let (transfers, conns) = self.slots[slot]
                            .as_mut()
                            .expect("retry timer for a live run")
                            .retry
                            .take()
                            .expect("retry payload stashed at cancel");
                        let id = self.fleet.engine.submit(&transfers, &conns);
                        self.group_owner.insert(id, slot);
                    }
                    TimerKind::AgentWake => {
                        self.agent_wake();
                        // Recurring while work remains; the last wake dies
                        // with the last job so the run can terminate.
                        if self.completed < self.total_jobs {
                            if let Some(agent) = &self.fleet.agent {
                                self.push_timer(now + agent.interval_s, TimerKind::AgentWake);
                            }
                        }
                    }
                }
            }

            // Admit from the queue while the limit allows.
            while self.running < self.fleet.config.max_concurrent && !self.pending.is_empty() {
                let (idx, arrived_s, job) = self.pending.pop_front().expect("non-empty");
                let slot = self.admit(idx, job, arrived_s)?;
                let step = self.slots[slot]
                    .as_mut()
                    .expect("just admitted")
                    .run
                    .start(self.fleet.scheduler.as_ref(), self.fleet.engine.sim().topology());
                self.running += 1;
                self.dispatch(slot, step);
            }
            if fired {
                // Firing may have queued work that changes what "next
                // timer" means; re-evaluate before advancing time.
                continue;
            }
            if self.completed == self.total_jobs {
                break;
            }
            if now >= deadline_s {
                return Ok(self.completed - completed_at_entry);
            }

            let next_timer_s = self.timers.peek().map_or(f64::INFINITY, |t| t.at_s);
            if self.fleet.engine.is_idle() && next_timer_s.is_infinite() {
                return Err(self.stall_error("fleet stalled"));
            }
            // Under a fault policy the engine must not barrel through an
            // outage unobserved (with no timer pending, an unbounded
            // advance would jump the fault boundaries internally and only
            // return at the next completion). Cap each advance at one
            // stall timeout so stalled groups are noticed — in simulated
            // time, so the cadence is deterministic.
            let mut engine_deadline_s = next_timer_s.min(deadline_s);
            if let Some(policy) = &self.fleet.config.faults {
                if !self.fleet.engine.is_idle() {
                    engine_deadline_s = engine_deadline_s.min(now + policy.stall_timeout_s);
                }
            }
            let events = self.fleet.engine.advance_until(engine_deadline_s);
            // With a fault policy, put newly rate-zero groups under watch
            // (each gets one StallCheck timer at now + stall_timeout_s).
            if self.fleet.config.faults.is_some() {
                self.watch_stalls();
            }
            if events.is_empty()
                && self.timers.is_empty()
                && !self.fleet.engine.is_idle()
                && !self.fleet.engine.has_live_flows()
                && !self.fleet.engine.sim().has_pending_faults()
            {
                // No timer to wake us (watch_stalls would have armed one
                // under a fault policy), no scheduled fault that could
                // restore rates, groups in flight, and every remaining
                // flow is rate-zero (e.g. a 0-Mbps throttle on a shuffled
                // pair): no amount of stepping will ever drain them.
                // Surface the stall instead of spinning forever. (An
                // empty result with *live* flows just means the engine's
                // per-call epoch budget ran out on a slow transfer; the
                // next iteration keeps advancing it.)
                return Err(
                    self.stall_error("fleet stalled: in-flight transfers cannot make progress")
                );
            }
            for event in events {
                let slot = self.group_owner.remove(&event.group).expect("every group has an owner");
                // A watched group that drained before its StallCheck fired
                // is done with the watchdog: sweep it so the watch set
                // only ever holds groups that are still in flight.
                self.stall_watch.remove(&event.group);
                let step = self.slots[slot]
                    .as_mut()
                    .expect("group completion for a live run")
                    .run
                    .on_shuffle_done(&event, self.fleet.engine.sim().topology());
                self.dispatch(slot, step);
            }
        }
        Ok(self.completed - completed_at_entry)
    }

    /// Finalizes the run into its report: exact when every outcome was
    /// retained, [`FleetReport::streamed`] (sketch-backed statistics,
    /// prefix of outcomes) when the retention cap dropped some.
    pub fn into_report(self) -> FleetReport {
        let duration_s = if self.first_arrival_s.is_finite() {
            self.fleet.engine.sim().time_s() - self.first_arrival_s
        } else {
            0.0
        };
        let mut counters = self.counters;
        counters.degraded_s = self.fleet.engine.sim().degraded_s();
        if self.completed > self.outcomes.len() {
            FleetReport::streamed(
                self.outcomes,
                duration_s,
                self.fleet.gauges,
                self.fleet.scheduler.name().to_string(),
                self.fleet.source.name().to_string(),
                counters,
                self.totals,
            )
        } else {
            FleetReport::new(
                self.outcomes,
                duration_s,
                self.fleet.gauges,
                self.fleet.scheduler.name().to_string(),
                self.fleet.source.name().to_string(),
                counters,
            )
        }
    }

    /// This shard's current demand on every directed cross-group trunk
    /// (see [`NetEngine::cross_group_demand_mbps`]).
    pub(crate) fn cross_shard_demand(
        &self,
        group_of: &[usize],
        n_groups: usize,
    ) -> wanify_netsim::Grid<f64> {
        self.fleet.engine.cross_group_demand_mbps(group_of, n_groups)
    }

    /// Applies this shard's granted backbone share as per-pair caps (see
    /// [`NetEngine::apply_backbone_allocation`]).
    pub(crate) fn apply_backbone_share(
        &mut self,
        group_of: &[usize],
        share_mbps: &wanify_netsim::Grid<f64>,
        demand_mbps: &wanify_netsim::Grid<f64>,
    ) {
        self.fleet.engine.apply_backbone_allocation(group_of, share_mbps, demand_mbps);
    }

    /// Applies several backbone tiers at once, composed cell-wise (see
    /// [`NetEngine::apply_backbone_tiers`]); the hierarchical sharded
    /// driver's seam.
    pub(crate) fn apply_backbone_tiers(
        &mut self,
        tiers: &[(&[usize], &wanify_netsim::Grid<f64>, &wanify_netsim::Grid<f64>)],
    ) {
        self.fleet.engine.apply_backbone_tiers(tiers);
    }

    /// Hands the retained outcomes to the caller, leaving the run's
    /// vector empty (the sharded streaming driver drains every shard at
    /// each sync point so per-shard memory stays bounded by one window).
    pub(crate) fn take_outcomes(&mut self) -> Vec<JobOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    fn push_timer(&mut self, at_s: f64, kind: TimerKind) {
        self.timers.push(Timer { at_s, seq: self.seq, kind });
        self.seq += 1;
    }

    fn stall_error(&self, what: &str) -> WanifyError {
        WanifyError::InvalidConfig(format!(
            "{what} ({} of {} jobs unfinished)",
            self.total_jobs - self.completed,
            self.total_jobs
        ))
    }

    /// Admits one job: refreshes the shared belief if stale and builds its
    /// state machine in a free slot.
    fn admit(
        &mut self,
        job_idx: usize,
        job: JobProfile,
        arrived_s: f64,
    ) -> Result<usize, WanifyError> {
        let fleet = &mut self.fleet;
        let now = fleet.engine.sim().time_s();
        let stale = match &fleet.belief {
            None => true,
            Some((_, gauged_at)) => now - gauged_at >= fleet.config.regauge_every_s,
        };
        if stale {
            // Gauging probes the live network and costs simulated time —
            // the monitoring cost the shared cache amortizes over tenants.
            let bw = fleet.source.gauge(fleet.engine.sim_mut())?;
            let gauged_at = fleet.engine.sim().time_s();
            fleet.belief = Some((bw, gauged_at));
            fleet.gauges += 1;
        }
        let (bw, _) = fleet.belief.as_ref().expect("belief gauged above");
        // An installed agent's live connection matrix supersedes the
        // static per-fleet one: new admissions start on the counts the
        // agent has steered to so far.
        let conns = match &fleet.agent {
            Some(agent) => Some(agent.conns.clone()),
            None => fleet.config.conns.clone(),
        };
        let run = JobRun::new(
            job,
            bw.clone(),
            fleet.source.name(),
            fleet.scheduler.as_ref(),
            fleet.engine.sim().topology(),
            conns,
        )?;
        let admitted_s = fleet.engine.sim().time_s();
        let active = ActiveRun { run, job_idx, arrived_s, admitted_s, attempts: 0, retry: None };
        let slot = self.slots.iter().position(Option::is_none).unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        self.slots[slot] = Some(active);
        Ok(slot)
    }

    /// Executes one [`JobStep`]: schedules a timer, submits a flow group,
    /// or finalizes the run.
    fn dispatch(&mut self, slot: usize, step: JobStep) {
        let now = self.fleet.engine.sim().time_s();
        match step {
            JobStep::Compute { seconds } => {
                self.push_timer(now + seconds, TimerKind::ComputeDone(slot));
            }
            JobStep::Shuffle { transfers, conns, migration: _ } => {
                let id = self.fleet.engine.submit(&transfers, &conns);
                self.group_owner.insert(id, slot);
            }
            JobStep::Done(report) => {
                let active = self.slots[slot].take().expect("finalizing a live run");
                self.running -= 1;
                self.record_outcome(JobOutcome {
                    job_idx: active.job_idx,
                    report: *report,
                    arrived_s: active.arrived_s,
                    admitted_s: active.admitted_s,
                    completed_s: now,
                    failed: false,
                });
            }
            JobStep::Failed(report) => {
                let active = self.slots[slot].take().expect("finalizing a live run");
                self.running -= 1;
                self.record_outcome(JobOutcome {
                    job_idx: active.job_idx,
                    report: *report,
                    arrived_s: active.arrived_s,
                    admitted_s: active.admitted_s,
                    completed_s: now,
                    failed: true,
                });
            }
        }
    }

    /// Accounts one completion: the streaming totals always absorb it,
    /// the outcome vector keeps it only below the retention cap.
    fn record_outcome(&mut self, outcome: JobOutcome) {
        self.completed += 1;
        self.totals.absorb(&outcome);
        if self.outcomes.len() < self.fleet.config.retain_outcomes {
            self.outcomes.push(outcome);
            self.note_tracked();
        }
    }

    /// One fleet-level agent wake: observe the engine's aggregate state,
    /// let the hook act, and write its interventions back — connection
    /// counts to every in-flight group, throttles to the simulator.
    fn agent_wake(&mut self) {
        let fleet = &mut self.fleet;
        let Some(agent) = fleet.agent.as_mut() else { return };
        let observed = fleet.engine.observed_pair_bw_mbps();
        let remaining = fleet.engine.remaining_pair_gb();
        let mut throttles = fleet.engine.sim().throttles().clone();
        let mut ctx = EpochCtx {
            time_s: fleet.engine.sim().time_s(),
            observed_bw: &observed,
            remaining_gb: &remaining,
            conns: &mut agent.conns,
            throttles: &mut throttles,
        };
        agent.hook.on_epoch(&mut ctx);
        let n = throttles.len();
        for i in 0..n {
            for j in 0..n {
                fleet.engine.sim_mut().set_throttle(DcId(i), DcId(j), throttles.get(i, j));
            }
        }
        fleet.engine.apply_conns(&agent.conns);
    }

    /// Puts every newly stalled, owned group under a stall-timeout watch.
    fn watch_stalls(&mut self) {
        let timeout_s = match &self.fleet.config.faults {
            Some(policy) => policy.stall_timeout_s,
            None => return,
        };
        let now = self.fleet.engine.sim().time_s();
        for gid in self.fleet.engine.stalled_groups() {
            if self.group_owner.contains_key(&gid) && self.stall_watch.insert(gid) {
                self.push_timer(now + timeout_s, TimerKind::StallCheck(gid));
            }
        }
    }

    /// Fault-policy intervention on a group that outlived its stall grace
    /// period: cancel it, and either abort the job (retries exhausted) or
    /// re-place the dead-destination remainder and schedule a backed-off
    /// resubmit.
    fn recover_stalled(&mut self, gid: GroupId) {
        let policy = self.fleet.config.faults.expect("stall timers only exist under a policy");
        let slot = self.group_owner.remove(&gid).expect("checked by the caller");
        let (partial, remaining) =
            self.fleet.engine.cancel_group(gid).expect("a stalled group is in flight");
        self.counters.stalled_flows += remaining.len() as u64;
        let attempts = {
            let active = self.slots[slot].as_mut().expect("stalled group has a live owner");
            active.attempts += 1;
            active.attempts
        };
        if attempts > policy.max_retries {
            self.counters.failed_jobs += 1;
            let step = self.slots[slot]
                .as_mut()
                .expect("stalled group has a live owner")
                .run
                .abort(&partial, self.fleet.engine.sim().topology());
            self.dispatch(slot, step);
            return;
        }
        self.counters.retries += 1;
        let up = self.fleet.engine.sim().dcs_up();
        let (step, redirected) = self.slots[slot]
            .as_mut()
            .expect("stalled group has a live owner")
            .run
            .on_shuffle_stalled(
                &partial,
                &remaining,
                &up,
                self.fleet.scheduler.as_ref(),
                self.fleet.engine.sim().topology(),
            );
        self.counters.replacements += redirected;
        match step {
            JobStep::Shuffle { transfers, conns, migration: _ } => {
                // Exponential backoff: 1st retry waits base, then 2×, 4×…
                let backoff_s = policy.backoff_base_s * 2f64.powi(attempts as i32 - 1);
                let now = self.fleet.engine.sim().time_s();
                self.slots[slot].as_mut().expect("stalled group has a live owner").retry =
                    Some((transfers, conns));
                self.push_timer(now + backoff_s, TimerKind::RetrySubmit(slot));
            }
            // Every surviving byte re-placed onto its own source: the
            // shuffle resolved locally and the job continues at once.
            other => self.dispatch(slot, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::StageProfile;
    use crate::scheduler::{Tetrium, VanillaSpark};
    use crate::storage::DataLayout;
    use wanify::Pregauged;
    use wanify_netsim::{paper_testbed_n, LinkModelParams, VmType};

    fn sim(n: usize, seed: u64) -> NetSim {
        NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), seed)
    }

    fn small_job(n: usize, gb: f64, name: &str) -> JobProfile {
        JobProfile::new(
            name,
            DataLayout::uniform(n, gb),
            vec![
                StageProfile::shuffling("map", 1.0, 1.0),
                StageProfile::terminal("reduce", 0.05, 0.5),
            ],
        )
    }

    fn fleet(n: usize, seed: u64, config: FleetConfig) -> FleetEngine {
        FleetEngine::new(
            sim(n, seed),
            Box::new(Tetrium::new()),
            Box::new(wanify::StaticIndependent::new()),
            config,
        )
    }

    #[test]
    fn poisson_fleet_completes_every_job() {
        let jobs: Vec<JobProfile> =
            (0..8).map(|i| small_job(3, 1.0 + 0.5 * i as f64, &format!("j{i}"))).collect();
        let report = fleet(3, 1, FleetConfig::default())
            .run(&jobs, &Arrivals::Poisson { rate_per_s: 0.05, seed: 9 })
            .unwrap();
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.duration_s > 0.0);
        assert!(report.throughput_jobs_per_s() > 0.0);
        for o in &report.outcomes {
            assert!(o.report.latency_s > 0.0);
            assert!(o.completed_s >= o.admitted_s);
            assert!(o.admitted_s >= o.arrived_s);
        }
    }

    #[test]
    fn closed_loop_respects_client_count() {
        let jobs: Vec<JobProfile> = (0..6).map(|i| small_job(3, 2.0, &format!("c{i}"))).collect();
        let report = fleet(3, 2, FleetConfig::default())
            .run(&jobs, &Arrivals::Closed { clients: 2, think_s: 1.0 })
            .unwrap();
        assert_eq!(report.outcomes.len(), 6);
        // With 2 clients, at most 2 jobs overlap; arrival times beyond the
        // first two must be strictly after some completion.
        let later_arrivals = report.outcomes.iter().filter(|o| o.arrived_s > 0.0).count();
        assert_eq!(later_arrivals, 4);
    }

    #[test]
    fn admission_limit_queues_excess_jobs() {
        let jobs: Vec<JobProfile> = (0..4).map(|i| small_job(3, 4.0, &format!("q{i}"))).collect();
        let config = FleetConfig { max_concurrent: 1, ..FleetConfig::default() };
        let report =
            fleet(3, 3, config).run(&jobs, &Arrivals::Closed { clients: 4, think_s: 0.0 }).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        assert!(report.queue_wait().max > 0.0, "with one admission slot, someone must have waited");
    }

    #[test]
    fn shared_belief_cache_amortizes_gauges() {
        let jobs: Vec<JobProfile> = (0..6).map(|i| small_job(3, 1.0, &format!("g{i}"))).collect();
        let fresh = FleetEngine::new(
            sim(3, 4),
            Box::new(Tetrium::new()),
            Box::new(wanify::MeasuredRuntime::default()),
            FleetConfig { regauge_every_s: 0.0, ..FleetConfig::default() },
        )
        .run(&jobs, &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap();
        let cached = FleetEngine::new(
            sim(3, 4),
            Box::new(Tetrium::new()),
            Box::new(wanify::MeasuredRuntime::default()),
            FleetConfig { regauge_every_s: f64::INFINITY, ..FleetConfig::default() },
        )
        .run(&jobs, &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap();
        assert_eq!(fresh.gauges, 6, "regauge_every_s = 0 gauges per admission");
        assert_eq!(cached.gauges, 1, "an infinite staleness bound gauges once");
        assert!(cached.duration_s < fresh.duration_s, "monitoring costs simulated time");
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let jobs: Vec<JobProfile> =
            (0..5).map(|i| small_job(4, 1.0 + i as f64, &format!("d{i}"))).collect();
        let run = || {
            fleet(4, 7, FleetConfig::default())
                .run(&jobs, &Arrivals::Poisson { rate_per_s: 0.02, seed: 11 })
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.report.latency_s.to_bits(), y.report.latency_s.to_bits());
            assert_eq!(x.completed_s.to_bits(), y.completed_s.to_bits());
        }
        assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
    }

    #[test]
    fn layout_mismatch_surfaces_as_error() {
        let jobs = vec![small_job(3, 1.0, "bad")];
        let err = fleet(4, 5, FleetConfig::default())
            .run(&jobs, &Arrivals::Closed { clients: 1, think_s: 0.0 })
            .unwrap_err();
        assert!(matches!(err, WanifyError::DimensionMismatch { expected: 4, got: 3 }));
    }

    #[test]
    fn wrong_sized_conns_matrix_is_an_error_not_a_panic() {
        let jobs = vec![small_job(4, 1.0, "c")];
        let err = FleetEngine::new(
            sim(4, 5),
            Box::new(Tetrium::new()),
            Box::new(wanify::StaticIndependent::new()),
            FleetConfig { conns: Some(ConnMatrix::filled(3, 2)), ..FleetConfig::default() },
        )
        .run(&jobs, &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap_err();
        assert!(matches!(err, WanifyError::DimensionMismatch { expected: 4, got: 3 }));
    }

    #[test]
    fn zero_rate_transfers_stall_with_an_error_not_a_hang() {
        use wanify_netsim::DcId;
        let mut s = sim(3, 8);
        // A 0-Mbps throttle on a pair every uniform shuffle must cross:
        // the transfer can never drain.
        s.set_throttle(DcId(0), DcId(1), 0.0);
        let err = FleetEngine::new(
            s,
            Box::new(VanillaSpark::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            FleetConfig::default(),
        )
        .run(&[small_job(3, 2.0, "stuck")], &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap_err();
        assert!(matches!(err, WanifyError::InvalidConfig(_)), "got {err:?}");
    }

    #[test]
    fn dc_outage_recovers_via_retry_and_replacement() {
        use wanify_netsim::{DcId, FaultSchedule};
        // DC1 is dark from t = 0 to t = 20: the uniform shuffle's alive
        // pairs drain, the rest stall, the policy cancels + re-places,
        // and the healed WAN drains the resubmitted remainder.
        let mut s = sim(3, 11);
        s.set_fault_schedule(FaultSchedule::new().dc_outage(DcId(1), 0.0, 20.0));
        let config = FleetConfig {
            faults: Some(FaultPolicy { stall_timeout_s: 5.0, max_retries: 5, backoff_base_s: 5.0 }),
            ..FleetConfig::default()
        };
        let report = FleetEngine::new(
            s,
            Box::new(VanillaSpark::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            config,
        )
        .run(&[small_job(3, 0.6, "flaky")], &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert!(!report.outcomes[0].failed, "the job must recover, not fail");
        assert_eq!(report.failed_jobs(), 0);
        assert!(report.faults.retries >= 1, "stall must trigger a retry: {:?}", report.faults);
        assert!(report.faults.stalled_flows >= 1, "{:?}", report.faults);
        assert!(
            report.faults.replacements >= 1,
            "dead-destination transfers must re-place: {:?}",
            report.faults
        );
        assert!(report.faults.degraded_s > 0.0, "{:?}", report.faults);
        assert_eq!(report.faults.failed_jobs, 0);
    }

    #[test]
    fn permanent_outage_fails_the_job_with_partial_accounting() {
        use wanify_netsim::{DcId, FaultKind, FaultSchedule};
        // DC1 never comes back: transfers sourced there are unreachable
        // forever, so the job must be aborted after max_retries — not
        // wedge the fleet, not error the run.
        let mut s = sim(3, 12);
        s.set_fault_schedule(FaultSchedule::new().at(0.0, FaultKind::DcDown(DcId(1))));
        let config = FleetConfig {
            faults: Some(FaultPolicy { stall_timeout_s: 2.0, max_retries: 2, backoff_base_s: 2.0 }),
            ..FleetConfig::default()
        };
        let report = FleetEngine::new(
            s,
            Box::new(VanillaSpark::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            config,
        )
        .run(&[small_job(3, 0.6, "doomed")], &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes[0].failed);
        assert_eq!(report.failed_jobs(), 1);
        assert_eq!(report.faults.failed_jobs, 1);
        assert_eq!(report.faults.retries, 2, "both allowed retries were spent");
        let r = &report.outcomes[0].report;
        assert!(r.latency_s > 0.0, "partial accounting still carries elapsed time");
        assert!(r.egress_gb.iter().sum::<f64>() > 0.0, "the alive pairs did move data");
    }

    #[test]
    fn faulted_fleet_is_deterministic() {
        use wanify_netsim::{DcId, FaultSchedule};
        let jobs: Vec<JobProfile> =
            (0..4).map(|i| small_job(3, 0.5 + 0.25 * i as f64, &format!("f{i}"))).collect();
        let run = || {
            let mut s = sim(3, 13);
            s.set_fault_schedule(FaultSchedule::new().dc_outage(DcId(2), 3.0, 18.0).link_flap(
                DcId(0),
                DcId(1),
                0.3,
                1.0,
                4.0,
                3,
            ));
            FleetEngine::new(
                s,
                Box::new(VanillaSpark::new()),
                Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
                FleetConfig { faults: Some(FaultPolicy::default()), ..FleetConfig::default() },
            )
            .run(&jobs, &Arrivals::Scheduled { times: vec![0.0, 1.0, 1.0, 6.0] })
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.report.latency_s.to_bits(), y.report.latency_s.to_bits());
            assert_eq!(x.completed_s.to_bits(), y.completed_s.to_bits());
            assert_eq!(x.failed, y.failed);
        }
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.degraded_s.to_bits(), b.faults.degraded_s.to_bits());
    }

    #[test]
    fn scheduled_arrivals_fire_at_their_times() {
        let jobs: Vec<JobProfile> = (0..3).map(|i| small_job(3, 1.0, &format!("t{i}"))).collect();
        // Pregauged belief: admission costs no simulated time, so the
        // arrival timestamps land exactly on the schedule.
        let report = FleetEngine::new(
            sim(3, 14),
            Box::new(Tetrium::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            FleetConfig::default(),
        )
        .run(&jobs, &Arrivals::Scheduled { times: vec![0.0, 5.0, 5.0] })
        .unwrap();
        assert_eq!(report.outcomes.len(), 3);
        let mut arrived: Vec<f64> = report.outcomes.iter().map(|o| o.arrived_s).collect();
        arrived.sort_by(f64::total_cmp);
        assert_eq!(arrived, vec![0.0, 5.0, 5.0]);
    }

    #[test]
    fn invalid_arrival_schedules_are_rejected() {
        let jobs: Vec<JobProfile> = (0..2).map(|i| small_job(3, 1.0, &format!("v{i}"))).collect();
        let err = fleet(3, 15, FleetConfig::default())
            .run(&jobs, &Arrivals::Scheduled { times: vec![0.0] })
            .unwrap_err();
        assert!(matches!(err, WanifyError::InvalidConfig(_)));
        let err = fleet(3, 15, FleetConfig::default())
            .run(&jobs, &Arrivals::Scheduled { times: vec![0.0, f64::NAN] })
            .unwrap_err();
        assert!(matches!(err, WanifyError::InvalidConfig(_)));
    }

    #[test]
    fn invalid_poisson_rate_is_rejected() {
        let jobs = vec![small_job(3, 1.0, "r")];
        let err = fleet(3, 5, FleetConfig::default())
            .run(&jobs, &Arrivals::Poisson { rate_per_s: 0.0, seed: 1 })
            .unwrap_err();
        assert!(matches!(err, WanifyError::InvalidConfig(_)));
    }

    #[test]
    fn vanilla_fleet_runs_with_pregauged_belief() {
        let n = 3;
        let jobs: Vec<JobProfile> = (0..3).map(|i| small_job(n, 2.0, &format!("p{i}"))).collect();
        let belief = Pregauged::new(BwMatrix::filled(n, 300.0));
        let report = FleetEngine::new(
            sim(n, 6),
            Box::new(VanillaSpark::new()),
            Box::new(belief),
            FleetConfig::default(),
        )
        .run(&jobs, &Arrivals::Closed { clients: 3, think_s: 0.0 })
        .unwrap();
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.belief, "pregauged");
        assert_eq!(report.gauges, 1);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = Percentiles::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.p95, 4.0);
        assert_eq!(p.max, 4.0);
        assert!((p.mean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_of_empty_input_are_all_zero() {
        let empty = Percentiles::of(&[]);
        assert_eq!(empty.p50, 0.0);
        assert_eq!(empty.p95, 0.0);
        assert_eq!(empty.p99, 0.0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn percentiles_of_a_single_element_are_that_element() {
        let one = Percentiles::of(&[7.25]);
        assert_eq!(one.p50, 7.25);
        assert_eq!(one.p95, 7.25);
        assert_eq!(one.p99, 7.25);
        assert_eq!(one.mean, 7.25);
        assert_eq!(one.max, 7.25);
    }

    #[test]
    fn percentiles_of_tied_values_are_that_value() {
        let tied = Percentiles::of(&[3.5; 9]);
        assert_eq!(tied.p50, 3.5);
        assert_eq!(tied.p95, 3.5);
        assert_eq!(tied.p99, 3.5);
        assert_eq!(tied.mean, 3.5);
        assert_eq!(tied.max, 3.5);
        // Partial ties: the nearest-rank statistics stay on real sample
        // values, never interpolated between them.
        let partial = Percentiles::of(&[1.0, 2.0, 2.0, 2.0, 9.0]);
        assert_eq!(partial.p50, 2.0);
        assert_eq!(partial.p95, 9.0);
        assert_eq!(partial.max, 9.0);
    }

    #[test]
    fn fleet_report_caches_percentiles_at_construction() {
        let jobs: Vec<JobProfile> = (0..4).map(|i| small_job(3, 1.0, &format!("s{i}"))).collect();
        let report = fleet(3, 1, FleetConfig::default())
            .run(&jobs, &Arrivals::Closed { clients: 2, think_s: 0.0 })
            .unwrap();
        // Cached statistics agree with a fresh computation over the
        // outcome vectors…
        let waits: Vec<f64> = report.outcomes.iter().map(JobOutcome::queue_wait_s).collect();
        let makespans: Vec<f64> = report.outcomes.iter().map(JobOutcome::makespan_s).collect();
        assert_eq!(report.queue_wait(), Percentiles::of(&waits));
        assert_eq!(report.makespan(), Percentiles::of(&makespans));
        // …and repeated calls return the identical cached value.
        assert_eq!(report.makespan(), report.makespan());
    }

    #[test]
    fn timer_exactly_at_deadline_fires_before_run_until_returns() {
        // Pinned tie semantics: an arrival timer due exactly at the
        // deadline fires — and the job is admitted and dispatched — before
        // run_until returns, while strictly later timers stay pending.
        let jobs = vec![small_job(3, 2.0, "tie-a"), small_job(3, 2.0, "tie-b")];
        let engine = FleetEngine::new(
            sim(3, 21),
            Box::new(Tetrium::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            FleetConfig::default(),
        );
        let mut run =
            FleetRun::start(engine, jobs, &Arrivals::Scheduled { times: vec![5.0, 5.5] }).unwrap();
        run.run_until(5.0).unwrap();
        assert_eq!(run.time_s(), 5.0, "the run pauses exactly at the deadline");
        assert_eq!(run.running(), 1, "the t=5.0 arrival was admitted before returning");
        assert_eq!(run.outcomes().len(), 0, "nothing can have completed yet");
        // The t=5.5 arrival stayed pending; the next window picks it up.
        run.run_until(f64::INFINITY).unwrap();
        assert_eq!(run.outcomes().len(), 2);
        let mut arrived: Vec<f64> = run.outcomes().iter().map(|o| o.arrived_s).collect();
        arrived.sort_by(f64::total_cmp);
        assert_eq!(arrived, vec![5.0, 5.5]);
    }

    #[test]
    fn drained_group_is_swept_from_the_stall_watch() {
        use wanify_netsim::{DcId, FaultSchedule};
        // A 2 s outage puts the shuffle under watch (timeout 30 s), heals
        // long before the StallCheck fires, and the group drains: the gid
        // must be swept from stall_watch at completion, and the healed
        // stall must not be counted.
        let mut s = sim(3, 22);
        s.set_fault_schedule(FaultSchedule::new().dc_outage(DcId(1), 0.0, 2.0));
        let config = FleetConfig {
            faults: Some(FaultPolicy {
                stall_timeout_s: 30.0,
                max_retries: 3,
                backoff_base_s: 5.0,
            }),
            ..FleetConfig::default()
        };
        let engine = FleetEngine::new(
            s,
            Box::new(VanillaSpark::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            config,
        );
        let mut run = FleetRun::start(
            engine,
            vec![small_job(3, 0.6, "healed")],
            &Arrivals::Closed { clients: 1, think_s: 0.0 },
        )
        .unwrap();
        run.run_until(f64::INFINITY).unwrap();
        assert_eq!(run.outcomes().len(), 1);
        assert!(!run.outcomes()[0].failed);
        assert!(run.stall_watch.is_empty(), "completed groups must leave the watch set");
        assert_eq!(run.counters.stalled_flows, 0, "a stall that healed in grace counts nothing");
        assert_eq!(run.counters.retries, 0);
        // The stale StallCheck timer fires later as a no-op: re-running a
        // query over the same fleet never double-counts stalled_flows.
        let report = run.into_report();
        assert_eq!(report.faults.stalled_flows, 0);
    }

    #[test]
    fn zero_retry_policy_fails_straight_from_first_stall() {
        use wanify_netsim::{DcId, FaultKind, FaultSchedule};
        // max_retries = 0: the first stall intervention must abort the job
        // outright — failed accounting consistent, no retry, and no
        // RetrySubmit backoff timer (the run terminates at the abort).
        let mut s = sim(3, 23);
        s.set_fault_schedule(FaultSchedule::new().at(0.0, FaultKind::DcDown(DcId(1))));
        let config = FleetConfig {
            faults: Some(FaultPolicy { stall_timeout_s: 2.0, max_retries: 0, backoff_base_s: 2.0 }),
            ..FleetConfig::default()
        };
        let report = FleetEngine::new(
            s,
            Box::new(VanillaSpark::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            config,
        )
        .run(&[small_job(3, 0.6, "one-shot")], &Arrivals::Closed { clients: 1, think_s: 0.0 })
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes[0].failed);
        assert_eq!(report.faults.failed_jobs, 1);
        assert_eq!(report.faults.retries, 0, "zero retries allowed, zero spent");
        assert!(report.faults.stalled_flows >= 1, "{:?}", report.faults);
        // The abort lands one stall timeout after the watch was armed —
        // there is no backoff wait tacked on.
        assert!(
            report.outcomes[0].completed_s <= 3.0 * 2.0 + 1.0,
            "no RetrySubmit backoff may delay the abort: completed at {:.2}s",
            report.outcomes[0].completed_s
        );
    }

    #[test]
    fn serving_run_accepts_incremental_submissions() {
        let engine = FleetEngine::new(
            sim(3, 24),
            Box::new(Tetrium::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            FleetConfig::default(),
        );
        let mut run = FleetRun::start_serving(engine);
        assert!(run.finished(), "an empty serving run is trivially finished");
        // Idle stepping advances the WAN clock to the window edge.
        let done = run.serve_step(10.0).unwrap();
        assert_eq!(done, 0);
        assert_eq!(run.time_s(), 10.0);
        // Submit, then step to completion.
        let idx = run.submit_job(small_job(3, 1.0, "served-0"));
        assert_eq!(idx, 0);
        assert_eq!(run.in_service(), 1);
        let mut total = 0;
        while !run.finished() {
            total += run.serve_step(run.time_s() + 50.0).unwrap();
        }
        assert_eq!(total, 1);
        assert_eq!(run.outcomes().len(), 1);
        assert!(run.outcomes()[0].arrived_s >= 10.0, "the job arrived after the idle window");
        let report = run
            .into_report()
            .with_serving(ServingCounters { offered: 1, ..ServingCounters::default() });
        assert_eq!(report.serving.offered, 1);
        assert_eq!(report.serving.shed_jobs, 0);
    }

    #[test]
    fn serve_step_returns_at_first_completion_not_the_deadline() {
        let engine = FleetEngine::new(
            sim(3, 25),
            Box::new(Tetrium::new()),
            Box::new(Pregauged::new(BwMatrix::filled(3, 300.0))),
            FleetConfig::default(),
        );
        let mut run = FleetRun::start_serving(engine);
        let _ = run.submit_job(small_job(3, 0.5, "quick"));
        let done = run.serve_step(1e6).unwrap();
        assert_eq!(done, 1, "the window ends at the first completion");
        assert!(run.time_s() < 1e6, "the run must not idle to the far deadline");
        assert!(run.finished());
    }
}
