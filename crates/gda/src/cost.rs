//! Query cost accounting: compute, network egress and storage.
//!
//! The paper's cost figures include compute, network and storage (§5.1),
//! with a $0.05/vCPU-hour surcharge for unlimited CPU bursts, and note
//! that inter-region data transfer is the dominant unit price (§2.2).

use wanify_netsim::{Region, Topology};

/// Inter-region egress price in USD per GB for traffic leaving `region`
/// (AWS/GCP published inter-region transfer rates, rounded).
pub fn egress_price_per_gb(region: Region) -> f64 {
    match region {
        Region::UsEast | Region::UsWest => 0.02,
        Region::EuWest => 0.02,
        Region::ApSouth => 0.086,
        Region::ApSoutheast1 => 0.09,
        Region::ApSoutheast2 => 0.098,
        Region::ApNortheast => 0.09,
        Region::SaEast => 0.138,
        Region::GcpUsCentral => 0.08,
    }
}

/// S3-style storage price in USD per GB-month (§5.1 uses S3-mounted HDFS).
pub const STORAGE_PRICE_PER_GB_MONTH: f64 = 0.023;

/// Hours per billing month used to prorate storage.
const HOURS_PER_MONTH: f64 = 730.0;

/// Itemized cost of one query execution, in USD.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// VM compute cost including burst surcharges.
    pub compute_usd: f64,
    /// Inter-region egress cost.
    pub network_usd: f64,
    /// Prorated input storage cost.
    pub storage_usd: f64,
}

impl CostBreakdown {
    /// Sum of all components.
    pub fn total_usd(&self) -> f64 {
        self.compute_usd + self.network_usd + self.storage_usd
    }
}

impl std::fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "${:.3} (compute ${:.3}, network ${:.3}, storage ${:.3})",
            self.total_usd(),
            self.compute_usd,
            self.network_usd,
            self.storage_usd
        )
    }
}

/// Prices a query execution on a topology.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Price multiplier for experiments on discounted capacity (default 1).
    pub price_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { price_factor: 1.0 }
    }
}

impl CostModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prices a run: `duration_s` of the whole fleet plus per-source egress
    /// gigabytes and the stored input.
    ///
    /// # Panics
    ///
    /// Panics if `egress_gb_per_dc.len()` differs from the topology size.
    pub fn price(
        &self,
        topo: &Topology,
        duration_s: f64,
        egress_gb_per_dc: &[f64],
        stored_input_gb: f64,
    ) -> CostBreakdown {
        assert_eq!(egress_gb_per_dc.len(), topo.len(), "egress vector must have one entry per DC");
        let hours = duration_s / 3600.0;
        let compute_usd: f64 = topo
            .iter()
            .map(|(_, dc)| f64::from(dc.vm_count) * dc.vm.effective_price_per_hour() * hours)
            .sum();
        let network_usd: f64 = topo
            .iter()
            .zip(egress_gb_per_dc)
            .map(|((_, dc), gb)| egress_price_per_gb(dc.region) * gb)
            .sum();
        let storage_usd = stored_input_gb * STORAGE_PRICE_PER_GB_MONTH * hours / HOURS_PER_MONTH;
        CostBreakdown {
            compute_usd: compute_usd * self.price_factor,
            network_usd: network_usd * self.price_factor,
            storage_usd: storage_usd * self.price_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanify_netsim::{paper_testbed, VmType};

    #[test]
    fn compute_cost_scales_with_duration() {
        let topo = paper_testbed(VmType::t2_medium());
        let model = CostModel::new();
        let short = model.price(&topo, 600.0, &[0.0; 8], 0.0);
        let long = model.price(&topo, 1200.0, &[0.0; 8], 0.0);
        assert!((long.compute_usd / short.compute_usd - 2.0).abs() < 1e-9);
    }

    #[test]
    fn network_cost_uses_source_region_prices() {
        let topo = paper_testbed(VmType::t2_medium());
        let model = CostModel::new();
        let mut from_us = vec![0.0; 8];
        from_us[0] = 10.0; // US East: $0.02/GB
        let mut from_sa = vec![0.0; 8];
        from_sa[7] = 10.0; // SA East: $0.138/GB
        let us = model.price(&topo, 0.0, &from_us, 0.0);
        let sa = model.price(&topo, 0.0, &from_sa, 0.0);
        assert!((us.network_usd - 0.2).abs() < 1e-9);
        assert!((sa.network_usd - 1.38).abs() < 1e-9);
    }

    #[test]
    fn storage_cost_is_small_but_positive() {
        let topo = paper_testbed(VmType::t2_medium());
        let c = CostModel::new().price(&topo, 3600.0, &[0.0; 8], 100.0);
        assert!(c.storage_usd > 0.0 && c.storage_usd < 0.01);
    }

    #[test]
    fn burst_surcharge_reflected_in_compute() {
        let topo = paper_testbed(VmType::t2_medium());
        let c = CostModel::new().price(&topo, 3600.0, &[0.0; 8], 0.0);
        // 8 VMs × ($0.0464 + 2 vCPU × $0.05) ≈ $1.17 per hour.
        assert!((c.compute_usd - 8.0 * 0.1464).abs() < 1e-6);
    }

    #[test]
    fn total_sums_components() {
        let b = CostBreakdown { compute_usd: 1.0, network_usd: 2.0, storage_usd: 0.5 };
        assert_eq!(b.total_usd(), 3.5);
        assert!(b.to_string().contains("compute"));
    }

    #[test]
    #[should_panic]
    fn egress_vector_length_checked() {
        let topo = paper_testbed(VmType::t2_medium());
        let _ = CostModel::new().price(&topo, 1.0, &[0.0; 3], 0.0);
    }
}
