//! Constant-memory streaming order statistics for million-query fleets.
//!
//! [`Percentiles::of`](crate::Percentiles::of) sorts the full sample —
//! exact, but O(n) retained memory, which caps a fleet at however many
//! [`JobOutcome`](crate::JobOutcome)s fit in RAM. This module provides
//! the streaming alternative the fleet switches to above its retention
//! cap: the **P²** single-pass quantile estimator of Jain & Chlamtac
//! (CACM 1985), five markers per tracked quantile, parabolic marker
//! adjustment with a linear fallback. O(1) memory per quantile, fully
//! deterministic (pure arithmetic, no RNG, no timestamps), so sketched
//! fleet reports stay bit-identical across repeats and thread counts.
//!
//! * [`P2Quantile`] — one tracked quantile. Exact (nearest-rank over an
//!   internal 5-slot buffer) until five observations have been seen,
//!   then a P² estimate.
//! * [`StreamingPercentiles`] — the sketch equivalent of
//!   [`Percentiles`](crate::Percentiles): p50/p95/p99 sketches plus
//!   exact mean and max. `snapshot()` yields a `Percentiles` whose
//!   quantiles are estimates (within ~1% of exact nearest-rank on 10k+
//!   well-behaved samples; pinned by the `sketch_accuracy` tests).
//! * [`ClassAggregates`] — per-tenant-class roll-ups (jobs, failures,
//!   makespan/queue-wait sketches, egress) keyed by workload family,
//!   the constant-memory replacement for grouping outcomes after the
//!   fact.

use std::collections::BTreeMap;

/// Streaming estimator of one quantile `q` — the P² algorithm.
///
/// Keeps five markers whose heights straddle the target quantile and
/// nudges them toward their desired ranks after every observation
/// (parabolic interpolation, linear fallback when parabolic would break
/// marker monotonicity). Until five values have been observed the
/// estimate is the exact nearest-rank statistic of the values seen, so
/// tiny samples match [`Percentiles::of`](crate::Percentiles::of)
/// exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights h_0..h_4 (h_2 estimates the quantile).
    heights: [f64; 5],
    /// Actual marker positions n_0..n_4 (1-based ranks, integral values
    /// kept as f64 per the published algorithm).
    positions: [f64; 5],
    /// Desired marker positions n'_0..n'_4.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// A sketch tracking quantile `q` (0 < q < 1).
    ///
    /// # Panics
    ///
    /// Panics when `q` is not strictly between 0 and 1.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "tracked quantile must be in (0, 1), got {q}");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            // Initialization: buffer the first five observations sorted
            // in the height slots; they become the initial markers.
            let n = self.count as usize;
            self.heights[n] = x;
            self.heights[..=n].sort_by(f64::total_cmp);
            self.count += 1;
            return;
        }
        self.count += 1;

        // 1. Locate the cell k with h_k <= x < h_{k+1}, extending the
        //    extreme markers when x falls outside them.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // h_0 <= x < h_4 here, so some cell below 4 holds it.
            (0..4).rev().find(|&i| self.heights[i] <= x).unwrap_or(0)
        };

        // 2. Shift the actual positions above the cell and advance every
        //    desired position by its increment.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // 3. Nudge the three interior markers toward their desired
        //    positions where a whole step is warranted.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let room_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let room_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && room_up) || (d <= -1.0 && room_down) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                // Monotonicity guard: the parabolic step must keep the
                // marker strictly between its neighbours; otherwise fall
                // back to a linear step (which, for tied neighbours,
                // leaves the height on a real sample value).
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved
    /// by `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, n) = (&self.heights, &self.positions);
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear height prediction for marker `i` moved by `d` (±1).
    fn linear(&self, i: usize, d: f64) -> f64 {
        let (h, n) = (&self.heights, &self.positions);
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        h[i] + d * (h[j] - h[i]) / (n[j] - n[i])
    }

    /// The current estimate: exact nearest-rank while fewer than five
    /// observations have been seen (zero when empty), the middle-marker
    /// P² estimate afterwards.
    pub fn estimate(&self) -> f64 {
        let n = self.count as usize;
        if n == 0 {
            return 0.0;
        }
        if n <= 5 {
            // heights[..n] holds every observation, sorted.
            let idx = ((self.q * n as f64).ceil() as usize).clamp(1, n);
            return self.heights[idx - 1];
        }
        self.heights[2]
    }
}

/// The streaming, constant-memory counterpart of
/// [`Percentiles`](crate::Percentiles): P² sketches for p50/p95/p99
/// plus exact running mean and max. Deterministic — equal observation
/// sequences produce bit-identical snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingPercentiles {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    sum: f64,
    max: f64,
    count: u64,
}

impl Default for StreamingPercentiles {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingPercentiles {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            sum: 0.0,
            max: 0.0,
            count: 0,
        }
    }

    /// Absorbs one observation into all three quantile sketches and the
    /// mean/max accumulators.
    pub fn observe(&mut self, x: f64) {
        self.p50.observe(x);
        self.p95.observe(x);
        self.p99.observe(x);
        self.sum += x;
        if self.count == 0 || x > self.max {
            self.max = x;
        }
        self.count += 1;
    }

    /// Observations absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The current statistics as a [`Percentiles`](crate::Percentiles)
    /// value (all zero when empty, exact below six observations, P²
    /// estimates above).
    pub fn snapshot(&self) -> crate::Percentiles {
        crate::Percentiles {
            p50: self.p50.estimate(),
            p95: self.p95.estimate(),
            p99: self.p99.estimate(),
            mean: if self.count == 0 { 0.0 } else { self.sum / self.count as f64 },
            max: self.max,
        }
    }
}

/// Constant-memory per-tenant-class statistics for one fleet run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassStats {
    /// Completed queries of this class (including failed ones).
    pub jobs: u64,
    /// How many of them failed.
    pub failed: u64,
    /// Streaming makespan statistics (admission → completion).
    pub makespan: StreamingPercentiles,
    /// Streaming queue-wait statistics (arrival → admission).
    pub queue_wait: StreamingPercentiles,
    /// Total cross-DC egress attributed to the class, gigabytes.
    pub egress_gb: f64,
}

/// Per-tenant-class roll-ups keyed by workload family — the part of
/// `"terasort-17@g2"` before the trace-index tag (here `"terasort"`),
/// the same family rule [`TenantClassShards`](crate::TenantClassShards)
/// shards by. A `BTreeMap` keeps iteration (and any derived digest)
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassAggregates {
    classes: BTreeMap<String, ClassStats>,
}

/// The workload family of a job name: everything before the trailing
/// `-<index>` tag appended by the trace generators (`"tpcds-q82-7@g1"`
/// → `"tpcds-q82"`); names without a tag are their own family.
pub fn job_family(name: &str) -> &str {
    name.rsplit_once('-').map_or(name, |(family, _)| family)
}

impl ClassAggregates {
    /// An empty roll-up.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one completed query into its family's statistics.
    pub fn record(
        &mut self,
        job_name: &str,
        makespan_s: f64,
        queue_wait_s: f64,
        egress_gb: f64,
        failed: bool,
    ) {
        let stats = self.classes.entry(job_family(job_name).to_string()).or_default();
        stats.jobs += 1;
        if failed {
            stats.failed += 1;
        }
        stats.makespan.observe(makespan_s);
        stats.queue_wait.observe(queue_wait_s);
        stats.egress_gb += egress_gb;
    }

    /// Total queries absorbed across every class.
    pub fn total_jobs(&self) -> u64 {
        self.classes.values().map(|s| s.jobs).sum()
    }

    /// Statistics of one family, if any query of it completed.
    pub fn class(&self, family: &str) -> Option<&ClassStats> {
        self.classes.get(family)
    }

    /// Iterates the families in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ClassStats)> {
        self.classes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// How many distinct families have been seen.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether no query has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Percentiles;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    // ---- edge cases mirroring the exact `Percentiles` unit tests ----

    #[test]
    fn sketch_of_empty_input_is_all_zero() {
        let empty = StreamingPercentiles::new().snapshot();
        assert_eq!(empty.p50, 0.0);
        assert_eq!(empty.p95, 0.0);
        assert_eq!(empty.p99, 0.0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn sketch_of_a_single_element_is_that_element() {
        let mut s = StreamingPercentiles::new();
        s.observe(7.25);
        let one = s.snapshot();
        assert_eq!(one.p50, 7.25);
        assert_eq!(one.p95, 7.25);
        assert_eq!(one.p99, 7.25);
        assert_eq!(one.mean, 7.25);
        assert_eq!(one.max, 7.25);
    }

    #[test]
    fn sketch_of_tied_values_is_that_value() {
        let mut s = StreamingPercentiles::new();
        for _ in 0..9 {
            s.observe(3.5);
        }
        let tied = s.snapshot();
        assert_eq!(tied.p50, 3.5);
        assert_eq!(tied.p95, 3.5);
        assert_eq!(tied.p99, 3.5);
        assert_eq!(tied.mean, 3.5);
        assert_eq!(tied.max, 3.5);
    }

    #[test]
    fn sketch_matches_exact_nearest_rank_below_six_observations() {
        // Up to five observations the sketch still holds the full
        // sample, so it must agree with `Percentiles::of` bit for bit —
        // including the partial-tie case of the exact tests.
        for sample in [
            vec![4.0, 1.0, 3.0, 2.0],
            vec![7.25],
            vec![1.0, 2.0, 2.0, 2.0, 9.0],
            vec![5.0, 5.0, 5.0],
        ] {
            let mut s = StreamingPercentiles::new();
            for &x in &sample {
                s.observe(x);
            }
            assert_eq!(s.snapshot(), Percentiles::of(&sample), "sample {sample:?}");
        }
    }

    // ---- accuracy on large deterministic samples ----

    fn relative_error(est: f64, exact: f64) -> f64 {
        (est - exact).abs() / exact.abs().max(1e-12)
    }

    fn assert_within_one_percent(samples: &[f64], what: &str) {
        assert!(samples.len() >= 10_000, "accuracy is asserted on >= 10k samples");
        let exact = Percentiles::of(samples);
        let mut s = StreamingPercentiles::new();
        for &x in samples {
            s.observe(x);
        }
        let est = s.snapshot();
        for (name, e, x) in
            [("p50", est.p50, exact.p50), ("p95", est.p95, exact.p95), ("p99", est.p99, exact.p99)]
        {
            assert!(
                relative_error(e, x) < 0.01,
                "{what} {name}: sketch {e} vs exact {x} (rel err {})",
                relative_error(e, x)
            );
        }
        assert!(relative_error(est.mean, exact.mean) < 1e-9, "mean is exact");
        assert_eq!(est.max, exact.max, "max is exact");
    }

    #[test]
    fn sketch_within_one_percent_of_exact_on_uniform_samples() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.gen_range(10.0..500.0)).collect();
        assert_within_one_percent(&samples, "uniform");
    }

    #[test]
    fn sketch_within_one_percent_of_exact_on_heavy_tailed_samples() {
        // Exponential via inverse CDF — the shape fleet makespans take
        // under contention (many quick queries, a long straggler tail).
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> =
            (0..20_000).map(|_| 30.0 - 60.0 * (1.0 - rng.gen::<f64>()).ln()).collect();
        assert_within_one_percent(&samples, "exponential");
    }

    #[test]
    fn sketch_is_deterministic() {
        let feed = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = StreamingPercentiles::new();
            for _ in 0..5_000 {
                s.observe(rng.gen_range(0.0..100.0));
            }
            s.snapshot()
        };
        let (a, b) = (feed(3), feed(3));
        assert_eq!(a.p50.to_bits(), b.p50.to_bits());
        assert_eq!(a.p95.to_bits(), b.p95.to_bits());
        assert_eq!(a.p99.to_bits(), b.p99.to_bits());
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.max.to_bits(), b.max.to_bits());
    }

    // ---- per-class roll-ups ----

    #[test]
    fn job_family_strips_the_trace_index_tag() {
        assert_eq!(job_family("terasort-17"), "terasort");
        assert_eq!(job_family("tpcds-q82-7@g1"), "tpcds-q82");
        assert_eq!(job_family("untagged"), "untagged");
    }

    #[test]
    fn class_aggregates_roll_up_by_family_in_sorted_order() {
        let mut agg = ClassAggregates::new();
        agg.record("wordcount-1", 10.0, 1.0, 0.5, false);
        agg.record("terasort-0", 20.0, 2.0, 1.5, false);
        agg.record("wordcount-3", 30.0, 3.0, 0.5, true);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg.total_jobs(), 3);
        let families: Vec<&str> = agg.iter().map(|(f, _)| f).collect();
        assert_eq!(families, ["terasort", "wordcount"], "BTreeMap order is deterministic");
        let wc = agg.class("wordcount").unwrap();
        assert_eq!(wc.jobs, 2);
        assert_eq!(wc.failed, 1);
        assert_eq!(wc.egress_gb, 1.0);
        assert_eq!(wc.makespan.snapshot().max, 30.0);
        assert_eq!(wc.queue_wait.snapshot().p50, 1.0);
        assert!(agg.class("tpcds").is_none());
    }
}
