//! HDFS-like block storage layout across data centers.
//!
//! The paper stores input on S3-mounted HDFS with 64 MB blocks (§5.1) and
//! controls skew by moving blocks between regions (§5.8.1). WANify reads
//! the resulting *skewness weights* from the storage layer (§3.3.1).

/// Distribution of a job's input blocks across data centers.
#[derive(Debug, Clone, PartialEq)]
pub struct DataLayout {
    /// Block size in megabytes (the paper uses 64 MB).
    pub block_size_mb: f64,
    /// Number of blocks stored at each DC.
    pub blocks_per_dc: Vec<u64>,
}

impl DataLayout {
    /// Spreads `total_gb` uniformly over `n_dcs` data centers.
    ///
    /// # Panics
    ///
    /// Panics if `n_dcs == 0` or `total_gb < 0`.
    pub fn uniform(n_dcs: usize, total_gb: f64) -> Self {
        assert!(n_dcs > 0, "layout needs at least one DC");
        assert!(total_gb >= 0.0, "input size must be non-negative");
        let block_size_mb = 64.0;
        let total_blocks = (total_gb * 1024.0 / block_size_mb).round() as u64;
        let base = total_blocks / n_dcs as u64;
        let rem = (total_blocks % n_dcs as u64) as usize;
        let blocks_per_dc = (0..n_dcs).map(|i| base + u64::from(i < rem)).collect();
        Self { block_size_mb, blocks_per_dc }
    }

    /// Builds a layout from explicit per-DC gigabytes.
    ///
    /// # Panics
    ///
    /// Panics if `gb_per_dc` is empty or contains negatives.
    pub fn from_gb(gb_per_dc: &[f64]) -> Self {
        assert!(!gb_per_dc.is_empty(), "layout needs at least one DC");
        assert!(gb_per_dc.iter().all(|&g| g >= 0.0), "sizes must be non-negative");
        let block_size_mb = 64.0;
        let blocks_per_dc =
            gb_per_dc.iter().map(|g| (g * 1024.0 / block_size_mb).round() as u64).collect();
        Self { block_size_mb, blocks_per_dc }
    }

    /// Number of data centers in the layout.
    pub fn len(&self) -> usize {
        self.blocks_per_dc.len()
    }

    /// True when the layout covers no DCs (never constructible).
    pub fn is_empty(&self) -> bool {
        self.blocks_per_dc.is_empty()
    }

    /// Gigabytes stored at DC `i`.
    pub fn gb_at(&self, i: usize) -> f64 {
        self.blocks_per_dc[i] as f64 * self.block_size_mb / 1024.0
    }

    /// Total input size in gigabytes.
    pub fn total_gb(&self) -> f64 {
        (0..self.len()).map(|i| self.gb_at(i)).sum()
    }

    /// Per-DC input fractions (sum to 1) — WANify's skewness weights `ws`
    /// (paper §3.3.1). Uniform when the layout is empty.
    pub fn skew_weights(&self) -> Vec<f64> {
        let total: u64 = self.blocks_per_dc.iter().sum();
        if total == 0 {
            return vec![1.0 / self.len() as f64; self.len()];
        }
        self.blocks_per_dc.iter().map(|&b| b as f64 / total as f64).collect()
    }

    /// Moves `blocks` from DC `from` to DC `to` (as §5.8.1 does to create
    /// skew), clamping at availability.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn move_blocks(&mut self, from: usize, to: usize, blocks: u64) {
        assert!(from < self.len() && to < self.len(), "DC index out of bounds");
        let moved = blocks.min(self.blocks_per_dc[from]);
        self.blocks_per_dc[from] -= moved;
        self.blocks_per_dc[to] += moved;
    }

    /// Gini-style skewness indicator: 0 for perfectly uniform layouts,
    /// approaching 1 as all data concentrates in one DC.
    pub fn skewness(&self) -> f64 {
        let w = self.skew_weights();
        let n = w.len() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let max = w.iter().copied().fold(0.0, f64::max);
        (max - 1.0 / n) / (1.0 - 1.0 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout_splits_evenly() {
        let l = DataLayout::uniform(8, 100.0);
        assert_eq!(l.len(), 8);
        assert!((l.total_gb() - 100.0).abs() < 0.1);
        let w = l.skew_weights();
        for &x in &w {
            assert!((x - 0.125).abs() < 0.01);
        }
        assert!(l.skewness() < 0.01);
    }

    #[test]
    fn from_gb_roundtrips() {
        let l = DataLayout::from_gb(&[10.0, 0.0, 30.0]);
        assert!((l.gb_at(0) - 10.0).abs() < 0.1);
        assert_eq!(l.gb_at(1), 0.0);
        assert!((l.total_gb() - 40.0).abs() < 0.1);
    }

    #[test]
    fn move_blocks_creates_skew() {
        let mut l = DataLayout::uniform(4, 40.0);
        let before = l.skewness();
        let half = l.blocks_per_dc[1] / 2 + l.blocks_per_dc[2];
        l.move_blocks(1, 0, half);
        l.move_blocks(2, 0, half);
        assert!(l.skewness() > before);
        let total: u64 = l.blocks_per_dc.iter().sum();
        assert_eq!(total, 40 * 1024 / 64);
    }

    #[test]
    fn move_blocks_clamps_at_availability() {
        let mut l = DataLayout::from_gb(&[1.0, 1.0]);
        l.move_blocks(0, 1, 10_000);
        assert_eq!(l.blocks_per_dc[0], 0);
    }

    #[test]
    fn skew_weights_of_empty_data_are_uniform() {
        let l = DataLayout::from_gb(&[0.0, 0.0]);
        assert_eq!(l.skew_weights(), vec![0.5, 0.5]);
    }

    #[test]
    fn full_concentration_has_skewness_one() {
        let l = DataLayout::from_gb(&[100.0, 0.0, 0.0, 0.0]);
        assert!((l.skewness() - 1.0).abs() < 1e-9);
    }
}
