//! Analytics job profiles: stage DAGs with compute and shuffle behaviour.

use crate::storage::DataLayout;

/// One stage of a job: a compute pass over its input followed by an
/// all-to-all shuffle of its output (unless it is the final stage).
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// Stage label, e.g. `"map"` or `"reduce-1"`.
    pub name: String,
    /// Output bytes / input bytes for this stage (shuffle selectivity).
    pub selectivity: f64,
    /// vCPU-seconds needed per gigabyte of stage input.
    pub compute_s_per_gb: f64,
    /// Whether the stage's output is shuffled to the next stage. The last
    /// stage of most queries aggregates locally and sets this to `false`.
    pub shuffles: bool,
}

impl StageProfile {
    /// Creates a shuffling stage.
    pub fn shuffling(name: &str, selectivity: f64, compute_s_per_gb: f64) -> Self {
        Self { name: name.to_string(), selectivity, compute_s_per_gb, shuffles: true }
    }

    /// Creates a terminal (non-shuffling) stage.
    pub fn terminal(name: &str, selectivity: f64, compute_s_per_gb: f64) -> Self {
        Self { name: name.to_string(), selectivity, compute_s_per_gb, shuffles: false }
    }
}

/// A complete analytics job: input layout plus an ordered list of stages.
///
/// This is the simulator's stand-in for a Spark job compiled from TeraSort,
/// WordCount, a TPC-DS query, or an ML training iteration (paper §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfile {
    /// Job name used in reports.
    pub name: String,
    /// Input block distribution across DCs.
    pub layout: DataLayout,
    /// Stages in execution order.
    pub stages: Vec<StageProfile>,
}

impl JobProfile {
    /// Creates a job over `layout` with the given stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or any selectivity is negative.
    pub fn new(name: &str, layout: DataLayout, stages: Vec<StageProfile>) -> Self {
        assert!(!stages.is_empty(), "a job needs at least one stage");
        assert!(
            stages.iter().all(|s| s.selectivity >= 0.0 && s.compute_s_per_gb >= 0.0),
            "stage parameters must be non-negative"
        );
        Self { name: name.to_string(), layout, stages }
    }

    /// Total input size in gigabytes.
    pub fn input_gb(&self) -> f64 {
        self.layout.total_gb()
    }

    /// Estimated total shuffle volume in gigabytes, assuming the input
    /// passes through every stage in place (used for cost previews).
    pub fn estimated_shuffle_gb(&self) -> f64 {
        let mut data = self.input_gb();
        let mut shuffled = 0.0;
        for s in &self.stages {
            data *= s.selectivity;
            if s.shuffles {
                shuffled += data;
            }
        }
        shuffled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobProfile {
        JobProfile::new(
            "sort",
            DataLayout::uniform(4, 10.0),
            vec![
                StageProfile::shuffling("map", 1.0, 2.0),
                StageProfile::terminal("reduce", 0.1, 1.0),
            ],
        )
    }

    #[test]
    fn job_reports_input_size() {
        assert!((job().input_gb() - 10.0).abs() < 0.1);
    }

    #[test]
    fn shuffle_estimate_accumulates_shuffling_stages() {
        let j = job();
        // Only the map stage shuffles: 10 GB × 1.0 selectivity.
        assert!((j.estimated_shuffle_gb() - 10.0).abs() < 0.1);
    }

    #[test]
    #[should_panic]
    fn empty_stage_list_panics() {
        let _ = JobProfile::new("bad", DataLayout::uniform(2, 1.0), vec![]);
    }

    #[test]
    #[should_panic]
    fn negative_selectivity_panics() {
        let _ = JobProfile::new(
            "bad",
            DataLayout::uniform(2, 1.0),
            vec![StageProfile::shuffling("m", -0.5, 1.0)],
        );
    }
}
