//! # wanify-gda
//!
//! A geo-distributed data analytics (GDA) engine substrate: the simulated
//! equivalent of the paper's Spark + HDFS + Tetrium/Kimchi stack (§5.1).
//!
//! A [`job::JobProfile`] models a query as a sequence of stages
//! (compute + shuffle). A [`scheduler::Scheduler`] consumes a
//! bandwidth matrix — static-independent, static-simultaneous or WANify's
//! predicted runtime matrix — and decides reduce-task placement and input
//! migration. The [`executor`] then *actually* runs the resulting transfers
//! on the [`wanify_netsim`] WAN simulator, where true runtime contention
//! applies, so decisions made with inaccurate bandwidth estimates cost real
//! simulated latency exactly as the paper describes (§2.2).
//!
//! Three schedulers are provided:
//!
//! * [`scheduler::VanillaSpark`] — locality-aware maps, uniform reduces;
//! * [`scheduler::Tetrium`] — latency-optimal task + data placement
//!   (Hung et al., EuroSys'18), reimplemented from its published heuristic;
//! * [`scheduler::Kimchi`] — network-cost-aware placement (Oh et al.,
//!   TPDS'21), trading latency against egress dollars.
//!
//! Costs follow the paper's accounting (§5.1): compute (with the unlimited
//! burst vCPU surcharge), inter-region network egress, and storage.
//!
//! Three execution paths share the same per-query semantics:
//!
//! * [`executor::run_job`] — the legacy blocking path: one query owns the
//!   simulator until it completes;
//! * [`fleet::FleetEngine`] — the multi-tenant path: many concurrent
//!   queries, each a resumable [`executor::JobRun`] state machine, contend
//!   on one shared WAN through [`wanify_netsim::NetEngine`]. A fleet of
//!   one reproduces `run_job`'s report bit for bit;
//! * [`sharded::ShardedFleetEngine`] — the scale-out path: tenants
//!   partitioned across shard-local engines by a [`sharded::ShardPolicy`],
//!   coupled through a [`wanify_netsim::Backbone`] epoch exchange, run on
//!   rayon with a deterministic merge. One shard reproduces `FleetEngine`
//!   bit for bit; results are identical at any thread count.
//!
//! The fleet scales past materialized traces: arrivals can be pulled
//! lazily from an iterator ([`fleet::FleetRun::start_stream`],
//! [`sharded::ShardedFleetEngine::run_stream`]) so the trace is O(1)
//! memory, per-job accounting can be capped
//! ([`fleet::FleetConfig::retain_outcomes`]) with everything past the cap
//! folded into deterministic P² percentile [`sketch`]es and
//! per-tenant-class aggregates (sums stay bitwise-exact), and shards can
//! be coupled through a two-tier [`wanify_netsim::BackboneHierarchy`]
//! (regional trunks every sync window, continental trunks every Nth) for
//! tiled 64+ DC topologies. `BENCH_scale.json` pins the resulting
//! 60 → 10k → 100k query trajectory with a flat memory ceiling.

pub mod cost;
pub mod executor;
pub mod fleet;
pub mod job;
pub mod scheduler;
pub mod sharded;
pub mod sketch;
pub mod storage;

pub use cost::{CostBreakdown, CostModel};
pub use executor::{run_job, JobRun, JobStep, QueryReport, TransferOptions};
pub use fleet::{
    poisson_arrival_times, poisson_times_iter, Arrivals, FaultCounters, FaultPolicy, FleetAgent,
    FleetConfig, FleetEngine, FleetReport, FleetRun, JobOutcome, Percentiles, PoissonTimes,
    ServingCounters, StreamingTotals,
};
pub use job::{JobProfile, StageProfile};
pub use scheduler::{Kimchi, PlacementCtx, Scheduler, Tetrium, VanillaSpark};
pub use sharded::{
    RegionGroupShards, RoundRobinShards, ShardPolicy, ShardedFleetEngine, ShardedFleetReport,
    TenantClassShards,
};
pub use sketch::{job_family, ClassAggregates, ClassStats, P2Quantile, StreamingPercentiles};
pub use storage::DataLayout;
