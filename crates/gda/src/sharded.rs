//! Sharded multi-sim fleet: tenants partitioned across shard-local
//! engines, coupled by a cross-shard backbone, run on rayon.
//!
//! [`FleetEngine`](crate::FleetEngine) serializes every tenant through
//! one [`NetEngine`](wanify_netsim::NetEngine): fleet scale is capped by
//! a single event loop on a single core, and every fairness solve sees
//! *all* tenants' flows at once. [`ShardedFleetEngine`] breaks that wall
//! with the decomposition distributed node runtimes use:
//!
//! * a pluggable [`ShardPolicy`] assigns each tenant to one of N
//!   **shards** — by the region group its data lives in
//!   ([`RegionGroupShards`]), by tenant class ([`TenantClassShards`]), or
//!   round-robin ([`RoundRobinShards`]);
//! * every shard is a full [`FleetEngine`] (own simulator, scheduler,
//!   belief cache) driven as a resumable [`FleetRun`], so per-shard
//!   event loops and fairness solves only carry that shard's tenants;
//! * shards are coupled through a [`Backbone`]: at every sync point the
//!   driver collects per-shard cross-group demand, divides each trunk by
//!   max-min fairness, and applies each shard's grant as per-pair caps —
//!   between sync points the shards simulate **independently**, each
//!   event-coalescing as usual;
//! * windows run on rayon (`into_par_iter`), and per-shard completion
//!   events merge deterministically into one [`FleetReport`].
//!
//! Determinism is the headline property: results are **bit-identical at
//! any `RAYON_NUM_THREADS`** (shards share no mutable state inside a
//! window, and the merge orders by completion time with shard index as
//! the tiebreak), and a 1-shard sharded fleet — where no cross-shard
//! exchange exists, so no sync deadlines are imposed — reproduces
//! [`FleetEngine::run`](crate::FleetEngine::run) bit for bit (pinned by
//! the `sharded_parity` proptest).

use crate::fleet::{
    self, Arrivals, FleetEngine, FleetReport, FleetRun, JobOutcome, StreamingTotals,
};
use crate::job::JobProfile;
use rayon::prelude::*;
use wanify::WanifyError;
use wanify_netsim::{Backbone, BackboneHierarchy, Grid, Topology};

/// A coarse-tier grant held between refreshes: per-shard shares and the
/// demand snapshot they were computed against.
type TierGrant = (Vec<Grid<f64>>, Vec<Grid<f64>>);

/// Assigns every job of a trace to a shard.
///
/// `Send` so policies can be consulted from the sharded driver; the
/// driver reduces whatever the policy returns modulo the shard count.
pub trait ShardPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Shard for job `idx` of the trace (reduced modulo `n_shards` by the
    /// driver).
    fn shard_of(&self, idx: usize, job: &JobProfile, topo: &Topology, n_shards: usize) -> usize;
}

/// Shards tenants by the region group holding the plurality of their
/// input data: queries live near their data, so most of a shard's
/// traffic stays inside its group and only the remainder crosses the
/// backbone.
#[derive(Debug, Clone)]
pub struct RegionGroupShards {
    /// Region group per DC, indexed by `DcId` (e.g.
    /// [`Backbone::groups`]).
    group_of: Vec<usize>,
}

impl RegionGroupShards {
    /// Builds the policy from a DC → group map.
    pub fn new(group_of: Vec<usize>) -> Self {
        Self { group_of }
    }

    /// Builds the policy from the backbone's own grouping.
    pub fn from_backbone(backbone: &Backbone) -> Self {
        Self::new(backbone.groups().to_vec())
    }
}

impl ShardPolicy for RegionGroupShards {
    fn name(&self) -> &str {
        "region-group"
    }

    fn shard_of(&self, _idx: usize, job: &JobProfile, _topo: &Topology, n_shards: usize) -> usize {
        // Plurality by *group*, not by single DC: a home group whose data
        // is spread over several DCs must still beat one concentrated
        // foreign DC. Ties break to the lowest group id.
        let n_groups = self.group_of.iter().copied().max().map_or(1, |g| g + 1);
        let mut gb_per_group = vec![0.0f64; n_groups];
        for dc in 0..job.layout.len() {
            if let Some(&g) = self.group_of.get(dc) {
                gb_per_group[g] += job.layout.gb_at(dc);
            }
        }
        let mut best_group = 0usize;
        let mut best_gb = f64::NEG_INFINITY;
        for (g, &gb) in gb_per_group.iter().enumerate() {
            if gb > best_gb {
                best_gb = gb;
                best_group = g;
            }
        }
        best_group % n_shards
    }
}

/// Shards tenants by workload family (the job-name prefix before the
/// trace index), so e.g. all TeraSorts contend with each other but never
/// with the TPC-DS tenants' event loop.
#[derive(Debug, Clone, Default)]
pub struct TenantClassShards;

impl TenantClassShards {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl ShardPolicy for TenantClassShards {
    fn name(&self) -> &str {
        "tenant-class"
    }

    fn shard_of(&self, _idx: usize, job: &JobProfile, _topo: &Topology, n_shards: usize) -> usize {
        // Family = name up to the trailing "-<index>" tag; FNV-1a keeps
        // the mapping stable across runs and platforms.
        let family = job.name.rsplit_once('-').map_or(job.name.as_str(), |(f, _)| f);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in family.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % n_shards as u64) as usize
    }
}

/// Shards tenants round-robin by trace index: balanced shard populations
/// regardless of workload mix, the default for wall-clock scale-out
/// sweeps.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinShards;

impl RoundRobinShards {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl ShardPolicy for RoundRobinShards {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn shard_of(&self, idx: usize, _job: &JobProfile, _topo: &Topology, n_shards: usize) -> usize {
        idx % n_shards
    }
}

/// Outcome of one sharded fleet run.
#[derive(Debug, Clone)]
pub struct ShardedFleetReport {
    /// The merged fleet-level report: all shards' outcomes ordered by
    /// completion time (shard index breaks ties), gauges summed, duration
    /// spanning first arrival to last completion across the whole fleet.
    pub fleet: FleetReport,
    /// Each shard's own report, in shard order.
    pub per_shard: Vec<FleetReport>,
    /// Shard policy that partitioned the trace.
    pub policy: String,
    /// Backbone epoch exchanges performed (0 when uncoupled).
    pub backbone_syncs: u64,
    /// Peak per-job state the fleet held at once: the sum of every
    /// shard's [`FleetRun::peak_tracked`] plus the outcomes the driver
    /// retained — the memory proxy `bench_scale` tracks. Materialized
    /// runs hold the whole trace; streamed runs hold one window.
    pub peak_tracked: usize,
}

impl ShardedFleetReport {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Jobs served per shard, in shard order (counts every completion,
    /// including outcomes a streaming run has already drained or a
    /// retention cap has dropped).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.per_shard.iter().map(FleetReport::completed).collect()
    }
}

/// The sharded multi-tenant serving engine. See the module docs.
pub struct ShardedFleetEngine {
    shards: Vec<FleetEngine>,
    policy: Box<dyn ShardPolicy>,
    backbone: Option<Backbone>,
    hierarchy: Option<BackboneHierarchy>,
}

impl std::fmt::Debug for ShardedFleetEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFleetEngine")
            .field("shards", &self.shards.len())
            .field("policy", &self.policy.name())
            .field("backbone", &self.backbone.is_some())
            .field("hierarchy", &self.hierarchy.is_some())
            .finish()
    }
}

impl ShardedFleetEngine {
    /// Builds a sharded fleet from per-shard engines, a placement policy
    /// and an optional backbone. Each engine must simulate the same
    /// topology (each shard sees the whole WAN; only its own tenants'
    /// flows run on it). With `backbone: None` — or a single shard, which
    /// owns every trunk outright — the shards run fully uncoupled and no
    /// sync deadlines are imposed.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(
        shards: Vec<FleetEngine>,
        policy: Box<dyn ShardPolicy>,
        backbone: Option<Backbone>,
    ) -> Self {
        assert!(!shards.is_empty(), "a sharded fleet needs at least one shard");
        Self { shards, policy, backbone, hierarchy: None }
    }

    /// Couples the shards through a two-tier [`BackboneHierarchy`]
    /// instead of a flat backbone: the fine tier (e.g. regional trunks)
    /// exchanges every one of its sync windows, the coarse tier (e.g.
    /// continental trunks) only every
    /// [`sync_ratio`](BackboneHierarchy::sync_ratio)-th window, its last
    /// grant persisting in between. Both tiers' caps compose cell-wise,
    /// so a flow crossing both a regional and a continental boundary is
    /// bounded by the tighter of its two grants. Replaces any flat
    /// backbone passed to [`ShardedFleetEngine::new`].
    #[must_use]
    pub fn with_hierarchy(mut self, hierarchy: BackboneHierarchy) -> Self {
        self.backbone = None;
        self.hierarchy = Some(hierarchy);
        self
    }

    /// Validates shard topologies and the coupling's group maps; returns
    /// the common DC count.
    fn validate_shards(&self) -> Result<usize, WanifyError> {
        let n_dcs = self.shards[0].sim().topology().len();
        let coupling_groups = match (&self.hierarchy, &self.backbone) {
            (Some(h), _) => Some(h.tier1().groups().len()),
            (None, Some(bb)) => Some(bb.groups().len()),
            (None, None) => None,
        };
        if let Some(got) = coupling_groups {
            if got != n_dcs {
                return Err(WanifyError::DimensionMismatch { expected: n_dcs, got });
            }
        }
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.sim().topology().len() != n_dcs {
                return Err(WanifyError::DimensionMismatch {
                    expected: n_dcs,
                    got: shard.sim().topology().len(),
                });
            }
            if shard.sim().topology() != self.shards[0].sim().topology() {
                return Err(WanifyError::InvalidConfig(format!(
                    "shard {s} simulates a different topology than shard 0; every shard \
                     must replicate the same WAN"
                )));
            }
        }
        Ok(n_dcs)
    }

    /// The driver's sync-window length: the fine tier's cadence under a
    /// hierarchy, the flat backbone's otherwise, and unbounded when the
    /// shards are uncoupled (no coupling, or a single shard that owns
    /// every trunk outright).
    fn sync_window_s(&self) -> f64 {
        if self.shards.len() < 2 {
            return f64::INFINITY;
        }
        match (&self.hierarchy, &self.backbone) {
            (Some(h), _) => h.tier1().sync_every_s(),
            (None, Some(bb)) => bb.sync_every_s(),
            (None, None) => f64::INFINITY,
        }
    }

    /// Serves `jobs` across the shards and returns the merged report.
    ///
    /// The trace is partitioned by the shard policy (preserving trace
    /// order within each shard), and the fleet-wide load is preserved at
    /// every shard count: a Poisson stream is sampled **once** for the
    /// whole trace — exactly as [`FleetEngine::run`] samples it — and its
    /// arrival times travel with the jobs to their shards (thinning, so
    /// the aggregate arrival process never scales with the shard count),
    /// while a closed-loop client population is split across shards
    /// (remainder to the lowest indices, at least one client per
    /// non-empty shard). A 1-shard fleet therefore reproduces
    /// [`FleetEngine::run`] exactly. Shards advance in backbone sync
    /// windows on rayon; the result is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] for invalid arrivals, gauge/layout
    /// failures on any shard (lowest shard index wins when several fail
    /// in one window), a backbone whose group map does not cover the
    /// topology, or a shard that can no longer make progress.
    pub fn run(
        self,
        jobs: &[JobProfile],
        arrivals: &Arrivals,
    ) -> Result<ShardedFleetReport, WanifyError> {
        let n_shards = self.shards.len();
        self.validate_shards()?;
        let sync_window = self.sync_window_s();

        // Partition the trace, preserving order within each shard.
        let mut per_shard_jobs: Vec<Vec<JobProfile>> = vec![Vec::new(); n_shards];
        let mut shard_of_idx: Vec<usize> = Vec::with_capacity(jobs.len());
        {
            let topo = self.shards[0].sim().topology();
            for (idx, job) in jobs.iter().enumerate() {
                let s = self.policy.shard_of(idx, job, topo, n_shards) % n_shards;
                per_shard_jobs[s].push(job.clone());
                shard_of_idx.push(s);
            }
        }

        let policy_name = self.policy.name().to_string();
        let mut runs: Vec<FleetRun> = Vec::with_capacity(n_shards);
        match arrivals {
            Arrivals::Poisson { rate_per_s, seed } => {
                // Thin one global Poisson stream: arrival times are
                // sampled once for the whole trace (exactly as the
                // single-engine fleet samples them) and travel with the
                // jobs to their shards, so the fleet-wide arrival process
                // is identical at every shard count.
                let times = fleet::poisson_arrival_times(jobs.len(), *rate_per_s, *seed)?;
                let mut per_shard_times: Vec<Vec<f64>> = vec![Vec::new(); n_shards];
                for (idx, t) in times.into_iter().enumerate() {
                    per_shard_times[shard_of_idx[idx]].push(t);
                }
                for (engine, (shard_jobs, shard_times)) in
                    self.shards.into_iter().zip(per_shard_jobs.into_iter().zip(per_shard_times))
                {
                    runs.push(FleetRun::start_at(engine, shard_jobs, shard_times)?);
                }
            }
            Arrivals::Scheduled { times } => {
                // Explicit schedules thin exactly like a Poisson stream:
                // each job's arrival time travels with it to its shard.
                fleet::validate_schedule(times, jobs.len())?;
                let mut per_shard_times: Vec<Vec<f64>> = vec![Vec::new(); n_shards];
                for (idx, &t) in times.iter().enumerate() {
                    per_shard_times[shard_of_idx[idx]].push(t);
                }
                for (engine, (shard_jobs, shard_times)) in
                    self.shards.into_iter().zip(per_shard_jobs.into_iter().zip(per_shard_times))
                {
                    runs.push(FleetRun::start_at(engine, shard_jobs, shard_times)?);
                }
            }
            Arrivals::Closed { clients, think_s } => {
                if *clients == 0 {
                    return Err(WanifyError::InvalidConfig(
                        "closed-loop arrivals need at least one client".into(),
                    ));
                }
                // Split the client population across shards (remainder to
                // the lowest indices) so the fleet-wide concurrency level
                // does not scale with the shard count; every non-empty
                // shard keeps at least one client so it can make
                // progress. A single shard gets the whole population.
                let base = *clients / n_shards;
                let rem = *clients % n_shards;
                for (s, (engine, shard_jobs)) in
                    self.shards.into_iter().zip(per_shard_jobs).enumerate()
                {
                    let mut shard_clients = base + usize::from(s < rem);
                    if shard_clients == 0 && !shard_jobs.is_empty() {
                        shard_clients = 1;
                    }
                    let shard_arrivals =
                        Arrivals::Closed { clients: shard_clients.max(1), think_s: *think_s };
                    runs.push(FleetRun::start(engine, shard_jobs, &shard_arrivals)?);
                }
            }
        }

        // Sync windows: with a coupling and ≥ 2 shards, pause every shard
        // each sync window of simulated seconds for the epoch exchange;
        // otherwise one unbounded window serves everything.
        let sync_s = sync_window;
        let mut backbone_syncs = 0u64;
        let mut tier2_grant: Option<TierGrant> = None;
        let mut window = 0u64;
        loop {
            if sync_s.is_finite() {
                backbone_syncs += exchange_tiers(
                    self.backbone.as_ref(),
                    self.hierarchy.as_ref(),
                    &mut runs,
                    window,
                    &mut tier2_grant,
                );
            }
            window += 1;
            let deadline_s =
                if sync_s.is_finite() { window as f64 * sync_s } else { f64::INFINITY };
            // Each shard owns its whole state: the window outcome cannot
            // depend on scheduling, so any thread count is bit-identical.
            let stepped: Vec<(FleetRun, Option<WanifyError>)> = runs
                .into_par_iter()
                .map(|mut run| {
                    let err = if run.finished() { None } else { run.run_until(deadline_s).err() };
                    (run, err)
                })
                .collect();
            runs = Vec::with_capacity(n_shards);
            for (run, err) in stepped {
                if let Some(e) = err {
                    return Err(e);
                }
                runs.push(run);
            }
            if runs.iter().all(FleetRun::finished) {
                break;
            }
            debug_assert!(
                sync_s.is_finite(),
                "an unbounded window either finishes every shard or errors"
            );
        }

        let peak_tracked = runs.iter().map(FleetRun::peak_tracked).sum();
        let per_shard: Vec<FleetReport> = runs.into_iter().map(FleetRun::into_report).collect();
        Ok(ShardedFleetReport {
            fleet: merge_reports(&per_shard),
            per_shard,
            policy: policy_name,
            backbone_syncs,
            peak_tracked,
        })
    }

    /// Serves `total_jobs` arrivals pulled lazily from `stream` —
    /// `(arrival_s, profile)` pairs in non-decreasing time order — with
    /// O(window) per-job state instead of O(trace): each sync window the
    /// driver feeds the arrivals due inside it to their shards (the
    /// policy sees the job's global index), steps every shard on rayon,
    /// then drains the window's completions in `(completed_s, shard)`
    /// order into fleet-wide streaming totals, retaining at most
    /// `retain_outcomes` individual outcomes.
    ///
    /// Shard engines should keep their default
    /// [`retain_outcomes`](crate::FleetConfig::retain_outcomes) —
    /// per-shard vectors are drained every window, so they never outgrow
    /// one window's completions; a shard-level cap would silently drop
    /// outcomes *before* the drain and corrupt the fleet totals.
    ///
    /// The merged report is exact ([`FleetReport::new`]) when every
    /// outcome fit under `retain_outcomes`, sketched
    /// ([`FleetReport::streamed`]) otherwise; either way it is
    /// bit-identical across repeats and `RAYON_NUM_THREADS` settings.
    /// The drain order differs from [`ShardedFleetEngine::run`]'s global
    /// completion-time merge only in that it is window-partitioned first,
    /// which is the same order whenever windows align — and always
    /// deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] exactly as [`ShardedFleetEngine::run`]
    /// does, plus [`WanifyError::InvalidConfig`] for invalid or
    /// decreasing streamed arrival times and a stream that runs dry
    /// before `total_jobs`.
    pub fn run_stream(
        self,
        total_jobs: usize,
        stream: Box<dyn Iterator<Item = (f64, JobProfile)> + Send>,
        retain_outcomes: usize,
    ) -> Result<ShardedFleetReport, WanifyError> {
        let n_shards = self.shards.len();
        self.validate_shards()?;
        let sync_s = self.sync_window_s();
        let topo = self.shards[0].sim().topology().clone();
        let policy_name = self.policy.name().to_string();
        let mut runs: Vec<FleetRun> =
            self.shards.into_iter().map(FleetRun::start_serving).collect();

        let mut stream = stream.peekable();
        let mut issued = 0usize;
        let mut last_t = 0.0f64;
        let mut backbone_syncs = 0u64;
        let mut tier2_grant: Option<TierGrant> = None;
        let mut window = 0u64;
        let mut totals = StreamingTotals::default();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        let mut first_arrival_s = f64::INFINITY;
        let mut last_completed_s = f64::NEG_INFINITY;
        loop {
            let window_end =
                if sync_s.is_finite() { (window + 1) as f64 * sync_s } else { f64::INFINITY };

            // Feed every arrival due inside this window to its shard.
            while issued < total_jobs {
                match stream.peek() {
                    Some(&(at_s, _)) if at_s <= window_end => {
                        if !(at_s.is_finite() && at_s >= 0.0) {
                            return Err(WanifyError::InvalidConfig(format!(
                                "streamed arrival times must be finite and non-negative, \
                                 got {at_s}"
                            )));
                        }
                        if at_s < last_t {
                            return Err(WanifyError::InvalidConfig(format!(
                                "streamed arrivals must be non-decreasing, got {at_s} \
                                 after {last_t}"
                            )));
                        }
                        last_t = at_s;
                        let (at_s, job) = stream.next().expect("peeked");
                        let s = self.policy.shard_of(issued, &job, &topo, n_shards) % n_shards;
                        runs[s].feed_job(issued, job, at_s);
                        issued += 1;
                    }
                    Some(_) => break,
                    None => {
                        return Err(WanifyError::InvalidConfig(format!(
                            "arrival stream ran dry after {issued} of {total_jobs} jobs"
                        )));
                    }
                }
            }

            if sync_s.is_finite() {
                backbone_syncs += exchange_tiers(
                    self.backbone.as_ref(),
                    self.hierarchy.as_ref(),
                    &mut runs,
                    window,
                    &mut tier2_grant,
                );
            }
            window += 1;
            let stepped: Vec<(FleetRun, Option<WanifyError>)> = runs
                .into_par_iter()
                .map(|mut run| {
                    let err = if run.finished() { None } else { run.run_until(window_end).err() };
                    (run, err)
                })
                .collect();
            runs = Vec::with_capacity(n_shards);
            for (run, err) in stepped {
                if let Some(e) = err {
                    return Err(e);
                }
                runs.push(run);
            }

            // Drain this window's completions in (completed_s, shard)
            // order — deterministic at any thread count — into the
            // fleet-wide totals.
            let mut drained: Vec<(usize, JobOutcome)> = Vec::new();
            for (s, run) in runs.iter_mut().enumerate() {
                drained.extend(run.take_outcomes().into_iter().map(|o| (s, o)));
            }
            drained.sort_by(|(sa, a), (sb, b)| {
                a.completed_s.total_cmp(&b.completed_s).then(sa.cmp(sb))
            });
            for (_, o) in drained {
                first_arrival_s = first_arrival_s.min(o.arrived_s);
                last_completed_s = last_completed_s.max(o.completed_s);
                totals.absorb(&o);
                if outcomes.len() < retain_outcomes {
                    outcomes.push(o);
                }
            }

            if issued == total_jobs && runs.iter().all(FleetRun::finished) {
                break;
            }
            debug_assert!(
                sync_s.is_finite(),
                "an unbounded window either finishes every shard or errors"
            );
        }

        let peak_tracked = runs.iter().map(FleetRun::peak_tracked).sum::<usize>() + outcomes.len();
        let per_shard: Vec<FleetReport> = runs.into_iter().map(FleetRun::into_report).collect();
        let duration_s =
            if totals.completed == 0 { 0.0 } else { last_completed_s - first_arrival_s };
        let gauges = per_shard.iter().map(|r| r.gauges).sum();
        let faults = merge_faults(&per_shard);
        let scheduler = per_shard.first().map_or_else(String::new, |r| r.scheduler.clone());
        let belief = per_shard.first().map_or_else(String::new, |r| r.belief.clone());
        let fleet = if totals.completed == outcomes.len() {
            FleetReport::new(outcomes, duration_s, gauges, scheduler, belief, faults)
        } else {
            FleetReport::streamed(outcomes, duration_s, gauges, scheduler, belief, faults, totals)
        };
        Ok(ShardedFleetReport {
            fleet,
            per_shard,
            policy: policy_name,
            backbone_syncs,
            peak_tracked,
        })
    }
}

/// One sync-point exchange: allocates every due tier and applies the
/// grants to all shards. A flat backbone refreshes every window. Under a
/// hierarchy, the fine tier refreshes every window while the coarse tier
/// refreshes only every `sync_ratio`-th window — its last grant (shares
/// *and* the demand snapshot they were computed against) persists in
/// between — and both tiers' caps are applied together, composed
/// cell-wise by the engine. Returns the number of tier exchanges
/// performed.
fn exchange_tiers(
    backbone: Option<&Backbone>,
    hierarchy: Option<&BackboneHierarchy>,
    runs: &mut [FleetRun],
    window: u64,
    tier2_grant: &mut Option<TierGrant>,
) -> u64 {
    if let Some(h) = hierarchy {
        let (t1, t2) = (h.tier1(), h.tier2());
        let d1: Vec<Grid<f64>> =
            runs.iter().map(|r| r.cross_shard_demand(t1.groups(), t1.n_groups())).collect();
        let s1 = t1.allocate(&d1);
        let mut exchanges = 1;
        if window.is_multiple_of(h.sync_ratio() as u64) {
            let d2: Vec<Grid<f64>> =
                runs.iter().map(|r| r.cross_shard_demand(t2.groups(), t2.n_groups())).collect();
            let s2 = t2.allocate(&d2);
            *tier2_grant = Some((s2, d2));
            exchanges += 1;
        }
        let (s2, d2) = tier2_grant.as_ref().expect("tier 2 granted at window 0");
        for (i, run) in runs.iter_mut().enumerate() {
            run.apply_backbone_tiers(&[
                (t1.groups(), &s1[i], &d1[i]),
                (t2.groups(), &s2[i], &d2[i]),
            ]);
        }
        exchanges
    } else if let Some(bb) = backbone {
        let demands: Vec<Grid<f64>> =
            runs.iter().map(|r| r.cross_shard_demand(bb.groups(), bb.n_groups())).collect();
        let shares = bb.allocate(&demands);
        for ((run, share), demand) in runs.iter_mut().zip(&shares).zip(&demands) {
            run.apply_backbone_share(bb.groups(), share, demand);
        }
        1
    } else {
        0
    }
}

/// Deterministically merges per-shard reports into one fleet-level
/// report: outcomes ordered by completion time with shard index as the
/// tiebreak (a stable sort, so a single shard's order is preserved
/// verbatim), gauges summed, duration spanning the whole fleet.
fn merge_reports(per_shard: &[FleetReport]) -> FleetReport {
    let mut tagged: Vec<(usize, &JobOutcome)> = per_shard
        .iter()
        .enumerate()
        .flat_map(|(s, r)| r.outcomes.iter().map(move |o| (s, o)))
        .collect();
    tagged.sort_by(|(sa, a), (sb, b)| a.completed_s.total_cmp(&b.completed_s).then(sa.cmp(sb)));
    let outcomes: Vec<JobOutcome> = tagged.into_iter().map(|(_, o)| o.clone()).collect();
    let duration_s = if outcomes.is_empty() {
        0.0
    } else {
        let first_arrival = outcomes.iter().map(|o| o.arrived_s).fold(f64::INFINITY, f64::min);
        let last_completion =
            outcomes.iter().map(|o| o.completed_s).fold(f64::NEG_INFINITY, f64::max);
        last_completion - first_arrival
    };
    let gauges = per_shard.iter().map(|r| r.gauges).sum();
    let faults = merge_faults(per_shard);
    FleetReport::new(
        outcomes,
        duration_s,
        gauges,
        per_shard.first().map_or_else(String::new, |r| r.scheduler.clone()),
        per_shard.first().map_or_else(String::new, |r| r.belief.clone()),
        faults,
    )
}

/// Merges per-shard fault counters: event counters sum across shards;
/// degraded time does not — every shard replicates the same WAN (and
/// fault schedule), so summing would multiply one outage by the shard
/// count.
fn merge_faults(per_shard: &[FleetReport]) -> crate::fleet::FaultCounters {
    let mut faults = crate::fleet::FaultCounters::default();
    for r in per_shard {
        faults.stalled_flows += r.faults.stalled_flows;
        faults.retries += r.faults.retries;
        faults.replacements += r.faults.replacements;
        faults.failed_jobs += r.faults.failed_jobs;
        faults.degraded_s = faults.degraded_s.max(r.faults.degraded_s);
    }
    faults
}

// Engine-level behaviour (completion, determinism, thread-count
// invariance, backbone pressure) is covered by the integration tests in
// `tests/sharded_engine.rs` and the `sharded_parity` proptest — they need
// `wanify-workloads` traces, which dev-cycle back onto this crate and
// therefore cannot unify types with a unit-test build. The policy logic
// below is self-contained.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::StageProfile;
    use crate::storage::DataLayout;
    use wanify_netsim::{paper_testbed_n, VmType};

    fn job(name: &str, layout: DataLayout) -> JobProfile {
        JobProfile::new(
            name,
            layout,
            vec![
                StageProfile::shuffling("map", 1.0, 1.0),
                StageProfile::terminal("reduce", 0.1, 0.5),
            ],
        )
    }

    #[test]
    fn region_group_policy_follows_the_data() {
        let topo = paper_testbed_n(VmType::t2_medium(), 4);
        let policy = RegionGroupShards::new(vec![0, 0, 1, 1]);
        let mut layout = DataLayout::uniform(4, 8.0);
        // Pile the data onto DC3 (group 1).
        for from in 0..3 {
            let all = layout.blocks_per_dc[from];
            layout.move_blocks(from, 3, all);
        }
        assert_eq!(policy.shard_of(0, &job("hot", layout), &topo, 2), 1);
        let uniform = job("cold", DataLayout::uniform(4, 8.0));
        assert_eq!(policy.shard_of(0, &uniform, &topo, 2), 0, "ties break to the lowest group");
    }

    #[test]
    fn region_group_policy_uses_the_group_plurality_not_the_largest_dc() {
        // Group 0 holds 6 GB spread over two DCs; group 1 holds a single
        // 4 GB concentration. The plurality (group 0) must win even
        // though DC3 is individually the largest.
        let topo = paper_testbed_n(VmType::t2_medium(), 4);
        let policy = RegionGroupShards::new(vec![0, 0, 1, 1]);
        let spread = job("spread", DataLayout::from_gb(&[3.0, 3.0, 0.0, 4.0]));
        assert_eq!(policy.shard_of(0, &spread, &topo, 2), 0);
    }

    #[test]
    fn tenant_class_policy_is_stable_per_family() {
        let topo = paper_testbed_n(VmType::t2_medium(), 4);
        let policy = TenantClassShards::new();
        let a = job("terasort-3", DataLayout::uniform(4, 2.0));
        let b = job("terasort-17", DataLayout::uniform(4, 5.0));
        let c = job("q82-3", DataLayout::uniform(4, 2.0));
        assert_eq!(
            policy.shard_of(0, &a, &topo, 3),
            policy.shard_of(9, &b, &topo, 3),
            "same family must land on the same shard regardless of index"
        );
        // Different families spread (for this particular pair of names).
        assert_ne!(policy.shard_of(0, &a, &topo, 3), policy.shard_of(0, &c, &topo, 3));
    }

    #[test]
    fn round_robin_balances_by_index() {
        let topo = paper_testbed_n(VmType::t2_medium(), 4);
        let policy = RoundRobinShards::new();
        let j = job("any-0", DataLayout::uniform(4, 1.0));
        let shards: Vec<usize> = (0..6).map(|i| policy.shard_of(i, &j, &topo, 3)).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
    }
}
