//! Sharded multi-sim fleet: tenants partitioned across shard-local
//! engines, coupled by a cross-shard backbone, run on rayon.
//!
//! [`FleetEngine`](crate::FleetEngine) serializes every tenant through
//! one [`NetEngine`](wanify_netsim::NetEngine): fleet scale is capped by
//! a single event loop on a single core, and every fairness solve sees
//! *all* tenants' flows at once. [`ShardedFleetEngine`] breaks that wall
//! with the decomposition distributed node runtimes use:
//!
//! * a pluggable [`ShardPolicy`] assigns each tenant to one of N
//!   **shards** — by the region group its data lives in
//!   ([`RegionGroupShards`]), by tenant class ([`TenantClassShards`]), or
//!   round-robin ([`RoundRobinShards`]);
//! * every shard is a full [`FleetEngine`] (own simulator, scheduler,
//!   belief cache) driven as a resumable [`FleetRun`], so per-shard
//!   event loops and fairness solves only carry that shard's tenants;
//! * shards are coupled through a [`Backbone`]: at every sync point the
//!   driver collects per-shard cross-group demand, divides each trunk by
//!   max-min fairness, and applies each shard's grant as per-pair caps —
//!   between sync points the shards simulate **independently**, each
//!   event-coalescing as usual;
//! * windows run on rayon (`into_par_iter`), and per-shard completion
//!   events merge deterministically into one [`FleetReport`].
//!
//! Determinism is the headline property: results are **bit-identical at
//! any `RAYON_NUM_THREADS`** (shards share no mutable state inside a
//! window, and the merge orders by completion time with shard index as
//! the tiebreak), and a 1-shard sharded fleet — where no cross-shard
//! exchange exists, so no sync deadlines are imposed — reproduces
//! [`FleetEngine::run`](crate::FleetEngine::run) bit for bit (pinned by
//! the `sharded_parity` proptest).

use crate::fleet::{self, Arrivals, FleetEngine, FleetReport, FleetRun, JobOutcome};
use crate::job::JobProfile;
use rayon::prelude::*;
use wanify::WanifyError;
use wanify_netsim::{Backbone, Grid, Topology};

/// Assigns every job of a trace to a shard.
///
/// `Send` so policies can be consulted from the sharded driver; the
/// driver reduces whatever the policy returns modulo the shard count.
pub trait ShardPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Shard for job `idx` of the trace (reduced modulo `n_shards` by the
    /// driver).
    fn shard_of(&self, idx: usize, job: &JobProfile, topo: &Topology, n_shards: usize) -> usize;
}

/// Shards tenants by the region group holding the plurality of their
/// input data: queries live near their data, so most of a shard's
/// traffic stays inside its group and only the remainder crosses the
/// backbone.
#[derive(Debug, Clone)]
pub struct RegionGroupShards {
    /// Region group per DC, indexed by `DcId` (e.g.
    /// [`Backbone::groups`]).
    group_of: Vec<usize>,
}

impl RegionGroupShards {
    /// Builds the policy from a DC → group map.
    pub fn new(group_of: Vec<usize>) -> Self {
        Self { group_of }
    }

    /// Builds the policy from the backbone's own grouping.
    pub fn from_backbone(backbone: &Backbone) -> Self {
        Self::new(backbone.groups().to_vec())
    }
}

impl ShardPolicy for RegionGroupShards {
    fn name(&self) -> &str {
        "region-group"
    }

    fn shard_of(&self, _idx: usize, job: &JobProfile, _topo: &Topology, n_shards: usize) -> usize {
        // Plurality by *group*, not by single DC: a home group whose data
        // is spread over several DCs must still beat one concentrated
        // foreign DC. Ties break to the lowest group id.
        let n_groups = self.group_of.iter().copied().max().map_or(1, |g| g + 1);
        let mut gb_per_group = vec![0.0f64; n_groups];
        for dc in 0..job.layout.len() {
            if let Some(&g) = self.group_of.get(dc) {
                gb_per_group[g] += job.layout.gb_at(dc);
            }
        }
        let mut best_group = 0usize;
        let mut best_gb = f64::NEG_INFINITY;
        for (g, &gb) in gb_per_group.iter().enumerate() {
            if gb > best_gb {
                best_gb = gb;
                best_group = g;
            }
        }
        best_group % n_shards
    }
}

/// Shards tenants by workload family (the job-name prefix before the
/// trace index), so e.g. all TeraSorts contend with each other but never
/// with the TPC-DS tenants' event loop.
#[derive(Debug, Clone, Default)]
pub struct TenantClassShards;

impl TenantClassShards {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl ShardPolicy for TenantClassShards {
    fn name(&self) -> &str {
        "tenant-class"
    }

    fn shard_of(&self, _idx: usize, job: &JobProfile, _topo: &Topology, n_shards: usize) -> usize {
        // Family = name up to the trailing "-<index>" tag; FNV-1a keeps
        // the mapping stable across runs and platforms.
        let family = job.name.rsplit_once('-').map_or(job.name.as_str(), |(f, _)| f);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in family.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % n_shards as u64) as usize
    }
}

/// Shards tenants round-robin by trace index: balanced shard populations
/// regardless of workload mix, the default for wall-clock scale-out
/// sweeps.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinShards;

impl RoundRobinShards {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl ShardPolicy for RoundRobinShards {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn shard_of(&self, idx: usize, _job: &JobProfile, _topo: &Topology, n_shards: usize) -> usize {
        idx % n_shards
    }
}

/// Outcome of one sharded fleet run.
#[derive(Debug, Clone)]
pub struct ShardedFleetReport {
    /// The merged fleet-level report: all shards' outcomes ordered by
    /// completion time (shard index breaks ties), gauges summed, duration
    /// spanning first arrival to last completion across the whole fleet.
    pub fleet: FleetReport,
    /// Each shard's own report, in shard order.
    pub per_shard: Vec<FleetReport>,
    /// Shard policy that partitioned the trace.
    pub policy: String,
    /// Backbone epoch exchanges performed (0 when uncoupled).
    pub backbone_syncs: u64,
}

impl ShardedFleetReport {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Jobs served per shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.per_shard.iter().map(|r| r.outcomes.len()).collect()
    }
}

/// The sharded multi-tenant serving engine. See the module docs.
pub struct ShardedFleetEngine {
    shards: Vec<FleetEngine>,
    policy: Box<dyn ShardPolicy>,
    backbone: Option<Backbone>,
}

impl std::fmt::Debug for ShardedFleetEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFleetEngine")
            .field("shards", &self.shards.len())
            .field("policy", &self.policy.name())
            .field("backbone", &self.backbone.is_some())
            .finish()
    }
}

impl ShardedFleetEngine {
    /// Builds a sharded fleet from per-shard engines, a placement policy
    /// and an optional backbone. Each engine must simulate the same
    /// topology (each shard sees the whole WAN; only its own tenants'
    /// flows run on it). With `backbone: None` — or a single shard, which
    /// owns every trunk outright — the shards run fully uncoupled and no
    /// sync deadlines are imposed.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(
        shards: Vec<FleetEngine>,
        policy: Box<dyn ShardPolicy>,
        backbone: Option<Backbone>,
    ) -> Self {
        assert!(!shards.is_empty(), "a sharded fleet needs at least one shard");
        Self { shards, policy, backbone }
    }

    /// Serves `jobs` across the shards and returns the merged report.
    ///
    /// The trace is partitioned by the shard policy (preserving trace
    /// order within each shard), and the fleet-wide load is preserved at
    /// every shard count: a Poisson stream is sampled **once** for the
    /// whole trace — exactly as [`FleetEngine::run`] samples it — and its
    /// arrival times travel with the jobs to their shards (thinning, so
    /// the aggregate arrival process never scales with the shard count),
    /// while a closed-loop client population is split across shards
    /// (remainder to the lowest indices, at least one client per
    /// non-empty shard). A 1-shard fleet therefore reproduces
    /// [`FleetEngine::run`] exactly. Shards advance in backbone sync
    /// windows on rayon; the result is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] for invalid arrivals, gauge/layout
    /// failures on any shard (lowest shard index wins when several fail
    /// in one window), a backbone whose group map does not cover the
    /// topology, or a shard that can no longer make progress.
    pub fn run(
        self,
        jobs: &[JobProfile],
        arrivals: &Arrivals,
    ) -> Result<ShardedFleetReport, WanifyError> {
        let n_shards = self.shards.len();
        let n_dcs = self.shards[0].sim().topology().len();
        if let Some(bb) = &self.backbone {
            if bb.groups().len() != n_dcs {
                return Err(WanifyError::DimensionMismatch {
                    expected: n_dcs,
                    got: bb.groups().len(),
                });
            }
        }
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.sim().topology().len() != n_dcs {
                return Err(WanifyError::DimensionMismatch {
                    expected: n_dcs,
                    got: shard.sim().topology().len(),
                });
            }
            if shard.sim().topology() != self.shards[0].sim().topology() {
                return Err(WanifyError::InvalidConfig(format!(
                    "shard {s} simulates a different topology than shard 0; every shard \
                     must replicate the same WAN"
                )));
            }
        }

        // Partition the trace, preserving order within each shard.
        let mut per_shard_jobs: Vec<Vec<JobProfile>> = vec![Vec::new(); n_shards];
        let mut shard_of_idx: Vec<usize> = Vec::with_capacity(jobs.len());
        {
            let topo = self.shards[0].sim().topology();
            for (idx, job) in jobs.iter().enumerate() {
                let s = self.policy.shard_of(idx, job, topo, n_shards) % n_shards;
                per_shard_jobs[s].push(job.clone());
                shard_of_idx.push(s);
            }
        }

        let policy_name = self.policy.name().to_string();
        let mut runs: Vec<FleetRun> = Vec::with_capacity(n_shards);
        match arrivals {
            Arrivals::Poisson { rate_per_s, seed } => {
                // Thin one global Poisson stream: arrival times are
                // sampled once for the whole trace (exactly as the
                // single-engine fleet samples them) and travel with the
                // jobs to their shards, so the fleet-wide arrival process
                // is identical at every shard count.
                let times = fleet::poisson_arrival_times(jobs.len(), *rate_per_s, *seed)?;
                let mut per_shard_times: Vec<Vec<f64>> = vec![Vec::new(); n_shards];
                for (idx, t) in times.into_iter().enumerate() {
                    per_shard_times[shard_of_idx[idx]].push(t);
                }
                for (engine, (shard_jobs, shard_times)) in
                    self.shards.into_iter().zip(per_shard_jobs.into_iter().zip(per_shard_times))
                {
                    runs.push(FleetRun::start_at(engine, shard_jobs, shard_times)?);
                }
            }
            Arrivals::Scheduled { times } => {
                // Explicit schedules thin exactly like a Poisson stream:
                // each job's arrival time travels with it to its shard.
                fleet::validate_schedule(times, jobs.len())?;
                let mut per_shard_times: Vec<Vec<f64>> = vec![Vec::new(); n_shards];
                for (idx, &t) in times.iter().enumerate() {
                    per_shard_times[shard_of_idx[idx]].push(t);
                }
                for (engine, (shard_jobs, shard_times)) in
                    self.shards.into_iter().zip(per_shard_jobs.into_iter().zip(per_shard_times))
                {
                    runs.push(FleetRun::start_at(engine, shard_jobs, shard_times)?);
                }
            }
            Arrivals::Closed { clients, think_s } => {
                if *clients == 0 {
                    return Err(WanifyError::InvalidConfig(
                        "closed-loop arrivals need at least one client".into(),
                    ));
                }
                // Split the client population across shards (remainder to
                // the lowest indices) so the fleet-wide concurrency level
                // does not scale with the shard count; every non-empty
                // shard keeps at least one client so it can make
                // progress. A single shard gets the whole population.
                let base = *clients / n_shards;
                let rem = *clients % n_shards;
                for (s, (engine, shard_jobs)) in
                    self.shards.into_iter().zip(per_shard_jobs).enumerate()
                {
                    let mut shard_clients = base + usize::from(s < rem);
                    if shard_clients == 0 && !shard_jobs.is_empty() {
                        shard_clients = 1;
                    }
                    let shard_arrivals =
                        Arrivals::Closed { clients: shard_clients.max(1), think_s: *think_s };
                    runs.push(FleetRun::start(engine, shard_jobs, &shard_arrivals)?);
                }
            }
        }

        // Sync windows: with a backbone and ≥ 2 shards, pause every shard
        // each `sync_every_s` simulated seconds for the epoch exchange;
        // otherwise one unbounded window serves everything.
        let sync_s = match (&self.backbone, n_shards) {
            (Some(bb), n) if n > 1 => bb.sync_every_s(),
            _ => f64::INFINITY,
        };
        let mut backbone_syncs = 0u64;
        let mut window = 0u64;
        loop {
            if let Some(bb) = self.backbone.as_ref().filter(|_| sync_s.is_finite()) {
                let demands: Vec<Grid<f64>> =
                    runs.iter().map(|r| r.cross_shard_demand(bb.groups(), bb.n_groups())).collect();
                let shares = bb.allocate(&demands);
                for ((run, share), demand) in runs.iter_mut().zip(&shares).zip(&demands) {
                    run.apply_backbone_share(bb.groups(), share, demand);
                }
                backbone_syncs += 1;
            }
            window += 1;
            let deadline_s =
                if sync_s.is_finite() { window as f64 * sync_s } else { f64::INFINITY };
            // Each shard owns its whole state: the window outcome cannot
            // depend on scheduling, so any thread count is bit-identical.
            let stepped: Vec<(FleetRun, Option<WanifyError>)> = runs
                .into_par_iter()
                .map(|mut run| {
                    let err = if run.finished() { None } else { run.run_until(deadline_s).err() };
                    (run, err)
                })
                .collect();
            runs = Vec::with_capacity(n_shards);
            for (run, err) in stepped {
                if let Some(e) = err {
                    return Err(e);
                }
                runs.push(run);
            }
            if runs.iter().all(FleetRun::finished) {
                break;
            }
            debug_assert!(
                sync_s.is_finite(),
                "an unbounded window either finishes every shard or errors"
            );
        }

        let per_shard: Vec<FleetReport> = runs.into_iter().map(FleetRun::into_report).collect();
        Ok(ShardedFleetReport {
            fleet: merge_reports(&per_shard),
            per_shard,
            policy: policy_name,
            backbone_syncs,
        })
    }
}

/// Deterministically merges per-shard reports into one fleet-level
/// report: outcomes ordered by completion time with shard index as the
/// tiebreak (a stable sort, so a single shard's order is preserved
/// verbatim), gauges summed, duration spanning the whole fleet.
fn merge_reports(per_shard: &[FleetReport]) -> FleetReport {
    let mut tagged: Vec<(usize, &JobOutcome)> = per_shard
        .iter()
        .enumerate()
        .flat_map(|(s, r)| r.outcomes.iter().map(move |o| (s, o)))
        .collect();
    tagged.sort_by(|(sa, a), (sb, b)| a.completed_s.total_cmp(&b.completed_s).then(sa.cmp(sb)));
    let outcomes: Vec<JobOutcome> = tagged.into_iter().map(|(_, o)| o.clone()).collect();
    let duration_s = if outcomes.is_empty() {
        0.0
    } else {
        let first_arrival = outcomes.iter().map(|o| o.arrived_s).fold(f64::INFINITY, f64::min);
        let last_completion =
            outcomes.iter().map(|o| o.completed_s).fold(f64::NEG_INFINITY, f64::max);
        last_completion - first_arrival
    };
    let gauges = per_shard.iter().map(|r| r.gauges).sum();
    // Event counters sum across shards; degraded time does not — every
    // shard replicates the same WAN (and fault schedule), so summing
    // would multiply one outage by the shard count.
    let mut faults = crate::fleet::FaultCounters::default();
    for r in per_shard {
        faults.stalled_flows += r.faults.stalled_flows;
        faults.retries += r.faults.retries;
        faults.replacements += r.faults.replacements;
        faults.failed_jobs += r.faults.failed_jobs;
        faults.degraded_s = faults.degraded_s.max(r.faults.degraded_s);
    }
    FleetReport::new(
        outcomes,
        duration_s,
        gauges,
        per_shard.first().map_or_else(String::new, |r| r.scheduler.clone()),
        per_shard.first().map_or_else(String::new, |r| r.belief.clone()),
        faults,
    )
}

// Engine-level behaviour (completion, determinism, thread-count
// invariance, backbone pressure) is covered by the integration tests in
// `tests/sharded_engine.rs` and the `sharded_parity` proptest — they need
// `wanify-workloads` traces, which dev-cycle back onto this crate and
// therefore cannot unify types with a unit-test build. The policy logic
// below is self-contained.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::StageProfile;
    use crate::storage::DataLayout;
    use wanify_netsim::{paper_testbed_n, VmType};

    fn job(name: &str, layout: DataLayout) -> JobProfile {
        JobProfile::new(
            name,
            layout,
            vec![
                StageProfile::shuffling("map", 1.0, 1.0),
                StageProfile::terminal("reduce", 0.1, 0.5),
            ],
        )
    }

    #[test]
    fn region_group_policy_follows_the_data() {
        let topo = paper_testbed_n(VmType::t2_medium(), 4);
        let policy = RegionGroupShards::new(vec![0, 0, 1, 1]);
        let mut layout = DataLayout::uniform(4, 8.0);
        // Pile the data onto DC3 (group 1).
        for from in 0..3 {
            let all = layout.blocks_per_dc[from];
            layout.move_blocks(from, 3, all);
        }
        assert_eq!(policy.shard_of(0, &job("hot", layout), &topo, 2), 1);
        let uniform = job("cold", DataLayout::uniform(4, 8.0));
        assert_eq!(policy.shard_of(0, &uniform, &topo, 2), 0, "ties break to the lowest group");
    }

    #[test]
    fn region_group_policy_uses_the_group_plurality_not_the_largest_dc() {
        // Group 0 holds 6 GB spread over two DCs; group 1 holds a single
        // 4 GB concentration. The plurality (group 0) must win even
        // though DC3 is individually the largest.
        let topo = paper_testbed_n(VmType::t2_medium(), 4);
        let policy = RegionGroupShards::new(vec![0, 0, 1, 1]);
        let spread = job("spread", DataLayout::from_gb(&[3.0, 3.0, 0.0, 4.0]));
        assert_eq!(policy.shard_of(0, &spread, &topo, 2), 0);
    }

    #[test]
    fn tenant_class_policy_is_stable_per_family() {
        let topo = paper_testbed_n(VmType::t2_medium(), 4);
        let policy = TenantClassShards::new();
        let a = job("terasort-3", DataLayout::uniform(4, 2.0));
        let b = job("terasort-17", DataLayout::uniform(4, 5.0));
        let c = job("q82-3", DataLayout::uniform(4, 2.0));
        assert_eq!(
            policy.shard_of(0, &a, &topo, 3),
            policy.shard_of(9, &b, &topo, 3),
            "same family must land on the same shard regardless of index"
        );
        // Different families spread (for this particular pair of names).
        assert_ne!(policy.shard_of(0, &a, &topo, 3), policy.shard_of(0, &c, &topo, 3));
    }

    #[test]
    fn round_robin_balances_by_index() {
        let topo = paper_testbed_n(VmType::t2_medium(), 4);
        let policy = RoundRobinShards::new();
        let j = job("any-0", DataLayout::uniform(4, 1.0));
        let shards: Vec<usize> = (0..6).map(|i| policy.shard_of(i, &j, &topo, 3)).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
    }
}
