//! Executes a job profile on the simulated WAN.
//!
//! The executor is where the paper's premise becomes mechanical: the
//! scheduler plans with a bandwidth *belief* (static, simultaneous or
//! predicted), but every shuffle actually runs on the [`NetSim`] where true
//! runtime contention, dynamics and connection behaviour apply. Bad beliefs
//! therefore produce genuinely slower queries (paper §2.2, §5.2).

use crate::cost::{CostBreakdown, CostModel};
use crate::job::JobProfile;
use crate::scheduler::{PlacementCtx, Scheduler};
use wanify::source::BandwidthSource;
use wanify_netsim::{ConnMatrix, DcId, EpochHook, NetSim, Transfer};

/// Transfer-layer options for a query run.
#[derive(Default)]
pub struct TransferOptions<'a> {
    /// Parallel-connection matrix for shuffles; `None` means a single
    /// connection per DC pair (the vanilla Spark behaviour, §2.1).
    pub conns: Option<&'a ConnMatrix>,
    /// Per-epoch hook (WANify's local agents) driven during shuffles.
    pub hook: Option<&'a mut dyn EpochHook>,
}

impl std::fmt::Debug for TransferOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferOptions")
            .field("conns", &self.conns.is_some())
            .field("hook", &self.hook.is_some())
            .finish()
    }
}

/// Outcome of one query execution.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Job name.
    pub job: String,
    /// Scheduler that planned the run.
    pub scheduler: String,
    /// Provenance of the bandwidth belief the scheduler planned with.
    pub belief: String,
    /// End-to-end job completion time in seconds.
    pub latency_s: f64,
    /// Itemized dollar cost.
    pub cost: CostBreakdown,
    /// Weakest observed per-pair mean bandwidth across all shuffles, Mbps
    /// (the paper's "minimum BW of the cluster"); 0 when nothing shuffled.
    pub min_bw_mbps: f64,
    /// Total bytes shuffled across the WAN, in gigabytes.
    pub shuffle_gb: f64,
    /// Egress gigabytes per source DC (drives network cost).
    pub egress_gb: Vec<f64>,
    /// Latency of each stage (compute + shuffle), in seconds.
    pub stage_latencies_s: Vec<f64>,
}

/// Runs `job` under `scheduler` on the simulated WAN.
///
/// `belief` is *any* [`BandwidthSource`]: the scheduler plans with
/// whatever matrix the source gauges at job start, while the simulation
/// itself uses the network's true state — so the provenance of the belief
/// (static, measured, predicted) determines real performance exactly as
/// in the paper (§2.2, §5.2). Returns the full [`QueryReport`].
///
/// # Panics
///
/// Panics if the job layout width differs from the topology size, or if
/// the source fails to gauge the network (a configuration error).
pub fn run_job<S: BandwidthSource + ?Sized>(
    sim: &mut NetSim,
    job: &JobProfile,
    scheduler: &dyn Scheduler,
    belief: &mut S,
    mut opts: TransferOptions<'_>,
) -> QueryReport {
    let bw_belief = &belief.gauge(sim).expect("bandwidth source must match the topology");
    let belief_name = belief.name().to_string();
    let n = sim.topology().len();
    assert_eq!(job.layout.len(), n, "job layout must cover every DC");
    let single_conns = ConnMatrix::filled(n, 1);
    let conns = opts.conns.unwrap_or(&single_conns);

    let mut data_gb: Vec<f64> = (0..n).map(|i| job.layout.gb_at(i)).collect();
    let mut latency_s = 0.0;
    let mut min_bw = f64::INFINITY;
    let mut shuffle_gb = 0.0;
    let mut egress_gb = vec![0.0; n];
    let mut stage_latencies = Vec::with_capacity(job.stages.len());

    // Optional input migration decided on the belief matrix (paper §2.2:
    // "prior works choose to migrate input data out of AP SE").
    {
        let ctx = PlacementCtx {
            topo: sim.topology(),
            bw: bw_belief,
            out_gb: &data_gb,
            compute_s_per_gb: job.stages[0].compute_s_per_gb,
        };
        if let Some(new_layout) = scheduler.migrate_input(&ctx) {
            let transfers = migration_transfers(&data_gb, &new_layout);
            if !transfers.is_empty() {
                let report = sim.run_transfers(&transfers, &single_conns, None);
                latency_s += report.makespan_s;
                for (i, gb) in report.egress_gigabits.iter().enumerate() {
                    egress_gb[i] += gb / 8.0;
                }
                min_bw = min_bw.min(report.min_pair_bw_mbps);
            }
            data_gb = new_layout;
        }
    }

    for (s, stage) in job.stages.iter().enumerate() {
        let stage_start = latency_s;
        // Compute phase: tasks run where the data sits; the stage waits for
        // the busiest DC (stragglers dominate JCT, §2.1).
        let compute_s = data_gb
            .iter()
            .enumerate()
            .map(|(j, gb)| {
                gb * stage.compute_s_per_gb / f64::from(sim.topology().dc(DcId(j)).vcpus())
            })
            .fold(0.0, f64::max);
        sim.advance(compute_s);
        latency_s += compute_s;

        let out_gb: Vec<f64> = data_gb.iter().map(|gb| gb * stage.selectivity).collect();
        let total_out: f64 = out_gb.iter().sum();

        if stage.shuffles && total_out > 1e-12 {
            let downstream_compute =
                job.stages.get(s + 1).map_or(0.0, |next| next.compute_s_per_gb);
            let ctx = PlacementCtx {
                topo: sim.topology(),
                bw: bw_belief,
                out_gb: &out_gb,
                compute_s_per_gb: downstream_compute,
            };
            let fractions = scheduler.place_reduce(&ctx);
            debug_assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-6);

            let mut transfers = Vec::new();
            for (i, &out) in out_gb.iter().enumerate() {
                for (j, &r) in fractions.iter().enumerate() {
                    let gb = out * r;
                    if i != j && gb > 1e-12 {
                        transfers.push(Transfer::from_gigabytes(DcId(i), DcId(j), gb));
                        shuffle_gb += gb;
                    }
                }
            }
            if !transfers.is_empty() {
                let report = sim.run_transfers(&transfers, conns, opts.hook.as_deref_mut());
                latency_s += report.makespan_s;
                min_bw = min_bw.min(report.min_pair_bw_mbps);
                for (i, gb) in report.egress_gigabits.iter().enumerate() {
                    egress_gb[i] += gb / 8.0;
                }
            }
            data_gb = fractions.iter().map(|r| r * total_out).collect();
        } else {
            data_gb = out_gb;
        }
        stage_latencies.push(latency_s - stage_start);
    }

    let cost = CostModel::new().price(sim.topology(), latency_s, &egress_gb, job.input_gb());
    QueryReport {
        job: job.name.clone(),
        scheduler: scheduler.name().to_string(),
        belief: belief_name,
        latency_s,
        cost,
        min_bw_mbps: if min_bw.is_finite() { min_bw } else { 0.0 },
        shuffle_gb,
        egress_gb,
        stage_latencies_s: stage_latencies,
    }
}

/// Greedy matching of surpluses to deficits between two layouts.
fn migration_transfers(old: &[f64], new: &[f64]) -> Vec<Transfer> {
    let mut surplus: Vec<(usize, f64)> = Vec::new();
    let mut deficit: Vec<(usize, f64)> = Vec::new();
    for i in 0..old.len() {
        let delta = old[i] - new[i];
        if delta > 1e-12 {
            surplus.push((i, delta));
        } else if delta < -1e-12 {
            deficit.push((i, -delta));
        }
    }
    let mut transfers = Vec::new();
    let mut d_iter = deficit.into_iter();
    let mut current = d_iter.next();
    for (src, mut amount) in surplus {
        while amount > 1e-12 {
            let Some((dst, need)) = current else { break };
            let moved = amount.min(need);
            transfers.push(Transfer::from_gigabytes(DcId(src), DcId(dst), moved));
            amount -= moved;
            if need - moved > 1e-12 {
                current = Some((dst, need - moved));
            } else {
                current = d_iter.next();
            }
        }
    }
    transfers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::StageProfile;
    use crate::scheduler::{Tetrium, VanillaSpark};
    use crate::storage::DataLayout;
    use wanify_netsim::{paper_testbed_n, LinkModelParams, VmType};

    fn sim(n: usize) -> NetSim {
        NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), 7)
    }

    fn sort_job(n: usize, gb: f64) -> JobProfile {
        JobProfile::new(
            "sort",
            DataLayout::uniform(n, gb),
            vec![
                StageProfile::shuffling("map", 1.0, 1.0),
                StageProfile::terminal("reduce", 0.05, 0.5),
            ],
        )
    }

    #[test]
    fn migration_transfers_conserve_mass() {
        let old = [4.0, 0.0, 2.0];
        let new = [0.0, 6.0, 0.0];
        let ts = migration_transfers(&old, &new);
        let moved: f64 = ts.iter().map(|t| t.gigabits / 8.0).sum();
        assert!((moved - 6.0).abs() < 1e-9);
        assert!(ts.iter().all(|t| t.dst == DcId(1)));
    }

    #[test]
    fn run_reports_sane_metrics() {
        let mut s = sim(4);
        let job = sort_job(4, 4.0);
        let report = run_job(
            &mut s,
            &job,
            &Tetrium::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        );
        assert!(report.latency_s > 0.0);
        assert!(report.cost.total_usd() > 0.0);
        assert!(report.min_bw_mbps > 0.0);
        assert!(report.shuffle_gb > 0.0 && report.shuffle_gb < 4.0);
        assert_eq!(report.stage_latencies_s.len(), 2);
        let stage_sum: f64 = report.stage_latencies_s.iter().sum();
        assert!((stage_sum - report.latency_s).abs() < 1e-6);
    }

    #[test]
    fn wan_aware_beats_vanilla_on_heterogeneous_links() {
        let job = sort_job(4, 4.0);
        let mut s1 = sim(4);
        let vanilla = run_job(
            &mut s1,
            &job,
            &VanillaSpark::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        );
        let mut s2 = sim(4);
        let tetrium = run_job(
            &mut s2,
            &job,
            &Tetrium::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        );
        assert!(
            tetrium.latency_s < vanilla.latency_s,
            "tetrium {} vs vanilla {}",
            tetrium.latency_s,
            vanilla.latency_s
        );
    }

    #[test]
    fn parallel_connections_speed_up_the_shuffle() {
        let job = sort_job(4, 4.0);
        let mut s1 = sim(4);
        let single = run_job(
            &mut s1,
            &job,
            &Tetrium::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        );
        let mut s2 = sim(4);
        let conns = ConnMatrix::from_fn(4, |i, j| if i == j { 1 } else { 4 });
        let parallel = run_job(
            &mut s2,
            &job,
            &Tetrium::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions { conns: Some(&conns), hook: None },
        );
        assert!(
            parallel.latency_s < single.latency_s,
            "parallel {} vs single {}",
            parallel.latency_s,
            single.latency_s
        );
    }

    #[test]
    fn zero_input_job_costs_almost_nothing() {
        let mut s = sim(3);
        let job = sort_job(3, 0.0);
        let report = run_job(
            &mut s,
            &job,
            &VanillaSpark::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        );
        assert_eq!(report.shuffle_gb, 0.0);
        assert_eq!(report.min_bw_mbps, 0.0);
        assert!(report.latency_s < 1.0);
    }

    #[test]
    fn egress_accounting_feeds_network_cost() {
        let mut s = sim(3);
        let job = sort_job(3, 3.0);
        let report = run_job(
            &mut s,
            &job,
            &VanillaSpark::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        );
        let total_egress: f64 = report.egress_gb.iter().sum();
        assert!(total_egress > 0.0);
        assert!(report.cost.network_usd > 0.0);
    }
}
