//! Executes a job profile on the simulated WAN.
//!
//! The executor is where the paper's premise becomes mechanical: the
//! scheduler plans with a bandwidth *belief* (static, simultaneous or
//! predicted), but every shuffle actually runs on the [`NetSim`] where true
//! runtime contention, dynamics and connection behaviour apply. Bad beliefs
//! therefore produce genuinely slower queries (paper §2.2, §5.2).

use crate::cost::{CostBreakdown, CostModel};
use crate::job::JobProfile;
use crate::scheduler::{PlacementCtx, Scheduler};
use wanify::source::BandwidthSource;
use wanify::WanifyError;
use wanify_netsim::{
    BwMatrix, ConnMatrix, DcId, EpochHook, GroupId, GroupReport, NetSim, Topology, Transfer,
};

/// Transfer-layer options for a query run.
#[derive(Default)]
pub struct TransferOptions<'a> {
    /// Parallel-connection matrix for shuffles; `None` means a single
    /// connection per DC pair (the vanilla Spark behaviour, §2.1).
    pub conns: Option<&'a ConnMatrix>,
    /// Per-epoch hook (WANify's local agents) driven during shuffles.
    pub hook: Option<&'a mut dyn EpochHook>,
}

impl std::fmt::Debug for TransferOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferOptions")
            .field("conns", &self.conns.is_some())
            .field("hook", &self.hook.is_some())
            .finish()
    }
}

/// Outcome of one query execution.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Job name.
    pub job: String,
    /// Scheduler that planned the run.
    pub scheduler: String,
    /// Provenance of the bandwidth belief the scheduler planned with.
    pub belief: String,
    /// End-to-end job completion time in seconds.
    pub latency_s: f64,
    /// Itemized dollar cost.
    pub cost: CostBreakdown,
    /// Weakest observed per-pair mean bandwidth across all shuffles, Mbps
    /// (the paper's "minimum BW of the cluster"); 0 when nothing shuffled.
    pub min_bw_mbps: f64,
    /// Total bytes shuffled across the WAN, in gigabytes.
    pub shuffle_gb: f64,
    /// Egress gigabytes per source DC (drives network cost).
    pub egress_gb: Vec<f64>,
    /// Latency of each stage (compute + shuffle), in seconds.
    pub stage_latencies_s: Vec<f64>,
}

/// Runs `job` under `scheduler` on the simulated WAN.
///
/// `belief` is *any* [`BandwidthSource`]: the scheduler plans with
/// whatever matrix the source gauges at job start, while the simulation
/// itself uses the network's true state — so the provenance of the belief
/// (static, measured, predicted) determines real performance exactly as
/// in the paper (§2.2, §5.2). Returns the full [`QueryReport`].
///
/// The per-query semantics live in one place — the [`JobRun`] state
/// machine; this function merely drives it to completion with exclusive
/// use of the simulator, executing [`JobStep::Compute`] as
/// [`NetSim::advance`] and [`JobStep::Shuffle`] as a blocking
/// [`NetSim::run_transfers`] call (with the agent hook on stage shuffles,
/// never on migration). The fleet path drives the same machine from
/// [`wanify_netsim::NetEngine`] completion events instead.
///
/// # Errors
///
/// Returns [`WanifyError::DimensionMismatch`] when the job layout width
/// differs from the topology size, and propagates any gauge failure from
/// the bandwidth source.
pub fn run_job<S: BandwidthSource + ?Sized>(
    sim: &mut NetSim,
    job: &JobProfile,
    scheduler: &dyn Scheduler,
    belief: &mut S,
    mut opts: TransferOptions<'_>,
) -> Result<QueryReport, WanifyError> {
    let bw_belief = belief.gauge(sim)?;
    let mut run = JobRun::new(
        job.clone(),
        bw_belief,
        belief.name(),
        scheduler,
        sim.topology(),
        opts.conns.cloned(),
    )?;
    let mut step = run.start(scheduler, sim.topology());
    loop {
        step = match step {
            JobStep::Compute { seconds } => {
                sim.advance(seconds);
                run.on_compute_done(scheduler, sim.topology())
            }
            JobStep::Shuffle { transfers, conns, migration } => {
                let hook = if migration { None } else { opts.hook.as_deref_mut() };
                let tr = sim.run_transfers(&transfers, &conns, hook);
                let group = GroupReport {
                    group: GroupId(0),
                    submitted_s: 0.0,
                    completed_s: 0.0,
                    makespan_s: tr.makespan_s,
                    min_pair_bw_mbps: tr.min_pair_bw_mbps,
                    egress_gigabits: tr.egress_gigabits,
                };
                run.on_shuffle_done(&group, sim.topology())
            }
            JobStep::Done(report) => return Ok(*report),
            // `run_job` never installs a fault policy, so aborts cannot
            // originate here; a Failed step would come from driving the
            // state machine externally and still carries a full report.
            JobStep::Failed(report) => return Ok(*report),
        };
    }
}

/// Straggler-dominated compute time of one stage: every DC processes its
/// local data, the stage waits for the busiest DC (§2.1).
fn stage_compute_s(data_gb: &[f64], compute_s_per_gb: f64, topo: &Topology) -> f64 {
    data_gb
        .iter()
        .enumerate()
        .map(|(j, gb)| gb * compute_s_per_gb / f64::from(topo.dc(DcId(j)).vcpus()))
        .fold(0.0, f64::max)
}

/// Cross-DC transfers implied by shuffling `out_gb` into `fractions`,
/// plus the total gigabytes that cross the WAN.
fn shuffle_transfers(out_gb: &[f64], fractions: &[f64]) -> (Vec<Transfer>, f64) {
    let mut transfers = Vec::new();
    let mut moved = 0.0;
    for (i, &out) in out_gb.iter().enumerate() {
        for (j, &r) in fractions.iter().enumerate() {
            let gb = out * r;
            if i != j && gb > 1e-12 {
                transfers.push(Transfer::from_gigabytes(DcId(i), DcId(j), gb));
                moved += gb;
            }
        }
    }
    (transfers, moved)
}

/// What a [`JobRun`] needs next from its driver.
///
/// The fleet event loop executes the step — a simulated-time timer for
/// compute, an engine submission for a shuffle — and feeds the outcome
/// back through [`JobRun::on_compute_done`] / [`JobRun::on_shuffle_done`].
#[derive(Debug)]
pub enum JobStep {
    /// The job computes for this many simulated seconds (possibly 0).
    Compute {
        /// Straggler-dominated duration of the compute phase.
        seconds: f64,
    },
    /// The job shuffles: submit these transfers as one flow group.
    Shuffle {
        /// Cross-DC transfers of this shuffle (never empty).
        transfers: Vec<Transfer>,
        /// Parallel-connection matrix the group should use.
        conns: ConnMatrix,
        /// Whether this is the pre-job input migration (which never runs
        /// agent hooks) rather than a stage shuffle.
        migration: bool,
    },
    /// The job finished; here is its report.
    Done(Box<QueryReport>),
    /// The job was aborted by a fault policy after exhausting its stall
    /// retries; the report carries the accounting accrued so far.
    Failed(Box<QueryReport>),
}

/// Phase of a [`JobRun`] between driver events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunPhase {
    /// Waiting for the input-migration flow group to drain.
    Migrating,
    /// Waiting for stage `s`'s compute timer.
    Computing(usize),
    /// Waiting for stage `s`'s shuffle flow group to drain.
    Shuffling(usize),
    /// Report emitted.
    Finished,
}

/// One query's execution as a resumable state machine:
/// `migrate → (compute → shuffle)* → done`.
///
/// [`run_job`] owns the simulator for the whole query; `JobRun` instead
/// *reacts* to completion events, so many runs can interleave on one
/// [`wanify_netsim::NetEngine`] and contend for the same WAN — the fleet
/// regime (see [`crate::fleet`]). Driving a lone `JobRun` through the
/// engine reproduces `run_job`'s [`QueryReport`] bit for bit (enforced by
/// the `fleet_parity` proptest).
///
/// The driver contract: call [`JobRun::start`] once, execute the returned
/// [`JobStep`], then keep feeding completions via
/// [`JobRun::on_compute_done`] / [`JobRun::on_shuffle_done`] until
/// [`JobStep::Done`].
#[derive(Debug)]
pub struct JobRun {
    job: JobProfile,
    /// Belief matrix gauged at admission; placements use it throughout.
    bw_belief: BwMatrix,
    belief_name: String,
    scheduler_name: String,
    conns: ConnMatrix,
    phase: RunPhase,
    data_gb: Vec<f64>,
    latency_s: f64,
    /// Start-of-stage latency, for per-stage accounting.
    stage_start_s: f64,
    /// Duration of the pending compute phase (accumulated on completion).
    pending_compute_s: f64,
    min_bw: Option<f64>,
    shuffle_gb: f64,
    egress_gb: Vec<f64>,
    stage_latencies_s: Vec<f64>,
}

impl JobRun {
    /// Builds the state machine for `job`, planning every placement on
    /// `bw_belief` (the matrix a [`BandwidthSource`] gauged at admission).
    /// `conns` is the per-shuffle connection matrix; `None` means single
    /// connections (vanilla Spark).
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError::DimensionMismatch`] when the job layout or
    /// the belief matrix does not match the topology.
    pub fn new(
        job: JobProfile,
        bw_belief: BwMatrix,
        belief_name: impl Into<String>,
        scheduler: &dyn Scheduler,
        topo: &Topology,
        conns: Option<ConnMatrix>,
    ) -> Result<Self, WanifyError> {
        let n = topo.len();
        if job.layout.len() != n {
            return Err(WanifyError::DimensionMismatch { expected: n, got: job.layout.len() });
        }
        if bw_belief.len() != n {
            return Err(WanifyError::DimensionMismatch { expected: n, got: bw_belief.len() });
        }
        if let Some(c) = &conns {
            if c.len() != n {
                return Err(WanifyError::DimensionMismatch { expected: n, got: c.len() });
            }
        }
        let data_gb = (0..n).map(|i| job.layout.gb_at(i)).collect();
        Ok(Self {
            job,
            bw_belief,
            belief_name: belief_name.into(),
            scheduler_name: scheduler.name().to_string(),
            conns: conns.unwrap_or_else(|| ConnMatrix::filled(n, 1)),
            phase: RunPhase::Computing(0),
            data_gb,
            latency_s: 0.0,
            stage_start_s: 0.0,
            pending_compute_s: 0.0,
            min_bw: None,
            shuffle_gb: 0.0,
            egress_gb: vec![0.0; n],
            stage_latencies_s: Vec::new(),
        })
    }

    /// The job this run executes.
    pub fn job(&self) -> &JobProfile {
        &self.job
    }

    /// Kicks off the run: decides input migration on the belief matrix and
    /// returns the first step.
    pub fn start(&mut self, scheduler: &dyn Scheduler, topo: &Topology) -> JobStep {
        let ctx = PlacementCtx {
            topo,
            bw: &self.bw_belief,
            out_gb: &self.data_gb,
            compute_s_per_gb: self.job.stages[0].compute_s_per_gb,
        };
        if let Some(new_layout) = scheduler.migrate_input(&ctx) {
            let transfers = migration_transfers(&self.data_gb, &new_layout);
            self.data_gb = new_layout;
            if !transfers.is_empty() {
                self.phase = RunPhase::Migrating;
                // Migration always runs on single connections (§2.2).
                let n = topo.len();
                return JobStep::Shuffle {
                    transfers,
                    conns: ConnMatrix::filled(n, 1),
                    migration: true,
                };
            }
        }
        self.begin_compute(0, topo)
    }

    /// Feeds back a finished compute phase and returns the next step.
    ///
    /// # Panics
    ///
    /// Panics if the run was not waiting for a compute phase.
    pub fn on_compute_done(&mut self, scheduler: &dyn Scheduler, topo: &Topology) -> JobStep {
        let RunPhase::Computing(s) = self.phase else {
            panic!("on_compute_done in phase {:?}", self.phase);
        };
        self.latency_s += self.pending_compute_s;
        self.pending_compute_s = 0.0;

        let stage = &self.job.stages[s];
        let out_gb: Vec<f64> = self.data_gb.iter().map(|gb| gb * stage.selectivity).collect();
        let total_out: f64 = out_gb.iter().sum();

        if stage.shuffles && total_out > 1e-12 {
            let downstream_compute =
                self.job.stages.get(s + 1).map_or(0.0, |next| next.compute_s_per_gb);
            let ctx = PlacementCtx {
                topo,
                bw: &self.bw_belief,
                out_gb: &out_gb,
                compute_s_per_gb: downstream_compute,
            };
            let fractions = scheduler.place_reduce(&ctx);
            debug_assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            let (transfers, moved_gb) = shuffle_transfers(&out_gb, &fractions);
            self.shuffle_gb += moved_gb;
            self.data_gb = fractions.iter().map(|r| r * total_out).collect();
            if !transfers.is_empty() {
                self.phase = RunPhase::Shuffling(s);
                return JobStep::Shuffle { transfers, conns: self.conns.clone(), migration: false };
            }
        } else {
            self.data_gb = out_gb;
        }
        self.finish_stage(s, topo)
    }

    /// Feeds back a drained flow group (migration or stage shuffle) and
    /// returns the next step.
    ///
    /// # Panics
    ///
    /// Panics if the run was not waiting for a shuffle.
    pub fn on_shuffle_done(&mut self, report: &GroupReport, topo: &Topology) -> JobStep {
        self.latency_s += report.makespan_s;
        self.min_bw = Some(self.min_bw.unwrap_or(f64::INFINITY).min(report.min_pair_bw_mbps));
        for (i, gb) in report.egress_gigabits.iter().enumerate() {
            self.egress_gb[i] += gb / 8.0;
        }
        match self.phase {
            RunPhase::Migrating => self.begin_compute(0, topo),
            RunPhase::Shuffling(s) => self.finish_stage(s, topo),
            phase => panic!("on_shuffle_done in phase {phase:?}"),
        }
    }

    /// Feeds back a *cancelled* stalled flow group: absorbs the partial
    /// accounting, re-places every transfer whose destination DC is down
    /// (per `dcs_up`) onto the best alive DC the scheduler would pick for
    /// the surviving volume, and returns the step to resume with plus the
    /// number of redirected transfers. The step is a [`JobStep::Shuffle`]
    /// carrying the rebuilt remainder — or, when every surviving byte
    /// lands back on its own source, the post-shuffle continuation.
    /// Transfers whose *source* is down are kept as-is: their bytes are
    /// unreachable until the DC heals, so resubmitting (and stalling
    /// again, under the fleet's backoff) is the only honest move.
    ///
    /// # Panics
    ///
    /// Panics if the run was not waiting for a shuffle.
    pub fn on_shuffle_stalled(
        &mut self,
        partial: &GroupReport,
        remaining: &[Transfer],
        dcs_up: &[bool],
        scheduler: &dyn Scheduler,
        topo: &Topology,
    ) -> (JobStep, u64) {
        let migration = match self.phase {
            RunPhase::Migrating => true,
            RunPhase::Shuffling(_) => false,
            phase => panic!("on_shuffle_stalled in phase {phase:?}"),
        };
        self.absorb_partial(partial);
        let n = topo.len();

        // Re-place over the belief with dead DCs masked out, weighting by
        // the volume still waiting at each source.
        let mut out_gb = vec![0.0; n];
        for t in remaining {
            out_gb[t.src.0] += t.gigabits / 8.0;
        }
        let downstream_compute = match self.phase {
            RunPhase::Shuffling(s) => {
                self.job.stages.get(s + 1).map_or(0.0, |next| next.compute_s_per_gb)
            }
            _ => self.job.stages[0].compute_s_per_gb,
        };
        let mut masked = self.bw_belief.clone();
        for i in 0..n {
            for j in 0..n {
                if !dcs_up[i] || !dcs_up[j] {
                    masked.set(i, j, 0.0);
                }
            }
        }
        let ctx = PlacementCtx {
            topo,
            bw: &masked,
            out_gb: &out_gb,
            compute_s_per_gb: downstream_compute,
        };
        let fractions = scheduler.place_reduce(&ctx);
        // Best alive destination: the highest-fraction DC that is up
        // (lowest id on ties, deterministic).
        let best_alive = (0..n)
            .filter(|&j| dcs_up[j])
            .max_by(|&a, &b| fractions[a].total_cmp(&fractions[b]).then(b.cmp(&a)));

        let mut transfers = Vec::with_capacity(remaining.len());
        let mut redirected = 0u64;
        for t in remaining {
            if dcs_up[t.dst.0] {
                transfers.push(*t);
                continue;
            }
            let Some(new_dst) = best_alive else {
                // Every DC is down: nothing to redirect to; resubmit and
                // let the backoff wait out the outage.
                transfers.push(*t);
                continue;
            };
            redirected += 1;
            let gb = t.gigabits / 8.0;
            self.data_gb[t.dst.0] -= gb;
            self.data_gb[new_dst] += gb;
            if new_dst != t.src.0 {
                transfers.push(Transfer::new(t.src, DcId(new_dst), t.gigabits));
            }
            // new_dst == src: the bytes stay local, nothing crosses the
            // WAN for this transfer.
        }

        if transfers.is_empty() {
            // The whole remainder resolved locally: the shuffle is over.
            let step = match self.phase {
                RunPhase::Migrating => self.begin_compute(0, topo),
                RunPhase::Shuffling(s) => self.finish_stage(s, topo),
                phase => unreachable!("checked above, phase {phase:?}"),
            };
            return (step, redirected);
        }
        let conns = if migration { ConnMatrix::filled(n, 1) } else { self.conns.clone() };
        (JobStep::Shuffle { transfers, conns, migration }, redirected)
    }

    /// Aborts the run after a fault policy exhausted its retries: absorbs
    /// the cancelled group's partial accounting, closes the current
    /// stage, prices the cost of what actually ran and emits
    /// [`JobStep::Failed`].
    ///
    /// # Panics
    ///
    /// Panics if the run was not waiting for a shuffle.
    pub fn abort(&mut self, partial: &GroupReport, topo: &Topology) -> JobStep {
        assert!(
            matches!(self.phase, RunPhase::Migrating | RunPhase::Shuffling(_)),
            "abort in phase {:?}",
            self.phase
        );
        self.absorb_partial(partial);
        self.stage_latencies_s.push(self.latency_s - self.stage_start_s);
        self.phase = RunPhase::Finished;
        let cost =
            CostModel::new().price(topo, self.latency_s, &self.egress_gb, self.job.input_gb());
        JobStep::Failed(Box::new(QueryReport {
            job: self.job.name.clone(),
            scheduler: self.scheduler_name.clone(),
            belief: self.belief_name.clone(),
            latency_s: self.latency_s,
            cost,
            min_bw_mbps: self.min_bw.unwrap_or(0.0),
            shuffle_gb: self.shuffle_gb,
            egress_gb: self.egress_gb.clone(),
            stage_latencies_s: self.stage_latencies_s.clone(),
        }))
    }

    /// Folds a cancelled group's partial accounting into the run: elapsed
    /// (including stalled) time, egress that actually moved, and the
    /// observed floor bandwidth — but only when some pair carried data
    /// (an outage-from-the-start group reports 0, which is "no
    /// observation", not "zero bandwidth").
    fn absorb_partial(&mut self, partial: &GroupReport) {
        self.latency_s += partial.makespan_s;
        if partial.min_pair_bw_mbps > 0.0 {
            self.min_bw = Some(self.min_bw.unwrap_or(f64::INFINITY).min(partial.min_pair_bw_mbps));
        }
        for (i, gb) in partial.egress_gigabits.iter().enumerate() {
            self.egress_gb[i] += gb / 8.0;
        }
    }

    /// Emits stage `s`'s compute step.
    fn begin_compute(&mut self, s: usize, topo: &Topology) -> JobStep {
        self.phase = RunPhase::Computing(s);
        self.stage_start_s = self.latency_s;
        self.pending_compute_s =
            stage_compute_s(&self.data_gb, self.job.stages[s].compute_s_per_gb, topo);
        JobStep::Compute { seconds: self.pending_compute_s }
    }

    /// Closes stage `s`'s accounting and moves on (or finishes).
    fn finish_stage(&mut self, s: usize, topo: &Topology) -> JobStep {
        self.stage_latencies_s.push(self.latency_s - self.stage_start_s);
        if s + 1 < self.job.stages.len() {
            self.begin_compute(s + 1, topo)
        } else {
            self.phase = RunPhase::Finished;
            let cost =
                CostModel::new().price(topo, self.latency_s, &self.egress_gb, self.job.input_gb());
            JobStep::Done(Box::new(QueryReport {
                job: self.job.name.clone(),
                scheduler: self.scheduler_name.clone(),
                belief: self.belief_name.clone(),
                latency_s: self.latency_s,
                cost,
                min_bw_mbps: self.min_bw.unwrap_or(0.0),
                shuffle_gb: self.shuffle_gb,
                egress_gb: self.egress_gb.clone(),
                stage_latencies_s: self.stage_latencies_s.clone(),
            }))
        }
    }
}

/// Greedy matching of surpluses to deficits between two layouts.
fn migration_transfers(old: &[f64], new: &[f64]) -> Vec<Transfer> {
    let mut surplus: Vec<(usize, f64)> = Vec::new();
    let mut deficit: Vec<(usize, f64)> = Vec::new();
    for i in 0..old.len() {
        let delta = old[i] - new[i];
        if delta > 1e-12 {
            surplus.push((i, delta));
        } else if delta < -1e-12 {
            deficit.push((i, -delta));
        }
    }
    let mut transfers = Vec::new();
    let mut d_iter = deficit.into_iter();
    let mut current = d_iter.next();
    for (src, mut amount) in surplus {
        while amount > 1e-12 {
            let Some((dst, need)) = current else { break };
            let moved = amount.min(need);
            transfers.push(Transfer::from_gigabytes(DcId(src), DcId(dst), moved));
            amount -= moved;
            if need - moved > 1e-12 {
                current = Some((dst, need - moved));
            } else {
                current = d_iter.next();
            }
        }
    }
    transfers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::StageProfile;
    use crate::scheduler::{Tetrium, VanillaSpark};
    use crate::storage::DataLayout;
    use wanify_netsim::{paper_testbed_n, LinkModelParams, VmType};

    fn sim(n: usize) -> NetSim {
        NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), 7)
    }

    fn sort_job(n: usize, gb: f64) -> JobProfile {
        JobProfile::new(
            "sort",
            DataLayout::uniform(n, gb),
            vec![
                StageProfile::shuffling("map", 1.0, 1.0),
                StageProfile::terminal("reduce", 0.05, 0.5),
            ],
        )
    }

    #[test]
    fn migration_transfers_conserve_mass() {
        let old = [4.0, 0.0, 2.0];
        let new = [0.0, 6.0, 0.0];
        let ts = migration_transfers(&old, &new);
        let moved: f64 = ts.iter().map(|t| t.gigabits / 8.0).sum();
        assert!((moved - 6.0).abs() < 1e-9);
        assert!(ts.iter().all(|t| t.dst == DcId(1)));
    }

    #[test]
    fn run_reports_sane_metrics() {
        let mut s = sim(4);
        let job = sort_job(4, 4.0);
        let report = run_job(
            &mut s,
            &job,
            &Tetrium::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        )
        .unwrap();
        assert!(report.latency_s > 0.0);
        assert!(report.cost.total_usd() > 0.0);
        assert!(report.min_bw_mbps > 0.0);
        assert!(report.shuffle_gb > 0.0 && report.shuffle_gb < 4.0);
        assert_eq!(report.stage_latencies_s.len(), 2);
        let stage_sum: f64 = report.stage_latencies_s.iter().sum();
        assert!((stage_sum - report.latency_s).abs() < 1e-6);
    }

    #[test]
    fn wan_aware_beats_vanilla_on_heterogeneous_links() {
        let job = sort_job(4, 4.0);
        let mut s1 = sim(4);
        let vanilla = run_job(
            &mut s1,
            &job,
            &VanillaSpark::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        )
        .unwrap();
        let mut s2 = sim(4);
        let tetrium = run_job(
            &mut s2,
            &job,
            &Tetrium::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        )
        .unwrap();
        assert!(
            tetrium.latency_s < vanilla.latency_s,
            "tetrium {} vs vanilla {}",
            tetrium.latency_s,
            vanilla.latency_s
        );
    }

    #[test]
    fn parallel_connections_speed_up_the_shuffle() {
        let job = sort_job(4, 4.0);
        let mut s1 = sim(4);
        let single = run_job(
            &mut s1,
            &job,
            &Tetrium::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        )
        .unwrap();
        let mut s2 = sim(4);
        let conns = ConnMatrix::from_fn(4, |i, j| if i == j { 1 } else { 4 });
        let parallel = run_job(
            &mut s2,
            &job,
            &Tetrium::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions { conns: Some(&conns), hook: None },
        )
        .unwrap();
        assert!(
            parallel.latency_s < single.latency_s,
            "parallel {} vs single {}",
            parallel.latency_s,
            single.latency_s
        );
    }

    #[test]
    fn zero_input_job_costs_almost_nothing() {
        let mut s = sim(3);
        let job = sort_job(3, 0.0);
        let report = run_job(
            &mut s,
            &job,
            &VanillaSpark::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        )
        .unwrap();
        assert_eq!(report.shuffle_gb, 0.0);
        assert_eq!(report.min_bw_mbps, 0.0);
        assert!(report.latency_s < 1.0);
    }

    #[test]
    fn transferless_job_reports_zero_min_bw() {
        // Regression: `min_bw` accumulates from `f64::INFINITY`; a job
        // whose stages never shuffle must report 0, not the sentinel.
        let mut s = sim(3);
        let job = JobProfile::new(
            "local-only",
            DataLayout::uniform(3, 6.0),
            vec![StageProfile::terminal("scan", 1.0, 0.5), StageProfile::terminal("agg", 0.1, 0.2)],
        );
        let report = run_job(
            &mut s,
            &job,
            &VanillaSpark::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        )
        .unwrap();
        assert!(report.latency_s > 0.0, "compute still takes time");
        assert_eq!(report.min_bw_mbps, 0.0);
        assert!(report.min_bw_mbps.is_finite());
        assert_eq!(report.shuffle_gb, 0.0);
    }

    #[test]
    fn layout_width_mismatch_is_an_error_not_a_panic() {
        let mut s = sim(4);
        let job = sort_job(3, 3.0); // 3-DC layout on a 4-DC topology
        let err = run_job(
            &mut s,
            &job,
            &Tetrium::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, wanify::WanifyError::DimensionMismatch { expected: 4, got: 3 });
    }

    #[test]
    fn egress_accounting_feeds_network_cost() {
        let mut s = sim(3);
        let job = sort_job(3, 3.0);
        let report = run_job(
            &mut s,
            &job,
            &VanillaSpark::new(),
            &mut wanify::StaticIndependent::new(),
            TransferOptions::default(),
        )
        .unwrap();
        let total_egress: f64 = report.egress_gb.iter().sum();
        assert!(total_egress > 0.0);
        assert!(report.cost.network_usd > 0.0);
    }
}
