//! WAN-aware task and data placement.
//!
//! All schedulers consume a bandwidth matrix *estimate* and produce reduce
//! fractions (share of reduce tasks per DC) and optional input migration.
//! The executor then runs the implied transfers on the true simulated
//! network, so the quality of the estimate determines real performance —
//! the paper's central premise (§2.2).

mod kimchi;
mod tetrium;
mod vanilla;

pub use kimchi::Kimchi;
pub use tetrium::Tetrium;
pub use vanilla::VanillaSpark;

use wanify::source::BandwidthSource;
use wanify_netsim::{BwMatrix, NetSim, Topology};

/// Inputs available when placing one stage's reduce tasks.
#[derive(Debug)]
pub struct PlacementCtx<'a> {
    /// The cluster topology.
    pub topo: &'a Topology,
    /// Bandwidth estimate the scheduler believes in (Mbps, directed).
    pub bw: &'a BwMatrix,
    /// Intermediate output waiting at each DC, in gigabytes.
    pub out_gb: &'a [f64],
    /// vCPU-seconds needed per gigabyte in the downstream stage.
    pub compute_s_per_gb: f64,
}

impl PlacementCtx<'_> {
    /// Number of DCs.
    pub fn n(&self) -> usize {
        self.topo.len()
    }

    /// Estimated seconds for one *unit fraction* of reduce work placed at
    /// DC `j`, combining three terms:
    ///
    /// 1. **aggregate inflow** — the shuffle into `j` moves `Σ out_i · r_j`
    ///    gigabytes through `j`'s receive path, whose capacity is estimated
    ///    by the *column sum* of the bandwidth matrix. Runtime matrices
    ///    measure what each DC can actually absorb under contention;
    ///    static-independent matrices overestimate it non-uniformly, which
    ///    is exactly the sub-optimality the paper attributes to them (§2.2);
    /// 2. **worst single link** — the slowest incoming pair is window
    ///    limited regardless of aggregate capacity;
    /// 3. **compute** — the downstream work per unit fraction.
    pub fn unit_time_at(&self, j: usize) -> f64 {
        let n = self.n();
        let col_sum: f64 = (0..n).filter(|&i| i != j).map(|i| self.bw.get(i, j)).sum();
        let inflow_gb: f64 = (0..n).filter(|&i| i != j).map(|i| self.out_gb[i]).sum();
        // GB → Gb (×8) → seconds at Mbps (×1000).
        let aggregate = inflow_gb * 8.0 * 1000.0 / col_sum.max(1.0);
        let worst_link = (0..n)
            .filter(|&i| i != j && self.out_gb[i] > 0.0)
            .map(|i| self.out_gb[i] * 8.0 * 1000.0 / self.bw.get(i, j).max(1.0))
            .fold(0.0, f64::max);
        let total_out: f64 = self.out_gb.iter().sum();
        let vcpus = f64::from(self.topo.dc(wanify_netsim::DcId(j)).vcpus());
        let compute = total_out * self.compute_s_per_gb / vcpus.max(1.0);
        aggregate + worst_link + compute
    }
}

/// A reduce-task and data placement policy.
///
/// `Send` so boxed schedulers can serve fleet shards running on worker
/// threads (see `wanify_gda::sharded`).
pub trait Scheduler: Send {
    /// Human-readable scheduler name for reports.
    fn name(&self) -> &str;

    /// Fraction of reduce tasks to run at each DC; must be non-negative
    /// and sum to 1 (validated by [`normalize`]).
    fn place_reduce(&self, ctx: &PlacementCtx<'_>) -> Vec<f64>;

    /// Optional input migration before the job starts: returns the new
    /// per-DC input gigabytes, or `None` to leave data in place.
    ///
    /// The default implementation performs no migration.
    fn migrate_input(&self, _ctx: &PlacementCtx<'_>) -> Option<Vec<f64>> {
        None
    }

    /// Places reduce tasks using a belief gauged from any
    /// [`BandwidthSource`] — the provenance-agnostic entry point.
    ///
    /// Every scheduler consumes static, measured and predicted bandwidth
    /// through this one method; nothing in the placement path knows where
    /// the matrix came from.
    ///
    /// # Panics
    ///
    /// Panics if the source cannot gauge the network (a configuration
    /// error, e.g. a model trained for a different topology family).
    fn place_reduce_from(
        &self,
        source: &mut dyn BandwidthSource,
        sim: &mut NetSim,
        out_gb: &[f64],
        compute_s_per_gb: f64,
    ) -> Vec<f64> {
        let bw = source.gauge(sim).expect("bandwidth source must match the topology");
        let ctx = PlacementCtx { topo: sim.topology(), bw: &bw, out_gb, compute_s_per_gb };
        self.place_reduce(&ctx)
    }
}

/// Normalizes non-negative weights into fractions summing to 1; falls back
/// to uniform when the weights vanish.
pub fn normalize(weights: &[f64]) -> Vec<f64> {
    let clamped: Vec<f64> = weights.iter().map(|&w| w.max(0.0)).collect();
    let sum: f64 = clamped.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / weights.len() as f64; weights.len()];
    }
    clamped.iter().map(|w| w / sum).collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use wanify_netsim::{paper_testbed_n, VmType};

    /// A 4-DC topology plus a bandwidth matrix where DC3's links are weak.
    pub fn ctx_fixture() -> (Topology, BwMatrix, Vec<f64>) {
        let topo = paper_testbed_n(VmType::t2_medium(), 4);
        let bw = BwMatrix::from_fn(4, |i, j| {
            if i == j {
                0.0
            } else if i == 3 || j == 3 {
                120.0
            } else {
                1000.0
            }
        });
        let out = vec![2.0, 2.0, 2.0, 2.0];
        (topo, bw, out)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::ctx_fixture;
    use super::*;

    #[test]
    fn normalize_sums_to_one() {
        let r = normalize(&[1.0, 3.0]);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((r[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalize_clamps_negatives_and_handles_zero() {
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.5, 0.5]);
        let r = normalize(&[-1.0, 1.0]);
        assert_eq!(r, vec![0.0, 1.0]);
    }

    #[test]
    fn unit_time_prefers_well_connected_dcs() {
        let (topo, bw, out) = ctx_fixture();
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        assert!(
            ctx.unit_time_at(3) > 1.5 * ctx.unit_time_at(0),
            "weakly connected DC3 should look much slower: {} vs {}",
            ctx.unit_time_at(3),
            ctx.unit_time_at(0)
        );
    }

    #[cfg(test)]
    mod properties {
        use super::super::{Kimchi, Scheduler, Tetrium, VanillaSpark};
        use super::*;
        use proptest::prelude::*;
        use wanify_netsim::{paper_testbed_n, VmType};

        proptest! {
            #[test]
            fn fractions_are_a_distribution(
                bws in proptest::collection::vec(20.0f64..3000.0, 12),
                out in proptest::collection::vec(0.0f64..10.0, 4),
                compute in 0.0f64..10.0,
            ) {
                let topo = paper_testbed_n(VmType::t2_medium(), 4);
                let mut k = 0;
                let bw = wanify_netsim::BwMatrix::from_fn(4, |i, j| {
                    if i == j { 0.0 } else { let x = bws[k % 12]; k += 1; x }
                });
                let ctx = PlacementCtx {
                    topo: &topo,
                    bw: &bw,
                    out_gb: &out,
                    compute_s_per_gb: compute,
                };
                let schedulers: Vec<Box<dyn Scheduler>> = vec![
                    Box::new(VanillaSpark::new()),
                    Box::new(Tetrium::new()),
                    Box::new(Kimchi::new()),
                ];
                for s in &schedulers {
                    let r = s.place_reduce(&ctx);
                    prop_assert_eq!(r.len(), 4);
                    prop_assert!(r.iter().all(|&x| x >= 0.0));
                    prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9,
                        "{} fractions must sum to 1: {r:?}", s.name());
                }
            }

            #[test]
            fn migration_conserves_data(
                bws in proptest::collection::vec(10.0f64..2000.0, 12),
                out in proptest::collection::vec(0.1f64..10.0, 4),
            ) {
                let topo = paper_testbed_n(VmType::t2_medium(), 4);
                let mut k = 0;
                let bw = wanify_netsim::BwMatrix::from_fn(4, |i, j| {
                    if i == j { 0.0 } else { let x = bws[k % 12]; k += 1; x }
                });
                let ctx = PlacementCtx {
                    topo: &topo,
                    bw: &bw,
                    out_gb: &out,
                    compute_s_per_gb: 1.0,
                };
                for s in [&Tetrium::new() as &dyn Scheduler, &Kimchi::new()] {
                    if let Some(new_layout) = s.migrate_input(&ctx) {
                        let before: f64 = out.iter().sum();
                        let after: f64 = new_layout.iter().sum();
                        prop_assert!((before - after).abs() < 1e-9,
                            "{} migration lost data", s.name());
                        prop_assert!(new_layout.iter().all(|&x| x >= 0.0));
                    }
                }
            }
        }
    }

    #[test]
    fn unit_time_includes_compute_term() {
        let (topo, bw, out) = ctx_fixture();
        let no_compute = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 }
            .unit_time_at(0);
        let with_compute =
            PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 10.0 }
                .unit_time_at(0);
        assert!(with_compute > no_compute);
    }
}
