//! Vanilla Spark: locality-aware maps, bandwidth-oblivious reduces.

use super::{normalize, PlacementCtx, Scheduler};
use wanify_netsim::DcId;

/// The baseline scheduler of stock Spark in a geo-distributed deployment
/// (the paper's "No WAN-aware" baseline, §5.3.1).
///
/// Map tasks run where their blocks live (data locality); reduce tasks are
/// spread across executors in proportion to their cores, with no awareness
/// of WAN bandwidth at all.
#[derive(Debug, Clone, Default)]
pub struct VanillaSpark;

impl VanillaSpark {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }
}

impl Scheduler for VanillaSpark {
    fn name(&self) -> &str {
        "vanilla-spark"
    }

    fn place_reduce(&self, ctx: &PlacementCtx<'_>) -> Vec<f64> {
        let weights: Vec<f64> =
            (0..ctx.n()).map(|j| f64::from(ctx.topo.dc(DcId(j)).vcpus())).collect();
        normalize(&weights)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ctx_fixture;
    use super::*;

    #[test]
    fn uniform_on_homogeneous_fleet() {
        let (topo, bw, out) = ctx_fixture();
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 1.0 };
        let r = VanillaSpark::new().place_reduce(&ctx);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-12, "homogeneous cluster ⇒ uniform reduces");
        }
    }

    #[test]
    fn proportional_to_vcpus_on_heterogeneous_fleet() {
        let (topo, bw, out) = ctx_fixture();
        let topo = topo.with_extra_vms(DcId(0), 1); // DC0 now has 2 VMs
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 1.0 };
        let r = VanillaSpark::new().place_reduce(&ctx);
        assert!((r[0] - 0.4).abs() < 1e-12, "DC0 has 4 of 10 vCPUs");
    }

    #[test]
    fn ignores_bandwidth_entirely() {
        let (topo, bw, out) = ctx_fixture();
        let ctx1 = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 1.0 };
        let flat = wanify_netsim::BwMatrix::filled(4, 500.0);
        let ctx2 = PlacementCtx { topo: &topo, bw: &flat, out_gb: &out, compute_s_per_gb: 1.0 };
        let s = VanillaSpark::new();
        assert_eq!(s.place_reduce(&ctx1), s.place_reduce(&ctx2));
    }
}
