//! Tetrium: multi-resource (network + compute) latency-optimal placement.
//!
//! Reimplementation of the placement heuristic of "Wide-area analytics
//! with multiple resources" (Hung et al., EuroSys'18), the paper's primary
//! GDA baseline. Reduce fractions equalize each DC's estimated stage
//! completion time — the slowest incoming WAN link plus local compute —
//! and inputs stranded behind very weak links are migrated out before the
//! job starts (the behaviour the paper highlights in §2.2).

use super::{normalize, PlacementCtx, Scheduler};

/// Latency-optimal WAN-aware scheduler.
#[derive(Debug, Clone)]
pub struct Tetrium {
    /// Links weaker than `migration_ratio · median(min outgoing BW)` have
    /// their input migrated to the best-connected neighbour.
    pub migration_ratio: f64,
}

impl Default for Tetrium {
    fn default() -> Self {
        Self { migration_ratio: 0.25 }
    }
}

impl Tetrium {
    /// Creates the scheduler with default migration threshold.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Tetrium {
    fn name(&self) -> &str {
        "tetrium"
    }

    /// Minimizes `max_j (r_j · unit_time_j)` subject to `Σ r_j = 1`, whose
    /// optimum equalizes completion times: `r_j ∝ 1 / unit_time_j`.
    fn place_reduce(&self, ctx: &PlacementCtx<'_>) -> Vec<f64> {
        let weights: Vec<f64> = (0..ctx.n())
            .map(|j| {
                let t = ctx.unit_time_at(j);
                if t <= 0.0 {
                    1.0
                } else {
                    1.0 / t
                }
            })
            .collect();
        normalize(&weights)
    }

    /// Migrates input away from DCs whose *strongest outgoing link* is
    /// still far below the cluster median — they would bottleneck every
    /// shuffle they feed.
    fn migrate_input(&self, ctx: &PlacementCtx<'_>) -> Option<Vec<f64>> {
        let n = ctx.n();
        let best_out: Vec<f64> = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).map(|j| ctx.bw.get(i, j)).fold(0.0, f64::max))
            .collect();
        let mut sorted = best_out.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite bandwidth"));
        let median = sorted[n / 2];
        let mut layout = ctx.out_gb.to_vec();
        let mut changed = false;
        for i in 0..n {
            if layout[i] > 0.0 && best_out[i] < self.migration_ratio * median {
                // Send the stranded input over its best link.
                let target = (0..n)
                    .filter(|&j| j != i)
                    .max_by(|&a, &b| {
                        ctx.bw.get(i, a).partial_cmp(&ctx.bw.get(i, b)).expect("finite")
                    })
                    .expect("at least two DCs");
                layout[target] += layout[i];
                layout[i] = 0.0;
                changed = true;
            }
        }
        changed.then_some(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ctx_fixture;
    use super::*;
    use wanify_netsim::BwMatrix;

    #[test]
    fn starves_weakly_connected_dc() {
        let (topo, bw, out) = ctx_fixture();
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        let r = Tetrium::new().place_reduce(&ctx);
        assert!(r[3] < 0.6 * r[0], "DC3 (120 Mbps links) should get fewer reduces: {r:?}");
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equalizes_completion_times() {
        let (topo, bw, out) = ctx_fixture();
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        let r = Tetrium::new().place_reduce(&ctx);
        let times: Vec<f64> = (0..4).map(|j| r[j] * ctx.unit_time_at(j)).collect();
        let spread = times.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - times.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 1e-6, "equalized times expected, got {times:?}");
    }

    #[test]
    fn responds_to_bandwidth_estimate_changes() {
        let (topo, _, out) = ctx_fixture();
        // Flip the weak DC from 3 to 0.
        let bw = BwMatrix::from_fn(4, |i, j| {
            if i == j {
                0.0
            } else if i == 0 || j == 0 {
                120.0
            } else {
                1000.0
            }
        });
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        let r = Tetrium::new().place_reduce(&ctx);
        assert!(r[0] < 0.6 * r[3], "now DC0 should get fewer reduces: {r:?}");
    }

    #[test]
    fn migrates_input_from_severely_weak_dc() {
        let (topo, _, _) = ctx_fixture();
        // DC2's best outgoing link (20 Mbps) is far below the median.
        let bw = BwMatrix::from_fn(4, |i, j| {
            if i == j {
                0.0
            } else if i == 2 {
                20.0
            } else {
                1000.0
            }
        });
        let out = vec![5.0, 5.0, 5.0, 5.0];
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        let migrated = Tetrium::new().migrate_input(&ctx).expect("migration expected");
        assert_eq!(migrated[2], 0.0);
        assert!((migrated.iter().sum::<f64>() - 20.0).abs() < 1e-9, "mass conserved");
    }

    #[test]
    fn no_migration_on_balanced_links() {
        let (topo, bw, out) = ctx_fixture();
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        // DC3's best link is 120 vs median 1000: 0.12 < 0.25 ⇒ migrates.
        assert!(Tetrium::new().migrate_input(&ctx).is_some());
        // With a gentler threshold nothing moves.
        let lax = Tetrium { migration_ratio: 0.05 };
        assert!(lax.migrate_input(&ctx).is_none());
    }
}
