//! Kimchi: network-cost-aware geo-distributed placement.
//!
//! Reimplementation of the placement policy of "Network cost-aware
//! geo-distributed data analytics system" (Oh et al., TPDS'21), the
//! paper's second GDA baseline. Kimchi balances stage latency against
//! inter-region egress dollars: reduce fractions favour DCs that are both
//! fast to reach *and* hold expensive-to-export data locally.

use super::{normalize, PlacementCtx, Scheduler};
use crate::cost::egress_price_per_gb;
use wanify_netsim::DcId;

/// Network-cost-aware scheduler.
#[derive(Debug, Clone)]
pub struct Kimchi {
    /// Strength of the cost term; 0 reduces Kimchi to pure latency
    /// equalization (Tetrium-like).
    pub cost_weight: f64,
}

impl Default for Kimchi {
    fn default() -> Self {
        Self { cost_weight: 0.6 }
    }
}

impl Kimchi {
    /// Creates the scheduler with the default latency/cost blend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for Kimchi {
    fn name(&self) -> &str {
        "kimchi"
    }

    /// Reduce weight at `j` is `1/unit_time_j`, boosted by how much egress
    /// cost is avoided by keeping `j`'s own (priced) output local.
    fn place_reduce(&self, ctx: &PlacementCtx<'_>) -> Vec<f64> {
        let n = ctx.n();
        let total_out: f64 = ctx.out_gb.iter().sum();
        let weights: Vec<f64> = (0..n)
            .map(|j| {
                let t = ctx.unit_time_at(j);
                let latency_term = if t <= 0.0 { 1.0 } else { 1.0 / t };
                // Egress avoided per unit fraction placed at j: j's own
                // output priced at j's region egress rate.
                let price = egress_price_per_gb(ctx.topo.dc(DcId(j)).region);
                let avoided = if total_out > 0.0 { price * ctx.out_gb[j] / total_out } else { 0.0 };
                latency_term * (1.0 + self.cost_weight * avoided / 0.138)
            })
            .collect();
        normalize(&weights)
    }

    /// Kimchi migrates stranded input like Tetrium, but only when the move
    /// itself is cheap (small data or cheap source region).
    fn migrate_input(&self, ctx: &PlacementCtx<'_>) -> Option<Vec<f64>> {
        let n = ctx.n();
        let best_out: Vec<f64> = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).map(|j| ctx.bw.get(i, j)).fold(0.0, f64::max))
            .collect();
        let mut sorted = best_out.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite bandwidth"));
        let median = sorted[n / 2];
        let total: f64 = ctx.out_gb.iter().sum();
        let mut layout = ctx.out_gb.to_vec();
        let mut changed = false;
        for i in 0..n {
            let stranded = layout[i] > 0.0 && best_out[i] < 0.25 * median;
            // Cost guard: do not pay to move a large share of pricey data.
            let price = egress_price_per_gb(ctx.topo.dc(DcId(i)).region);
            let cheap_enough = layout[i] <= 0.35 * total || price <= 0.05;
            if stranded && cheap_enough {
                let target = (0..n)
                    .filter(|&j| j != i)
                    .max_by(|&a, &b| {
                        ctx.bw.get(i, a).partial_cmp(&ctx.bw.get(i, b)).expect("finite")
                    })
                    .expect("at least two DCs");
                layout[target] += layout[i];
                layout[i] = 0.0;
                changed = true;
            }
        }
        changed.then_some(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ctx_fixture;
    use super::*;
    use wanify_netsim::BwMatrix;

    #[test]
    fn still_avoids_weak_links() {
        let (topo, bw, out) = ctx_fixture();
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        let r = Kimchi::new().place_reduce(&ctx);
        assert!(r[3] < 0.7 * r[0], "weak DC3 avoided: {r:?}");
    }

    #[test]
    fn cost_term_biases_toward_expensive_regions_data() {
        // Equal bandwidth everywhere; DC3 (AP SE, $0.09/GB) holds most data.
        let (topo, _, _) = ctx_fixture();
        let bw = BwMatrix::from_fn(4, |i, j| if i == j { 0.0 } else { 800.0 });
        let out = vec![1.0, 1.0, 1.0, 9.0];
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        let pure_latency = Kimchi { cost_weight: 0.0 }.place_reduce(&ctx);
        let cost_aware = Kimchi::new().place_reduce(&ctx);
        assert!(
            cost_aware[3] > pure_latency[3],
            "cost-aware ({:?}) should keep pricey AP SE data local vs ({:?})",
            cost_aware,
            pure_latency
        );
    }

    #[test]
    fn zero_cost_weight_matches_latency_equalization() {
        let (topo, bw, out) = ctx_fixture();
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        let k = Kimchi { cost_weight: 0.0 }.place_reduce(&ctx);
        let t = super::super::Tetrium::new().place_reduce(&ctx);
        for (a, b) in k.iter().zip(&t) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn migration_respects_cost_guard() {
        let (topo, _, _) = ctx_fixture();
        // DC3 (AP SE: expensive) is stranded AND holds most of the data.
        let bw = BwMatrix::from_fn(4, |i, j| {
            if i == j {
                0.0
            } else if i == 3 {
                20.0
            } else {
                1000.0
            }
        });
        let out = vec![1.0, 1.0, 1.0, 10.0];
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        assert!(
            Kimchi::new().migrate_input(&ctx).is_none(),
            "large expensive migration should be declined"
        );
        // Small data at the same DC is fine to move.
        let out = vec![5.0, 5.0, 5.0, 0.5];
        let ctx = PlacementCtx { topo: &topo, bw: &bw, out_gb: &out, compute_s_per_gb: 0.0 };
        let migrated = Kimchi::new().migrate_input(&ctx).expect("cheap migration accepted");
        assert_eq!(migrated[3], 0.0);
    }
}
