//! Criterion bench for Table 4 (gains from runtime bandwidth).
//!
//! Prints the regenerated artifact once (quick effort), then measures the
//! end-to-end runner. `repro -- table4` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wanify_experiments::table4;
use wanify_experiments::Effort;

fn bench(c: &mut Criterion) {
    println!("{}", table4::run(Effort::Quick, 42).render());
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("tpcds_beliefs", |b| b.iter(|| table4::run(Effort::Quick, black_box(42))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
