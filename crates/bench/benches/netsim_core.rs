//! Microbenches for the netsim hot path: the weighted max-min solver and
//! the event-coalescing transfer loop (small/large topologies, short and
//! long payloads, coalesced vs forced per-epoch stepping).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wanify_bench::{all_pair_flows, all_pair_transfers, frozen_sim, NoopHook};
use wanify_netsim::{allocate_max_min, ConnMatrix, FairnessProblem, RateScratch, ResourceKind};

/// A standalone fairness problem shaped like the 8-DC all-pairs workload.
fn synthetic_problem(n: usize) -> FairnessProblem {
    let mut p = FairnessProblem::new();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
    let mut f = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let idx = p.add_flow(1.0 + (f % 7) as f64, 200.0 + 37.0 * (f % 11) as f64);
                members[i].push(idx);
                members[n + j].push(idx);
                f += 1;
            }
        }
    }
    for (r, m) in members.iter().enumerate() {
        let kind = if r < n { ResourceKind::Egress(r) } else { ResourceKind::Ingress(r - n) };
        p.add_resource(kind, 900.0, m);
    }
    p
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate_max_min");
    group.sample_size(50);

    let small = synthetic_problem(3);
    group.bench_function("small_topology_3dc", |b| {
        b.iter(|| black_box(allocate_max_min(black_box(&small))))
    });

    let large = synthetic_problem(8);
    group.bench_function("large_topology_8dc", |b| {
        b.iter(|| black_box(allocate_max_min(black_box(&large))))
    });

    // The zero-alloc path the simulator actually runs: problem build +
    // workspace solve through reused buffers.
    let sim = frozen_sim(8);
    let flows = all_pair_flows(8, 4);
    let mut scratch = RateScratch::default();
    group.bench_function("allocate_rates_with_8dc_scratch", |b| {
        b.iter(|| {
            let rates = sim.allocate_rates_with(black_box(&flows), &mut scratch);
            black_box(rates[0])
        })
    });
    group.finish();
}

fn bench_run_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_transfers");
    group.sample_size(10);

    let conns3 = ConnMatrix::filled(3, 2);
    let short = all_pair_transfers(3, 1.0);
    group.bench_function("small_topology_short_payload", |b| {
        b.iter(|| {
            let mut sim = frozen_sim(3);
            black_box(sim.run_transfers(black_box(&short), &conns3, None).makespan_s)
        })
    });

    let conns8 = ConnMatrix::filled(8, 2);
    let long = all_pair_transfers(8, 40.0);
    group.bench_function("large_topology_long_payload_coalesced", |b| {
        b.iter(|| {
            let mut sim = frozen_sim(8);
            black_box(sim.run_transfers(black_box(&long), &conns8, None).makespan_s)
        })
    });

    // The pre-coalescing cost model: one fairness solve per epoch, forced
    // by a do-nothing hook. Identical results, O(seconds) solves.
    let medium = all_pair_transfers(8, 4.0);
    group.bench_function("large_topology_medium_payload_per_epoch", |b| {
        b.iter(|| {
            let mut sim = frozen_sim(8);
            let mut hook = NoopHook;
            black_box(sim.run_transfers(black_box(&medium), &conns8, Some(&mut hook)).makespan_s)
        })
    });
    group.finish();
}

criterion_group!(netsim_core, bench_solver, bench_run_transfers);
criterion_main!(netsim_core);
