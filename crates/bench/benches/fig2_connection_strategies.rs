//! Criterion bench for Fig. 2 (connection strategies on 3 DCs).
//!
//! Prints the regenerated artifact once (full fidelity), then measures the
//! end-to-end runner. `repro -- fig2` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wanify_experiments::fig2;

fn bench(c: &mut Criterion) {
    println!("{}", fig2::run(42).render());
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("three_strategies", |b| b.iter(|| fig2::run(black_box(42))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
