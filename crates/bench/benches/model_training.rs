//! Criterion bench for the prediction-model quality study.
//!
//! Prints the regenerated artifact once (quick effort), then measures the
//! end-to-end runner. `repro -- model` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wanify_experiments::model;
use wanify_experiments::Effort;

fn bench(c: &mut Criterion) {
    println!("{}", model::run(Effort::Quick, 42).render());
    let mut group = c.benchmark_group("model");
    group.sample_size(10);
    group.bench_function("forest_vs_baselines", |b| {
        b.iter(|| model::run(Effort::Quick, black_box(42)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
