//! Criterion bench for Fig. 11 (prediction accuracy across shapes).
//!
//! Prints the regenerated artifact once (quick effort), then measures the
//! end-to-end runner. `repro -- fig11` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wanify_experiments::fig11;
use wanify_experiments::Effort;

fn bench(c: &mut Criterion) {
    println!("{}", fig11::run(Effort::Quick, 42).render());
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("cluster_shapes", |b| b.iter(|| fig11::run(Effort::Quick, black_box(42))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
