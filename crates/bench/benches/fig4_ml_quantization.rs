//! Criterion bench for Fig. 4 (ML quantization variants).
//!
//! Prints the regenerated artifact once (quick effort), then measures the
//! end-to-end runner. `repro -- fig4` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wanify_experiments::fig4;
use wanify_experiments::Effort;

fn bench(c: &mut Criterion) {
    println!("{}", fig4::run(Effort::Quick, 42).render());
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("five_variants", |b| b.iter(|| fig4::run(Effort::Quick, black_box(42))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
