//! Criterion bench for Table 2 (monitoring cost savings).
//!
//! Prints the regenerated artifact once (full fidelity), then measures the
//! end-to-end runner. `repro -- table2` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use wanify_experiments::table2;

fn bench(c: &mut Criterion) {
    println!("{}", table2::run().render());
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("cost_model", |b| b.iter(table2::run));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
