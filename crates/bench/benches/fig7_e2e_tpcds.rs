//! Criterion bench for Fig. 7 (end-to-end TPC-DS).
//!
//! Prints the regenerated artifact once (quick effort), then measures the
//! end-to-end runner. `repro -- fig7` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wanify_experiments::fig7;
use wanify_experiments::Effort;

fn bench(c: &mut Criterion) {
    println!("{}", fig7::run(Effort::Quick, 42).render());
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("with_without_wanify", |b| {
        b.iter(|| fig7::run(Effort::Quick, black_box(42)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
