//! Criterion bench for Table 1 (static vs runtime bandwidth gaps).
//!
//! Prints the regenerated artifact once (full fidelity), then measures the
//! end-to-end runner. `repro -- table1` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wanify_experiments::table1;

fn bench(c: &mut Criterion) {
    println!("{}", table1::run(42).render());
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("probe_8dc", |b| b.iter(|| table1::run(black_box(42))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
