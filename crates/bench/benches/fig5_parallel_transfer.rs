//! Criterion bench for Fig. 5 (parallel transfer approaches).
//!
//! Prints the regenerated artifact once (quick effort), then measures the
//! end-to-end runner. `repro -- fig5` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wanify_experiments::fig5;
use wanify_experiments::Effort;

fn bench(c: &mut Criterion) {
    println!("{}", fig5::run(Effort::Quick, 42).render());
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("terasort_four_ways", |b| {
        b.iter(|| fig5::run(Effort::Quick, black_box(42)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
