//! Criterion bench for Fig. 10 (skewed input handling).
//!
//! Prints the regenerated artifact once (quick effort), then measures the
//! end-to-end runner. `repro -- fig10` produces the full-effort version.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wanify_experiments::fig10;
use wanify_experiments::Effort;

fn bench(c: &mut Criterion) {
    println!("{}", fig10::run(Effort::Quick, 42).render());
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("skewed_wordcount", |b| {
        b.iter(|| fig10::run(Effort::Quick, black_box(42)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
