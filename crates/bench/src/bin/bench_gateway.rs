//! Emits `BENCH_gateway.json`: the goodput-vs-offered-load curve of the
//! serving gateway, from half saturation to three times beyond it.
//!
//! The bench first calibrates the fleet's saturation rate (admission
//! slots over the unloaded mean makespan), then sweeps an open-loop
//! Poisson load at fixed multiples of it — the same job mix and arrival
//! pattern at every point, only compressed in time. Each point runs
//! twice inside a 1-thread rayon pool and once inside a 4-thread pool,
//! and all three passes must be bit-identical: the gateway is
//! deterministic in simulated time like everything else here.
//!
//! The committed JSON carries simulated metrics only (no wall-clock), so
//! CI regenerates it and fails on drift; the no-collapse floor — goodput
//! at 2x saturation stays ≥ 80 % of the goodput at saturation itself —
//! is asserted here, at generation time, on every regeneration.
//!
//! Usage: `bench_gateway [--smoke] [--out PATH]`
//!   --smoke  quarter-size sweep (CI lane); skips the JSON unless --out
//!            is given.
//!   --out    JSON output path (default `BENCH_gateway.json`, full
//!            mode).

use wanify::Pregauged;
use wanify_gateway::{Gateway, GatewayConfig, GatewayReport, GatewayRequest};
use wanify_gda::{FleetConfig, FleetEngine, Tetrium};
use wanify_netsim::{paper_testbed_n, BwMatrix, LinkModelParams, NetSim, VmType};
use wanify_workloads::{offered_load, LoadSpec};

const N_DCS: usize = 3;
const SEED: u64 = 77;
const MAX_CONCURRENT: usize = 2;
/// Deadline slack granted to every request, in unloaded mean makespans.
const SLACK_MAKESPANS: f64 = 4.0;
/// Offered load, in multiples of the calibrated saturation rate.
const MULTIPLES: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 3.0];
/// The no-collapse floor: goodput at 2x saturation must stay at least
/// this fraction of the goodput at saturation itself.
const FLOOR: f64 = 0.8;

fn engine() -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), N_DCS), LinkModelParams::frozen(), SEED),
        Box::new(Tetrium::new()),
        Box::new(Pregauged::new(BwMatrix::filled(N_DCS, 300.0))),
        FleetConfig { max_concurrent: MAX_CONCURRENT, ..FleetConfig::default() },
    )
}

fn serve(requests: Vec<GatewayRequest>) -> GatewayReport {
    Gateway::new(engine(), GatewayConfig { queue_depth: 8, ..GatewayConfig::default() })
        .serve(requests)
        .expect("gateway sweep point failed to run")
}

/// One sweep point, rendered as the committed JSON row (simulated
/// metrics only, fixed precision — byte-compared across reruns).
fn row(multiple: f64, rate_per_s: f64, r: &GatewayReport) -> String {
    let s = &r.fleet.serving;
    let good = r.good();
    format!(
        "    {{ \"load_multiple\": {multiple:.2}, \"rate_per_s\": {rate_per_s:.6}, \
         \"offered\": {}, \"served\": {}, \"good\": {good}, \"shed\": {}, \"rejected\": {}, \
         \"deadline_misses\": {}, \"goodput_per_s\": {:.6}, \"latency_p50_s\": {:.3}, \
         \"latency_p99_s\": {:.3}, \"duration_s\": {:.3} }}",
        s.offered,
        r.served(),
        s.shed_jobs,
        s.rejected,
        s.deadline_misses,
        good as f64 / r.fleet.duration_s.max(1e-9),
        r.latency.p50,
        r.latency.p99,
        r.fleet.duration_s,
    )
}

fn sweep(jobs: usize) -> (f64, Vec<String>) {
    // Calibration: the same mix, trickled far below saturation with no
    // deadlines, gives the unloaded mean makespan.
    let base = LoadSpec::new(N_DCS, jobs, SEED, 1e-3).scaled(0.8);
    let unloaded = serve(
        offered_load(&base)
            .into_iter()
            .map(|o| GatewayRequest { job: o.job, arrival_s: o.arrival_s, deadline_s: None })
            .collect(),
    );
    let mean_makespan_s = unloaded.fleet.makespan().mean;
    let saturation_rate = MAX_CONCURRENT as f64 / mean_makespan_s.max(1e-9);
    let slack_s = SLACK_MAKESPANS * mean_makespan_s;

    let rows = MULTIPLES
        .iter()
        .map(|&m| {
            let rate = m * saturation_rate;
            let requests: Vec<GatewayRequest> =
                offered_load(&base.clone().at_rate(rate).with_deadline_slack(slack_s))
                    .into_iter()
                    .map(|o| GatewayRequest {
                        job: o.job,
                        arrival_s: o.arrival_s,
                        deadline_s: o.deadline_s,
                    })
                    .collect();
            let a = row(m, rate, &serve(requests.clone()));
            let b = row(m, rate, &serve(requests));
            assert_eq!(a, b, "gateway sweep point {m}x must be bit-identical across runs");
            a
        })
        .collect();
    (saturation_rate, rows)
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool construction")
}

fn main() {
    let args = wanify_bench::BenchArgs::parse();
    let smoke = args.smoke;
    let out = args.out("BENCH_gateway.json");
    let jobs = if smoke { 10 } else { 40 };

    let (saturation_rate, rows) = pool(1).install(|| sweep(jobs));
    let (_, rows_mt) = pool(4).install(|| sweep(jobs));
    assert_eq!(rows, rows_mt, "gateway sweep must be bit-identical across thread counts");

    let goodput = |r: &String| -> f64 {
        let tail = r.split("\"goodput_per_s\": ").nth(1).expect("row carries goodput");
        tail.split(',').next().expect("goodput field").parse().expect("goodput parses")
    };
    let at_sat = goodput(&rows[1]);
    let at_2x = goodput(&rows[3]);
    assert!(
        at_2x >= FLOOR * at_sat,
        "goodput collapse past saturation: {at_2x:.4}/s at 2x vs {at_sat:.4}/s at 1x \
         (floor {FLOOR})"
    );

    let json = format!(
        "{{\n  \"bench\": \"gateway\",\n  \"mode\": \"{}\",\n  \"jobs_per_point\": {jobs},\n  \
         \"max_concurrent\": {MAX_CONCURRENT},\n  \"saturation_rate_per_s\": \
         {saturation_rate:.6},\n  \"deadline_slack_makespans\": {SLACK_MAKESPANS:.1},\n  \
         \"goodput_floor_at_2x\": {FLOOR:.2},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n"),
    );
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
}
