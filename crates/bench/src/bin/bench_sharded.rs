//! Emits `BENCH_sharded.json`: the tracked perf + behaviour baseline for
//! the sharded multi-sim fleet.
//!
//! One region-tagged mixed trace is served four ways — by the
//! single-engine [`FleetEngine`] and by [`ShardedFleetEngine`]s of 1, 2,
//! 4 (and, in full mode, 8) shards coupled through a continental
//! backbone — while the runner verifies the sharding guarantees:
//!
//! * **determinism** — every sharded arm must be bit-identical across
//!   repeated runs *and* across rayon thread counts (1 vs 4);
//! * **parity** — the 1-shard arm must reproduce the single-engine
//!   fleet's outcomes bit for bit;
//! * **scale-out** (full mode) — 4 shards must serve the 8-DC 60-query
//!   trace at least 2x faster in wall-clock terms than the single
//!   engine, the decomposition win the sharded fleet exists for
//!   (smaller per-shard fairness solves × rayon parallelism).
//!
//! Usage: `bench_sharded [--smoke] [--out PATH] [--digest PATH] [--queries N]`
//!   --smoke    small fleet (CI); skips writing JSON unless --out is given
//!              and skips the machine-dependent speedup floor.
//!   --out      JSON output path (default `BENCH_sharded.json`, full mode).
//!   --digest   also write one line per outcome with bit-exact simulated
//!              results (no wall times) — the CI determinism matrix diffs
//!              this file across RAYON_NUM_THREADS values.
//!   --queries  override the query count of the selected mode.

use std::fmt::Write as _;
use std::time::Instant;
use wanify_bench::BenchArgs;
use wanify_gda::{
    Arrivals, FleetConfig, FleetEngine, FleetReport, JobProfile, RoundRobinShards,
    ShardedFleetEngine, ShardedFleetReport, Tetrium,
};
use wanify_netsim::{paper_testbed_n, Backbone, LinkModelParams, NetSim, VmType};
use wanify_workloads::{regional_mixed_trace, TraceConfig};

/// Wall-clock speedup 4 shards must deliver over the single engine on
/// the full 8-DC trace.
const MIN_SPEEDUP_AT_4_SHARDS: f64 = 2.0;

fn shard_engine(n: usize, max_concurrent: usize) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), 11),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent,
            regauge_every_s: 300.0,
            conns: None,
            faults: None,
            ..FleetConfig::default()
        },
    )
}

fn backbone(n: usize) -> Backbone {
    Backbone::continental(&paper_testbed_n(VmType::t2_medium(), n), 4000.0, 30.0)
}

fn sharded_run(
    trace: &[JobProfile],
    n: usize,
    shards: usize,
    max_concurrent: usize,
) -> ShardedFleetReport {
    // Round-robin placement: balanced shard populations, so the sweep
    // measures decomposition + parallelism rather than placement luck.
    ShardedFleetEngine::new(
        (0..shards).map(|_| shard_engine(n, max_concurrent)).collect(),
        Box::new(RoundRobinShards::new()),
        Some(backbone(n)),
    )
    .run(trace, &Arrivals::Closed { clients: max_concurrent, think_s: 0.0 })
    .expect("bench trace matches its topology")
}

/// Bit-exact digest of a fleet report's simulated outcomes — everything
/// the run produced except wall-clock time.
fn digest(report: &FleetReport) -> String {
    let mut out = String::new();
    for o in &report.outcomes {
        writeln!(
            out,
            "{} latency={:016x} arrived={:016x} admitted={:016x} completed={:016x}",
            o.report.job,
            o.report.latency_s.to_bits(),
            o.arrived_s.to_bits(),
            o.admitted_s.to_bits(),
            o.completed_s.to_bits(),
        )
        .expect("write to String");
    }
    writeln!(out, "duration={:016x} gauges={}", report.duration_s.to_bits(), report.gauges)
        .expect("write to String");
    out
}

fn assert_identical(label: &str, a: &FleetReport, b: &FleetReport) {
    assert_eq!(digest(a), digest(b), "{label}: runs must be bit-identical");
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out = args.out("BENCH_sharded.json");
    let digest_path = args.path("--digest");

    let (n, mut n_jobs, shard_counts): (usize, usize, &[usize]) =
        if smoke { (4, 16, &[1, 2, 4]) } else { (8, 60, &[1, 2, 4, 8]) };
    if let Some(q) = args.count("--queries") {
        n_jobs = q;
    }
    let max_concurrent = n_jobs;
    let trace =
        regional_mixed_trace(&TraceConfig::new(n, n_jobs, 42).scaled(0.5), backbone(n).groups());

    // (a) Single-engine baseline, timed.
    let start = Instant::now();
    let single = shard_engine(n, max_concurrent)
        .run(&trace, &Arrivals::Closed { clients: max_concurrent, think_s: 0.0 })
        .expect("bench trace matches its topology");
    let single_wall_s = start.elapsed().as_secs_f64();
    assert_eq!(single.outcomes.len(), n_jobs, "every query must complete");

    // (b) Sharded arms, timed; each repeated to prove determinism, and
    // re-run under an explicit 1-thread pool to prove thread-count
    // invariance (the ambient run uses however many cores rayon sees).
    let mut arms: Vec<(usize, f64, ShardedFleetReport)> = Vec::new();
    for &shards in shard_counts {
        let start = Instant::now();
        let report = sharded_run(&trace, n, shards, max_concurrent);
        let wall_s = start.elapsed().as_secs_f64();
        let again = sharded_run(&trace, n, shards, max_concurrent);
        assert_identical(&format!("{shards}-shard repeat"), &report.fleet, &again.fleet);
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool construction")
            .install(|| sharded_run(&trace, n, shards, max_concurrent));
        assert_identical(&format!("{shards}-shard thread-count"), &report.fleet, &serial.fleet);
        assert_eq!(report.fleet.outcomes.len(), n_jobs, "every query must complete");
        arms.push((shards, wall_s, report));
    }

    // (c) 1-shard parity with the single engine.
    let one_shard = &arms[0].2;
    assert_identical("1-shard vs single-engine", &one_shard.fleet, &single);

    let mut arm_json = String::new();
    for (shards, wall_s, report) in &arms {
        let speedup = single_wall_s / wall_s.max(1e-12);
        let makespan = report.fleet.makespan();
        let _ = writeln!(
            arm_json,
            "    {{ \"shards\": {shards}, \"wall_s\": {wall_s:.3}, \"speedup\": {speedup:.2}, \
             \"jobs_per_sim_s\": {:.5}, \"p50_makespan_s\": {:.1}, \"p95_makespan_s\": {:.1}, \
             \"backbone_syncs\": {} }},",
            report.fleet.throughput_jobs_per_s(),
            makespan.p50,
            makespan.p95,
            report.backbone_syncs,
        );
    }
    let arm_json = arm_json.trim_end().trim_end_matches(',').to_string();

    let json = format!(
        "{{\n  \"bench\": \"sharded\",\n  \"mode\": \"{}\",\n  \"workload\": \
         \"{n}dc_regional_{n_jobs}jobs_closed{max_concurrent}\",\n  \"single_engine\": {{\n    \
         \"wall_s\": {single_wall_s:.3},\n    \"simulated_duration_s\": {:.1},\n    \
         \"p50_makespan_s\": {:.1}\n  }},\n  \"sharded\": [\n{arm_json}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        single.duration_s,
        single.makespan().p50,
    );
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
    if let Some(path) = digest_path {
        let mut all = String::new();
        for (shards, _, report) in &arms {
            let _ = writeln!(all, "== {shards} shard(s) ==");
            all.push_str(&digest(&report.fleet));
        }
        std::fs::write(&path, &all).expect("write digest");
        eprintln!("wrote {path}");
    }

    if !smoke {
        let four =
            arms.iter().find(|(s, _, _)| *s == 4).expect("full mode always runs the 4-shard arm");
        let speedup = single_wall_s / four.1.max(1e-12);
        assert!(
            speedup >= MIN_SPEEDUP_AT_4_SHARDS,
            "4-shard wall-clock speedup regressed below {MIN_SPEEDUP_AT_4_SHARDS}x: {speedup:.2}x \
             (single {single_wall_s:.3}s vs sharded {:.3}s)",
            four.1
        );
    }
}
