//! Emits `BENCH_scenarios.json`: the tracked baseline for the
//! fault-injection scenario suite.
//!
//! Runs the whole committed catalog twice — once inside an explicit
//! 1-thread rayon pool, once inside a 4-thread pool — and asserts the
//! two passes produce bit-identical outcome digests (the sharded arms
//! are the only rayon consumers, and faulted runs must stay
//! thread-count-invariant like every other path in this workspace).
//! Every scenario's invariants must also pass.
//!
//! Usage: `bench_scenarios [--smoke] [--out PATH]`
//!   --smoke  run only the two fastest scenarios (CI lane); skips the
//!            JSON unless --out is given.
//!   --out    JSON output path (default `BENCH_scenarios.json`, full
//!            mode).

use std::fmt::Write as _;
use std::time::Instant;
use wanify_scenarios::{catalog, render_digests, run_all, ScenarioOutcome};

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool construction")
}

fn main() {
    let args = wanify_bench::BenchArgs::parse();
    let smoke = args.smoke;
    let out = args.out("BENCH_scenarios.json");

    let mut specs = catalog::all();
    if smoke {
        specs.retain(|s| s.name == "permanent-outage" || s.name == "link-flap");
    }

    let start = Instant::now();
    let serial: Vec<ScenarioOutcome> = pool(1).install(|| run_all(&specs));
    let serial_wall_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let parallel: Vec<ScenarioOutcome> = pool(4).install(|| run_all(&specs));
    let parallel_wall_s = start.elapsed().as_secs_f64();

    assert_eq!(
        render_digests(&serial),
        render_digests(&parallel),
        "scenario suite must be bit-identical across rayon thread counts"
    );
    for outcome in &serial {
        assert!(
            outcome.passed(),
            "scenario {} failed its invariants: {:?}",
            outcome.spec.name,
            outcome.checks.iter().filter(|c| !c.pass).collect::<Vec<_>>()
        );
    }

    let mut rows = String::new();
    for o in &serial {
        let f = &o.solo.faults;
        let _ = writeln!(
            rows,
            "    {{ \"name\": \"{}\", \"solo_duration_s\": {:.2}, \"sharded_duration_s\": \
             {}, \"retries\": {}, \"replacements\": {}, \"stalled_flows\": {}, \
             \"failed_jobs\": {}, \"degraded_s\": {:.2}, \"invariants\": {} }},",
            o.spec.name,
            o.solo.duration_s,
            o.sharded.as_ref().map_or("null".to_string(), |s| format!("{:.2}", s.fleet.duration_s)),
            f.retries,
            f.replacements,
            f.stalled_flows,
            f.failed_jobs,
            f.degraded_s,
            o.checks.len(),
        );
    }
    let rows = rows.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        "{{\n  \"bench\": \"scenarios\",\n  \"mode\": \"{}\",\n  \"suite_wall_s_1thread\": \
         {serial_wall_s:.3},\n  \"suite_wall_s_4threads\": {parallel_wall_s:.3},\n  \
         \"scenarios\": [\n{rows}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
    );
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
}
