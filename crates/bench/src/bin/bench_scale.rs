//! Emits `BENCH_scale.json`: the tracked scale trajectory for the
//! streamed, hierarchically-sharded fleet.
//!
//! Each arm serves N queries — 60, 10 000, 100 000 in full mode — from a
//! lazy trace/Poisson stream through a [`ShardedFleetEngine`] coupled by
//! a two-tier [`BackboneHierarchy`] over a tiled 64-DC WAN, with the
//! driver retaining only a bounded window of per-job state. The runner
//! verifies the scale guarantees while timing each arm:
//!
//! * **determinism** — the middle arm is repeated and re-run under
//!   explicit 1- and 4-thread rayon pools; all four digests must agree
//!   bit for bit;
//! * **constant memory** — the fleet's peak tracked per-job state (one
//!   look-ahead arrival + pending/admitted jobs + one window of
//!   completions per shard + the driver's retained outcomes) at the
//!   largest arm must stay within 2x the middle arm's, even though it
//!   serves 10x the queries;
//! * **throughput floor** — the largest arm must sustain a minimum
//!   number of completed queries per wall-clock second.
//!
//! The JSON separates a `deterministic` section (bit-stable across
//! machines: query counts, simulated durations, memory proxies, run
//! digests) from a `wall` section (machine-dependent timings); CI diffs
//! only the former via `--check`.
//!
//! Usage: `bench_scale [--smoke] [--out PATH] [--digest PATH] [--check]`
//!   --smoke    small trajectory (CI); skips writing JSON unless --out is
//!              given and skips the machine-dependent throughput floor.
//!   --out      JSON output path (default `BENCH_scale.json`, full mode).
//!   --digest   also write the full per-outcome digests (no wall times) —
//!              the CI determinism matrix diffs this file across
//!              RAYON_NUM_THREADS values.
//!   --check    instead of writing, assert that the file at the output
//!              path contains this run's deterministic section verbatim
//!              (drift gate; wall-clock fields are exempt).

use std::fmt::Write as _;
use std::time::Instant;
use wanify_bench::BenchArgs;
use wanify_gda::{
    poisson_times_iter, FleetConfig, FleetEngine, RoundRobinShards, ShardedFleetEngine,
    ShardedFleetReport, Tetrium,
};
use wanify_netsim::{paper_testbed_tiled, BackboneHierarchy, LinkModelParams, NetSim, VmType};
use wanify_workloads::{trace_iter, TraceConfig};

/// Completed queries per wall-clock second the largest arm must sustain.
/// Deliberately far below what the release build does — the floor only
/// catches catastrophic regressions (e.g. losing event coalescing or
/// accidentally materializing the trace).
const MIN_JOBS_PER_WALL_S: f64 = 100.0;

/// The largest arm's memory proxy may exceed the middle arm's by at most
/// this factor, despite serving 10x the queries.
const MAX_PEAK_GROWTH: f64 = 2.0;

/// Outcomes the driver retains for the report; everything past this is
/// folded into the streaming sketches.
const RETAIN_OUTCOMES: usize = 256;

/// Fleet-wide Poisson arrival rate, jobs per simulated second. Chosen
/// well under the fleet's service rate so queues stay bounded and the
/// memory proxy measures the *design's* footprint, not a backlog.
const RATE_PER_S: f64 = 0.5;

struct Scale {
    n_dcs: usize,
    shards: usize,
    max_concurrent: usize,
    arms: &'static [usize],
    /// Index of the arm used for the determinism re-runs.
    check_arm: usize,
}

const FULL: Scale =
    Scale { n_dcs: 64, shards: 8, max_concurrent: 8, arms: &[60, 10_000, 100_000], check_arm: 1 };
const SMOKE: Scale =
    Scale { n_dcs: 16, shards: 4, max_concurrent: 8, arms: &[60, 1_000], check_arm: 1 };

fn shard_engine(n_dcs: usize, max_concurrent: usize) -> FleetEngine {
    FleetEngine::new(
        NetSim::new(paper_testbed_tiled(VmType::t2_medium(), n_dcs), LinkModelParams::frozen(), 11),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig { max_concurrent, regauge_every_s: 3600.0, ..FleetConfig::default() },
    )
}

/// One streamed hierarchical run of `queries` jobs.
fn scale_run(scale: &Scale, queries: usize) -> ShardedFleetReport {
    let topo = paper_testbed_tiled(VmType::t2_medium(), scale.n_dcs);
    // Regional trunks exchange every 30 simulated seconds, continental
    // trunks every 90; between coarse syncs the last continental grant
    // persists.
    let hierarchy = BackboneHierarchy::regional_continental(&topo, 4000.0, 8000.0, 30.0, 90.0);
    let times = poisson_times_iter(RATE_PER_S, 42).expect("positive rate");
    let jobs = trace_iter(&TraceConfig::new(scale.n_dcs, queries, 42).scaled(0.25));
    ShardedFleetEngine::new(
        (0..scale.shards).map(|_| shard_engine(scale.n_dcs, scale.max_concurrent)).collect(),
        Box::new(RoundRobinShards::new()),
        None,
    )
    .with_hierarchy(hierarchy)
    .run_stream(queries, Box::new(times.zip(jobs)), RETAIN_OUTCOMES)
    .expect("scale trace matches its topology")
}

/// Bit-exact digest of everything a run produced except wall-clock time:
/// the retained outcomes plus the fleet-wide streaming totals.
fn digest(report: &ShardedFleetReport) -> String {
    let mut out = String::new();
    for o in &report.fleet.outcomes {
        writeln!(
            out,
            "{} latency={:016x} arrived={:016x} admitted={:016x} completed={:016x}",
            o.report.job,
            o.report.latency_s.to_bits(),
            o.arrived_s.to_bits(),
            o.admitted_s.to_bits(),
            o.completed_s.to_bits(),
        )
        .expect("write to String");
    }
    writeln!(
        out,
        "completed={} failed={} duration={:016x} egress={:016x} cost={:016x} gauges={} \
         syncs={} peak={}",
        report.fleet.completed(),
        report.fleet.failed_jobs(),
        report.fleet.duration_s.to_bits(),
        report.fleet.total_egress_gb().to_bits(),
        report.fleet.total_cost_usd().to_bits(),
        report.fleet.gauges,
        report.backbone_syncs,
        report.peak_tracked,
    )
    .expect("write to String");
    out
}

/// FNV-1a 64 over the digest text: a compact fingerprint for the JSON.
fn fingerprint(digest: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in digest.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool construction")
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out = args.out("BENCH_scale.json");
    let digest_path = args.path("--digest");
    let check = args.flag("--check");

    let scale = if smoke { SMOKE } else { FULL };

    // (a) The trajectory, each arm timed.
    let mut arms: Vec<(usize, f64, String, ShardedFleetReport)> = Vec::new();
    for &queries in scale.arms {
        let start = Instant::now();
        let report = scale_run(&scale, queries);
        let wall_s = start.elapsed().as_secs_f64();
        assert_eq!(report.fleet.completed(), queries, "every query must complete");
        let d = digest(&report);
        arms.push((queries, wall_s, d, report));
    }

    // (b) Determinism on the middle arm: a plain repeat plus explicit
    // 1- and 4-thread pools must all reproduce the ambient digest.
    let (check_queries, _, check_digest, _) = &arms[scale.check_arm];
    for (label, rerun) in [
        ("repeat", scale_run(&scale, *check_queries)),
        ("1-thread", pool(1).install(|| scale_run(&scale, *check_queries))),
        ("4-thread", pool(4).install(|| scale_run(&scale, *check_queries))),
    ] {
        assert_eq!(
            digest(&rerun),
            *check_digest,
            "{label}: {check_queries}-query runs must be bit-identical"
        );
    }

    // (c) Constant memory: the largest arm's peak tracked state must not
    // outgrow the middle arm's, despite 10x the queries.
    let mid_peak = arms[scale.check_arm].3.peak_tracked;
    let top_peak = arms.last().expect("at least one arm").3.peak_tracked;
    assert!(
        (top_peak as f64) <= MAX_PEAK_GROWTH * mid_peak as f64,
        "memory proxy must stay flat with query count: {top_peak} at the largest arm vs \
         {mid_peak} at the middle arm (limit {MAX_PEAK_GROWTH}x)"
    );

    let mut det_arms = String::new();
    for (queries, _, d, report) in &arms {
        let _ = writeln!(
            det_arms,
            "      {{ \"queries\": {queries}, \"completed\": {}, \"simulated_duration_s\": \
             {:.3}, \"jobs_per_sim_s\": {:.5}, \"peak_tracked\": {}, \"retained_outcomes\": {}, \
             \"backbone_syncs\": {}, \"digest\": \"{:016x}\" }},",
            report.fleet.completed(),
            report.fleet.duration_s,
            report.fleet.throughput_jobs_per_s(),
            report.peak_tracked,
            report.fleet.outcomes.len(),
            report.backbone_syncs,
            fingerprint(d),
        );
    }
    let det_arms = det_arms.trim_end().trim_end_matches(',').to_string();
    let deterministic = format!(
        "  \"deterministic\": {{\n    \"workload\": \"{}dc_tiled_{}shards_hier_mixed_rate{}\",\n    \
         \"retain_outcomes\": {RETAIN_OUTCOMES},\n    \"arms\": [\n{det_arms}\n    ]\n  }}",
        scale.n_dcs, scale.shards, RATE_PER_S,
    );

    let mut wall_arms = String::new();
    for (queries, wall_s, _, _) in &arms {
        let _ = writeln!(
            wall_arms,
            "    {{ \"queries\": {queries}, \"wall_s\": {wall_s:.3}, \"jobs_per_wall_s\": \
             {:.1} }},",
            *queries as f64 / wall_s.max(1e-12),
        );
    }
    let wall_arms = wall_arms.trim_end().trim_end_matches(',').to_string();

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"mode\": \"{}\",\n{deterministic},\n  \"wall\": \
         [\n{wall_arms}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
    );
    print!("{json}");

    if check {
        // Drift gate: the committed file must carry this run's
        // deterministic section verbatim; wall-clock fields are exempt.
        let path = out.as_deref().unwrap_or("BENCH_scale.json");
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
        assert!(
            committed.contains(&deterministic),
            "--check: deterministic section of {path} does not match this run — the scale \
             trajectory drifted; re-run bench_scale and commit the new baseline if intended"
        );
        eprintln!("{path}: deterministic section matches");
    } else if let Some(path) = out {
        std::fs::write(&path, &json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
    if let Some(path) = digest_path {
        let mut all = String::new();
        for (queries, _, d, _) in &arms {
            let _ = writeln!(all, "== {queries} queries ==");
            all.push_str(d);
        }
        std::fs::write(&path, &all).expect("write digest");
        eprintln!("wrote {path}");
    }

    if !smoke {
        let (queries, wall_s, _, _) = arms.last().expect("at least one arm");
        let jobs_per_wall_s = *queries as f64 / wall_s.max(1e-12);
        assert!(
            jobs_per_wall_s >= MIN_JOBS_PER_WALL_S,
            "scale throughput regressed below {MIN_JOBS_PER_WALL_S} jobs per wall-second at \
             the {queries}-query arm: {jobs_per_wall_s:.1}"
        );
    }
}
