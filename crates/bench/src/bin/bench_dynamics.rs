//! Emits `BENCH_dynamics.json`: the tracked perf baseline for event
//! coalescing *under live dynamics*.
//!
//! `bench_netsim` pins the coalescing speedup on a frozen network; this
//! runner pins the claim this PR makes on top: with the OU process
//! quantized onto a 30 s tick, rate changes become schedulable events,
//! so a run whose bandwidth moves the whole time still solves fairness
//! once per event instead of once per epoch. Both modes are run on the
//! same seeded workload — coalesced, and forced per-epoch with a
//! do-nothing hook — and must agree bit for bit (the chunked dynamics
//! advance consumes the identical RNG stream). The solve-count ratio is
//! asserted ≥ 10x in every mode; the wall-clock speedup ≥ 10x in full
//! mode only (smoke workloads are too small to time reliably).
//!
//! Usage: `bench_dynamics [--smoke] [--out PATH]`
//!   --smoke   small workload (CI); skips writing JSON unless --out is
//!             given explicitly.
//!   --out     output path (default `BENCH_dynamics.json`, full mode only).

use std::time::Instant;
use wanify_bench::{all_pair_transfers, live_sim, NoopHook};
use wanify_netsim::{ConnMatrix, RunStats, Transfer};

const TICK_S: f64 = 30.0;

struct TransferTiming {
    wall_s: f64,
    epochs: u64,
    stats: RunStats,
    makespan_s: f64,
}

fn time_run(transfers: &[Transfer], conns: &ConnMatrix, per_epoch: bool) -> TransferTiming {
    let mut sim = live_sim(conns.len(), TICK_S);
    let mut hook = NoopHook;
    let start = Instant::now();
    let report = if per_epoch {
        sim.run_transfers(transfers, conns, Some(&mut hook))
    } else {
        sim.run_transfers(transfers, conns, None)
    };
    let wall_s = start.elapsed().as_secs_f64();
    TransferTiming {
        wall_s,
        epochs: report.epochs as u64,
        stats: sim.last_run_stats(),
        makespan_s: report.makespan_s,
    }
}

fn main() {
    let args = wanify_bench::BenchArgs::parse();
    let smoke = args.smoke;
    let out = args.out("BENCH_dynamics.json");

    // Long-transfer workload under live 30 s-tick dynamics, coalesced vs
    // per-epoch stepping. Full mode sizes the slowest pair past 1000
    // simulated seconds — dozens of ticks, the regime the schedulable
    // dynamics are built for.
    let payload_gb = if smoke { 24.0 } else { 160.0 };
    let transfers = all_pair_transfers(8, payload_gb);
    let conns = ConnMatrix::filled(8, 2);
    let coalesced = time_run(&transfers, &conns, false);
    let per_epoch = time_run(&transfers, &conns, true);
    assert_eq!(coalesced.epochs, per_epoch.epochs, "modes must simulate identical epochs");
    assert_eq!(
        coalesced.makespan_s.to_bits(),
        per_epoch.makespan_s.to_bits(),
        "modes must agree bit-for-bit under live dynamics"
    );
    assert!(coalesced.stats.coalesced, "tick-quantized dynamics must keep the fast path");

    let solve_ratio = per_epoch.stats.solves as f64 / coalesced.stats.solves.max(1) as f64;
    let speedup = per_epoch.wall_s / coalesced.wall_s.max(1e-12);

    let json = format!(
        "{{\n  \"bench\": \"dynamics\",\n  \"mode\": \"{}\",\n  \"run_transfers_live\": {{\n    \"workload\": \"8dc_all_pairs_{}gb\",\n    \"dynamics\": \"ou_sigma0.06_theta0.25_tick{}s\",\n    \"simulated_epochs\": {},\n    \"makespan_s\": {:.1},\n    \"coalesced\": {{ \"wall_s\": {:.6}, \"solves\": {}, \"epochs_per_wall_s\": {:.0} }},\n    \"per_epoch\": {{ \"wall_s\": {:.6}, \"solves\": {}, \"epochs_per_wall_s\": {:.0} }},\n    \"solve_ratio\": {:.1},\n    \"speedup\": {:.1}\n  }}\n}}\n",
        if smoke { "smoke" } else { "full" },
        payload_gb,
        TICK_S,
        coalesced.epochs,
        coalesced.makespan_s,
        coalesced.wall_s,
        coalesced.stats.solves,
        coalesced.epochs as f64 / coalesced.wall_s.max(1e-12),
        per_epoch.wall_s,
        per_epoch.stats.solves,
        per_epoch.epochs as f64 / per_epoch.wall_s.max(1e-12),
        solve_ratio,
        speedup,
    );
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
    assert!(
        solve_ratio >= 10.0,
        "live-dynamics coalescing must save >= 10x solves: {solve_ratio:.1}x"
    );
    if !smoke {
        assert!(speedup >= 10.0, "live-dynamics speedup regressed below 10x: {speedup:.1}x");
    }
}
