//! Emits `BENCH_netsim.json`: the tracked perf baseline for the netsim
//! hot path.
//!
//! Measures (a) the weighted max-min solver in ns/iter through the
//! zero-alloc `RateScratch` path, and (b) `run_transfers` on a
//! long-transfer 8-DC workload twice — once on the event-coalescing fast
//! path and once forced onto per-epoch stepping with a do-nothing hook,
//! which reproduces the pre-coalescing loop's solve-per-epoch cost model.
//! The ratio of the two wall-clock times is the coalescing speedup future
//! PRs must not regress.
//!
//! Usage: `bench_netsim [--smoke] [--out PATH]`
//!   --smoke   small workload + few iterations (CI); skips writing JSON
//!             unless --out is given explicitly.
//!   --out     output path (default `BENCH_netsim.json`, full mode only).

use std::time::Instant;
use wanify_bench::{all_pair_flows, all_pair_transfers, frozen_sim, NoopHook};
use wanify_netsim::{ConnMatrix, RateScratch, RunStats, Transfer};

struct TransferTiming {
    wall_s: f64,
    epochs: u64,
    stats: RunStats,
    makespan_s: f64,
}

fn time_run(transfers: &[Transfer], conns: &ConnMatrix, per_epoch: bool) -> TransferTiming {
    let mut sim = frozen_sim(conns.len());
    let mut hook = NoopHook;
    let start = Instant::now();
    let report = if per_epoch {
        sim.run_transfers(transfers, conns, Some(&mut hook))
    } else {
        sim.run_transfers(transfers, conns, None)
    };
    let wall_s = start.elapsed().as_secs_f64();
    TransferTiming {
        wall_s,
        epochs: report.epochs as u64,
        stats: sim.last_run_stats(),
        makespan_s: report.makespan_s,
    }
}

fn main() {
    let args = wanify_bench::BenchArgs::parse();
    let smoke = args.smoke;
    let out = args.out("BENCH_netsim.json");

    // (a) Solver throughput via the zero-alloc scratch path.
    let sim = frozen_sim(8);
    let flows = all_pair_flows(8, 4);
    let mut scratch = RateScratch::default();
    let solver_iters: u32 = if smoke { 200 } else { 5_000 };
    // Warm the buffers so the timed loop is allocation-free.
    let _ = sim.allocate_rates_with(&flows, &mut scratch);
    let start = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..solver_iters {
        acc += sim.allocate_rates_with(&flows, &mut scratch)[0];
    }
    let solver_ns_per_iter = start.elapsed().as_nanos() as f64 / f64::from(solver_iters);
    assert!(acc > 0.0, "solver produced no bandwidth");

    // (b) Long-transfer workload, coalesced vs per-epoch stepping.
    // Full mode sizes the slowest pair past 1000 simulated seconds, the
    // regime the event-coalescing loop is built for.
    let payload_gb = if smoke { 4.0 } else { 160.0 };
    let transfers = all_pair_transfers(8, payload_gb);
    let conns = ConnMatrix::filled(8, 2);
    let coalesced = time_run(&transfers, &conns, false);
    let per_epoch = time_run(&transfers, &conns, true);
    assert_eq!(coalesced.epochs, per_epoch.epochs, "modes must simulate identical epochs");
    assert_eq!(
        coalesced.makespan_s.to_bits(),
        per_epoch.makespan_s.to_bits(),
        "modes must agree bit-for-bit"
    );
    let speedup = per_epoch.wall_s / coalesced.wall_s.max(1e-12);

    let json = format!(
        "{{\n  \"bench\": \"netsim\",\n  \"mode\": \"{}\",\n  \"solver\": {{\n    \"workload\": \"8dc_all_pairs_4conn\",\n    \"ns_per_iter\": {:.1}\n  }},\n  \"run_transfers_long\": {{\n    \"workload\": \"8dc_all_pairs_{}gb\",\n    \"simulated_epochs\": {},\n    \"makespan_s\": {:.1},\n    \"coalesced\": {{ \"wall_s\": {:.6}, \"solves\": {}, \"epochs_per_wall_s\": {:.0} }},\n    \"per_epoch\": {{ \"wall_s\": {:.6}, \"solves\": {}, \"epochs_per_wall_s\": {:.0} }},\n    \"speedup\": {:.1}\n  }}\n}}\n",
        if smoke { "smoke" } else { "full" },
        solver_ns_per_iter,
        payload_gb,
        coalesced.epochs,
        coalesced.makespan_s,
        coalesced.wall_s,
        coalesced.stats.solves,
        coalesced.epochs as f64 / coalesced.wall_s.max(1e-12),
        per_epoch.wall_s,
        per_epoch.stats.solves,
        per_epoch.epochs as f64 / per_epoch.wall_s.max(1e-12),
        speedup,
    );
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
    if !smoke {
        assert!(speedup >= 10.0, "coalescing speedup regressed below 10x: {speedup:.1}x");
    }
}
