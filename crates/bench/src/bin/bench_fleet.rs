//! Emits `BENCH_fleet.json`: the tracked perf + behaviour baseline for
//! the multi-tenant fleet engine.
//!
//! One run serves a deterministic mixed trace (TeraSort / WordCount /
//! TPC-DS mix) through the [`FleetEngine`] with a high admission limit,
//! so dozens of queries contend on one shared WAN at once. The runner
//! verifies the engine's core guarantees while timing it:
//!
//! * **determinism** — two identical runs must agree bit for bit;
//! * **contention** — the fleet's mean per-query makespan must be
//!   strictly worse than the same queries run solo on an idle WAN
//!   (cross-query contention is representable and visible);
//! * **throughput floor** — the engine must sustain a minimum number of
//!   completed queries per wall-clock second (CI-asserted in smoke mode).
//!
//! Usage: `bench_fleet [--smoke] [--out PATH] [--queries N]`
//!   --smoke    small fleet (CI); skips writing JSON unless --out is given.
//!   --out      output path (default `BENCH_fleet.json`, full mode only).
//!   --queries  override the query count of the selected mode.

use std::time::Instant;
use wanify_bench::BenchArgs;
use wanify_gda::{Arrivals, FleetConfig, FleetEngine, FleetReport, Tetrium};
use wanify_netsim::{paper_testbed_n, LinkModelParams, NetSim, VmType};
use wanify_workloads::{mixed_trace, TraceConfig};

/// Completed queries per wall-clock second the engine must sustain. The
/// debug-free release build does ~100× this; the floor only catches
/// catastrophic regressions (e.g. losing event coalescing).
const MIN_JOBS_PER_WALL_S: f64 = 5.0;

fn sim(n: usize) -> NetSim {
    NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), 11)
}

fn fleet_run(n: usize, jobs: &[wanify_gda::JobProfile], max_concurrent: usize) -> FleetReport {
    FleetEngine::new(
        sim(n),
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent,
            regauge_every_s: 300.0,
            conns: None,
            faults: None,
            ..FleetConfig::default()
        },
    )
    .run(jobs, &Arrivals::Closed { clients: max_concurrent, think_s: 0.0 })
    .expect("bench trace matches its topology")
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let out = args.out("BENCH_fleet.json");

    // ≥ 50 queries contending at once in full mode (the acceptance bar);
    // a small fleet in smoke mode to keep CI fast.
    let (n, mut n_jobs, max_concurrent) = if smoke { (4, 16, 16) } else { (8, 60, 60) };
    if let Some(q) = args.count("--queries") {
        n_jobs = q;
    }
    let trace = mixed_trace(&TraceConfig::new(n, n_jobs, 42).scaled(0.5));

    // (a) Fleet run, timed — then repeated to prove determinism.
    let start = Instant::now();
    let fleet = fleet_run(n, &trace, max_concurrent);
    let fleet_wall_s = start.elapsed().as_secs_f64();
    let again = fleet_run(n, &trace, max_concurrent);
    assert_eq!(
        fleet.duration_s.to_bits(),
        again.duration_s.to_bits(),
        "fleet runs must be bit-identical across repetitions"
    );
    for (a, b) in fleet.outcomes.iter().zip(&again.outcomes) {
        assert_eq!(a.report.latency_s.to_bits(), b.report.latency_s.to_bits());
        assert_eq!(a.completed_s.to_bits(), b.completed_s.to_bits());
    }
    assert_eq!(fleet.outcomes.len(), n_jobs, "every query must complete");

    // (b) Solo baseline: the same queries one at a time on an idle WAN.
    let start = Instant::now();
    let mut solo_total_makespan = 0.0;
    for job in &trace {
        let solo = fleet_run(n, std::slice::from_ref(job), 1);
        solo_total_makespan += solo.outcomes[0].makespan_s();
    }
    let solo_wall_s = start.elapsed().as_secs_f64();
    let solo_mean = solo_total_makespan / n_jobs as f64;
    let fleet_mean = fleet.outcomes.iter().map(|o| o.makespan_s()).sum::<f64>() / n_jobs as f64;
    assert!(
        fleet_mean > solo_mean,
        "contention must be measurable: fleet mean {fleet_mean:.1}s vs solo {solo_mean:.1}s"
    );

    let jobs_per_wall_s = n_jobs as f64 / fleet_wall_s.max(1e-12);
    let makespan = fleet.makespan();
    let wait = fleet.queue_wait();

    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"mode\": \"{}\",\n  \"workload\": \"{}dc_mixed_{}jobs_closed{}\",\n  \"fleet\": {{\n    \"completed\": {},\n    \"simulated_duration_s\": {:.1},\n    \"throughput_jobs_per_sim_s\": {:.5},\n    \"mean_makespan_s\": {:.1},\n    \"p50_makespan_s\": {:.1},\n    \"p95_makespan_s\": {:.1},\n    \"p99_makespan_s\": {:.1},\n    \"mean_queue_wait_s\": {:.1},\n    \"gauges\": {},\n    \"egress_usd\": {:.2},\n    \"wall_s\": {:.3},\n    \"jobs_per_wall_s\": {:.1}\n  }},\n  \"solo_baseline\": {{\n    \"mean_makespan_s\": {:.1},\n    \"contention_slowdown\": {:.2},\n    \"wall_s\": {:.3}\n  }}\n}}\n",
        if smoke { "smoke" } else { "full" },
        n,
        n_jobs,
        max_concurrent,
        fleet.outcomes.len(),
        fleet.duration_s,
        fleet.throughput_jobs_per_s(),
        fleet_mean,
        makespan.p50,
        makespan.p95,
        makespan.p99,
        wait.mean,
        fleet.gauges,
        fleet.network_cost_usd(),
        fleet_wall_s,
        jobs_per_wall_s,
        solo_mean,
        fleet_mean / solo_mean.max(1e-12),
        solo_wall_s,
    );
    print!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write benchmark JSON");
        eprintln!("wrote {path}");
    }
    assert!(
        jobs_per_wall_s >= MIN_JOBS_PER_WALL_S,
        "fleet throughput regressed below {MIN_JOBS_PER_WALL_S} jobs per wall-second: \
         {jobs_per_wall_s:.1}"
    );
}
