//! Shared workload builders for the netsim perf targets.
//!
//! Both `benches/netsim_core.rs` and the `bench_netsim` baseline runner
//! measure the same 8-DC all-pairs workload; defining it once here keeps
//! the criterion microbenches and the committed `BENCH_netsim.json`
//! trajectory comparable over time.

use wanify_netsim::{
    paper_testbed_n, DcId, EpochCtx, EpochHook, FlowSpec, LinkModelParams, NetSim, Transfer, VmType,
};

/// A hook that does nothing — forces `run_transfers` onto the per-epoch
/// path (one fairness solve per epoch, the pre-coalescing cost model)
/// while leaving results bit-identical.
pub struct NoopHook;

impl EpochHook for NoopHook {
    fn on_epoch(&mut self, _ctx: &mut EpochCtx<'_>) {}
}

/// A frozen-dynamics simulator on the first `n` paper regions — the
/// standard perf-measurement environment (coalescing-eligible).
pub fn frozen_sim(n: usize) -> NetSim {
    NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), 11)
}

/// A live-dynamics simulator on the first `n` paper regions: default OU
/// noise quantized on `tick_s`, probe noise off — the measurement
/// environment of `bench_dynamics` (coalescing-eligible *despite* the
/// bandwidth moving all run long).
pub fn live_sim(n: usize, tick_s: f64) -> NetSim {
    let params =
        LinkModelParams { dynamics_tick_s: tick_s, snapshot_noise: 0.0, ..Default::default() };
    NetSim::new(paper_testbed_n(VmType::t2_medium(), n), params, 11)
}

/// Every directed WAN pair of an `n`-DC cluster with `conns` connections.
pub fn all_pair_flows(n: usize, conns: u32) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                flows.push(FlowSpec::new(DcId(i), DcId(j), conns));
            }
        }
    }
    flows
}

/// A `gb`-gigabit transfer on every directed WAN pair of an `n`-DC cluster.
pub fn all_pair_transfers(n: usize, gb: f64) -> Vec<Transfer> {
    let mut ts = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                ts.push(Transfer::new(DcId(i), DcId(j), gb));
            }
        }
    }
    ts
}
