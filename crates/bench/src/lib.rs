//! Shared workload builders and CLI plumbing for the perf targets.
//!
//! Both `benches/netsim_core.rs` and the `bench_netsim` baseline runner
//! measure the same 8-DC all-pairs workload; defining it once here keeps
//! the criterion microbenches and the committed `BENCH_netsim.json`
//! trajectory comparable over time. [`BenchArgs`] is the one argv parser
//! every `bench_*` binary shares, so flags behave identically across the
//! whole suite.

use wanify_netsim::{
    paper_testbed_n, DcId, EpochCtx, EpochHook, FlowSpec, LinkModelParams, NetSim, Transfer, VmType,
};

/// The common `bench_*` command line: `[--smoke] [--out PATH]` plus
/// per-binary extras read through [`BenchArgs::flag`],
/// [`BenchArgs::path`] and [`BenchArgs::count`].
///
/// Conventions shared by every runner:
/// * `--smoke` selects the small CI workload **and** suppresses the
///   default output file — smoke numbers must never overwrite a
///   committed full-mode baseline;
/// * `--out PATH` forces writing to `PATH` in either mode;
/// * flags that need a value exit with status 2 and a message on stderr
///   when the value is missing or malformed.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// `--smoke`: small CI workload, no default output file.
    pub smoke: bool,
    args: Vec<String>,
}

impl BenchArgs {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument vector (tests).
    pub fn from_args(args: Vec<String>) -> Self {
        let smoke = args.iter().any(|a| a == "--smoke");
        Self { smoke, args }
    }

    /// Whether a bare flag (e.g. `--check`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value of a path flag (e.g. `--digest PATH`), if present.
    /// Exits with status 2 when the flag is given without a path.
    pub fn path(&self, flag: &str) -> Option<String> {
        let i = self.args.iter().position(|a| a == flag)?;
        match self.args.get(i + 1) {
            Some(path) if !path.starts_with("--") => Some(path.clone()),
            _ => {
                eprintln!("error: {flag} requires a path argument");
                std::process::exit(2);
            }
        }
    }

    /// The value of a numeric flag (e.g. `--queries N`), if present.
    /// Exits with status 2 when the value is missing or not a count.
    pub fn count(&self, flag: &str) -> Option<usize> {
        let i = self.args.iter().position(|a| a == flag)?;
        match self.args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => Some(n),
            _ => {
                eprintln!("error: {flag} requires a positive integer argument");
                std::process::exit(2);
            }
        }
    }

    /// The output path: `--out PATH` when given, else `default` in full
    /// mode, else `None` (smoke runs don't overwrite committed
    /// baselines).
    pub fn out(&self, default: &str) -> Option<String> {
        self.path("--out").or_else(|| (!self.smoke).then(|| default.to_string()))
    }
}

/// A hook that does nothing — forces `run_transfers` onto the per-epoch
/// path (one fairness solve per epoch, the pre-coalescing cost model)
/// while leaving results bit-identical.
pub struct NoopHook;

impl EpochHook for NoopHook {
    fn on_epoch(&mut self, _ctx: &mut EpochCtx<'_>) {}
}

/// A frozen-dynamics simulator on the first `n` paper regions — the
/// standard perf-measurement environment (coalescing-eligible).
pub fn frozen_sim(n: usize) -> NetSim {
    NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), 11)
}

/// A live-dynamics simulator on the first `n` paper regions: default OU
/// noise quantized on `tick_s`, probe noise off — the measurement
/// environment of `bench_dynamics` (coalescing-eligible *despite* the
/// bandwidth moving all run long).
pub fn live_sim(n: usize, tick_s: f64) -> NetSim {
    let params =
        LinkModelParams { dynamics_tick_s: tick_s, snapshot_noise: 0.0, ..Default::default() };
    NetSim::new(paper_testbed_n(VmType::t2_medium(), n), params, 11)
}

/// Every directed WAN pair of an `n`-DC cluster with `conns` connections.
pub fn all_pair_flows(n: usize, conns: u32) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                flows.push(FlowSpec::new(DcId(i), DcId(j), conns));
            }
        }
    }
    flows
}

/// A `gb`-gigabit transfer on every directed WAN pair of an `n`-DC cluster.
pub fn all_pair_transfers(n: usize, gb: f64) -> Vec<Transfer> {
    let mut ts = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                ts.push(Transfer::new(DcId(i), DcId(j), gb));
            }
        }
    }
    ts
}
