//! The serving front-end itself: a bounded submission queue with
//! backpressure, deadline-aware shedding, and per-tenant-class quotas
//! over an incremental [`FleetRun`].
//!
//! The gateway owns every admission decision; the fleet run underneath
//! only ever sees jobs the gateway has already let through, submitted
//! just-in-time as admission slots free up ([`FleetRun::serve_step`]
//! returns at each completion so freed capacity is refilled mid-window).
//! Requests the gateway refuses — queue overflow under
//! [`OverloadPolicy::Reject`], an over-quota tenant class, a queued
//! request whose predicted makespan can no longer meet its deadline —
//! never touch the WAN, which is precisely what keeps goodput from
//! collapsing past saturation: capacity is spent only on work that can
//! still succeed.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::breaker::BreakerHandle;
use crate::quota::{tenant_class, QuotaConfig, TokenBucket};
use wanify::WanifyError;
use wanify_gda::{FleetEngine, FleetReport, FleetRun, JobProfile, Percentiles, ServingCounters};
use wanify_netsim::DcId;

/// What to do with a request that finds the submission queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Refuse it outright (counted in
    /// [`ServingCounters::rejected`]) — fail fast, bounded queueing
    /// delay for everyone admitted.
    Reject,
    /// Park the submitter outside the queue; the request enters as
    /// space frees. Nothing is refused, but queueing delay (and
    /// deadline shedding) grows without bound past saturation.
    Block,
}

/// Gateway knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Bounded submission-queue depth (≥ 1).
    pub queue_depth: usize,
    /// Policy when the queue is full.
    pub overload: OverloadPolicy,
    /// Per-tenant-class token-bucket quota; `None` admits every class.
    pub quota: Option<QuotaConfig>,
    /// Safety factor on predicted makespans for deadline shedding
    /// (> 0): a queued request is shed when
    /// `now + shed_headroom × predicted_makespan` exceeds its deadline.
    /// Larger sheds earlier.
    pub shed_headroom: f64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self { queue_depth: 32, overload: OverloadPolicy::Reject, quota: None, shed_headroom: 1.0 }
    }
}

/// One request: a job, when it arrives at the gateway, and an optional
/// absolute completion deadline.
#[derive(Debug, Clone)]
pub struct GatewayRequest {
    /// The query to run.
    pub job: JobProfile,
    /// Simulated arrival time at the gateway.
    pub arrival_s: f64,
    /// Absolute completion deadline; `None` never sheds.
    pub deadline_s: Option<f64>,
}

/// How the gateway disposed of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disposition {
    /// Ran to completion on the fleet.
    Served {
        /// When it finished.
        completed_s: f64,
        /// Whether it finished by its deadline (vacuously true without
        /// one).
        met_deadline: bool,
        /// Whether the fault policy aborted it (partial accounting).
        failed: bool,
    },
    /// Refused at the front door: queue full under
    /// [`OverloadPolicy::Reject`].
    RejectedOverload,
    /// Refused by its tenant class's token bucket.
    RejectedQuota,
    /// Dropped from the queue: its predicted makespan could no longer
    /// meet its deadline.
    Shed,
}

/// The gateway's final accounting.
#[derive(Debug)]
pub struct GatewayReport {
    /// The underlying fleet report, serving counters folded in.
    pub fleet: FleetReport,
    /// Per-request verdicts, in offer order.
    pub dispositions: Vec<Disposition>,
    /// End-to-end latency (gateway arrival → completion) order
    /// statistics of the served requests.
    pub latency: Percentiles,
}

impl GatewayReport {
    /// Requests that ran to completion (late or not).
    pub fn served(&self) -> usize {
        self.dispositions.iter().filter(|d| matches!(d, Disposition::Served { .. })).count()
    }

    /// Requests that completed successfully by their deadline — the
    /// numerator of every goodput figure.
    pub fn good(&self) -> usize {
        self.dispositions
            .iter()
            .filter(|d| matches!(d, Disposition::Served { met_deadline: true, failed: false, .. }))
            .count()
    }
}

/// A request sitting in (or overflowing) the submission queue.
#[derive(Debug)]
struct Queued {
    req: usize,
    job: JobProfile,
    deadline_s: Option<f64>,
}

/// The serving gateway; see the module docs. Drive it manually with
/// [`Gateway::advance_to`] / [`Gateway::offer`] / [`Gateway::drain`] /
/// [`Gateway::finish`], or hand it a whole arrival-ordered stream via
/// [`Gateway::serve`].
#[derive(Debug)]
pub struct Gateway {
    run: FleetRun,
    cfg: GatewayConfig,
    queue: VecDeque<Queued>,
    overflow: VecDeque<Queued>,
    /// One bucket per tenant class (ordered map: deterministic Debug).
    buckets: BTreeMap<String, TokenBucket>,
    counters: ServingCounters,
    /// Verdict per request, `None` while still queued or running.
    dispositions: Vec<Option<Disposition>>,
    /// `(arrival_s, deadline_s)` per request.
    reqs: Vec<(f64, Option<f64>)>,
    /// Fleet job index → request index.
    owner: HashMap<usize, usize>,
    /// Fleet job index → the raw (uncalibrated) makespan estimate at
    /// admission, the denominator of the calibration feedback.
    raw_est: HashMap<usize, f64>,
    /// EWMA of observed/predicted makespan: the static belief model
    /// cannot see link sharing or transport overheads, so the gateway
    /// learns a correction factor from every completion.
    calibration: f64,
    /// Outcomes already folded into dispositions.
    recorded: usize,
    breaker: Option<BreakerHandle>,
}

impl Gateway {
    /// Fronts `engine` with the gateway.
    ///
    /// # Panics
    ///
    /// Panics on a zero queue depth, a non-positive or non-finite shed
    /// headroom, or an invalid quota (non-finite rate, burst < 1).
    pub fn new(engine: FleetEngine, cfg: GatewayConfig) -> Self {
        assert!(cfg.queue_depth >= 1, "the submission queue needs at least one slot");
        assert!(
            cfg.shed_headroom.is_finite() && cfg.shed_headroom > 0.0,
            "shed headroom must be finite and positive, got {}",
            cfg.shed_headroom
        );
        if let Some(q) = &cfg.quota {
            assert!(
                q.rate_per_s.is_finite() && q.rate_per_s >= 0.0,
                "quota rate must be finite and non-negative, got {}",
                q.rate_per_s
            );
            assert!(q.burst >= 1.0, "a quota burst below one token admits nothing");
        }
        Self {
            run: FleetRun::start_serving(engine),
            cfg,
            queue: VecDeque::new(),
            overflow: VecDeque::new(),
            buckets: BTreeMap::new(),
            counters: ServingCounters::default(),
            dispositions: Vec::new(),
            reqs: Vec::new(),
            owner: HashMap::new(),
            raw_est: HashMap::new(),
            calibration: 1.0,
            recorded: 0,
            breaker: None,
        }
    }

    /// Attaches a [`BreakerHandle`] whose counters are folded into the
    /// report at [`Gateway::finish`]; builder-style. Pair it with a
    /// [`crate::CircuitBreakerSource`] installed as the engine's belief
    /// source.
    #[must_use]
    pub fn with_breaker(mut self, handle: BreakerHandle) -> Self {
        self.breaker = Some(handle);
        self
    }

    /// Current simulated time of the fronted fleet.
    pub fn time_s(&self) -> f64 {
        self.run.time_s()
    }

    /// Requests waiting in the bounded queue plus parked submitters.
    pub fn queued(&self) -> usize {
        self.queue.len() + self.overflow.len()
    }

    /// Offers one request arriving *now* (advance the clock to its
    /// arrival first). Quota and overflow verdicts are immediate;
    /// everything else queues for dispatch.
    pub fn offer(&mut self, req: GatewayRequest) {
        let idx = self.dispositions.len();
        self.dispositions.push(None);
        self.reqs.push((req.arrival_s, req.deadline_s));
        self.counters.offered += 1;
        let now = self.run.time_s();
        if let Some(quota) = self.cfg.quota {
            let class = tenant_class(&req.job.name);
            let bucket = self
                .buckets
                .entry(class.to_string())
                .or_insert_with(|| TokenBucket::new(quota, now));
            if !bucket.try_take(now) {
                self.counters.quota_rejected += 1;
                self.dispositions[idx] = Some(Disposition::RejectedQuota);
                return;
            }
        }
        let queued = Queued { req: idx, job: req.job, deadline_s: req.deadline_s };
        if self.queue.len() >= self.cfg.queue_depth {
            match self.cfg.overload {
                OverloadPolicy::Reject => {
                    self.counters.rejected += 1;
                    self.dispositions[idx] = Some(Disposition::RejectedOverload);
                }
                OverloadPolicy::Block => self.overflow.push_back(queued),
            }
        } else {
            self.queue.push_back(queued);
        }
        self.pump();
    }

    /// Advances simulated time to `t`, dispatching queued work into
    /// freed admission slots along the way.
    ///
    /// # Errors
    ///
    /// Propagates any [`WanifyError`] from the underlying fleet run.
    pub fn advance_to(&mut self, t: f64) -> Result<(), WanifyError> {
        loop {
            self.pump();
            let target = t.max(self.run.time_s());
            let done = self.run.serve_step(target)?;
            self.absorb_completions();
            if done == 0 {
                return Ok(());
            }
        }
    }

    /// Serves until every queued and running request is disposed of.
    ///
    /// # Errors
    ///
    /// Propagates any [`WanifyError`] from the underlying fleet run.
    pub fn drain(&mut self) -> Result<(), WanifyError> {
        loop {
            self.pump();
            if self.queue.is_empty() && self.overflow.is_empty() && self.run.in_service() == 0 {
                return Ok(());
            }
            let _ = self.run.serve_step(self.run.time_s() + 3600.0)?;
            self.absorb_completions();
        }
    }

    /// Finalizes the report. Call [`Gateway::drain`] first — every
    /// offered request must have a verdict.
    ///
    /// # Panics
    ///
    /// Panics if a request is still queued or running.
    pub fn finish(mut self) -> GatewayReport {
        if let Some(handle) = &self.breaker {
            let stats = handle.stats();
            self.counters.breaker_trips = stats.trips;
            self.counters.breaker_fallbacks = stats.fallbacks;
            self.counters.breaker_recoveries = stats.recoveries;
        }
        let mut latencies = Vec::new();
        let dispositions: Vec<Disposition> = self
            .dispositions
            .into_iter()
            .enumerate()
            .map(|(i, d)| {
                let d = d.expect("every offered request has a verdict after drain");
                if let Disposition::Served { completed_s, .. } = d {
                    latencies.push(completed_s - self.reqs[i].0);
                }
                d
            })
            .collect();
        let fleet = self.run.into_report().with_serving(self.counters);
        GatewayReport { fleet, dispositions, latency: Percentiles::of(&latencies) }
    }

    /// Serves a whole arrival-ordered request stream and finishes.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError::InvalidConfig`] for arrivals that are not
    /// finite and non-decreasing, and propagates fleet errors.
    pub fn serve(mut self, requests: Vec<GatewayRequest>) -> Result<GatewayReport, WanifyError> {
        let mut last = 0.0;
        for r in &requests {
            if !(r.arrival_s.is_finite() && r.arrival_s >= last) {
                return Err(WanifyError::InvalidConfig(format!(
                    "request arrivals must be finite and non-decreasing, got {} after {last}",
                    r.arrival_s
                )));
            }
            last = r.arrival_s;
        }
        for r in requests {
            self.advance_to(r.arrival_s)?;
            self.offer(r);
        }
        self.drain()?;
        Ok(self.finish())
    }

    /// Moves parked submitters into the bounded queue and dispatches
    /// from its head into free admission slots, shedding requests whose
    /// deadline is no longer reachable.
    fn pump(&mut self) {
        loop {
            while self.queue.len() < self.cfg.queue_depth {
                match self.overflow.pop_front() {
                    Some(q) => self.queue.push_back(q),
                    None => break,
                }
            }
            if self.queue.is_empty() || self.run.in_service() >= self.run.max_concurrent() {
                return;
            }
            let head = self.queue.pop_front().expect("checked non-empty");
            let raw = self.raw_estimate_s(&head.job);
            if let Some(deadline) = head.deadline_s {
                let eta = self.run.time_s() + self.cfg.shed_headroom * raw * self.calibration;
                if eta > deadline {
                    self.counters.shed_jobs += 1;
                    self.dispositions[head.req] = Some(Disposition::Shed);
                    continue;
                }
            }
            let job_idx = self.run.submit_job(head.job);
            self.owner.insert(job_idx, head.req);
            self.raw_est.insert(job_idx, raw);
        }
    }

    /// Folds newly completed outcomes into dispositions and the
    /// deadline-miss counter.
    fn absorb_completions(&mut self) {
        while self.recorded < self.run.outcomes().len() {
            let o = self.run.outcomes()[self.recorded].clone();
            self.recorded += 1;
            let req = self.owner[&o.job_idx];
            let met = self.reqs[req].1.is_none_or(|d| o.completed_s <= d + 1e-9);
            if !met {
                self.counters.deadline_misses += 1;
            }
            if let Some(raw) = self.raw_est.remove(&o.job_idx) {
                if raw > 1e-9 && !o.failed {
                    let ratio = ((o.completed_s - o.admitted_s) / raw).clamp(0.01, 100.0);
                    self.calibration = 0.5 * self.calibration + 0.5 * ratio;
                }
            }
            self.dispositions[req] = Some(Disposition::Served {
                completed_s: o.completed_s,
                met_deadline: met,
                failed: o.failed,
            });
        }
    }

    /// Predicted makespan of `job`: the belief-model estimate
    /// ([`Gateway::raw_estimate_s`]) scaled by the learned
    /// observed/predicted calibration factor. This is the figure the
    /// shedding decision uses; public so load generators and benches can
    /// calibrate offered load against the gateway's own notion of
    /// service time.
    pub fn estimate_makespan_s(&self, job: &JobProfile) -> f64 {
        self.raw_estimate_s(job) * self.calibration
    }

    /// Model-based makespan prediction of `job` on the current belief:
    /// per-stage straggler compute (the executor's own model) plus
    /// shuffle volume over the mean off-diagonal belief bandwidth, the
    /// shuffle share scaled by the tenants already in service (they
    /// split the WAN). Optimistic before the first gauge — with no
    /// belief yet nothing is shed, so a cold gateway admits its
    /// calibration traffic. The model cannot see link sharing or
    /// transport overheads; completions feed the gap back into
    /// `calibration`.
    fn raw_estimate_s(&self, job: &JobProfile) -> f64 {
        let Some(bw) = self.run.belief_bw() else { return 0.0 };
        let topo = self.run.sim().topology();
        let n = topo.len();
        if n < 2 || job.layout.len() != n {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    sum += bw.get(i, j);
                }
            }
        }
        let mean_mbps = (sum / (n * (n - 1)) as f64).max(1e-6);
        let mut data: Vec<f64> = (0..n).map(|i| job.layout.gb_at(i)).collect();
        let mut total_s = 0.0;
        for stage in &job.stages {
            total_s += data
                .iter()
                .enumerate()
                .map(|(j, gb)| gb * stage.compute_s_per_gb / f64::from(topo.dc(DcId(j)).vcpus()))
                .fold(0.0, f64::max);
            let out: Vec<f64> = data.iter().map(|gb| gb * stage.selectivity).collect();
            let total_out: f64 = out.iter().sum();
            if stage.shuffles && total_out > 1e-12 {
                // Uniform all-to-all: (n-1)/n of the bytes cross the WAN
                // over n parallel senders; sharing scales the transfer
                // time by the tenants it contends with.
                let wan_gb = total_out * (n as f64 - 1.0) / n as f64;
                let share = (self.run.in_service() + 1) as f64;
                total_s += wan_gb * 8000.0 * share / (mean_mbps * n as f64);
                data = vec![total_out / n as f64; n];
            } else {
                data = out;
            }
        }
        total_s
    }
}
