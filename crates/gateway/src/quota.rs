//! Per-tenant-class token buckets: one tenant's storm cannot starve the
//! rest of the fleet's admission capacity.
//!
//! Classes are job *families* — the name prefix before the trailing
//! `-<index>` tag the trace generators append (`terasort-7` → `terasort`,
//! `q42-3` → `q42`) — the same keying
//! [`wanify_gda::TenantClassShards`] uses to home tenants to shards.
//! Buckets refill in *simulated* time, so quota decisions are as
//! deterministic as everything else in the workspace.

/// Token-bucket rate limit applied independently to every tenant class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Sustained admissions per simulated second each class may make.
    pub rate_per_s: f64,
    /// Burst capacity: tokens a bucket can hold (≥ 1). A fresh class
    /// starts with a full bucket.
    pub burst: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        Self { rate_per_s: 0.1, burst: 4.0 }
    }
}

/// One class's bucket: lazily refilled at each take.
#[derive(Debug, Clone)]
pub(crate) struct TokenBucket {
    tokens: f64,
    last_refill_s: f64,
    cfg: QuotaConfig,
}

impl TokenBucket {
    /// A full bucket as of `now_s`.
    pub(crate) fn new(cfg: QuotaConfig, now_s: f64) -> Self {
        Self { tokens: cfg.burst, last_refill_s: now_s, cfg }
    }

    /// Refills for the simulated time elapsed, then takes one token if
    /// available. Returns whether the admission is within quota.
    pub(crate) fn try_take(&mut self, now_s: f64) -> bool {
        let dt = (now_s - self.last_refill_s).max(0.0);
        self.tokens = (self.tokens + dt * self.cfg.rate_per_s).min(self.cfg.burst);
        self.last_refill_s = now_s;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Extracts a job's tenant class: the name up to its trailing `-<tag>`
/// (the whole name when there is none).
pub fn tenant_class(name: &str) -> &str {
    name.rsplit_once('-').map_or(name, |(family, _)| family)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_is_the_family_prefix() {
        assert_eq!(tenant_class("terasort-7"), "terasort");
        assert_eq!(tenant_class("q42-3"), "q42");
        assert_eq!(tenant_class("wordcount-12@g1"), "wordcount");
        assert_eq!(tenant_class("solo"), "solo");
    }

    #[test]
    fn bucket_enforces_burst_then_rate() {
        let mut b = TokenBucket::new(QuotaConfig { rate_per_s: 0.5, burst: 2.0 }, 0.0);
        assert!(b.try_take(0.0), "a fresh bucket holds its burst");
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.0), "the burst is spent");
        assert!(!b.try_take(1.0), "0.5 tokens/s: one second refills only half a token");
        assert!(b.try_take(2.0), "two seconds refill a whole token");
        assert!(!b.try_take(2.0));
    }

    #[test]
    fn bucket_caps_at_burst_after_a_long_idle() {
        let mut b = TokenBucket::new(QuotaConfig { rate_per_s: 1.0, burst: 3.0 }, 0.0);
        for _ in 0..3 {
            assert!(b.try_take(0.0));
        }
        // A very long idle refills to the cap, not beyond.
        for _ in 0..3 {
            assert!(b.try_take(1e6));
        }
        assert!(!b.try_take(1e6));
    }

    #[test]
    fn refill_ignores_time_running_backwards() {
        let mut b = TokenBucket::new(QuotaConfig { rate_per_s: 1.0, burst: 1.0 }, 10.0);
        assert!(b.try_take(10.0));
        assert!(!b.try_take(5.0), "an earlier timestamp must not mint tokens");
    }
}
