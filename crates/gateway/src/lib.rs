//! Overload-robust serving gateway over the WANify fleet engine.
//!
//! The rest of the workspace answers "how fast does this batch of
//! queries run?"; this crate answers "what happens when queries keep
//! arriving faster than the fleet can run them?". A [`Gateway`] fronts a
//! [`wanify_gda::FleetRun`] with the classic serving defenses:
//!
//! - a **bounded submission queue** with a configurable overload policy
//!   ([`OverloadPolicy::Reject`] fails fast, [`OverloadPolicy::Block`]
//!   parks submitters);
//! - **deadline-aware shedding** — queued requests whose predicted
//!   makespan (from the current bandwidth belief) can no longer meet
//!   their deadline are dropped before they waste WAN capacity;
//! - **per-tenant-class token-bucket quotas** ([`QuotaConfig`]) so one
//!   tenant's storm cannot starve the rest;
//! - a **circuit breaker on belief gauging**
//!   ([`CircuitBreakerSource`]) that degrades to a static fallback
//!   belief instead of failing queries when the monitoring plane is
//!   down, with half-open probe recovery.
//!
//! Everything is keyed on simulated time, so gateway runs are
//! bit-deterministic like the rest of the workspace — including across
//! `RAYON_NUM_THREADS` settings, which CI asserts.

pub mod breaker;
pub mod gateway;
pub mod quota;

pub use breaker::{BreakerConfig, BreakerHandle, BreakerStats, CircuitBreakerSource, FlakySource};
pub use gateway::{
    Disposition, Gateway, GatewayConfig, GatewayReport, GatewayRequest, OverloadPolicy,
};
pub use quota::{tenant_class, QuotaConfig};
