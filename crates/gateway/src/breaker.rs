//! Circuit breaker on gauge/belief failures: degraded answers instead of
//! failed queries.
//!
//! [`CircuitBreakerSource`] wraps a primary [`BandwidthSource`] and a
//! fallback (typically a `Pregauged` static belief). Every primary gauge
//! failure is answered by the fallback; `failure_threshold` *consecutive*
//! failures trip the breaker open, after which the primary is not even
//! tried for `cooldown_s` simulated seconds. The first gauge after the
//! cooldown is a half-open probe: success closes the breaker (a
//! recovery), failure re-opens it for another cooldown (counted as a
//! re-trip). All transitions are keyed on simulated time, so breaker
//! behaviour is bit-deterministic like everything else here.
//!
//! [`FlakySource`] is the matching deterministic fault injector: it fails
//! every gauge before a configured simulated instant and delegates to its
//! inner source afterwards — the scenario suite's stand-in for a
//! monitoring plane that is down for a window.

use std::sync::{Arc, Mutex};

use wanify::{BandwidthSource, WanifyError};
use wanify_netsim::{BwMatrix, NetSim};

/// Knobs of the belief circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive primary-gauge failures that trip the breaker open
    /// (≥ 1; `1` trips on the first failure).
    pub failure_threshold: u32,
    /// Simulated seconds the breaker stays open before a half-open
    /// probe retries the primary.
    pub cooldown_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 3, cooldown_s: 60.0 }
    }
}

/// Observable counters of one breaker's life.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Primary gauges that returned an error.
    pub primary_failures: u64,
    /// Times the breaker opened (threshold trips and failed half-open
    /// probes alike).
    pub trips: u64,
    /// Gauges answered by the fallback belief.
    pub fallbacks: u64,
    /// Half-open probes attempted after a cooldown.
    pub probes: u64,
    /// Half-open probes that found the primary healthy and closed the
    /// breaker.
    pub recoveries: u64,
}

/// A cloneable read handle onto a breaker's [`BreakerStats`]. The
/// breaker itself disappears into the fleet engine as a boxed
/// [`BandwidthSource`]; the handle is how the gateway folds its counters
/// into the final report.
#[derive(Debug, Clone)]
pub struct BreakerHandle(Arc<Mutex<BreakerStats>>);

impl BreakerHandle {
    /// A snapshot of the counters so far.
    pub fn stats(&self) -> BreakerStats {
        *self.0.lock().expect("breaker stats lock")
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Closed,
    Open { until_s: f64 },
}

/// The breaker itself; see the module docs.
pub struct CircuitBreakerSource {
    primary: Box<dyn BandwidthSource>,
    fallback: Box<dyn BandwidthSource>,
    cfg: BreakerConfig,
    consecutive_failures: u32,
    phase: Phase,
    stats: Arc<Mutex<BreakerStats>>,
    name: String,
}

impl CircuitBreakerSource {
    /// Wraps `primary` with `fallback` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero or the cooldown is not finite and
    /// positive.
    pub fn new(
        primary: Box<dyn BandwidthSource>,
        fallback: Box<dyn BandwidthSource>,
        cfg: BreakerConfig,
    ) -> Self {
        assert!(cfg.failure_threshold >= 1, "a breaker needs a positive failure threshold");
        assert!(
            cfg.cooldown_s.is_finite() && cfg.cooldown_s > 0.0,
            "breaker cooldown must be finite and positive, got {}",
            cfg.cooldown_s
        );
        let name = format!("breaker({}->{})", primary.name(), fallback.name());
        Self {
            primary,
            fallback,
            cfg,
            consecutive_failures: 0,
            phase: Phase::Closed,
            stats: Arc::new(Mutex::new(BreakerStats::default())),
            name,
        }
    }

    /// A stats handle to read after the breaker has been consumed by the
    /// fleet engine.
    pub fn stats_handle(&self) -> BreakerHandle {
        BreakerHandle(Arc::clone(&self.stats))
    }

    fn note(&self, f: impl FnOnce(&mut BreakerStats)) {
        f(&mut self.stats.lock().expect("breaker stats lock"));
    }
}

impl BandwidthSource for CircuitBreakerSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn gauge(&mut self, net: &mut NetSim) -> Result<BwMatrix, WanifyError> {
        if let Phase::Open { until_s } = self.phase {
            if net.time_s() < until_s {
                self.note(|s| s.fallbacks += 1);
                return self.fallback.gauge(net);
            }
            // Cooldown over: half-open probe.
            self.note(|s| s.probes += 1);
            return match self.primary.gauge(net) {
                Ok(bw) => {
                    self.phase = Phase::Closed;
                    self.consecutive_failures = 0;
                    self.note(|s| s.recoveries += 1);
                    Ok(bw)
                }
                Err(_) => {
                    self.phase = Phase::Open { until_s: net.time_s() + self.cfg.cooldown_s };
                    self.note(|s| {
                        s.primary_failures += 1;
                        s.trips += 1;
                        s.fallbacks += 1;
                    });
                    self.fallback.gauge(net)
                }
            };
        }
        match self.primary.gauge(net) {
            Ok(bw) => {
                self.consecutive_failures = 0;
                Ok(bw)
            }
            Err(_) => {
                self.consecutive_failures += 1;
                let tripped = self.consecutive_failures >= self.cfg.failure_threshold;
                if tripped {
                    self.phase = Phase::Open { until_s: net.time_s() + self.cfg.cooldown_s };
                }
                self.note(|s| {
                    s.primary_failures += 1;
                    if tripped {
                        s.trips += 1;
                    }
                    s.fallbacks += 1;
                });
                self.fallback.gauge(net)
            }
        }
    }
}

/// A deterministic gauge fault injector: fails every gauge strictly
/// before `fail_until_s` simulated seconds, then delegates to the inner
/// source.
pub struct FlakySource {
    inner: Box<dyn BandwidthSource>,
    fail_until_s: f64,
    name: String,
}

impl FlakySource {
    /// Wraps `inner`; gauges fail while `sim.time_s() < fail_until_s`.
    pub fn new(inner: Box<dyn BandwidthSource>, fail_until_s: f64) -> Self {
        let name = format!("flaky({})", inner.name());
        Self { inner, fail_until_s, name }
    }
}

impl BandwidthSource for FlakySource {
    fn name(&self) -> &str {
        &self.name
    }

    fn gauge(&mut self, net: &mut NetSim) -> Result<BwMatrix, WanifyError> {
        if net.time_s() < self.fail_until_s {
            return Err(WanifyError::InvalidConfig(format!(
                "injected gauge outage until t={:.1}s",
                self.fail_until_s
            )));
        }
        self.inner.gauge(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanify::Pregauged;
    use wanify_netsim::{paper_testbed_n, LinkModelParams, VmType};

    fn sim() -> NetSim {
        NetSim::new(paper_testbed_n(VmType::t2_medium(), 3), LinkModelParams::frozen(), 1)
    }

    fn pregauged(mbps: f64) -> Box<dyn BandwidthSource> {
        Box::new(Pregauged::new(BwMatrix::filled(3, mbps)))
    }

    /// Advances the simulator clock without any traffic.
    fn warp(net: &mut NetSim, to_s: f64) {
        while net.time_s() < to_s {
            net.advance(to_s - net.time_s());
        }
    }

    #[test]
    fn breaker_serves_fallback_then_trips_then_recovers() {
        let mut net = sim();
        let primary = Box::new(FlakySource::new(pregauged(500.0), 100.0));
        let mut breaker = CircuitBreakerSource::new(
            primary,
            pregauged(200.0),
            BreakerConfig { failure_threshold: 2, cooldown_s: 50.0 },
        );
        let handle = breaker.stats_handle();

        // First failure: fallback answer, breaker still closed.
        let bw = breaker.gauge(&mut net).unwrap();
        assert_eq!(bw.get(0, 1), 200.0, "degraded answer, not an error");
        assert_eq!(handle.stats().trips, 0);

        // Second consecutive failure trips it open.
        assert!(breaker.gauge(&mut net).is_ok());
        assert_eq!(handle.stats().trips, 1);
        assert_eq!(handle.stats().fallbacks, 2);

        // While open the primary is not even probed.
        warp(&mut net, 10.0);
        assert!(breaker.gauge(&mut net).is_ok());
        assert_eq!(handle.stats().primary_failures, 2, "open breaker skips the primary");

        // Probe during the outage re-opens (a re-trip).
        warp(&mut net, 60.0);
        assert!(breaker.gauge(&mut net).is_ok());
        assert_eq!(handle.stats().probes, 1);
        assert_eq!(handle.stats().trips, 2);

        // Probe after the outage heals recovers the primary.
        warp(&mut net, 120.0);
        let bw = breaker.gauge(&mut net).unwrap();
        assert_eq!(bw.get(0, 1), 500.0, "recovered primary answers again");
        assert_eq!(handle.stats().recoveries, 1);

        // Healthy primary keeps answering; no further fallbacks.
        let before = handle.stats().fallbacks;
        assert!(breaker.gauge(&mut net).is_ok());
        assert_eq!(handle.stats().fallbacks, before);
    }

    #[test]
    fn flaky_source_heals_on_schedule() {
        let mut net = sim();
        let mut flaky = FlakySource::new(pregauged(300.0), 5.0);
        assert!(flaky.gauge(&mut net).is_err());
        warp(&mut net, 5.0);
        assert!(flaky.gauge(&mut net).is_ok());
        assert!(flaky.name().starts_with("flaky("));
    }

    #[test]
    fn intermittent_failures_below_threshold_never_trip() {
        let mut net = sim();
        // Fails before t=1 only; threshold 3 is never reached because a
        // success resets the consecutive count.
        let primary = Box::new(FlakySource::new(pregauged(500.0), 1.0));
        let mut breaker =
            CircuitBreakerSource::new(primary, pregauged(200.0), BreakerConfig::default());
        let handle = breaker.stats_handle();
        assert!(breaker.gauge(&mut net).is_ok());
        warp(&mut net, 2.0);
        for _ in 0..5 {
            assert!(breaker.gauge(&mut net).is_ok());
        }
        assert_eq!(handle.stats().primary_failures, 1);
        assert_eq!(handle.stats().trips, 0);
        assert_eq!(handle.stats().fallbacks, 1);
    }
}
