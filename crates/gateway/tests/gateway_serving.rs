//! End-to-end gateway behaviour over a real fleet engine: shedding under
//! sustained overload, reject-vs-block overflow policies, tenant-quota
//! isolation, breaker-backed serving through a gauge outage, and bit
//! determinism of the whole front-end.

use wanify::Pregauged;
use wanify_gateway::{
    BreakerConfig, CircuitBreakerSource, Disposition, FlakySource, Gateway, GatewayConfig,
    GatewayRequest, OverloadPolicy, QuotaConfig,
};
use wanify_gda::{DataLayout, FleetConfig, FleetEngine, JobProfile, StageProfile, Tetrium};
use wanify_netsim::{paper_testbed_n, BwMatrix, LinkModelParams, NetSim, VmType};

fn sim(n: usize, seed: u64) -> NetSim {
    NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), seed)
}

fn job(n: usize, gb: f64, name: &str) -> JobProfile {
    JobProfile::new(
        name,
        DataLayout::uniform(n, gb),
        vec![StageProfile::shuffling("map", 1.0, 1.0), StageProfile::terminal("reduce", 0.05, 0.5)],
    )
}

fn engine(seed: u64, max_concurrent: usize) -> FleetEngine {
    FleetEngine::new(
        sim(3, seed),
        Box::new(Tetrium::new()),
        Box::new(wanify::MeasuredRuntime::default()),
        FleetConfig { max_concurrent, ..FleetConfig::default() },
    )
}

/// A burst of identical requests arriving at `spacing_s`, each with the
/// same relative deadline.
fn burst(count: usize, spacing_s: f64, deadline_slack_s: f64) -> Vec<GatewayRequest> {
    (0..count)
        .map(|i| {
            let arrival_s = i as f64 * spacing_s;
            GatewayRequest {
                job: job(3, 2.0, &format!("burst-{i}")),
                arrival_s,
                deadline_s: Some(arrival_s + deadline_slack_s),
            }
        })
        .collect()
}

#[test]
fn sustained_overload_sheds_instead_of_collapsing() {
    // One admission slot, arrivals far faster than service: without
    // shedding every later job would blow its deadline while queued.
    let gw = Gateway::new(
        engine(1, 1),
        GatewayConfig { queue_depth: 64, shed_headroom: 1.5, ..GatewayConfig::default() },
    );
    let report = gw.serve(burst(20, 5.0, 120.0)).unwrap();
    let serving = report.fleet.serving;
    assert_eq!(serving.offered, 20);
    assert!(serving.shed_jobs > 0, "overload must shed, got {serving:?}");
    assert!(report.good() > 0, "some requests still meet their deadline");
    // Shedding is the whole point: nothing that was admitted should then
    // miss its deadline by much — the estimator filtered the hopeless.
    assert_eq!(
        report.served() + serving.shed_jobs as usize,
        20,
        "every request is either served or shed"
    );
    assert!(serving.deadline_misses <= 2, "admission kept late finishes rare, got {serving:?}");
}

#[test]
fn reject_policy_bounds_the_queue_and_block_policy_serves_everyone() {
    let reqs = burst(12, 1.0, f64::INFINITY);
    let rejecting = Gateway::new(
        engine(2, 1),
        GatewayConfig { queue_depth: 2, overload: OverloadPolicy::Reject, ..Default::default() },
    )
    .serve(reqs.clone())
    .unwrap();
    assert!(
        rejecting.fleet.serving.rejected > 0,
        "a two-deep queue under a 12-job burst must overflow"
    );
    assert_eq!(
        rejecting.served() + rejecting.fleet.serving.rejected as usize,
        12,
        "no deadline pressure: everything not rejected is served"
    );

    let blocking = Gateway::new(
        engine(2, 1),
        GatewayConfig { queue_depth: 2, overload: OverloadPolicy::Block, ..Default::default() },
    )
    .serve(reqs)
    .unwrap();
    assert_eq!(blocking.fleet.serving.rejected, 0);
    assert_eq!(blocking.served(), 12, "blocking parks submitters instead of refusing");
    assert!(
        blocking.latency.max >= rejecting.latency.max,
        "blocking trades latency for completeness"
    );
}

#[test]
fn quota_isolates_a_storming_tenant_class() {
    // "noisy" storms 10 requests at t=0; "quiet" sends one per 30 s.
    // Quota: burst 2, 0.04 tokens/s (more than one token per 30 s) — the
    // storm is clipped to its burst, the quiet class never notices.
    let mut reqs = Vec::new();
    for i in 0..10 {
        reqs.push(GatewayRequest {
            job: job(3, 1.0, &format!("noisy-{i}")),
            arrival_s: 0.0,
            deadline_s: None,
        });
    }
    for i in 0..4 {
        reqs.push(GatewayRequest {
            job: job(3, 1.0, &format!("quiet-{i}")),
            arrival_s: 30.0 * (i + 1) as f64,
            deadline_s: None,
        });
    }
    reqs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    let report = Gateway::new(
        engine(3, 4),
        GatewayConfig {
            quota: Some(QuotaConfig { rate_per_s: 0.04, burst: 2.0 }),
            ..GatewayConfig::default()
        },
    )
    .serve(reqs)
    .unwrap();
    assert_eq!(report.fleet.serving.quota_rejected, 8, "the storm is clipped to its burst");
    let quiet_served = report
        .dispositions
        .iter()
        .skip(10)
        .filter(|d| matches!(d, Disposition::Served { .. }))
        .count();
    assert_eq!(quiet_served, 4, "the quiet class is untouched by the noisy one's storm");
}

#[test]
fn breaker_keeps_serving_through_a_gauge_outage() {
    // The primary gauge fails until t=200 s; the breaker degrades to a
    // static fallback belief and recovers after the outage. Re-gauge
    // every 30 s so the breaker sees a stream of gauges.
    let primary = Box::new(FlakySource::new(Box::new(wanify::MeasuredRuntime::default()), 200.0));
    let breaker = CircuitBreakerSource::new(
        primary,
        Box::new(Pregauged::new(BwMatrix::filled(3, 100.0))),
        BreakerConfig { failure_threshold: 2, cooldown_s: 40.0 },
    );
    let handle = breaker.stats_handle();
    let engine = FleetEngine::new(
        sim(3, 5),
        Box::new(Tetrium::new()),
        Box::new(breaker),
        FleetConfig { max_concurrent: 2, regauge_every_s: 30.0, ..FleetConfig::default() },
    );
    let reqs: Vec<GatewayRequest> = (0..10)
        .map(|i| GatewayRequest {
            job: job(3, 2.0, &format!("bb-{i}")),
            arrival_s: 40.0 * i as f64,
            deadline_s: None,
        })
        .collect();
    let report =
        Gateway::new(engine, GatewayConfig::default()).with_breaker(handle).serve(reqs).unwrap();
    let serving = report.fleet.serving;
    assert_eq!(report.served(), 10, "the outage degrades beliefs, never queries");
    assert!(serving.breaker_trips >= 1, "the outage must trip the breaker, got {serving:?}");
    assert!(serving.breaker_fallbacks >= 1);
    assert!(serving.breaker_recoveries >= 1, "the healed primary is probed back in");
    assert_eq!(report.fleet.faults.failed_jobs, 0);
}

#[test]
fn gateway_runs_are_bit_deterministic() {
    let run = || {
        Gateway::new(
            engine(7, 2),
            GatewayConfig {
                queue_depth: 3,
                quota: Some(QuotaConfig { rate_per_s: 0.05, burst: 3.0 }),
                ..GatewayConfig::default()
            },
        )
        .serve(burst(15, 7.0, 300.0))
        .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.dispositions, b.dispositions);
    assert_eq!(a.fleet.serving, b.fleet.serving);
    assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
    assert_eq!(a.fleet.duration_s.to_bits(), b.fleet.duration_s.to_bits());
}
