//! Bandwidth throttling of BW-rich links (traffic control).
//!
//! Nearby DCs would otherwise consume the bulk of each host's network
//! capacity. WANify's local agents compute, per source DC, the mean of the
//! achievable bandwidths from that region as a threshold `T`, and use
//! traffic control (tc) to cap every destination whose achievable
//! bandwidth exceeds `T` down to `T` (paper §3.2.2 "Throttling BW"; the
//! WANify-TC variant of Fig. 5).

use crate::local::SIGNIFICANT_DELTA_MBPS;
use wanify_netsim::{BwMatrix, Grid};

/// Computes per-pair throttle caps from achievable bandwidths.
///
/// Returns a grid where cell `(i, j)` is the cap in Mbps for the directed
/// pair, or `f64::INFINITY` when the pair is not throttled.
///
/// Equivalent to [`throttle_caps_clamped`] with unbounded host capacity.
pub fn throttle_caps(achievable_bw: &BwMatrix) -> Grid<f64> {
    let hosts = vec![f64::INFINITY; achievable_bw.len()];
    throttle_caps_clamped(achievable_bw, &hosts)
}

/// Computes throttle caps with achievable values rescaled to each source
/// host's estimated egress capacity.
///
/// The linear achievable model (`BW × connections`, Eq. 3) can exceed what
/// a VM's NIC can physically push. Each row is scaled by
/// `min(1, host_egress / row_sum)` — preserving the row's relative shape —
/// before computing the per-source threshold `T` (row mean) and capping
/// entries above it. This keeps `T` realistic so that caps on BW-rich
/// nearby links actually bind — the effect WANify-TC relies on (Fig. 5).
///
/// # Panics
///
/// Panics if `host_egress_mbps.len()` differs from the matrix size.
pub fn throttle_caps_clamped(achievable_bw: &BwMatrix, host_egress_mbps: &[f64]) -> Grid<f64> {
    let n = achievable_bw.len();
    assert_eq!(host_egress_mbps.len(), n, "one egress estimate per host required");
    let factor: Vec<f64> = (0..n)
        .map(|i| {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| achievable_bw.get(i, j)).sum();
            if row_sum > 0.0 && host_egress_mbps[i].is_finite() {
                (host_egress_mbps[i] / row_sum).min(1.0)
            } else {
                1.0
            }
        })
        .collect();
    let scaled = BwMatrix::from_fn(n, |i, j| achievable_bw.get(i, j) * factor[i]);
    Grid::from_fn(n, |i, j| {
        if i == j {
            return f64::INFINITY;
        }
        let threshold = scaled.row_mean_off_diag(i);
        // Only genuinely BW-rich destinations are capped: the excess over
        // the regional mean must itself be significant (>100 Mbps), else a
        // uniformly weak region would throttle its least-bad link.
        if scaled.get(i, j) > threshold + SIGNIFICANT_DELTA_MBPS {
            threshold
        } else {
            f64::INFINITY
        }
    })
}

/// Like [`throttle_caps_clamped`], but a pair is only eligible for capping
/// when it belongs to its source row's *closest* off-diagonal relationship
/// class — the "nearby DCs" the paper singles out for throttling (§3.2.2).
/// This keeps agents from capping mid-distance links when AIMD targets
/// drift during execution.
///
/// # Panics
///
/// Panics if the relation matrix or host vector size differs from the
/// bandwidth matrix.
pub fn throttle_caps_masked(
    achievable_bw: &BwMatrix,
    host_egress_mbps: &[f64],
    relations: &crate::relations::DcRelations,
) -> Grid<f64> {
    let n = achievable_bw.len();
    assert_eq!(relations.len(), n, "relations must match the matrix size");
    let unmasked = throttle_caps_clamped(achievable_bw, host_egress_mbps);
    Grid::from_fn(n, |i, j| {
        if i == j {
            return f64::INFINITY;
        }
        let closest = (0..n)
            .filter(|&k| k != i)
            .map(|k| relations.get(i, k))
            .min()
            .expect("at least two DCs");
        if relations.get(i, j) == closest {
            unmasked.get(i, j)
        } else {
            f64::INFINITY
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> BwMatrix {
        BwMatrix::from_rows(3, vec![0.0, 1600.0, 200.0, 1600.0, 0.0, 300.0, 200.0, 300.0, 0.0])
    }

    #[test]
    fn rich_links_are_capped_to_the_row_mean() {
        let caps = throttle_caps(&bw());
        // Row 0 mean = (1600+200)/2 = 900 ⇒ the 1600 link caps at 900.
        assert!((caps.get(0, 1) - 900.0).abs() < 1e-9);
        assert_eq!(caps.get(0, 2), f64::INFINITY, "weak links stay free");
    }

    #[test]
    fn diagonal_never_throttled() {
        let caps = throttle_caps(&bw());
        for i in 0..3 {
            assert_eq!(caps.get(i, i), f64::INFINITY);
        }
    }

    #[test]
    fn uniform_rows_are_untouched() {
        let uniform = BwMatrix::from_fn(3, |i, j| if i == j { 0.0 } else { 500.0 });
        let caps = throttle_caps(&uniform);
        for (_, _, c) in caps.iter_pairs() {
            assert_eq!(c, f64::INFINITY, "nothing exceeds the mean of equals");
        }
    }

    #[test]
    fn thresholds_are_per_source_row() {
        let caps = throttle_caps(&bw());
        // Row 1 mean = (1600+300)/2 = 950.
        assert!((caps.get(1, 0) - 950.0).abs() < 1e-9);
        assert_eq!(caps.get(1, 2), f64::INFINITY);
    }

    #[test]
    fn empty_matrix_yields_empty_caps() {
        let empty = BwMatrix::new(0);
        assert!(throttle_caps(&empty).is_empty());
        assert!(throttle_caps_clamped(&empty, &[]).is_empty());
        let relations = crate::relations::DcRelations::new(0);
        assert!(throttle_caps_masked(&empty, &[], &relations).is_empty());
    }

    #[test]
    fn single_dc_has_no_throttleable_pairs() {
        let one = BwMatrix::filled(1, 0.0);
        let caps = throttle_caps(&one);
        assert_eq!(caps.get(0, 0), f64::INFINITY, "intra-DC is never capped");
        let clamped = throttle_caps_clamped(&one, &[500.0]);
        assert_eq!(clamped.get(0, 0), f64::INFINITY);
        // Masked variant must not panic hunting for a closest *other* DC.
        let relations = crate::relations::DcRelations::filled(1, 1);
        let masked = throttle_caps_masked(&one, &[500.0], &relations);
        assert_eq!(masked.get(0, 0), f64::INFINITY);
    }

    #[test]
    fn infinite_host_egress_never_scales_rows() {
        // All-infinite host estimates: clamped must equal the unclamped
        // caps (scale factor 1 everywhere), not poison thresholds with NaN
        // or infinity.
        let hosts = vec![f64::INFINITY; 3];
        let clamped = throttle_caps_clamped(&bw(), &hosts);
        let unclamped = throttle_caps(&bw());
        for (i, j, cap) in unclamped.iter_pairs() {
            assert_eq!(clamped.get(i, j), cap, "({i},{j})");
            assert!(!clamped.get(i, j).is_nan());
        }
    }

    #[test]
    fn zero_bandwidth_rows_stay_uncapped() {
        // A dead region (all-zero row) has threshold 0 and no cell above
        // it: nothing to throttle, and no NaN from the 0/0 rescale.
        let mut dead = bw();
        for j in 0..3 {
            dead.set(2, j, 0.0);
        }
        let caps = throttle_caps_clamped(&dead, &[1000.0, 1000.0, 1000.0]);
        assert_eq!(caps.get(2, 0), f64::INFINITY);
        assert_eq!(caps.get(2, 1), f64::INFINITY);
        assert!(caps.iter_pairs().all(|(_, _, c)| !c.is_nan()));
    }

    #[test]
    #[should_panic]
    fn clamped_rejects_mismatched_host_vector() {
        let _ = throttle_caps_clamped(&bw(), &[1000.0, 1000.0]);
    }

    #[test]
    #[should_panic]
    fn masked_rejects_mismatched_relations() {
        let relations = crate::relations::DcRelations::filled(2, 1);
        let _ = throttle_caps_masked(&bw(), &[1e3, 1e3, 1e3], &relations);
    }
}
