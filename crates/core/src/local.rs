//! Dynamic local optimization: AIMD fine-tuning of live connections.
//!
//! Global optimization hands every worker a per-destination window of
//! connections and achievable bandwidths. Each VM's local optimizer starts
//! at the *maximum* of the window and reacts to node-level monitoring
//! (the paper uses ifTop) every few seconds (§3.2.2):
//!
//! * **Multiplicative decrease** — monitored bandwidth significantly below
//!   target (Δ > 100 Mbps, the same significance bound used throughout the
//!   paper) signals congestion: halve connections and target, flooring at
//!   the window minimum;
//! * **Additive increase** — monitored ≈ target signals headroom: add one
//!   connection and a linear bandwidth increment, ceiling at the maximum.
//!
//! Pairs moving less than 1 MB skip the state machine entirely — their
//! utilization says nothing about the network (§3.2.2).

use crate::global::GlobalPlan;

/// Significant bandwidth difference in Mbps (paper: 100 Mbps [13, 24]).
pub const SIGNIFICANT_DELTA_MBPS: f64 = 100.0;

/// Data-transfer size below which AIMD updates are skipped (1 MB, §3.2.2),
/// expressed in gigabits.
pub const SKIP_BELOW_GB: f64 = 8.0 / 1024.0;

/// Current AIMD mode for one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AimdMode {
    /// Probing upward: connections grow by 1 per interval.
    AdditiveIncrease,
    /// Backing off congestion: connections and targets halve.
    MultiplicativeDecrease,
}

/// The per-VM local optimizer for one source DC.
#[derive(Debug, Clone)]
pub struct LocalOptimizer {
    src: usize,
    min_cons: Vec<u32>,
    max_cons: Vec<u32>,
    min_bw: Vec<f64>,
    max_bw: Vec<f64>,
    per_conn_bw: Vec<f64>,
    target_cons: Vec<u32>,
    target_bw: Vec<f64>,
    mode: Vec<AimdMode>,
}

impl LocalOptimizer {
    /// Creates the optimizer for source DC `src` from a global plan,
    /// starting at the maximum configuration (the paper's initial state,
    /// which "begins from maximum throughput").
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range for the plan.
    pub fn new(src: usize, plan: &GlobalPlan) -> Self {
        let n = plan.max_cons.len();
        assert!(src < n, "source DC {src} out of range for a {n}-DC plan");
        // Bandwidth targets must be *attainable* or every pair reads as
        // congested forever (the paper's targets track observed bandwidth,
        // Fig. 9). The linear achievable row can exceed the host's egress
        // estimate; scale it down proportionally when it does.
        let row_sum: f64 = (0..n).filter(|&j| j != src).map(|j| plan.max_bw.get(src, j)).sum();
        let host = plan.host_egress_mbps.get(src).copied().unwrap_or(f64::INFINITY);
        let feas = if row_sum > 0.0 && host.is_finite() { (host / row_sum).min(1.0) } else { 1.0 };
        let max_bw: Vec<f64> = (0..n).map(|j| plan.max_bw.get(src, j) * feas).collect();
        let min_bw: Vec<f64> = (0..n).map(|j| plan.min_bw.get(src, j).min(max_bw[j])).collect();
        let mut o = Self {
            src,
            min_cons: (0..n).map(|j| plan.min_cons.get(src, j)).collect(),
            max_cons: (0..n).map(|j| plan.max_cons.get(src, j)).collect(),
            min_bw,
            target_bw: max_bw.clone(),
            max_bw,
            per_conn_bw: Vec::new(),
            target_cons: (0..n).map(|j| plan.max_cons.get(src, j)).collect(),
            mode: vec![AimdMode::AdditiveIncrease; n],
        };
        // Linear increment per connection, consistent with the achievable-BW
        // model of Eq. 3 (BW grows linearly with connections).
        o.per_conn_bw = (0..n)
            .map(|j| {
                let c = o.max_cons[j];
                if c > 0 {
                    o.max_bw[j] / f64::from(c)
                } else {
                    0.0
                }
            })
            .collect();
        o
    }

    /// Current target connections toward `dst`.
    pub fn target_cons(&self, dst: usize) -> u32 {
        self.target_cons[dst]
    }

    /// Current target bandwidth toward `dst`, Mbps.
    pub fn target_bw(&self, dst: usize) -> f64 {
        self.target_bw[dst]
    }

    /// Current AIMD mode toward `dst`.
    pub fn mode(&self, dst: usize) -> AimdMode {
        self.mode[dst]
    }

    /// Source DC index this optimizer runs on.
    pub fn src(&self) -> usize {
        self.src
    }

    /// One AIMD step for destination `dst` given the monitored bandwidth
    /// and the remaining payload on the pair. Returns the new target
    /// connection count.
    pub fn update(&mut self, dst: usize, monitored_mbps: f64, remaining_gb: f64) -> u32 {
        if dst == self.src || remaining_gb < SKIP_BELOW_GB {
            return self.target_cons[dst];
        }
        if self.target_bw[dst] - monitored_mbps > SIGNIFICANT_DELTA_MBPS {
            // Congestion: multiplicative decrease, floored at the window min.
            self.mode[dst] = AimdMode::MultiplicativeDecrease;
            self.target_cons[dst] = (self.target_cons[dst] / 2).max(self.min_cons[dst]);
            self.target_bw[dst] = (self.target_bw[dst] / 2.0).max(self.min_bw[dst]);
        } else {
            // Network keeping up: additive increase toward the window max.
            self.mode[dst] = AimdMode::AdditiveIncrease;
            self.target_cons[dst] = (self.target_cons[dst] + 1).min(self.max_cons[dst]);
            self.target_bw[dst] =
                (self.target_bw[dst] + self.per_conn_bw[dst]).min(self.max_bw[dst]);
        }
        self.target_cons[dst]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::optimize_global;
    use crate::relations::infer_dc_relations;
    use wanify_netsim::BwMatrix;

    fn plan() -> GlobalPlan {
        let bw = BwMatrix::from_rows(
            3,
            vec![1000.0, 400.0, 120.0, 380.0, 1000.0, 130.0, 110.0, 120.0, 1000.0],
        );
        let rel = infer_dc_relations(&bw, 30.0).unwrap();
        optimize_global(&bw, &rel, 8, None, None).unwrap()
    }

    #[test]
    fn starts_at_maximum_configuration() {
        let p = plan();
        let o = LocalOptimizer::new(0, &p);
        assert_eq!(o.target_cons(2), p.max_cons.get(0, 2));
        // Bandwidth targets start at the feasibility-scaled maximum: never
        // above the linear ceiling, never zero.
        assert!(o.target_bw(2) > 0.0);
        assert!(o.target_bw(2) <= p.max_bw.get(0, 2) + 1e-9);
        assert_eq!(o.mode(2), AimdMode::AdditiveIncrease);
    }

    #[test]
    fn feasibility_scaling_preserves_row_shape() {
        let p = plan();
        let o = LocalOptimizer::new(0, &p);
        // Ratios between destinations match the plan's achievable ratios.
        let plan_ratio = p.max_bw.get(0, 1) / p.max_bw.get(0, 2);
        let target_ratio = o.target_bw(1) / o.target_bw(2);
        assert!((plan_ratio - target_ratio).abs() < 1e-9);
    }

    #[test]
    fn congestion_halves_connections() {
        let p = plan();
        let mut o = LocalOptimizer::new(0, &p);
        let before = o.target_cons(2); // 8
        let target = o.target_bw(2);
        // Monitored significantly below the target ⇒ decrease.
        let after = o.update(2, (target - 150.0).max(0.0), 1.0);
        assert_eq!(o.mode(2), AimdMode::MultiplicativeDecrease);
        assert_eq!(after, before / 2);
        assert!(o.target_bw(2) < target);
    }

    #[test]
    fn decrease_floors_at_window_minimum() {
        let p = plan();
        let mut o = LocalOptimizer::new(0, &p);
        for _ in 0..10 {
            o.update(2, 0.0, 1.0);
        }
        assert_eq!(o.target_cons(2), p.min_cons.get(0, 2));
        assert!(o.target_bw(2) >= p.min_bw.get(0, 2) - 1e-9);
    }

    #[test]
    fn recovery_increases_additively() {
        let p = plan();
        let mut o = LocalOptimizer::new(0, &p);
        o.update(2, 0.0, 1.0); // drop to 4 connections
        let dropped = o.target_cons(2);
        // Monitored ≈ target ⇒ increase by exactly one.
        let target = o.target_bw(2);
        let after = o.update(2, target, 1.0);
        assert_eq!(after, dropped + 1);
        assert_eq!(o.mode(2), AimdMode::AdditiveIncrease);
    }

    #[test]
    fn increase_saturates_at_window_maximum() {
        let p = plan();
        let mut o = LocalOptimizer::new(0, &p);
        for _ in 0..20 {
            let t = o.target_bw(2);
            o.update(2, t, 1.0);
        }
        assert_eq!(o.target_cons(2), p.max_cons.get(0, 2));
        assert!(o.target_bw(2) <= p.max_bw.get(0, 2) + 1e-9);
    }

    #[test]
    fn tiny_transfers_skip_the_state_machine() {
        let p = plan();
        let mut o = LocalOptimizer::new(0, &p);
        let before = o.target_cons(2);
        // 0.5 MB remaining: far below the 1 MB floor.
        let after = o.update(2, 0.0, 0.0005 * 8.0 / 1024.0);
        assert_eq!(after, before, "sub-1MB pairs must not toggle modes");
        assert_eq!(o.mode(2), AimdMode::AdditiveIncrease);
    }

    #[test]
    fn own_dc_is_ignored() {
        let p = plan();
        let mut o = LocalOptimizer::new(1, &p);
        let c = o.update(1, 0.0, 5.0);
        assert_eq!(c, o.target_cons(1));
    }

    #[test]
    fn paper_example_thresholds() {
        // §3.2.2: min-max {1000,800,240}-{1000,1600,600} Mbps means DC0-DC1
        // enters decrease mode below 1500 Mbps monitored.
        let p = plan();
        let mut o = LocalOptimizer::new(0, &p);
        let target = o.target_bw(1);
        // Just inside the significance band: stays in increase mode.
        o.update(1, target - 99.0, 1.0);
        assert_eq!(o.mode(1), AimdMode::AdditiveIncrease);
        // Reset and cross the band: decrease.
        let mut o = LocalOptimizer::new(0, &p);
        o.update(1, target - 101.0, 1.0);
        assert_eq!(o.mode(1), AimdMode::MultiplicativeDecrease);
    }
}
