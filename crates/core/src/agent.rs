//! WANify's distributed local agents (paper §4.1.3).
//!
//! Each VM runs a local agent with three sub-modules: a WAN monitor
//! (observed per-pair bandwidth — the simulator's ifTop), the AIMD
//! [`crate::local::LocalOptimizer`], and a connections
//! manager that applies the tuned connection counts to the live pool.
//! [`WanifyAgent`] bundles the agents of every DC into one
//! [`EpochHook`] that the GDA executor drives during shuffles.

use crate::global::GlobalPlan;
use crate::local::LocalOptimizer;
use crate::relations::DcRelations;
use crate::throttle::{throttle_caps_clamped, throttle_caps_masked};
use wanify_netsim::{BwMatrix, EpochCtx, EpochHook};

/// One recorded agent step, used by the dynamics analysis of Fig. 9.
#[derive(Debug, Clone)]
pub struct AgentSample {
    /// Simulation time of the update.
    pub time_s: f64,
    /// Target bandwidths from the traced source DC to every destination.
    pub target_bw: Vec<f64>,
    /// Monitored bandwidths from the traced source DC to every destination.
    pub observed_bw: Vec<f64>,
}

/// The fleet of per-DC local agents driven once per AIMD interval.
#[derive(Debug)]
pub struct WanifyAgent {
    optimizers: Vec<LocalOptimizer>,
    host_egress_mbps: Vec<f64>,
    relations: Option<DcRelations>,
    interval_s: f64,
    throttling: bool,
    next_update_s: f64,
    trace_src: Option<usize>,
    trace: Vec<AgentSample>,
    updates: usize,
}

/// The paper's local-optimizer epoch: target updates every 5 seconds
/// (§5.7: "an epoch refers to the 5-second interval").
pub const DEFAULT_AIMD_INTERVAL_S: f64 = 5.0;

impl WanifyAgent {
    /// Creates agents for every DC of `plan`, updating every
    /// [`DEFAULT_AIMD_INTERVAL_S`] seconds, with throttling enabled.
    pub fn new(plan: &GlobalPlan) -> Self {
        Self::with_options(plan, DEFAULT_AIMD_INTERVAL_S, true)
    }

    /// Creates agents with an explicit AIMD interval and throttling switch
    /// (throttling off reproduces the WANify-Dynamic variant of Fig. 5).
    ///
    /// # Panics
    ///
    /// Panics if `interval_s` is not positive.
    pub fn with_options(plan: &GlobalPlan, interval_s: f64, throttling: bool) -> Self {
        assert!(interval_s > 0.0, "AIMD interval must be positive");
        let n = plan.max_cons.len();
        Self {
            optimizers: (0..n).map(|src| LocalOptimizer::new(src, plan)).collect(),
            host_egress_mbps: plan.host_egress_mbps.clone(),
            relations: None,
            interval_s,
            throttling,
            next_update_s: 0.0,
            trace_src: None,
            trace: Vec::new(),
            updates: 0,
        }
    }

    /// Enables tracing of target/observed bandwidths from `src` (Fig. 9
    /// traces US East).
    #[must_use]
    pub fn traced(mut self, src: usize) -> Self {
        self.trace_src = Some(src);
        self
    }

    /// Restricts throttling to each row's closest relationship class (the
    /// "nearby DCs" of §3.2.2), using Algorithm 1's output.
    #[must_use]
    pub fn with_relations(mut self, relations: DcRelations) -> Self {
        self.relations = Some(relations);
        self
    }

    /// Recorded trace (empty unless [`WanifyAgent::traced`] was used).
    pub fn trace(&self) -> &[AgentSample] {
        &self.trace
    }

    /// Number of AIMD updates performed.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Current target-bandwidth matrix across all agents.
    pub fn target_bw_matrix(&self) -> BwMatrix {
        let n = self.optimizers.len();
        BwMatrix::from_fn(n, |i, j| self.optimizers[i].target_bw(j))
    }

    /// The local optimizer of DC `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn optimizer(&self, src: usize) -> &LocalOptimizer {
        &self.optimizers[src]
    }
}

impl EpochHook for WanifyAgent {
    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        if ctx.time_s < self.next_update_s {
            return;
        }
        self.next_update_s = ctx.time_s + self.interval_s;
        self.updates += 1;
        let n = self.optimizers.len();

        // AIMD step on every directed pair; the connections manager applies
        // the tuned counts to the live pool.
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let monitored = ctx.observed_bw.get(src, dst);
                let remaining = ctx.remaining_gb.get(src, dst);
                let conns = self.optimizers[src].update(dst, monitored, remaining);
                ctx.conns.set(src, dst, conns);
            }
        }

        // Throttle BW-rich destinations to the per-source mean. Caps are
        // installed once, from the stable achievable-bandwidth targets of
        // the *first* interval: recomputing them from drifting AIMD targets
        // would tighten caps on links whose targets are merely backing off,
        // hurting exactly the transfers the caps are meant to protect.
        if self.throttling && self.updates == 1 {
            let targets = self.target_bw_matrix();
            let caps = match &self.relations {
                Some(rel) => throttle_caps_masked(&targets, &self.host_egress_mbps, rel),
                None => throttle_caps_clamped(&targets, &self.host_egress_mbps),
            };
            for i in 0..n {
                for j in 0..n {
                    ctx.throttles.set(i, j, caps.get(i, j));
                }
            }
        }

        if let Some(src) = self.trace_src {
            self.trace.push(AgentSample {
                time_s: ctx.time_s,
                target_bw: (0..n).map(|j| self.optimizers[src].target_bw(j)).collect(),
                observed_bw: (0..n).map(|j| ctx.observed_bw.get(src, j)).collect(),
            });
        }
    }

    /// The agent's wake schedule is analytic: it acts only at interval
    /// boundaries (`on_epoch` above already no-ops before
    /// `next_update_s`), so the simulator may coalesce every epoch in
    /// between — hooked runs keep the `O(events)` fast path.
    fn next_wake(&mut self, _now_s: f64) -> Option<f64> {
        Some(self.next_update_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::optimize_global;
    use crate::relations::infer_dc_relations;
    use wanify_netsim::{
        paper_testbed_n, ConnMatrix, DcId, LinkModelParams, NetSim, Transfer, VmType,
    };

    fn plan_for(sim: &mut NetSim) -> GlobalPlan {
        let bw = sim.measure_runtime(&ConnMatrix::filled(sim.topology().len(), 1), 5).bw;
        let rel = infer_dc_relations(&bw, 30.0).unwrap();
        optimize_global(&bw, &rel, 8, None, None).unwrap()
    }

    fn sim() -> NetSim {
        NetSim::new(paper_testbed_n(VmType::t2_medium(), 3), LinkModelParams::frozen(), 17)
    }

    #[test]
    fn agent_updates_only_on_interval() {
        let mut s = sim();
        let plan = plan_for(&mut s);
        let mut agent = WanifyAgent::with_options(&plan, 5.0, false);
        let transfers =
            [Transfer::new(DcId(0), DcId(2), 2.0), Transfer::new(DcId(0), DcId(1), 10.0)];
        let report = s.run_transfers(&transfers, &plan.max_cons, Some(&mut agent));
        assert!(agent.updates() >= 1);
        assert!(
            (agent.updates() as f64) <= report.epochs as f64 / 5.0 + 1.0,
            "updates {} vs epochs {}",
            agent.updates(),
            report.epochs
        );
    }

    #[test]
    fn traced_agent_records_samples() {
        let mut s = sim();
        let plan = plan_for(&mut s);
        let mut agent = WanifyAgent::new(&plan).traced(0);
        let transfers = [Transfer::new(DcId(0), DcId(2), 3.0)];
        let _ = s.run_transfers(&transfers, &plan.max_cons, Some(&mut agent));
        assert!(!agent.trace().is_empty());
        let sample = &agent.trace()[0];
        assert_eq!(sample.target_bw.len(), 3);
        assert_eq!(sample.observed_bw.len(), 3);
    }

    #[test]
    fn throttling_writes_caps_into_context() {
        let mut s = sim();
        let plan = plan_for(&mut s);
        let mut agent = WanifyAgent::new(&plan);
        let transfers =
            [Transfer::new(DcId(0), DcId(1), 8.0), Transfer::new(DcId(0), DcId(2), 1.0)];
        let _ = s.run_transfers(&transfers, &plan.max_cons, Some(&mut agent));
        let throttled = s.throttles().iter_pairs().filter(|&(_, _, c)| c.is_finite()).count();
        assert!(throttled > 0, "BW-rich nearby links should be capped");
    }

    #[test]
    fn agent_reacts_to_congestion_by_reducing_connections() {
        use wanify_netsim::{BwMatrix, ConnMatrix};
        let mut s = sim();
        // A hand-crafted plan with wildly optimistic targets (the host
        // estimate is huge, so no feasibility scaling): monitored BW will
        // fall far short, forcing multiplicative decrease.
        let n = 3;
        let plan = GlobalPlan {
            min_cons: ConnMatrix::filled(n, 1),
            max_cons: ConnMatrix::from_fn(n, |i, j| if i == j { 1 } else { 8 }),
            min_bw: BwMatrix::filled(n, 100.0),
            max_bw: BwMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 50_000.0 }),
            host_egress_mbps: vec![1e12; n],
        };
        let mut agent = WanifyAgent::with_options(&plan, 5.0, false);
        let transfers = [
            Transfer::new(DcId(0), DcId(1), 60.0),
            Transfer::new(DcId(1), DcId(0), 60.0),
            Transfer::new(DcId(0), DcId(2), 12.0),
            Transfer::new(DcId(2), DcId(0), 12.0),
        ];
        let _ = s.run_transfers(&transfers, &plan.max_cons, Some(&mut agent));
        let o = agent.optimizer(0);
        assert!(
            o.target_cons(1) < plan.max_cons.get(0, 1)
                || o.target_cons(2) < plan.max_cons.get(0, 2),
            "at least one contended pair should have backed off"
        );
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        let mut s = sim();
        let plan = plan_for(&mut s);
        let _ = WanifyAgent::with_options(&plan, 0.0, true);
    }
}
