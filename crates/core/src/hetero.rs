//! Heterogeneity handling (paper §3.3).
//!
//! * **Skewed input data** (§3.3.1) — skew weights `ws` flow into
//!   [`crate::global::optimize_global`]; [`normalize_skew`] sanitizes raw
//!   storage fractions.
//! * **Varying cluster sizes** (§3.3.2) — handled by training the
//!   prediction model across sizes; see [`crate::predictor`].
//! * **Heterogeneous providers** (§3.3.3) — [`refactoring_vector`] builds
//!   the a-priori `rvec` from each DC's provider.
//! * **Heterogeneous VM counts** (§3.3.3) — [`association_chunks`] splits
//!   a DC-level connection count across the DC's VMs proportionally.

use wanify_netsim::geo::Provider;
use wanify_netsim::Topology;

/// Bandwidth factor applied to DCs of a non-primary provider, calibrated
/// against the cross-provider penalty observed in measurements (§3.3.3;
/// the simulator's cross-provider factor is 0.8).
const CROSS_PROVIDER_RVEC: f64 = 0.8;

/// Builds the refactoring vector `rvec` for a topology: 1.0 for DCs on the
/// majority provider, 0.8-scaled otherwise. By default
/// (single provider) this is all ones, making refactoring a no-op as the
/// paper specifies.
pub fn refactoring_vector(topo: &Topology) -> Vec<f64> {
    let aws_count = topo.iter().filter(|(_, dc)| dc.region.provider() == Provider::Aws).count();
    let majority = if aws_count * 2 >= topo.len() { Provider::Aws } else { Provider::Gcp };
    topo.iter()
        .map(|(_, dc)| if dc.region.provider() == majority { 1.0 } else { CROSS_PROVIDER_RVEC })
        .collect()
}

/// Normalizes raw per-DC data fractions into skew weights `ws` (sum 1);
/// falls back to uniform when the input is degenerate.
pub fn normalize_skew(raw: &[f64]) -> Vec<f64> {
    let clamped: Vec<f64> = raw.iter().map(|&w| w.max(0.0)).collect();
    let sum: f64 = clamped.iter().sum();
    if sum <= 0.0 || raw.is_empty() {
        return vec![1.0 / raw.len().max(1) as f64; raw.len().max(1)];
    }
    clamped.iter().map(|w| w / sum).collect()
}

/// Splits `total_conns` for one DC pair across `vm_count` VMs as evenly as
/// possible (the paper's association: global optimization treats the DC as
/// one large VM, then results are "proportionally chunked and distributed
/// among workers", §3.3.3).
///
/// Every VM receives at least one connection when `total_conns >= vm_count`;
/// otherwise the first `total_conns` VMs receive one each.
///
/// # Panics
///
/// Panics if `vm_count == 0`.
pub fn association_chunks(total_conns: u32, vm_count: u32) -> Vec<u32> {
    assert!(vm_count > 0, "a DC must have at least one VM");
    let base = total_conns / vm_count;
    let rem = total_conns % vm_count;
    (0..vm_count).map(|i| base + u32::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanify_netsim::{Region, Topology, VmType};

    #[test]
    fn single_provider_rvec_is_all_ones() {
        let topo = wanify_netsim::paper_testbed(VmType::t2_medium());
        assert_eq!(refactoring_vector(&topo), vec![1.0; 8]);
    }

    #[test]
    fn multi_cloud_rvec_marks_minority_provider() {
        let topo = Topology::builder()
            .dc(Region::UsEast, VmType::t2_medium(), 1)
            .dc(Region::UsWest, VmType::t2_medium(), 1)
            .dc(Region::GcpUsCentral, VmType::e2_medium(), 1)
            .build()
            .unwrap();
        let rv = refactoring_vector(&topo);
        assert_eq!(rv[0], 1.0);
        assert_eq!(rv[2], CROSS_PROVIDER_RVEC);
    }

    #[test]
    fn skew_normalization() {
        let w = normalize_skew(&[2.0, 2.0, 4.0]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[2] - 0.5).abs() < 1e-12);
        assert_eq!(normalize_skew(&[0.0, 0.0]), vec![0.5, 0.5]);
        assert_eq!(normalize_skew(&[-3.0, 1.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn chunks_split_evenly_with_remainder_up_front() {
        assert_eq!(association_chunks(8, 3), vec![3, 3, 2]);
        assert_eq!(association_chunks(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(association_chunks(0, 2), vec![0, 0]);
        let total: u32 = association_chunks(17, 5).iter().sum();
        assert_eq!(total, 17);
    }

    #[test]
    #[should_panic]
    fn zero_vms_rejected() {
        let _ = association_chunks(4, 0);
    }
}
