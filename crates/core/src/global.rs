//! Static global optimization of heterogeneous connections (Eq. 2-3).
//!
//! Given predicted runtime bandwidths and the closeness indices of
//! Algorithm 1, the global optimizer computes, for every DC pair, a
//! *window* of parallel connections (`minCons..=maxCons`) and the
//! corresponding achievable bandwidths (`minBW..=maxBW`). Distant pairs
//! (high closeness index) receive more connections out of each host's
//! limited budget `M`, trading strong links for weak ones (paper §3.2.1).
//! Skew weights `ws` (§3.3.1) and the provider refactoring vector `rvec`
//! (§3.3.3) scale the result.

use crate::error::WanifyError;
use crate::relations::DcRelations;
use wanify_netsim::{BwMatrix, ConnMatrix};

/// Output of [`optimize_global`]: per-pair connection windows and the
/// achievable-bandwidth range (the paper's two target matrices, §2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalPlan {
    /// Minimum connections per directed pair (floor of the AIMD window).
    pub min_cons: ConnMatrix,
    /// Maximum connections per directed pair (ceiling of the AIMD window).
    pub max_cons: ConnMatrix,
    /// Achievable bandwidth at `min_cons`, Mbps.
    pub min_bw: BwMatrix,
    /// Achievable bandwidth at `max_cons`, Mbps.
    pub max_bw: BwMatrix,
    /// Estimated egress capacity per host, Mbps: the row sums of the
    /// predicted runtime matrix. A simultaneous all-pair measurement
    /// saturates each VM's NIC, so the row sum approximates what the host
    /// can push in total — used to clamp throttling thresholds.
    pub host_egress_mbps: Vec<f64>,
}

/// Hard per-pair ceiling applied after skew scaling, as a multiple of `M`.
const SKEW_CEILING_FACTOR: u32 = 2;

/// Per-source-row connection budget as a multiple of `M` (§3.2.1: the
/// total parallel connections a VM sustains are limited; rows exceeding
/// the budget are shrunk proportionally).
const ROW_BUDGET_FACTOR: u32 = 3;

/// Implements Eq. 2 and Eq. 3 of the paper.
///
/// * `bw` — predicted runtime single-connection bandwidths;
/// * `rel` — closeness indices from [`crate::relations::infer_dc_relations`];
/// * `max_conns` — `M`, the per-host parallel-connection budget (paper
///   default 8, matching the uniform-parallelism baseline of §5.1);
/// * `skew_weights` — optional per-DC input-data fractions `ws`; weights
///   are normalized to mean 1 and scale the *source* DC's connections;
/// * `rvec` — optional per-DC provider refactoring factors (§3.3.3),
///   multiplied pairwise onto achievable bandwidth.
///
/// # Errors
///
/// Returns [`WanifyError::DimensionMismatch`] if matrix/vector sizes
/// disagree, and [`WanifyError::InvalidConfig`] if `max_conns == 0`.
pub fn optimize_global(
    bw: &BwMatrix,
    rel: &DcRelations,
    max_conns: u32,
    skew_weights: Option<&[f64]>,
    rvec: Option<&[f64]>,
) -> Result<GlobalPlan, WanifyError> {
    let n = bw.len();
    if rel.len() != n {
        return Err(WanifyError::DimensionMismatch { expected: n, got: rel.len() });
    }
    if let Some(ws) = skew_weights {
        if ws.len() != n {
            return Err(WanifyError::DimensionMismatch { expected: n, got: ws.len() });
        }
    }
    if let Some(rv) = rvec {
        if rv.len() != n {
            return Err(WanifyError::DimensionMismatch { expected: n, got: rv.len() });
        }
    }
    if max_conns == 0 {
        return Err(WanifyError::InvalidConfig("max_conns must be at least 1".into()));
    }

    // Eq. 2: sum of closeness indices skipping class 1 (the diagonal), and
    // per-row maxima.
    let sum_all: f64 = {
        let total: u32 = (0..n).flat_map(|i| (0..n).map(move |j| rel.get(i, j))).sum();
        f64::from(total) - n as f64
    };
    let max_row: Vec<f64> = (0..n)
        .map(|i| f64::from((0..n).map(|j| rel.get(i, j)).max().expect("non-empty row")))
        .collect();

    // Skew weights normalized to mean 1 so an unskewed cluster is a no-op.
    let ws: Vec<f64> = match skew_weights {
        Some(w) => {
            let mean = w.iter().sum::<f64>() / n as f64;
            if mean > 0.0 {
                w.iter().map(|x| x / mean).collect()
            } else {
                vec![1.0; n]
            }
        }
        None => vec![1.0; n],
    };
    let rv: Vec<f64> = rvec.map_or_else(|| vec![1.0; n], <[f64]>::to_vec);

    let m = f64::from(max_conns);
    let ceiling = max_conns * SKEW_CEILING_FACTOR;
    let raw_pair = |i: usize, j: usize| -> (f64, f64) {
        let relij = f64::from(rel.get(i, j));
        let lo = ((relij / sum_all) * (m - 1.0)).floor().max(1.0);
        let hi = (m * relij / max_row[i]).ceil().max(lo);
        (lo, hi)
    };
    // Skew weights *re-allocate* budget (§3.3.1): a pair's scale grows with
    // the source's data share (it must push more) and shrinks when the
    // destination is itself data-heavy (its host budget is needed for
    // sending). ws normalized to mean 1 makes an unskewed cluster a no-op.
    let pair_factor = |i: usize, j: usize| -> f64 { ws[i] / (0.5 + 0.5 * ws[j]) };

    // First pass: scaled per-pair maxima.
    let mut hi_scaled = vec![vec![0.0_f64; n]; n];
    let mut lo_scaled = vec![vec![0.0_f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let (lo, hi) = raw_pair(i, j);
                let f = pair_factor(i, j);
                lo_scaled[i][j] = (lo * f).max(1.0);
                hi_scaled[i][j] = (hi * f).max(1.0);
            }
        }
    }
    // Second pass: clamp each row's total parallelism to the host budget
    // (§3.2.1: connections from a VM in a DC are limited; exceeding the
    // optimal threshold degrades performance), preserving row shape.
    let row_budget = f64::from(max_conns * ROW_BUDGET_FACTOR);
    for i in 0..n {
        let total: f64 = (0..n).filter(|&j| j != i).map(|j| hi_scaled[i][j]).sum();
        if total > row_budget {
            let shrink = row_budget / total;
            for j in 0..n {
                if j != i {
                    hi_scaled[i][j] = (hi_scaled[i][j] * shrink).max(1.0);
                    lo_scaled[i][j] = (lo_scaled[i][j] * shrink).max(1.0);
                }
            }
        }
    }

    let mut min_cons = ConnMatrix::new(n);
    let mut max_cons = ConnMatrix::new(n);
    let mut min_bw = BwMatrix::new(n);
    let mut max_bw = BwMatrix::new(n);
    for i in 0..n {
        for j in 0..n {
            let (lo, hi) = if i == j {
                (1u32, 1u32)
            } else {
                let lo = (lo_scaled[i][j].round() as u32).clamp(1, ceiling);
                let hi = (hi_scaled[i][j].round() as u32).clamp(1, ceiling);
                (lo.min(hi), hi.max(lo))
            };
            min_cons.set(i, j, lo);
            max_cons.set(i, j, hi);
            // Empirically, runtime BW grows linearly with connections
            // (§3.2.1), so achievable BW = predicted BW × connections.
            let pair_rv = rv[i] * rv[j];
            min_bw.set(i, j, bw.get(i, j) * f64::from(lo) * pair_rv);
            max_bw.set(i, j, bw.get(i, j) * f64::from(hi) * pair_rv);
        }
    }
    let host_egress_mbps: Vec<f64> =
        (0..n).map(|i| (0..n).filter(|&j| j != i).map(|j| bw.get(i, j)).sum()).collect();
    Ok(GlobalPlan { min_cons, max_cons, min_bw, max_bw, host_egress_mbps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relations::infer_dc_relations;

    fn paper_inputs() -> (BwMatrix, DcRelations) {
        let bw = BwMatrix::from_rows(
            3,
            vec![1000.0, 400.0, 120.0, 380.0, 1000.0, 130.0, 110.0, 120.0, 1000.0],
        );
        let rel = infer_dc_relations(&bw, 30.0).unwrap();
        (bw, rel)
    }

    #[test]
    fn reproduces_paper_worked_example() {
        // Paper §3.2.1: with M = 8, minCons is all ones and maxCons gives
        // nearby pairs 6 and distant pairs 8 connections.
        let (bw, rel) = paper_inputs();
        let plan = optimize_global(&bw, &rel, 8, None, None).unwrap();
        for (_, _, c) in plan.min_cons.iter_pairs() {
            assert_eq!(c, 1, "minCons should be all ones");
        }
        assert_eq!(plan.max_cons.get(0, 1), 6, "nearby pair (class 2)");
        assert_eq!(plan.max_cons.get(1, 0), 6);
        assert_eq!(plan.max_cons.get(0, 2), 8, "distant pair (class 3)");
        assert_eq!(plan.max_cons.get(2, 1), 8);
        assert_eq!(plan.max_cons.get(0, 0), 1, "diagonal uses one connection");
    }

    #[test]
    fn achievable_bw_is_linear_in_connections() {
        let (bw, rel) = paper_inputs();
        let plan = optimize_global(&bw, &rel, 8, None, None).unwrap();
        assert!((plan.max_bw.get(0, 2) - 120.0 * 8.0).abs() < 1e-9);
        assert!((plan.min_bw.get(0, 2) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn distant_pairs_get_at_least_as_many_connections() {
        let (bw, rel) = paper_inputs();
        let plan = optimize_global(&bw, &rel, 8, None, None).unwrap();
        for (i, j, c) in plan.max_cons.iter_pairs() {
            for (i2, j2, c2) in plan.max_cons.iter_pairs() {
                if rel.get(i, j) > rel.get(i2, j2) {
                    assert!(c >= c2, "farther pair ({i},{j}) must get ≥ connections");
                }
            }
        }
    }

    #[test]
    fn skew_weights_boost_data_heavy_sources() {
        let (bw, rel) = paper_inputs();
        // DC0 holds 70% of the input.
        let ws = [0.7, 0.2, 0.1];
        let plan = optimize_global(&bw, &rel, 8, Some(&ws), None).unwrap();
        let base = optimize_global(&bw, &rel, 8, None, None).unwrap();
        assert!(
            plan.max_cons.get(0, 2) > base.max_cons.get(0, 2),
            "skewed DC0 gets more outgoing connections"
        );
        assert!(plan.max_cons.get(2, 0) <= base.max_cons.get(2, 0));
    }

    #[test]
    fn skew_scaling_is_capped() {
        let (bw, rel) = paper_inputs();
        let ws = [100.0, 0.001, 0.001];
        let plan = optimize_global(&bw, &rel, 8, Some(&ws), None).unwrap();
        for (_, _, c) in plan.max_cons.iter_pairs() {
            assert!(c <= 16, "cap at 2·M, got {c}");
            assert!(c >= 1);
        }
    }

    #[test]
    fn rvec_scales_bandwidth_not_connections() {
        let (bw, rel) = paper_inputs();
        let rv = [1.0, 1.0, 0.8]; // DC2 on another provider
        let plan = optimize_global(&bw, &rel, 8, None, Some(&rv)).unwrap();
        let base = optimize_global(&bw, &rel, 8, None, None).unwrap();
        assert_eq!(plan.max_cons, base.max_cons);
        assert!((plan.max_bw.get(0, 2) - base.max_bw.get(0, 2) * 0.8).abs() < 1e-9);
        assert!((plan.max_bw.get(0, 1) - base.max_bw.get(0, 1)).abs() < 1e-9);
    }

    #[test]
    fn dimension_checks() {
        let (bw, rel) = paper_inputs();
        assert!(matches!(
            optimize_global(&bw, &rel, 8, Some(&[1.0]), None),
            Err(WanifyError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            optimize_global(&bw, &rel, 0, None, None),
            Err(WanifyError::InvalidConfig(_))
        ));
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_bw() -> impl Strategy<Value = BwMatrix> {
            proptest::collection::vec(30.0f64..3000.0, 12).prop_map(|v| {
                let mut k = 0;
                BwMatrix::from_fn(4, |i, j| {
                    if i == j {
                        0.0
                    } else {
                        let x = v[k % 12];
                        k += 1;
                        x
                    }
                })
            })
        }

        proptest! {
            #[test]
            fn plan_invariants_hold(
                bw in arb_bw(),
                m in 1u32..12,
                d in 0.0f64..300.0,
                ws in proptest::collection::vec(0.0f64..1.0, 4),
            ) {
                let rel = infer_dc_relations(&bw, d).unwrap();
                let plan = optimize_global(&bw, &rel, m, Some(&ws), None).unwrap();
                let row_budget = f64::from(m * 3);
                for i in 0..4 {
                    let mut row_total = 0.0;
                    for j in 0..4 {
                        let lo = plan.min_cons.get(i, j);
                        let hi = plan.max_cons.get(i, j);
                        prop_assert!(lo >= 1 && hi >= lo);
                        prop_assert!(hi <= m * 2, "pair cap 2M violated: {hi}");
                        prop_assert!(
                            plan.min_bw.get(i, j) <= plan.max_bw.get(i, j) + 1e-9
                        );
                        if i != j {
                            row_total += f64::from(hi);
                        }
                    }
                    // Rounding can exceed the analog budget by at most one
                    // connection per pair.
                    prop_assert!(row_total <= row_budget + 4.0,
                        "row {i} total {row_total} blows the budget {row_budget}");
                }
            }

            #[test]
            fn farther_class_never_fewer_connections_without_skew(
                bw in arb_bw(),
                m in 2u32..10,
            ) {
                let rel = infer_dc_relations(&bw, 50.0).unwrap();
                let plan = optimize_global(&bw, &rel, m, None, None).unwrap();
                for i in 0..4 {
                    for j in 0..4 {
                        for k in 0..4 {
                            if i != j && i != k
                                && rel.get(i, j) > rel.get(i, k)
                            {
                                prop_assert!(
                                    plan.max_cons.get(i, j) >= plan.max_cons.get(i, k),
                                    "row {i}: farther {j} got fewer conns"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn min_never_exceeds_max() {
        let (bw, rel) = paper_inputs();
        for m in [1u32, 2, 4, 8, 16] {
            let plan = optimize_global(&bw, &rel, m, None, None).unwrap();
            for (i, j, lo) in plan.min_cons.iter_pairs() {
                assert!(lo <= plan.max_cons.get(i, j));
                assert!(plan.min_bw.get(i, j) <= plan.max_bw.get(i, j) + 1e-9);
            }
        }
    }
}
