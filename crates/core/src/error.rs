//! Error type of the WANify core crate.

/// Errors surfaced by the WANify pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum WanifyError {
    /// A matrix argument had the wrong dimensions.
    DimensionMismatch {
        /// Expected size (DC count).
        expected: usize,
        /// Provided size.
        got: usize,
    },
    /// The prediction model was used before training.
    ModelNotTrained,
    /// A configuration value was out of its valid range.
    InvalidConfig(String),
}

impl std::fmt::Display for WanifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WanifyError::DimensionMismatch { expected, got } => {
                write!(f, "matrix covers {got} DCs but the cluster has {expected}")
            }
            WanifyError::ModelNotTrained => {
                write!(f, "the WAN prediction model has not been trained yet")
            }
            WanifyError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for WanifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = WanifyError::DimensionMismatch { expected: 8, got: 3 };
        assert!(e.to_string().contains('8') && e.to_string().contains('3'));
        assert!(WanifyError::ModelNotTrained.to_string().contains("trained"));
    }
}
