//! Prediction features (paper Table 3).
//!
//! One feature vector describes one directed DC pair at probe time:
//! cluster size `N`, real-time snapshot bandwidth `S_BWij`, receiver
//! memory utilization `Md`, sender CPU load `Ci`, retransmissions `Nr`,
//! and the physical distance `Dij` between the VMs' regions.

use wanify_netsim::{DcId, ProbeReading, Topology};

/// Number of features per sample.
pub const FEATURE_COUNT: usize = 6;

/// The Table-3 feature vector for one directed DC pair.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    /// `N` — number of DCs in the VM-based cluster.
    pub n_dcs: f64,
    /// `S_BWij` — 1-second snapshot bandwidth between the pair, Mbps.
    pub snapshot_bw_mbps: f64,
    /// `Md` — memory utilization at the receiving end, `[0, 1]`.
    pub mem_util_dst: f64,
    /// `Ci` — CPU load at the sending VM, `[0, 1]`.
    pub cpu_load_src: f64,
    /// `Nr` — retransmissions observed on the pair's hosts.
    pub retransmissions: f64,
    /// `Dij` — physical distance between the VMs in miles.
    pub distance_miles: f64,
}

impl FeatureVector {
    /// Builds the vector for the directed pair `src → dst` from a probe.
    ///
    /// # Panics
    ///
    /// Panics if the probe's size disagrees with the topology.
    pub fn from_probe(probe: &ProbeReading, topo: &Topology, src: DcId, dst: DcId) -> Self {
        assert_eq!(probe.bw.len(), topo.len(), "probe and topology sizes differ");
        Self {
            n_dcs: topo.len() as f64,
            snapshot_bw_mbps: probe.bw.at(src, dst),
            mem_util_dst: probe.hosts[dst.0].mem_util,
            cpu_load_src: probe.hosts[src.0].cpu_load,
            retransmissions: f64::from(
                probe.hosts[src.0].retransmissions + probe.hosts[dst.0].retransmissions,
            ),
            distance_miles: topo.distance_miles(src, dst),
        }
    }

    /// Row-vector form consumed by the Random Forest.
    pub fn to_row(&self) -> Vec<f64> {
        vec![
            self.n_dcs,
            self.snapshot_bw_mbps,
            self.mem_util_dst,
            self.cpu_load_src,
            self.retransmissions,
            self.distance_miles,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanify_netsim::{paper_testbed_n, ConnMatrix, LinkModelParams, NetSim, VmType};

    #[test]
    fn builds_from_probe_with_all_features() {
        let topo = paper_testbed_n(VmType::t2_medium(), 3);
        let mut sim = NetSim::new(topo, LinkModelParams::frozen(), 5);
        let probe = sim.snapshot(&ConnMatrix::filled(3, 1));
        let fv = FeatureVector::from_probe(&probe, sim.topology(), DcId(0), DcId(2));
        assert_eq!(fv.n_dcs, 3.0);
        assert!(fv.snapshot_bw_mbps > 0.0);
        assert!(fv.distance_miles > 5000.0, "US East → AP South is far");
        let row = fv.to_row();
        assert_eq!(row.len(), FEATURE_COUNT);
        assert_eq!(row[1], fv.snapshot_bw_mbps);
    }

    #[test]
    fn direction_matters() {
        let topo = paper_testbed_n(VmType::t2_medium(), 3);
        let mut sim = NetSim::new(topo, LinkModelParams::frozen(), 6);
        let probe = sim.snapshot(&ConnMatrix::filled(3, 1));
        let ab = FeatureVector::from_probe(&probe, sim.topology(), DcId(0), DcId(1));
        let ba = FeatureVector::from_probe(&probe, sim.topology(), DcId(1), DcId(0));
        assert_eq!(ab.distance_miles, ba.distance_miles);
        // Receiver-side memory differs between the two directions in general.
        assert_eq!(ab.mem_util_dst, probe.hosts[1].mem_util);
        assert_eq!(ba.mem_util_dst, probe.hosts[0].mem_util);
    }
}
