//! The WANify Interface: one facade over the whole pipeline (Fig. 3).
//!
//! GDA systems interact with WANify through two artifacts, both N×N
//! matrices (§2.3): the predicted runtime bandwidth matrix (consumed as a
//! drop-in replacement for statically measured bandwidth) and the
//! optimized heterogeneous connection matrix (consumed by the transfer
//! layer). [`Wanify::plan`] produces both, and [`Wanify::agent`] spawns the
//! local agents that keep them fresh at runtime.

use crate::agent::WanifyAgent;
use crate::error::WanifyError;
use crate::global::{optimize_global, GlobalPlan};
use crate::relations::{infer_dc_relations, DcRelations};
use crate::source::BandwidthSource;
use crate::throttle::throttle_caps_masked;
use wanify_netsim::{BwMatrix, ConnMatrix, Grid, NetSim};

/// Configuration of the WANify pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct WanifyConfig {
    /// `M` — per-host parallel-connection budget (paper example: 8).
    pub max_conns_per_pair: u32,
    /// `D` — minimum bandwidth difference for Algorithm 1's level merge.
    pub relation_min_diff_mbps: f64,
    /// Enable traffic-control throttling of BW-rich links (WANify-TC).
    pub throttling: bool,
    /// AIMD update interval for local agents, seconds.
    pub aimd_interval_s: f64,
    /// Optional per-DC skew weights `ws` (from the storage layer, §3.3.1).
    pub skew_weights: Option<Vec<f64>>,
    /// Optional provider refactoring vector `rvec` (§3.3.3).
    pub rvec: Option<Vec<f64>>,
}

impl Default for WanifyConfig {
    fn default() -> Self {
        Self {
            max_conns_per_pair: 8,
            relation_min_diff_mbps: 30.0,
            throttling: true,
            aimd_interval_s: crate::agent::DEFAULT_AIMD_INTERVAL_S,
            skew_weights: None,
            rvec: None,
        }
    }
}

/// The two matrices (plus internals) WANify hands to a GDA system.
#[derive(Debug, Clone, PartialEq)]
pub struct WanifyPlan {
    /// Closeness indices from Algorithm 1.
    pub relations: DcRelations,
    /// Connection windows and achievable bandwidths from Eq. 2-3.
    pub global: GlobalPlan,
    /// Initial traffic-control caps (infinite when throttling is off).
    pub initial_throttles: Grid<f64>,
    /// Initial connection matrix: AIMD starts from the window maximum.
    pub max_cons: ConnMatrix,
}

impl WanifyPlan {
    /// The connection matrix a GDA system should open initially.
    pub fn initial_conns(&self) -> &ConnMatrix {
        &self.max_cons
    }

    /// Achievable bandwidth matrix at the initial configuration, which a
    /// GDA system can feed to its scheduler instead of static bandwidth.
    pub fn achievable_bw(&self) -> &BwMatrix {
        &self.global.max_bw
    }

    /// Achievable bandwidth with every row scaled down to the source
    /// host's estimated egress capacity (`min(1, host / row sum)`).
    ///
    /// The linear model of Eq. 3 can promise more than a VM's NIC can
    /// push; consumers sizing work to the matrix — schedulers, or SAGQ-style
    /// quantization picking gradient precision — should use this feasible
    /// variant, mirroring how the local optimizers scale their targets.
    pub fn feasible_achievable_bw(&self) -> BwMatrix {
        let n = self.global.max_bw.len();
        BwMatrix::from_fn(n, |i, j| {
            let row_sum: f64 =
                (0..n).filter(|&k| k != i).map(|k| self.global.max_bw.get(i, k)).sum();
            let host = self.global.host_egress_mbps[i];
            let feas = if row_sum > 0.0 { (host / row_sum).min(1.0) } else { 1.0 };
            self.global.max_bw.get(i, j) * feas
        })
    }
}

/// The WANify framework facade.
#[derive(Debug, Clone, Default)]
pub struct Wanify {
    config: WanifyConfig,
}

impl Wanify {
    /// Creates the framework with the given configuration.
    pub fn new(config: WanifyConfig) -> Self {
        Self { config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &WanifyConfig {
        &self.config
    }

    /// Gauges `net` through any [`BandwidthSource`] and plans from the
    /// result — the provenance-agnostic entry point of the pipeline.
    ///
    /// The source decides *how* bandwidth is obtained (static probe,
    /// fresh measurement, model prediction, replay); planning is
    /// identical for all of them.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] when gauging fails or the configuration is
    /// inconsistent with the gauged matrix.
    pub fn plan<S: BandwidthSource + ?Sized>(
        &self,
        source: &mut S,
        net: &mut NetSim,
    ) -> Result<WanifyPlan, WanifyError> {
        let bw = source.gauge(net)?;
        self.try_plan_matrix(&bw)
    }

    /// Runs Algorithm 1 + global optimization on an already-gauged
    /// bandwidth matrix (the low-level step behind [`Wanify::plan`]).
    ///
    /// # Panics
    ///
    /// Panics if configured skew/rvec vectors mismatch the matrix size —
    /// use [`Wanify::try_plan_matrix`] for a fallible variant.
    pub fn plan_matrix(&self, predicted_bw: &BwMatrix) -> WanifyPlan {
        self.try_plan_matrix(predicted_bw).expect("configuration consistent with matrix size")
    }

    /// Fallible version of [`Wanify::plan_matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] on dimension mismatches or invalid config.
    pub fn try_plan_matrix(&self, predicted_bw: &BwMatrix) -> Result<WanifyPlan, WanifyError> {
        let relations = infer_dc_relations(predicted_bw, self.config.relation_min_diff_mbps)?;
        let global = optimize_global(
            predicted_bw,
            &relations,
            self.config.max_conns_per_pair,
            self.config.skew_weights.as_deref(),
            self.config.rvec.as_deref(),
        )?;
        let initial_throttles = if self.config.throttling {
            throttle_caps_masked(&global.max_bw, &global.host_egress_mbps, &relations)
        } else {
            Grid::filled(predicted_bw.len(), f64::INFINITY)
        };
        let max_cons = global.max_cons.clone();
        Ok(WanifyPlan { relations, global, initial_throttles, max_cons })
    }

    /// Spawns the local-agent fleet for a plan.
    pub fn agent(&self, plan: &WanifyPlan) -> WanifyAgent {
        WanifyAgent::with_options(&plan.global, self.config.aimd_interval_s, self.config.throttling)
            .with_relations(plan.relations.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw3() -> BwMatrix {
        BwMatrix::from_rows(3, vec![0.0, 400.0, 120.0, 380.0, 0.0, 130.0, 110.0, 120.0, 0.0])
    }

    #[test]
    fn plan_produces_heterogeneous_connections() {
        let plan = Wanify::new(WanifyConfig::default()).plan_matrix(&bw3());
        let weak = plan.max_cons.get(0, 2); // 120 Mbps link
        let strong = plan.max_cons.get(0, 1); // 400 Mbps link
        assert!(weak > strong, "distant pair gets more connections: {weak} vs {strong}");
    }

    #[test]
    fn throttling_toggle_controls_initial_caps() {
        let on = Wanify::new(WanifyConfig::default()).plan_matrix(&bw3());
        assert!(on.initial_throttles.iter_pairs().any(|(_, _, c)| c.is_finite()));
        let off = Wanify::new(WanifyConfig { throttling: false, ..WanifyConfig::default() })
            .plan_matrix(&bw3());
        assert!(off.initial_throttles.iter_pairs().all(|(_, _, c)| c.is_infinite()));
    }

    #[test]
    fn achievable_bw_scales_with_connections() {
        let plan = Wanify::new(WanifyConfig::default()).plan_matrix(&bw3());
        let c = plan.max_cons.get(0, 2);
        assert!((plan.achievable_bw().get(0, 2) - 120.0 * f64::from(c)).abs() < 1e-9);
    }

    #[test]
    fn try_plan_rejects_mismatched_skew() {
        let w = Wanify::new(WanifyConfig {
            skew_weights: Some(vec![0.5, 0.5]),
            ..WanifyConfig::default()
        });
        assert!(matches!(w.try_plan_matrix(&bw3()), Err(WanifyError::DimensionMismatch { .. })));
    }

    #[test]
    fn agent_respects_config_interval() {
        let config = WanifyConfig { aimd_interval_s: 2.5, ..WanifyConfig::default() };
        let wanify = Wanify::new(config);
        let plan = wanify.plan_matrix(&bw3());
        let agent = wanify.agent(&plan);
        assert_eq!(agent.updates(), 0);
    }

    #[test]
    fn initial_conns_equal_window_maximum() {
        let plan = Wanify::new(WanifyConfig::default()).plan_matrix(&bw3());
        assert_eq!(plan.initial_conns(), &plan.global.max_cons);
    }

    #[test]
    fn plan_accepts_any_bandwidth_source() {
        use crate::source::{MeasuredRuntime, Pregauged};
        use wanify_netsim::{paper_testbed_n, LinkModelParams, VmType};

        let wanify = Wanify::new(WanifyConfig::default());
        let mut net =
            NetSim::new(paper_testbed_n(VmType::t3_nano(), 3), LinkModelParams::default(), 3);

        // A measuring source and a replayed matrix go through the same API.
        let measured = wanify.plan(&mut MeasuredRuntime::default(), &mut net).unwrap();
        assert_eq!(measured.max_cons.len(), 3);

        let mut replay = Pregauged::from(bw3());
        let replayed = wanify.plan(&mut replay, &mut net).unwrap();
        assert_eq!(replayed, wanify.plan_matrix(&bw3()), "replay matches matrix-level planning");

        // Trait objects work too (dyn BandwidthSource).
        let dynamic: &mut dyn BandwidthSource = &mut replay;
        assert_eq!(wanify.plan(dynamic, &mut net).unwrap(), replayed);
    }
}
