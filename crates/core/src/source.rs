//! Bandwidth provenance: where a `BwMatrix` comes from.
//!
//! The paper's central argument (§2.2) is that *how* a bandwidth matrix
//! was obtained — a cheap static probe, an expensive simultaneous
//! measurement, or a model prediction — determines how useful it is at
//! runtime, yet GDA systems consume all of them through the same N×N
//! interface (§2.3). [`BandwidthSource`] makes that interface explicit:
//! consumers ([`Wanify::plan`], the `wanify-gda` schedulers and executor,
//! the experiment drivers) ask a source to [`gauge`] the network and never
//! hard-wire the provenance again.
//!
//! Four provenances from the paper, plus a passthrough:
//!
//! * [`StaticIndependent`] — one pair at a time, measured **once** and
//!   cached (what existing GDA systems do; Table 1's "static" column).
//! * [`StaticSimultaneous`] — all pairs at once for 20 s, measured
//!   **once** and cached (the paper's upper-bound belief, §5.2).
//! * [`PredictedRuntime`] — WANify's model: a fresh 1-second snapshot
//!   through the trained Random Forest on **every** gauge (§3.1).
//! * [`MeasuredRuntime`] — ground truth: a fresh stable simultaneous
//!   measurement on every gauge (accurate but ~25× the monitoring cost,
//!   Table 2).
//! * [`Pregauged`] — wraps an already-obtained matrix, for derived
//!   beliefs (e.g. WANify's achievable-bandwidth matrix) and tests.
//!
//! The static sources cache deliberately: re-gauging them returns the
//! stale matrix, reproducing the static-vs-runtime divergence the paper
//! measures rather than hiding it.
//!
//! [`gauge`]: BandwidthSource::gauge
//! [`Wanify::plan`]: crate::Wanify::plan

use std::sync::Arc;

use crate::error::WanifyError;
use crate::predictor::{WanPredictionModel, STABLE_PROBE_S};
use wanify_netsim::{BwMatrix, ConnMatrix, NetSim};

/// A provider of directed bandwidth matrices for a live network.
///
/// Implementations are free to measure (`&mut NetSim` allows probing),
/// predict, or replay; callers treat every provenance identically.
pub trait BandwidthSource: Send {
    /// Short provenance label for reports (e.g. `"predicted"`).
    fn name(&self) -> &str;

    /// Produces the source's current belief about `net`'s directed
    /// runtime bandwidth, in Mbps.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError`] when the source cannot produce a matrix for
    /// the network (e.g. a prediction model trained for a different
    /// feature arity).
    fn gauge(&mut self, net: &mut NetSim) -> Result<BwMatrix, WanifyError>;
}

/// A cached static measurement, keyed to the cluster it was taken on.
///
/// Static sources are meant to go stale *in time* on one network, not
/// to replay one cluster's measurements onto another: re-gauging a
/// different topology (size or region labels) re-measures.
#[derive(Debug, Clone)]
struct StaticCache {
    bw: BwMatrix,
    topo_labels: Vec<String>,
}

impl StaticCache {
    fn lookup(cache: &Option<Self>, net: &NetSim) -> Option<BwMatrix> {
        cache.as_ref().filter(|c| c.topo_labels == net.topology().labels()).map(|c| c.bw.clone())
    }

    fn store(bw: &BwMatrix, net: &NetSim) -> Option<Self> {
        Some(Self { bw: bw.clone(), topo_labels: net.topology().labels() })
    }
}

/// Every-pair-independently static probing, measured once then cached —
/// the belief existing GDA systems run on (§2.2).
#[derive(Debug, Clone, Default)]
pub struct StaticIndependent {
    cache: Option<StaticCache>,
}

impl StaticIndependent {
    /// Creates the source (nothing measured until the first gauge).
    pub fn new() -> Self {
        Self::default()
    }
}

impl BandwidthSource for StaticIndependent {
    fn name(&self) -> &str {
        "static-independent"
    }

    fn gauge(&mut self, net: &mut NetSim) -> Result<BwMatrix, WanifyError> {
        if let Some(bw) = StaticCache::lookup(&self.cache, net) {
            return Ok(bw);
        }
        let bw = net.measure_static_independent();
        self.cache = StaticCache::store(&bw, net);
        Ok(bw)
    }
}

/// All-pairs-simultaneously static measurement (single connections, 20 s
/// by default), measured once then cached — the paper's §5.2
/// "static-simultaneous" belief.
#[derive(Debug, Clone)]
pub struct StaticSimultaneous {
    probe_s: u32,
    cache: Option<StaticCache>,
}

impl Default for StaticSimultaneous {
    fn default() -> Self {
        Self::new(STABLE_PROBE_S)
    }
}

impl StaticSimultaneous {
    /// Creates the source with a measurement window of `probe_s` seconds.
    pub fn new(probe_s: u32) -> Self {
        Self { probe_s, cache: None }
    }
}

impl BandwidthSource for StaticSimultaneous {
    fn name(&self) -> &str {
        "static-simultaneous"
    }

    fn gauge(&mut self, net: &mut NetSim) -> Result<BwMatrix, WanifyError> {
        if let Some(bw) = StaticCache::lookup(&self.cache, net) {
            return Ok(bw);
        }
        let n = net.topology().len();
        let bw = net.measure_runtime(&ConnMatrix::filled(n, 1), self.probe_s).bw;
        self.cache = StaticCache::store(&bw, net);
        Ok(bw)
    }
}

/// WANify's cheap runtime belief: a fresh 1-second snapshot through the
/// trained Random Forest on every gauge (§3.1, §4.1.1).
///
/// The model is held behind an [`Arc`], so cloning the source (or
/// building many sources from one trained model) shares the forest
/// instead of deep-copying its trees.
#[derive(Debug, Clone)]
pub struct PredictedRuntime {
    model: Arc<WanPredictionModel>,
}

impl PredictedRuntime {
    /// Creates the source around a trained prediction model (an owned
    /// model or an already-shared `Arc<WanPredictionModel>`).
    pub fn new(model: impl Into<Arc<WanPredictionModel>>) -> Self {
        Self { model: model.into() }
    }

    /// Read access to the underlying model (e.g. for staleness queries).
    pub fn model(&self) -> &WanPredictionModel {
        &self.model
    }

    /// Mutable access to the model (e.g. to record drift or retrain);
    /// clones the forest first if other handles share it.
    pub fn model_mut(&mut self) -> &mut WanPredictionModel {
        Arc::make_mut(&mut self.model)
    }
}

impl BandwidthSource for PredictedRuntime {
    fn name(&self) -> &str {
        "predicted"
    }

    fn gauge(&mut self, net: &mut NetSim) -> Result<BwMatrix, WanifyError> {
        let n = net.topology().len();
        let snapshot = net.snapshot(&ConnMatrix::filled(n, 1));
        self.model.predict_matrix(&snapshot, net.topology())
    }
}

/// Ground-truth runtime bandwidth: a fresh stable simultaneous measurement
/// (single connections) on every gauge. Accurate, but it costs a full
/// measurement window each time — the monitoring cost WANify's prediction
/// avoids (Table 2).
#[derive(Debug, Clone)]
pub struct MeasuredRuntime {
    probe_s: u32,
}

impl Default for MeasuredRuntime {
    fn default() -> Self {
        Self::new(STABLE_PROBE_S)
    }
}

impl MeasuredRuntime {
    /// Creates the source with a measurement window of `probe_s` seconds.
    pub fn new(probe_s: u32) -> Self {
        Self { probe_s }
    }
}

impl BandwidthSource for MeasuredRuntime {
    fn name(&self) -> &str {
        "measured-runtime"
    }

    fn gauge(&mut self, net: &mut NetSim) -> Result<BwMatrix, WanifyError> {
        let n = net.topology().len();
        Ok(net.measure_runtime(&ConnMatrix::filled(n, 1), self.probe_s).bw)
    }
}

/// A matrix obtained elsewhere, wrapped as a source.
///
/// Used for derived beliefs (WANify's achievable-bandwidth matrix fed to a
/// scheduler), for error-injection studies, and for tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Pregauged {
    bw: BwMatrix,
    label: String,
}

impl Pregauged {
    /// Wraps `bw` with the generic `"pregauged"` provenance label.
    pub fn new(bw: BwMatrix) -> Self {
        Self::named(bw, "pregauged")
    }

    /// Wraps `bw` with an explicit provenance label for reports (e.g.
    /// `"wanify(predicted)"` for a derived achievable-bandwidth belief).
    pub fn named(bw: BwMatrix, label: impl Into<String>) -> Self {
        Self { bw, label: label.into() }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &BwMatrix {
        &self.bw
    }
}

impl BandwidthSource for Pregauged {
    fn name(&self) -> &str {
        &self.label
    }

    fn gauge(&mut self, _net: &mut NetSim) -> Result<BwMatrix, WanifyError> {
        Ok(self.bw.clone())
    }
}

impl From<BwMatrix> for Pregauged {
    fn from(bw: BwMatrix) -> Self {
        Self::new(bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanify_netsim::{paper_testbed_n, LinkModelParams, VmType};

    fn sim(n: usize, seed: u64) -> NetSim {
        NetSim::new(paper_testbed_n(VmType::t3_nano(), n), LinkModelParams::default(), seed)
    }

    #[test]
    fn static_sources_cache_their_first_measurement() {
        let mut net = sim(3, 5);
        let mut ind = StaticIndependent::new();
        let first = ind.gauge(&mut net).unwrap();
        net.shuffle_time();
        let second = ind.gauge(&mut net).unwrap();
        assert_eq!(first, second, "static-independent must return the stale view");

        let mut simu = StaticSimultaneous::default();
        let first = simu.gauge(&mut net).unwrap();
        net.shuffle_time();
        assert_eq!(first, simu.gauge(&mut net).unwrap());
    }

    #[test]
    fn static_cache_invalidates_on_topology_change() {
        let mut ind = StaticIndependent::new();
        let three = ind.gauge(&mut sim(3, 5)).unwrap();
        assert_eq!(three.len(), 3);
        let four = ind.gauge(&mut sim(4, 5)).unwrap();
        assert_eq!(four.len(), 4, "a different cluster must be re-measured");
    }

    #[test]
    fn static_cache_invalidates_on_different_regions_same_size() {
        use wanify_netsim::{Region, Topology};

        let mut ind = StaticIndependent::new();
        let first = ind.gauge(&mut sim(3, 5)).unwrap();
        // Same size, different regions: the cache must not replay the
        // first cluster's measurements.
        let other = Topology::builder()
            .dc(Region::EuWest, VmType::t3_nano(), 1)
            .dc(Region::SaEast, VmType::t3_nano(), 1)
            .dc(Region::ApNortheast, VmType::t3_nano(), 1)
            .build()
            .expect("3-DC cluster");
        let mut net = NetSim::new(other, LinkModelParams::default(), 5);
        let second = ind.gauge(&mut net).unwrap();
        assert_ne!(first, second, "a same-size but different cluster must be re-measured");
    }

    #[test]
    fn measured_runtime_tracks_network_dynamics() {
        let mut net = sim(3, 7);
        let mut src = MeasuredRuntime::default();
        let first = src.gauge(&mut net).unwrap();
        net.shuffle_time();
        let second = src.gauge(&mut net).unwrap();
        assert_ne!(first, second, "runtime gauges must follow the live network");
    }

    #[test]
    fn static_independent_diverges_from_runtime() {
        // Table 1 in trait form: the cluster-wide static view is brighter
        // than what simultaneous transfer achieves.
        let mut net = sim(4, 11);
        let static_bw = StaticIndependent::new().gauge(&mut net).unwrap();
        let runtime = MeasuredRuntime::default().gauge(&mut net).unwrap();
        assert!(static_bw.max_off_diag() > runtime.min_off_diag());
    }

    #[test]
    fn pregauged_returns_the_wrapped_matrix() {
        let bw = BwMatrix::filled(3, 250.0);
        let mut src = Pregauged::from(bw.clone());
        let mut net = sim(3, 1);
        assert_eq!(src.gauge(&mut net).unwrap(), bw);
        assert_eq!(src.name(), "pregauged");
    }

    #[test]
    fn source_names_are_distinct() {
        let names = [
            StaticIndependent::new().name().to_string(),
            StaticSimultaneous::default().name().to_string(),
            MeasuredRuntime::default().name().to_string(),
            Pregauged::new(BwMatrix::filled(2, 1.0)).name().to_string(),
        ];
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
