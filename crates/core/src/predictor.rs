//! The offline module: bandwidth analyzer and WAN prediction model
//! (paper §3.1, §4.1.1).
//!
//! The **Bandwidth Analyzer** collects training data: for each cluster
//! size it repeatedly samples a cheap 1-second snapshot (features) paired
//! with a 20-second stable runtime measurement (target). The **WAN
//! Prediction Model** is a Random Forest regressor over the Table-3
//! features; it predicts, per directed DC pair, the stable runtime
//! bandwidth from a fresh snapshot — at a fraction of the monitoring cost
//! (§2.2). Staleness is tracked by comparing predictions against observed
//! runtime values and flagging retraining (§3.3.4), which proceeds via the
//! forest's warm start.

use crate::error::WanifyError;
use crate::features::{FeatureVector, FEATURE_COUNT};
use wanify_forest::{metrics, Dataset, ForestParams, RandomForest};
use wanify_netsim::{
    paper_testbed_n, BwMatrix, ConnMatrix, DcId, LinkModelParams, NetSim, ProbeReading, Topology,
    VmType,
};

/// Duration of the stable runtime measurement in seconds (§2.2: "stable
/// runtime BWs are achieved with at least 20 seconds of monitoring").
pub const STABLE_PROBE_S: u32 = 20;

/// Collects snapshot/stable training pairs across cluster sizes.
#[derive(Debug, Clone)]
pub struct BandwidthAnalyzer {
    /// VM flavor of the probe fleet (paper: unlimited-burst t3.nano).
    pub vm: VmType,
    /// Link-model parameters for the probe simulations.
    pub params: LinkModelParams,
    /// Samples collected per cluster size.
    pub samples_per_size: usize,
}

impl BandwidthAnalyzer {
    /// Creates an analyzer with the paper's probe fleet.
    pub fn new(samples_per_size: usize) -> Self {
        Self { vm: VmType::t3_nano(), params: LinkModelParams::default(), samples_per_size }
    }

    /// Collects a dataset over the given cluster sizes (each in `2..=8`).
    ///
    /// Every sample captures the cluster at an independent time (the paper
    /// gathers data "at different times over a week", §5.1): one snapshot
    /// probe provides the features, the following 20-second simultaneous
    /// measurement provides the target.
    ///
    /// # Panics
    ///
    /// Panics if any size is outside `2..=8`.
    pub fn collect(&self, sizes: &[usize], seed: u64) -> Dataset {
        let mut data = Dataset::new(FEATURE_COUNT);
        for (k, &n) in sizes.iter().enumerate() {
            let topo = paper_testbed_n(self.vm.clone(), n);
            let mut sim =
                NetSim::new(topo, self.params.clone(), seed.wrapping_add(k as u64 * 7919));
            let conns = ConnMatrix::filled(n, 1);
            for _ in 0..self.samples_per_size {
                sim.shuffle_time();
                let snapshot = sim.snapshot(&conns);
                let stable = sim.measure_runtime(&conns, STABLE_PROBE_S);
                append_pairs(&mut data, &snapshot, &stable.bw, sim.topology());
            }
        }
        data
    }
}

/// Adds one row per directed pair: snapshot features → stable target.
fn append_pairs(data: &mut Dataset, snapshot: &ProbeReading, stable: &BwMatrix, topo: &Topology) {
    let n = topo.len();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let fv = FeatureVector::from_probe(snapshot, topo, DcId(i), DcId(j));
            data.push(fv.to_row(), stable.get(i, j)).expect("feature arity is fixed");
        }
    }
}

/// The trained WAN prediction model plus staleness tracking.
#[derive(Debug, Clone)]
pub struct WanPredictionModel {
    forest: RandomForest,
    error_threshold_pct: f64,
    recent_mape: Option<f64>,
    retrain_flagged: bool,
}

impl WanPredictionModel {
    /// Trains a forest of `n_estimators` trees (paper: 100) on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn train(data: &Dataset, n_estimators: usize, seed: u64) -> Self {
        // Two thirds of the features per split: with only six features the
        // default p/3 subsampling starves splits of the snapshot feature.
        let params = ForestParams {
            n_estimators,
            features_per_split: Some((data.n_features() * 2 / 3).max(1)),
            ..ForestParams::default()
        };
        Self {
            forest: RandomForest::fit(data, &params, seed),
            error_threshold_pct: 15.0,
            recent_mape: None,
            retrain_flagged: false,
        }
    }

    /// Predicts stable runtime bandwidth for one directed pair.
    pub fn predict_pair(&self, features: &FeatureVector) -> f64 {
        self.forest.predict(&features.to_row()).max(0.0)
    }

    /// Predicts the full runtime bandwidth matrix from a snapshot probe.
    ///
    /// # Errors
    ///
    /// Returns [`WanifyError::DimensionMismatch`] if the probe does not
    /// match the topology.
    pub fn predict_matrix(
        &self,
        snapshot: &ProbeReading,
        topo: &Topology,
    ) -> Result<BwMatrix, WanifyError> {
        let n = topo.len();
        if snapshot.bw.len() != n {
            return Err(WanifyError::DimensionMismatch { expected: n, got: snapshot.bw.len() });
        }
        Ok(BwMatrix::from_fn(n, |i, j| {
            if i == j {
                0.0
            } else {
                self.predict_pair(&FeatureVector::from_probe(snapshot, topo, DcId(i), DcId(j)))
            }
        }))
    }

    /// Percentage training accuracy over `data` (paper §5.1: 98.51%).
    pub fn training_accuracy(&self, data: &Dataset) -> f64 {
        let preds: Vec<f64> = data.iter().map(|(x, _)| self.forest.predict(x)).collect();
        metrics::accuracy_pct(&preds, data.targets())
    }

    /// Compares a prediction with subsequently observed runtime values and
    /// flags retraining when the error exceeds the threshold (§3.3.4).
    pub fn record_error(&mut self, predicted: &BwMatrix, actual: &BwMatrix) {
        let preds: Vec<f64> = predicted.iter_pairs().map(|(_, _, v)| v).collect();
        let actuals: Vec<f64> = actual.iter_pairs().map(|(_, _, v)| v).collect();
        let mape = metrics::mape(&preds, &actuals) * 100.0;
        self.recent_mape = Some(mape);
        if mape > self.error_threshold_pct {
            self.retrain_flagged = true;
        }
    }

    /// Whether the staleness log has flagged retraining.
    pub fn needs_retraining(&self) -> bool {
        self.retrain_flagged
    }

    /// Most recent recorded prediction error (MAPE %), if any.
    pub fn recent_error_pct(&self) -> Option<f64> {
        self.recent_mape
    }

    /// Warm-start retraining on newly collected data (§3.3.2/§3.3.4);
    /// clears the retrain flag.
    pub fn retrain(&mut self, data: &Dataset, extra_trees: usize) {
        self.forest.warm_start(data, extra_trees);
        self.retrain_flagged = false;
    }

    /// Number of trees in the underlying ensemble.
    pub fn n_trees(&self) -> usize {
        self.forest.n_trees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained(samples: usize, sizes: &[usize]) -> (WanPredictionModel, Dataset) {
        let analyzer = BandwidthAnalyzer::new(samples);
        let data = analyzer.collect(sizes, 42);
        let model = WanPredictionModel::train(&data, 30, 1);
        (model, data)
    }

    #[test]
    fn training_accuracy_is_high() {
        let (model, data) = trained(60, &[4]);
        let acc = model.training_accuracy(&data);
        assert!(acc > 90.0, "training accuracy {acc}% (paper: 98.51%)");
    }

    #[test]
    fn predictions_beat_static_independent_measurements() {
        // The paper's Fig. 11 claim: predicted runtime BW is significantly
        // closer to actual runtime BW than static-independent probes are.
        let analyzer = BandwidthAnalyzer::new(80);
        let data = analyzer.collect(&[4], 7);
        let model = WanPredictionModel::train(&data, 50, 2);
        let topo = paper_testbed_n(VmType::t3_nano(), 4);
        let mut sim = NetSim::new(topo, LinkModelParams::default(), 999);
        sim.shuffle_time();
        let static_bw = sim.measure_static_independent();
        let conns = ConnMatrix::filled(4, 1);
        let snapshot = sim.snapshot(&conns);
        let predicted = model.predict_matrix(&snapshot, sim.topology()).unwrap();
        let stable = sim.measure_runtime(&conns, STABLE_PROBE_S).bw;
        let err = |m: &BwMatrix| -> f64 {
            m.iter_pairs().map(|(i, j, v)| (v - stable.get(i, j)).abs()).sum()
        };
        assert!(
            err(&predicted) < err(&static_bw),
            "prediction error {} should beat static-independent error {}",
            err(&predicted),
            err(&static_bw)
        );
    }

    #[test]
    fn cross_cluster_size_generalization() {
        // Train on sizes {3, 5}, predict for size 4 (paper §3.3.2).
        let (model, _) = trained(10, &[3, 5]);
        let topo = paper_testbed_n(VmType::t3_nano(), 4);
        let mut sim = NetSim::new(topo, LinkModelParams::default(), 31);
        let snapshot = sim.snapshot(&ConnMatrix::filled(4, 1));
        let predicted = model.predict_matrix(&snapshot, sim.topology()).unwrap();
        assert!(predicted.min_off_diag() >= 0.0);
        assert!(predicted.max_off_diag() > 100.0, "plausible magnitudes expected");
    }

    #[test]
    fn staleness_flags_and_warm_start_clears() {
        let (mut model, data) = trained(8, &[3]);
        let n = 3;
        let predicted = BwMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 1000.0 });
        let actual = BwMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 400.0 });
        model.record_error(&predicted, &actual);
        assert!(model.needs_retraining(), "150% error must flag retraining");
        assert!(model.recent_error_pct().unwrap() > 100.0);
        let trees_before = model.n_trees();
        model.retrain(&data, 10);
        assert!(!model.needs_retraining());
        assert_eq!(model.n_trees(), trees_before + 10);
    }

    #[test]
    fn small_errors_do_not_flag() {
        let (mut model, _) = trained(8, &[3]);
        let predicted = BwMatrix::from_fn(3, |i, j| if i == j { 0.0 } else { 500.0 });
        let actual = BwMatrix::from_fn(3, |i, j| if i == j { 0.0 } else { 520.0 });
        model.record_error(&predicted, &actual);
        assert!(!model.needs_retraining());
    }

    #[test]
    fn predict_matrix_checks_dimensions() {
        let (model, _) = trained(6, &[3]);
        let topo = paper_testbed_n(VmType::t3_nano(), 4);
        let mut sim3 =
            NetSim::new(paper_testbed_n(VmType::t3_nano(), 3), LinkModelParams::default(), 1);
        let probe3 = sim3.snapshot(&ConnMatrix::filled(3, 1));
        assert!(matches!(
            model.predict_matrix(&probe3, &topo),
            Err(WanifyError::DimensionMismatch { .. })
        ));
    }
}
