//! Bandwidth-monitoring cost model (paper §2.2, Eq. 1 and Table 2).
//!
//! Measuring runtime bandwidth across all DC pairs is expensive: each
//! monitoring event costs `N · (x·y + z)` where `x` is per-instance-second
//! compute, `y` the monitoring duration and `z` the per-instance network
//! cost of the probe traffic, repeated `O` times a year (Eq. 1). WANify
//! replaces 20-second runs with 1-second snapshots plus a prediction
//! model, cutting the annual bill by roughly an order of magnitude
//! (Table 2 reports ~96% savings).

use wanify_netsim::VmType;

/// Parameters of the monitoring cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitoringCostParams {
    /// `O` — monitoring occurrences per year. The paper follows Tetrium's
    /// cadence of every 30 minutes ⇒ 17,520 events.
    pub occurrences_per_year: f64,
    /// Probe VM flavor (paper: unlimited-burst t3.nano).
    pub probe_vm: VmType,
    /// `y` — stable runtime monitoring duration in seconds (≥ 20 s).
    pub runtime_duration_s: f64,
    /// Snapshot duration in seconds (1 s).
    pub snapshot_duration_s: f64,
    /// Average probe bandwidth per instance in Mbps (paper: 200).
    pub avg_bw_mbps: f64,
    /// Inter-region transfer price in USD/GB.
    pub network_price_per_gb: f64,
    /// Training dataset size in samples (paper: 1000).
    pub training_samples: usize,
}

impl Default for MonitoringCostParams {
    fn default() -> Self {
        Self {
            occurrences_per_year: 17_520.0,
            probe_vm: VmType::t3_nano(),
            runtime_duration_s: 20.0,
            snapshot_duration_s: 1.0,
            avg_bw_mbps: 200.0,
            network_price_per_gb: 0.02,
            training_samples: 1000,
        }
    }
}

impl MonitoringCostParams {
    /// `x` — per-instance-second compute cost in USD.
    pub fn instance_cost_per_s(&self) -> f64 {
        self.probe_vm.effective_price_per_hour() / 3600.0
    }

    /// `z(y)` — per-instance network cost of probing for `y` seconds.
    pub fn network_cost(&self, duration_s: f64) -> f64 {
        let gb = self.avg_bw_mbps * duration_s / 8.0 / 1024.0;
        gb * self.network_price_per_gb
    }

    /// Eq. 1: annual cost of full runtime monitoring for `n` DCs.
    pub fn annual_runtime_monitoring(&self, n: usize) -> f64 {
        let per_event = self.instance_cost_per_s() * self.runtime_duration_s
            + self.network_cost(self.runtime_duration_s);
        self.occurrences_per_year * n as f64 * per_event
    }

    /// One-time training cost for `n` DCs: every sample needs a snapshot
    /// *and* a stable runtime measurement.
    pub fn training_cost(&self, n: usize) -> f64 {
        let per_sample = self.instance_cost_per_s()
            * (self.runtime_duration_s + self.snapshot_duration_s)
            + self.network_cost(self.runtime_duration_s)
            + self.network_cost(self.snapshot_duration_s);
        self.training_samples as f64 * n as f64 * per_sample
    }

    /// Annual cost of snapshot-based prediction for `n` DCs.
    pub fn annual_prediction(&self, n: usize) -> f64 {
        let per_event = self.instance_cost_per_s() * self.snapshot_duration_s
            + self.network_cost(self.snapshot_duration_s);
        self.occurrences_per_year * n as f64 * per_event
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Cluster size.
    pub n_dcs: usize,
    /// Annual runtime-monitoring cost, USD.
    pub runtime_monitoring_usd: f64,
    /// One-time model training cost, USD.
    pub training_usd: f64,
    /// Annual prediction (snapshot) cost, USD.
    pub predictions_usd: f64,
}

/// Regenerates Table 2 for the paper's cluster sizes {4, 6, 8}.
pub fn table2(params: &MonitoringCostParams) -> Vec<Table2Row> {
    [4usize, 6, 8]
        .iter()
        .map(|&n| Table2Row {
            n_dcs: n,
            runtime_monitoring_usd: params.annual_runtime_monitoring(n),
            training_usd: params.training_cost(n),
            predictions_usd: params.annual_prediction(n),
        })
        .collect()
}

/// Overall savings fraction of prediction vs runtime monitoring across the
/// Table 2 cluster sizes (paper: ~96%).
pub fn table2_savings_pct(params: &MonitoringCostParams) -> f64 {
    let rows = table2(params);
    let monitoring: f64 = rows.iter().map(|r| r.runtime_monitoring_usd).sum();
    let prediction: f64 = rows.iter().map(|r| r.training_usd + r.predictions_usd).sum();
    100.0 * (1.0 - prediction / monitoring)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_monitoring_matches_paper_magnitude() {
        // Paper Table 2: $703 / $1055 / $1406 for N = 4 / 6 / 8.
        let p = MonitoringCostParams::default();
        let c4 = p.annual_runtime_monitoring(4);
        assert!((600.0..850.0).contains(&c4), "N=4 annual ≈ $703, got {c4:.0}");
        let c8 = p.annual_runtime_monitoring(8);
        assert!((c8 / c4 - 2.0).abs() < 1e-9, "cost is linear in N");
    }

    #[test]
    fn savings_are_large() {
        let pct = table2_savings_pct(&MonitoringCostParams::default());
        assert!(pct > 85.0, "paper reports ~96% savings, got {pct:.1}%");
    }

    #[test]
    fn prediction_is_much_cheaper_per_year() {
        let p = MonitoringCostParams::default();
        for n in [4, 6, 8] {
            assert!(p.annual_prediction(n) < p.annual_runtime_monitoring(n) / 10.0);
        }
    }

    #[test]
    fn table_has_three_rows_in_order() {
        let rows = table2(&MonitoringCostParams::default());
        let ns: Vec<usize> = rows.iter().map(|r| r.n_dcs).collect();
        assert_eq!(ns, vec![4, 6, 8]);
        assert!(rows[0].runtime_monitoring_usd < rows[2].runtime_monitoring_usd);
    }

    #[test]
    fn network_cost_scales_with_duration() {
        let p = MonitoringCostParams::default();
        assert!((p.network_cost(20.0) / p.network_cost(1.0) - 20.0).abs() < 1e-9);
    }
}
