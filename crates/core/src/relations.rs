//! Algorithm 1: inferring data-center relationships.
//!
//! Global optimization needs to know which DC pairs are "close" (strong
//! links) and which are "far" (weak links). `INFER_DC_RELATIONS` (paper
//! §3.2.1, Algorithm 1) buckets the predicted runtime bandwidths into
//! *closeness indices*: index 1 is the closest relationship (a DC with
//! itself), growing indices mean weaker links.

use crate::error::WanifyError;
use wanify_netsim::{BwMatrix, Grid};

/// Closeness-index matrix produced by [`infer_dc_relations`].
///
/// `rel.get(i, j) == 1` means "same DC / strongest class"; the maximum
/// value identifies the weakest link class in the cluster.
pub type DcRelations = Grid<u32>;

/// Implements Algorithm 1 of the paper.
///
/// `bw` is the predicted runtime bandwidth matrix (diagonal entries are
/// treated as intra-DC and assigned the strongest class); `min_diff` is
/// `D`, the minimum bandwidth difference considered significant when
/// merging adjacent bandwidth levels (the paper's example uses 30 Mbps).
///
/// # Errors
///
/// Returns [`WanifyError::InvalidConfig`] if `min_diff` is negative.
///
/// # Examples
///
/// The paper's worked example (§3.2.1):
///
/// ```
/// use wanify_netsim::BwMatrix;
/// use wanify::relations::infer_dc_relations;
///
/// let bw = BwMatrix::from_rows(3, vec![
///     1000.0, 400.0, 120.0,
///     380.0, 1000.0, 130.0,
///     110.0, 120.0, 1000.0,
/// ]);
/// let rel = infer_dc_relations(&bw, 30.0)?;
/// assert_eq!(rel.get(0, 0), 1); // 1000 ⇒ closest
/// assert_eq!(rel.get(0, 1), 2); // 400  ⇒ middle class
/// assert_eq!(rel.get(0, 2), 3); // 120  ⇒ farthest class
/// # Ok::<(), wanify::WanifyError>(())
/// ```
pub fn infer_dc_relations(bw: &BwMatrix, min_diff: f64) -> Result<DcRelations, WanifyError> {
    if min_diff < 0.0 {
        return Err(WanifyError::InvalidConfig(format!(
            "minimum significant difference must be non-negative, got {min_diff}"
        )));
    }
    let n = bw.len();
    // Intra-DC bandwidth dwarfs WAN links; synthesize a diagonal level
    // above every observed value so the diagonal always lands in class 1.
    let diag_level = bw.max_off_diag().max(0.0) * 10.0 + 1.0;

    // Line 3: sorted set of unique bandwidth levels.
    let mut levels: Vec<f64> = bw.iter_pairs().map(|(_, _, v)| v).collect();
    levels.push(diag_level);
    levels.sort_by(|a, b| a.partial_cmp(b).expect("finite bandwidth"));
    levels.dedup();

    // Lines 4-8: reverse traversal merging levels closer than D.
    let mut i = levels.len().saturating_sub(1);
    while i >= 1 {
        if levels[i] - levels[i - 1] < min_diff {
            levels.remove(i);
        }
        i -= 1;
    }
    let n_levels = levels.len() as u32;

    // Lines 9-22: assign each pair the class of its nearest level.
    let rel = Grid::from_fn(n, |i, j| {
        let v = if i == j { diag_level } else { bw.get(i, j) };
        let k = nearest_level(&levels, v);
        n_levels - k as u32 // 1-based from the top: strongest ⇒ 1
    });
    Ok(rel)
}

/// Index (0-based) of the level nearest to `v` via binary search.
fn nearest_level(levels: &[f64], v: f64) -> usize {
    match levels.binary_search_by(|l| l.partial_cmp(&v).expect("finite")) {
        Ok(k) => k,
        Err(ins) => {
            if ins == 0 {
                0
            } else if ins >= levels.len() {
                levels.len() - 1
            } else if (v - levels[ins - 1]) <= (levels[ins] - v) {
                ins - 1
            } else {
                ins
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> BwMatrix {
        BwMatrix::from_rows(
            3,
            vec![1000.0, 400.0, 120.0, 380.0, 1000.0, 130.0, 110.0, 120.0, 1000.0],
        )
    }

    #[test]
    fn reproduces_paper_worked_example() {
        let rel = infer_dc_relations(&paper_example(), 30.0).unwrap();
        // Diagonal: closeness 1.
        for i in 0..3 {
            assert_eq!(rel.get(i, i), 1);
        }
        // {400, 380} ⇒ class 2; {110, 120, 130} ⇒ class 3.
        assert_eq!(rel.get(0, 1), 2);
        assert_eq!(rel.get(1, 0), 2);
        assert_eq!(rel.get(0, 2), 3);
        assert_eq!(rel.get(1, 2), 3);
        assert_eq!(rel.get(2, 0), 3);
        assert_eq!(rel.get(2, 1), 3);
    }

    #[test]
    fn zero_min_diff_keeps_every_level() {
        let rel = infer_dc_relations(&paper_example(), 0.0).unwrap();
        // 6 off-diagonal unique values + diagonal level ⇒ up to 7 classes.
        let max = rel.iter_pairs().map(|(_, _, v)| v).max().unwrap();
        assert!(max >= 6, "expected fine-grained classes, got max {max}");
    }

    #[test]
    fn huge_min_diff_collapses_wan_links_into_one_class() {
        let rel = infer_dc_relations(&paper_example(), 10_000.0).unwrap();
        let classes: std::collections::BTreeSet<u32> =
            rel.iter_pairs().map(|(_, _, v)| v).collect();
        assert_eq!(classes.len(), 1, "all WAN links in one class: {classes:?}");
    }

    #[test]
    fn negative_min_diff_rejected() {
        assert!(matches!(
            infer_dc_relations(&paper_example(), -1.0),
            Err(WanifyError::InvalidConfig(_))
        ));
    }

    #[test]
    fn ties_exactly_at_min_diff_stay_separate_levels() {
        // Algorithm 1 merges levels *strictly* closer than D; a gap of
        // exactly D is significant and must keep its own class.
        let bw =
            BwMatrix::from_rows(3, vec![0.0, 400.0, 430.0, 400.0, 0.0, 430.0, 400.0, 430.0, 0.0]);
        let exactly_d = infer_dc_relations(&bw, 30.0).unwrap();
        assert_ne!(
            exactly_d.get(0, 1),
            exactly_d.get(0, 2),
            "a 30 Mbps gap at D=30 is significant and must not merge"
        );
        // One epsilon wider and the same pair of levels merges.
        let merged = infer_dc_relations(&bw, 30.0 + 1e-9).unwrap();
        assert_eq!(merged.get(0, 1), merged.get(0, 2));
    }

    #[test]
    fn chained_ties_merge_pairwise_not_transitively() {
        // Levels {100, 125, 150} with D = 30: the reverse traversal merges
        // 150 into 125's class, then 125 into 100's — the paper's greedy
        // chain collapse, leaving one WAN class plus the diagonal.
        let bw =
            BwMatrix::from_rows(3, vec![0.0, 100.0, 125.0, 100.0, 0.0, 150.0, 125.0, 150.0, 0.0]);
        let rel = infer_dc_relations(&bw, 30.0).unwrap();
        assert_eq!(rel.get(0, 1), rel.get(0, 2));
        assert_eq!(rel.get(0, 2), rel.get(1, 2));
        assert!(rel.get(0, 1) > rel.get(0, 0), "WAN class stays above the diagonal class");
    }

    #[test]
    fn zero_diff_duplicate_levels_dedup_into_one_class() {
        // Identical bandwidths are one level even with D = 0.
        let bw =
            BwMatrix::from_rows(3, vec![0.0, 500.0, 500.0, 500.0, 0.0, 500.0, 500.0, 500.0, 0.0]);
        let rel = infer_dc_relations(&bw, 0.0).unwrap();
        let classes: std::collections::BTreeSet<u32> =
            rel.iter_pairs().map(|(_, _, v)| v).collect();
        assert_eq!(classes.len(), 1);
    }

    #[test]
    fn nearest_level_boundaries() {
        let levels = [110.0, 380.0, 1000.0];
        assert_eq!(nearest_level(&levels, 50.0), 0);
        assert_eq!(nearest_level(&levels, 2000.0), 2);
        assert_eq!(nearest_level(&levels, 244.0), 0); // closer to 110
        assert_eq!(nearest_level(&levels, 246.0), 1); // closer to 380
        assert_eq!(nearest_level(&levels, 380.0), 1); // exact hit
    }

    #[test]
    fn stronger_links_never_get_larger_index() {
        let rel = infer_dc_relations(&paper_example(), 30.0).unwrap();
        let bw = paper_example();
        for (i1, j1, v1) in bw.iter_pairs() {
            for (i2, j2, v2) in bw.iter_pairs() {
                if v1 > v2 {
                    assert!(
                        rel.get(i1, j1) <= rel.get(i2, j2),
                        "bw {v1} got class {} but bw {v2} got {}",
                        rel.get(i1, j1),
                        rel.get(i2, j2)
                    );
                }
            }
        }
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn classes_are_monotone_in_bandwidth(
                vals in proptest::collection::vec(50.0f64..2000.0, 6),
                d in 0.0f64..200.0,
            ) {
                let bw = BwMatrix::from_rows(3, vec![
                    0.0, vals[0], vals[1],
                    vals[2], 0.0, vals[3],
                    vals[4], vals[5], 0.0,
                ]);
                let rel = infer_dc_relations(&bw, d).unwrap();
                let mut pairs: Vec<(f64, u32)> =
                    bw.iter_pairs().map(|(i, j, v)| (v, rel.get(i, j))).collect();
                pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for w in pairs.windows(2) {
                    prop_assert!(w[0].1 >= w[1].1,
                        "higher bandwidth must not get a weaker class: {pairs:?}");
                }
            }

            #[test]
            fn diagonal_is_always_class_one(
                vals in proptest::collection::vec(1.0f64..5000.0, 6),
                d in 0.0f64..500.0,
            ) {
                let bw = BwMatrix::from_rows(3, vec![
                    0.0, vals[0], vals[1],
                    vals[2], 0.0, vals[3],
                    vals[4], vals[5], 0.0,
                ]);
                let rel = infer_dc_relations(&bw, d).unwrap();
                for i in 0..3 {
                    prop_assert_eq!(rel.get(i, i), 1);
                }
            }
        }
    }
}
