//! # wanify
//!
//! Reproduction of **WANify: Gauging and Balancing Runtime WAN Bandwidth
//! for Geo-distributed Data Analytics** (Mohapatra & Oh, IISWC 2025).
//!
//! WANify gives geo-distributed data analytics (GDA) systems two things:
//!
//! 1. **Accurate runtime bandwidth, cheaply** — a Random-Forest model
//!    ([`predictor`]) maps 1-second snapshot probes (plus cluster size,
//!    host metrics and geo-distance, Table 3) to the stable bandwidth a
//!    20-second simultaneous measurement would report, cutting monitoring
//!    cost by ~96% ([`costs`], Table 2).
//! 2. **Balanced WAN usage** — from the predicted matrix it infers DC
//!    closeness ([`relations`], Algorithm 1), computes heterogeneous
//!    min/max parallel-connection windows per DC pair ([`global`],
//!    Eq. 2-3), and fine-tunes live connections with AIMD agents plus
//!    traffic-control throttling of bandwidth-rich links ([`local`],
//!    [`throttle`], [`agent`]), trading the strongest links for the
//!    weakest and raising the cluster's minimum bandwidth.
//!
//! Heterogeneity — skewed inputs, multi-cloud providers, uneven VM fleets,
//! varying cluster sizes — is handled in [`hetero`] (§3.3). The [`Wanify`]
//! facade bundles the whole pipeline behind the "WANify Interface" of the
//! paper's architecture (Fig. 3).
//!
//! Bandwidth *provenance* is decoupled from bandwidth *consumers* through
//! the [`source::BandwidthSource`] trait: planning and scheduling accept
//! any source — statically measured, runtime-measured or model-predicted —
//! through one interface, which is exactly the coupling §2.2 argues
//! against in existing systems.
//!
//! ## Quick example
//!
//! ```
//! use wanify::{MeasuredRuntime, Wanify, WanifyConfig};
//! use wanify_netsim::{paper_testbed_n, LinkModelParams, NetSim, VmType};
//!
//! let topo = paper_testbed_n(VmType::t2_medium(), 4);
//! let mut net = NetSim::new(topo, LinkModelParams::default(), 7);
//! // Gauge runtime bandwidth through any BandwidthSource (here: a live
//! // measurement; in production: the trained PredictedRuntime model) and
//! // plan heterogeneous connections that lift the weakest links.
//! let wanify = Wanify::new(WanifyConfig::default());
//! let plan = wanify.plan(&mut MeasuredRuntime::default(), &mut net)?;
//! assert!(plan.max_cons.iter_pairs().any(|(_, _, c)| c > 1));
//! # Ok::<(), wanify::WanifyError>(())
//! ```

pub mod agent;
pub mod costs;
pub mod error;
pub mod features;
pub mod global;
pub mod hetero;
pub mod interface;
pub mod local;
pub mod predictor;
pub mod relations;
pub mod source;
pub mod throttle;

pub use agent::WanifyAgent;
pub use error::WanifyError;
pub use features::FeatureVector;
pub use global::{optimize_global, GlobalPlan};
pub use hetero::{association_chunks, refactoring_vector};
pub use interface::{Wanify, WanifyConfig, WanifyPlan};
pub use local::{AimdMode, LocalOptimizer};
pub use predictor::{BandwidthAnalyzer, WanPredictionModel};
pub use relations::{infer_dc_relations, DcRelations};
pub use source::{
    BandwidthSource, MeasuredRuntime, PredictedRuntime, Pregauged, StaticIndependent,
    StaticSimultaneous,
};
pub use throttle::{throttle_caps, throttle_caps_clamped, throttle_caps_masked};
