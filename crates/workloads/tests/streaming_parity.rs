//! Streaming-vs-materialized parity: every generator's iterator form
//! must reproduce its `Vec` form **bit for bit** — same seed, same
//! jobs, same names, same block layouts, same arrival times — across
//! random sizes, DC counts, seeds, scales and group maps. The
//! materialized paths are thin `collect()`s of the iterators, but these
//! properties pin that equivalence against any future divergence (and
//! pin clones of a partially-consumed iterator to resume identically).

use proptest::prelude::*;
use wanify_workloads::{
    mixed_trace, offered_load, offered_load_iter, regional_mixed_trace, regional_trace_iter,
    trace_iter, LoadSpec, TraceConfig,
};

proptest! {
    #[test]
    fn streaming_trace_matches_materialized(
        n_dcs in 1usize..9,
        jobs in 1usize..60,
        seed in 0u64..1000,
        scale in 0.1f64..3.0,
    ) {
        let cfg = TraceConfig::new(n_dcs, jobs, seed).scaled(scale);
        let materialized = mixed_trace(&cfg);
        let it = trace_iter(&cfg);
        prop_assert_eq!(it.len(), jobs);
        prop_assert_eq!(it.total(), jobs);
        let streamed: Vec<_> = it.collect();
        prop_assert_eq!(&streamed, &materialized);
    }

    #[test]
    fn streaming_regional_trace_matches_materialized(
        n_dcs in 1usize..9,
        jobs in 1usize..40,
        seed in 0u64..500,
        n_groups in 1usize..4,
    ) {
        let cfg = TraceConfig::new(n_dcs, jobs, seed).scaled(0.5);
        let group_of: Vec<usize> = (0..n_dcs).map(|dc| dc % n_groups).collect();
        let materialized = regional_mixed_trace(&cfg, &group_of);
        let streamed: Vec<_> = regional_trace_iter(&cfg, group_of).collect();
        prop_assert_eq!(&streamed, &materialized);
    }

    #[test]
    fn streaming_offered_load_matches_materialized(
        n_dcs in 1usize..6,
        jobs in 1usize..40,
        seed in 0u64..500,
        rate in 0.001f64..1.0,
        slack_bit in 0usize..2,
    ) {
        let mut spec = LoadSpec::new(n_dcs, jobs, seed, rate).scaled(0.5);
        if slack_bit == 1 {
            spec = spec.with_deadline_slack(120.0);
        }
        let materialized = offered_load(&spec);
        let streamed: Vec<_> = offered_load_iter(&spec).collect();
        prop_assert_eq!(streamed.len(), materialized.len());
        for (s, m) in streamed.iter().zip(&materialized) {
            prop_assert_eq!(&s.job, &m.job);
            prop_assert_eq!(s.arrival_s.to_bits(), m.arrival_s.to_bits());
            prop_assert_eq!(
                s.deadline_s.map(f64::to_bits),
                m.deadline_s.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn cloned_iterator_resumes_identically(
        jobs in 2usize..30,
        split in 1usize..29,
        seed in 0u64..300,
    ) {
        let split = split.min(jobs - 1);
        let cfg = TraceConfig::new(4, jobs, seed);
        let mut it = trace_iter(&cfg);
        for _ in 0..split {
            it.next().unwrap();
        }
        let tail_a: Vec<_> = it.clone().collect();
        let tail_b: Vec<_> = it.collect();
        prop_assert_eq!(&tail_a, &tail_b);
        prop_assert_eq!(tail_a, mixed_trace(&cfg).split_off(split));
    }
}

#[test]
fn trace_iter_is_send_and_clone() {
    fn takes_send_clone<T: Send + Clone>(_: &T) {}
    let cfg = TraceConfig::new(3, 5, 1);
    takes_send_clone(&trace_iter(&cfg));
    takes_send_clone(&regional_trace_iter(&cfg, vec![0, 1, 0]));
    takes_send_clone(&offered_load_iter(&LoadSpec::new(3, 5, 1, 0.1)));
}
