//! # wanify-workloads
//!
//! Calibrated models of the workloads the WANify paper evaluates (§5.1):
//!
//! * [`terasort`] — TeraSort, the shuffle-heavy sort benchmark used for the
//!   parallel-data-transfer comparisons (Fig. 5);
//! * [`wordcount`] — WordCount with controllable intermediate data size
//!   (all-distinct words, Fig. 6) and block-level skew (Fig. 10);
//! * [`tpcds`] — TPC-DS query profiles for queries 82 (light-weight), 95
//!   and 11 (average-weight) and 78 (heavy-weight) (Table 4, Figs. 7-8);
//! * [`quantization`] — an SAGQ-style geo-distributed ML training loop
//!   whose gradient precision adapts to believed bandwidth (Fig. 4);
//! * [`trace`] — deterministic mixed multi-tenant job streams (TeraSort /
//!   WordCount / TPC-DS mix) for the `wanify-gda` fleet engine;
//! * [`loadgen`] — open-loop Poisson request streams and offered-rate
//!   sweeps over the mixed trace, the input of the serving gateway's
//!   goodput-vs-load curves.
//!
//! Each model captures the *shape* that drives WAN behaviour — stage
//! structure, shuffle volume per DC pair and compute/network balance — not
//! the byte-exact semantics of the original programs.
//!
//! Every generator has two forms: a materialized `Vec` (small runs,
//! tests) and an O(1)-memory streaming iterator ([`trace_iter`],
//! [`regional_trace_iter`], [`offered_load_iter`]) that produces the
//! identical sequence bit for bit — the form million-query fleets are
//! driven from.

pub mod loadgen;
pub mod quantization;
pub mod terasort;
pub mod tpcds;
pub mod trace;
pub mod wordcount;

pub use loadgen::{
    offered_load, offered_load_iter, rate_sweep, LoadSpec, OfferedJob, OfferedLoadIter,
};
pub use quantization::{QuantConfig, QuantPolicy, TrainingReport};
pub use tpcds::TpcDsQuery;
pub use trace::{
    mixed_trace, regional_mixed_trace, regional_trace_iter, trace_iter, RegionalTraceIter,
    TraceConfig, TraceIter,
};
