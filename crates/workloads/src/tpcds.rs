//! TPC-DS query profiles.
//!
//! The paper evaluates three weight classes (§5.2): light-weight (query
//! 82), average-weight (queries 11 and 95) and heavy-weight (query 78),
//! over 100 GB (and 40 GB for Kimchi parity) of input. The profiles below
//! model each query as its Spark stage DAG with per-stage selectivities
//! calibrated to the class: light queries barely shuffle, heavy queries
//! push tens of gigabytes across the WAN.

use wanify_gda::{DataLayout, JobProfile, StageProfile};

/// The four TPC-DS queries used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpcDsQuery {
    /// Query 82 — light-weight: inventory/item filter, tiny shuffle.
    Q82,
    /// Query 95 — average-weight: web-sales self-joins.
    Q95,
    /// Query 11 — average-weight: customer year-over-year totals.
    Q11,
    /// Query 78 — heavy-weight: store/web/catalog sales joins.
    Q78,
}

impl TpcDsQuery {
    /// All evaluated queries in the paper's reporting order.
    pub fn all() -> [TpcDsQuery; 4] {
        [TpcDsQuery::Q82, TpcDsQuery::Q95, TpcDsQuery::Q11, TpcDsQuery::Q78]
    }

    /// Query label, e.g. `"q78"`.
    pub fn name(self) -> &'static str {
        match self {
            TpcDsQuery::Q82 => "q82",
            TpcDsQuery::Q95 => "q95",
            TpcDsQuery::Q11 => "q11",
            TpcDsQuery::Q78 => "q78",
        }
    }

    /// Builds the query's stage profile over `input_gb` spread uniformly
    /// across `n_dcs` data centers.
    pub fn job(self, n_dcs: usize, input_gb: f64) -> JobProfile {
        let layout = DataLayout::uniform(n_dcs, input_gb);
        let stages = match self {
            // Light: a selective scan then a pinhole aggregate. The shuffle
            // is ~0.1% of input (≈100 MB at 100 GB).
            TpcDsQuery::Q82 => vec![
                StageProfile::shuffling("scan-filter", 0.001, 1.2),
                StageProfile::terminal("aggregate", 0.1, 0.8),
            ],
            // Average: two join shuffles around 3-5% of input.
            TpcDsQuery::Q95 => vec![
                StageProfile::shuffling("scan-ws", 0.05, 1.5),
                StageProfile::shuffling("self-join", 0.6, 2.0),
                StageProfile::terminal("dedup-agg", 0.2, 1.0),
            ],
            // Average, slightly heavier tail than q95.
            TpcDsQuery::Q11 => vec![
                StageProfile::shuffling("scan-customer", 0.06, 1.5),
                StageProfile::shuffling("year-totals", 0.7, 2.0),
                StageProfile::terminal("compare", 0.2, 1.0),
            ],
            // Heavy: three sales channels joined; ~20% of input shuffles.
            TpcDsQuery::Q78 => vec![
                StageProfile::shuffling("scan-sales", 0.12, 1.8),
                StageProfile::shuffling("join-returns", 0.8, 2.2),
                StageProfile::shuffling("join-channels", 0.5, 2.0),
                StageProfile::terminal("ratio-agg", 0.1, 1.0),
            ],
        };
        JobProfile::new(self.name(), layout, stages)
    }

    /// The paper's default 100 GB configuration (§5.1).
    pub fn paper_job(self, n_dcs: usize) -> JobProfile {
        self.job(n_dcs, 100.0)
    }
}

impl std::fmt::Display for TpcDsQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_classes_order_by_shuffle_volume() {
        let shuffle = |q: TpcDsQuery| q.paper_job(8).estimated_shuffle_gb();
        assert!(shuffle(TpcDsQuery::Q82) < 0.5, "light: {}", shuffle(TpcDsQuery::Q82));
        assert!(shuffle(TpcDsQuery::Q95) > 2.0);
        assert!(shuffle(TpcDsQuery::Q11) > shuffle(TpcDsQuery::Q95));
        assert!(shuffle(TpcDsQuery::Q78) > 2.0 * shuffle(TpcDsQuery::Q11));
    }

    #[test]
    fn q78_is_multi_stage() {
        let j = TpcDsQuery::Q78.paper_job(8);
        assert_eq!(j.stages.len(), 4);
        assert_eq!(j.stages.iter().filter(|s| s.shuffles).count(), 3);
    }

    #[test]
    fn kimchi_parity_input_also_supported() {
        let j = TpcDsQuery::Q95.job(8, 40.0);
        assert!((j.input_gb() - 40.0).abs() < 0.5);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = TpcDsQuery::all().iter().map(|q| q.name()).collect();
        assert_eq!(names, vec!["q82", "q95", "q11", "q78"]);
        assert_eq!(TpcDsQuery::Q78.to_string(), "q78");
    }
}
