//! Mixed multi-tenant job traces for the fleet engine.
//!
//! The paper evaluates workloads one at a time; a production cluster runs
//! them *together*. [`mixed_trace`] deterministically samples a stream of
//! jobs with the weight mix of §5.1's workload set — shuffle-heavy
//! TeraSorts, WordCounts with varying intermediate sizes, and the four
//! TPC-DS weight classes — scaled down so dozens of queries fit in one
//! simulated serving window. Every job's input size and skew are drawn
//! from a seeded stream: equal `(seed, n_dcs, jobs)` inputs produce an
//! identical trace, which is what makes fleet runs reproducible end to
//! end. [`regional_mixed_trace`] additionally homes every job to a
//! region group — the tenant shape sharded fleets partition on.
//!
//! Both builders are thin `collect()`s over **streaming iterators**
//! ([`trace_iter`], [`regional_trace_iter`]): the iterator holds one
//! seeded RNG and synthesizes each job on demand, so a 10⁶-query fleet
//! run never materializes its trace — O(1) memory at any length, while
//! the `Vec` path stays available (and bit-identical, pinned by a
//! proptest) for the dozens-of-queries experiments. The iterators are
//! `Clone + Send`, so a sharded driver can fan one trace definition out
//! to shard threads without sharing mutable state.

use crate::{terasort, wordcount, TpcDsQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wanify_gda::{DataLayout, JobProfile};

/// Shape of one [`mixed_trace`] job stream.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Data centers every job's layout must cover.
    pub n_dcs: usize,
    /// Number of jobs in the trace.
    pub jobs: usize,
    /// Seed of the sampling stream.
    pub seed: u64,
    /// Multiplier on every job's input size (1.0 ≈ 1–8 GB per query,
    /// sized for fleet runs rather than the paper's 100 GB solo runs).
    pub scale: f64,
}

impl TraceConfig {
    /// A fleet-sized trace over `n_dcs` data centers.
    pub fn new(n_dcs: usize, jobs: usize, seed: u64) -> Self {
        Self { n_dcs, jobs, seed, scale: 1.0 }
    }

    /// Sets the input-size multiplier.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

/// Samples the deterministic mixed trace described in the module docs.
///
/// The mix is roughly 20 % TeraSort, 30 % WordCount and 50 % TPC-DS
/// (uniform over Q82/Q95/Q11/Q78), with per-job input sizes jittered and
/// a third of the jobs skewed toward one region, as block layouts in the
/// paper's §5.8.1 skew study are.
///
/// # Panics
///
/// Panics if `n_dcs == 0`, `jobs == 0` or `scale <= 0`.
///
/// # Examples
///
/// ```
/// use wanify_workloads::trace::{mixed_trace, TraceConfig};
/// let jobs = mixed_trace(&TraceConfig::new(4, 10, 7));
/// assert_eq!(jobs.len(), 10);
/// assert_eq!(jobs, mixed_trace(&TraceConfig::new(4, 10, 7)));
/// ```
pub fn mixed_trace(cfg: &TraceConfig) -> Vec<JobProfile> {
    trace_iter(cfg).collect()
}

/// The streaming form of [`mixed_trace`]: a `Clone + Send` iterator that
/// synthesizes job `i` only when asked for it. Holds one [`StdRng`] and a
/// position — O(1) memory at any trace length — and draws the exact RNG
/// stream `mixed_trace` draws, so collecting it reproduces the
/// materialized trace bit for bit (pinned by the
/// `streaming_trace_matches_materialized` proptest).
///
/// # Panics
///
/// Panics as [`mixed_trace`] does for degenerate configs.
///
/// # Examples
///
/// ```
/// use wanify_workloads::trace::{mixed_trace, trace_iter, TraceConfig};
/// let cfg = TraceConfig::new(4, 10, 7);
/// assert_eq!(trace_iter(&cfg).collect::<Vec<_>>(), mixed_trace(&cfg));
/// ```
pub fn trace_iter(cfg: &TraceConfig) -> TraceIter {
    assert!(cfg.n_dcs > 0, "a trace needs at least one DC");
    assert!(cfg.jobs > 0, "a trace needs at least one job");
    assert!(cfg.scale > 0.0, "trace scale must be positive");
    TraceIter { cfg: cfg.clone(), rng: StdRng::seed_from_u64(cfg.seed), idx: 0 }
}

/// Streaming job source behind [`mixed_trace`]; see [`trace_iter`].
#[derive(Debug, Clone)]
pub struct TraceIter {
    cfg: TraceConfig,
    rng: StdRng,
    idx: usize,
}

impl TraceIter {
    /// Jobs this iterator will have produced when exhausted.
    pub fn total(&self) -> usize {
        self.cfg.jobs
    }
}

impl Iterator for TraceIter {
    type Item = JobProfile;

    fn next(&mut self) -> Option<JobProfile> {
        if self.idx >= self.cfg.jobs {
            return None;
        }
        let idx = self.idx;
        self.idx += 1;
        let cfg = &self.cfg;
        let rng = &mut self.rng;
        let input_gb = cfg.scale * rng.gen_range(1.0..8.0);
        let layout = sample_layout(cfg.n_dcs, input_gb, rng);
        let pick: f64 = rng.gen();
        let mut job = if pick < 0.2 {
            terasort::job(layout)
        } else if pick < 0.5 {
            // Intermediate size between 10 % and 120 % of the input, the
            // span of the paper's Fig. 6 sweep.
            let intermediate_mb = input_gb * 1024.0 * rng.gen_range(0.1..1.2);
            wordcount::job_with_intermediate(layout, intermediate_mb)
        } else {
            let q = TpcDsQuery::all()[rng.gen_range(0..4usize)];
            let mut j = q.job(cfg.n_dcs, input_gb);
            j.layout = layout;
            j
        };
        job.name = format!("{}-{idx}", job.name);
        Some(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.jobs - self.idx;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceIter {}

/// Samples a **region-tagged** mixed trace: the same workload mix as
/// [`mixed_trace`], but every job is homed to one of the region groups in
/// `group_of` (the DC → group map a
/// [`Backbone`](wanify_netsim::Backbone) uses) and most of its input is
/// concentrated on that group's data centers. Home groups rotate
/// round-robin over the trace, so every group gets tenants; job names
/// gain an `@g<home>` tag (e.g. `terasort-4@g2`) that region-group shard
/// policies and report readers can key on.
///
/// This is the natural input for a sharded fleet: tenants mostly shuffle
/// inside their home group, and only the spill-over rides the cross-shard
/// backbone.
///
/// # Panics
///
/// Panics if `group_of.len() != cfg.n_dcs` (and as [`mixed_trace`] for
/// degenerate configs).
///
/// # Examples
///
/// ```
/// use wanify_workloads::trace::{regional_mixed_trace, TraceConfig};
/// let jobs = regional_mixed_trace(&TraceConfig::new(4, 6, 7), &[0, 0, 1, 1]);
/// assert_eq!(jobs.len(), 6);
/// assert!(jobs[0].name.contains("@g"));
/// ```
pub fn regional_mixed_trace(cfg: &TraceConfig, group_of: &[usize]) -> Vec<JobProfile> {
    regional_trace_iter(cfg, group_of.to_vec()).collect()
}

/// The streaming form of [`regional_mixed_trace`]: wraps [`trace_iter`]
/// and applies the region-group homing per item, so the region-tagged
/// trace is O(1) memory too. `Clone + Send`; collecting it reproduces
/// the materialized regional trace bit for bit.
///
/// # Panics
///
/// Panics if `group_of.len() != cfg.n_dcs` (and as [`trace_iter`] for
/// degenerate configs).
pub fn regional_trace_iter(cfg: &TraceConfig, group_of: Vec<usize>) -> RegionalTraceIter {
    assert_eq!(
        group_of.len(),
        cfg.n_dcs,
        "group map must assign every DC of the trace a region group"
    );
    let n_groups = group_of.iter().copied().max().map_or(1, |g| g + 1);
    RegionalTraceIter { inner: trace_iter(cfg), group_of, n_groups }
}

/// Streaming job source behind [`regional_mixed_trace`]; see
/// [`regional_trace_iter`].
#[derive(Debug, Clone)]
pub struct RegionalTraceIter {
    inner: TraceIter,
    group_of: Vec<usize>,
    n_groups: usize,
}

impl RegionalTraceIter {
    /// Jobs this iterator will have produced when exhausted.
    pub fn total(&self) -> usize {
        self.inner.total()
    }
}

impl Iterator for RegionalTraceIter {
    type Item = JobProfile;

    fn next(&mut self) -> Option<JobProfile> {
        // The wrapped iterator advances its own index; the job we are
        // about to home is the one at the pre-advance position.
        let idx = self.inner.idx;
        let mut job = self.inner.next()?;
        let home = idx % self.n_groups;
        let n_dcs = self.group_of.len();
        let home_dcs: Vec<usize> = (0..n_dcs).filter(|&dc| self.group_of[dc] == home).collect();
        if !home_dcs.is_empty() {
            // Concentrate the input: move three quarters of every foreign
            // DC's blocks onto the home group, spread round-robin.
            let mut slot = idx % home_dcs.len();
            for (from, &group) in self.group_of.iter().enumerate() {
                if group == home {
                    continue;
                }
                let moving = 3 * job.layout.blocks_per_dc[from] / 4;
                job.layout.move_blocks(from, home_dcs[slot], moving);
                slot = (slot + 1) % home_dcs.len();
            }
        }
        job.name = format!("{}@g{home}", job.name);
        Some(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for RegionalTraceIter {}

/// Uniform layout two thirds of the time, one third skewed toward a
/// random region (as the paper's HDFS block moves create).
fn sample_layout(n_dcs: usize, input_gb: f64, rng: &mut StdRng) -> DataLayout {
    let mut layout = DataLayout::uniform(n_dcs, input_gb);
    if n_dcs > 1 && rng.gen_range(0..3usize) == 0 {
        let hot = rng.gen_range(0..n_dcs);
        for from in 0..n_dcs {
            if from != hot {
                let half = layout.blocks_per_dc[from] / 2;
                layout.move_blocks(from, hot, half);
            }
        }
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let a = mixed_trace(&TraceConfig::new(8, 40, 3));
        let b = mixed_trace(&TraceConfig::new(8, 40, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = mixed_trace(&TraceConfig::new(8, 40, 3));
        let b = mixed_trace(&TraceConfig::new(8, 40, 4));
        assert_ne!(a, b);
    }

    #[test]
    fn trace_mixes_workload_families() {
        let jobs = mixed_trace(&TraceConfig::new(4, 60, 11));
        let count = |prefix: &str| jobs.iter().filter(|j| j.name.starts_with(prefix)).count();
        assert!(count("terasort") > 0, "no terasort in the mix");
        assert!(count("wordcount") > 0, "no wordcount in the mix");
        assert!(count("q") > 0, "no TPC-DS in the mix");
        assert_eq!(count("terasort") + count("wordcount") + count("q"), 60);
    }

    #[test]
    fn layouts_cover_the_cluster_and_respect_scale() {
        let jobs = mixed_trace(&TraceConfig::new(5, 30, 9).scaled(0.5));
        for j in &jobs {
            assert_eq!(j.layout.len(), 5);
            assert!(j.input_gb() <= 0.5 * 8.0 + 0.1, "{} too big", j.input_gb());
        }
    }

    #[test]
    fn some_jobs_are_skewed() {
        let jobs = mixed_trace(&TraceConfig::new(6, 60, 2));
        assert!(jobs.iter().any(|j| j.layout.skewness() > 0.2));
        assert!(jobs.iter().any(|j| j.layout.skewness() < 0.05));
    }

    #[test]
    #[should_panic]
    fn zero_jobs_panics() {
        let _ = mixed_trace(&TraceConfig::new(4, 0, 1));
    }

    #[test]
    fn regional_trace_is_deterministic_and_tagged() {
        let groups = [0usize, 0, 1, 2];
        let a = regional_mixed_trace(&TraceConfig::new(4, 12, 6), &groups);
        let b = regional_mixed_trace(&TraceConfig::new(4, 12, 6), &groups);
        assert_eq!(a, b);
        for (idx, job) in a.iter().enumerate() {
            assert!(
                job.name.ends_with(&format!("@g{}", idx % 3)),
                "{} lacks its home tag",
                job.name
            );
        }
    }

    #[test]
    fn regional_trace_concentrates_data_in_the_home_group() {
        let groups = [0usize, 0, 1, 1];
        let jobs = regional_mixed_trace(&TraceConfig::new(4, 10, 3), &groups);
        for (idx, job) in jobs.iter().enumerate() {
            let home = idx % 2;
            let home_gb: f64 =
                (0..4).filter(|&d| groups[d] == home).map(|d| job.layout.gb_at(d)).sum();
            let total: f64 = (0..4).map(|d| job.layout.gb_at(d)).sum();
            assert!(
                home_gb > 0.6 * total,
                "{}: home group holds {home_gb:.2} of {total:.2} GB",
                job.name
            );
        }
    }

    #[test]
    fn regional_trace_rotates_home_groups() {
        let groups = [0usize, 1, 2, 2];
        let jobs = regional_mixed_trace(&TraceConfig::new(4, 9, 5), &groups);
        for home in 0..3 {
            assert!(
                jobs.iter().any(|j| j.name.ends_with(&format!("@g{home}"))),
                "group {home} got no tenants"
            );
        }
    }

    #[test]
    #[should_panic(expected = "group map")]
    fn regional_trace_rejects_short_group_maps() {
        let _ = regional_mixed_trace(&TraceConfig::new(4, 4, 1), &[0, 1]);
    }
}
