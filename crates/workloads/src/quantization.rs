//! SAGQ-style geo-distributed ML training with gradient quantization.
//!
//! Models the paper's Fig. 4 experiment (§5.6): an MNIST classifier trained
//! on an 8-DC Spark cluster with a parameter server at the master. Each
//! epoch, every worker exchanges gradient traffic with the master; SAGQ
//! (Fan et al., TCC'23) picks each worker's quantization precision (bits)
//! from the *believed* bandwidth of its link so the exchange fits a time
//! budget. Beliefs that overestimate runtime bandwidth (static-independent
//! probes) choose too many bits and blow the budget on the wire.

use wanify_gda::{CostBreakdown, CostModel};
use wanify_netsim::{BwMatrix, ConnMatrix, DcId, EpochHook, NetSim, Transfer};

/// Configuration of the quantized training run.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantConfig {
    /// Data center hosting the parameter server (paper: US East).
    pub master: DcId,
    /// Gradient traffic per worker per epoch at full 32-bit precision, MB.
    pub grad_mb_per_epoch: f64,
    /// Pure computation seconds per epoch (forward/backward passes).
    pub compute_s_per_epoch: f64,
    /// Number of training epochs (paper: 10).
    pub epochs: u32,
    /// Per-link transfer-time budget SAGQ aims for, in seconds.
    pub target_transfer_s: f64,
    /// Smallest precision SAGQ may select.
    pub min_bits: u32,
    /// Full precision.
    pub max_bits: u32,
    /// Stored dataset size in GB (MNIST after union transforms ≈ 6.8).
    pub input_gb: f64,
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self {
            master: DcId(0),
            grad_mb_per_epoch: 1800.0,
            compute_s_per_epoch: 240.0,
            epochs: 10,
            target_transfer_s: 60.0,
            min_bits: 2,
            max_bits: 32,
            input_gb: 6.8,
        }
    }
}

/// Precision selection policy for gradient exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantPolicy {
    /// Full 32-bit gradients (the paper's NoQ baseline).
    FullPrecision,
    /// Bits per worker chosen from a believed bandwidth matrix — SAGQ on
    /// static BWs, SimQ on simultaneous BWs, PredQ/WQ on predicted BWs.
    BwDriven(BwMatrix),
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Wall-clock training time in seconds.
    pub training_s: f64,
    /// Dollar cost of the run.
    pub cost: CostBreakdown,
    /// Weakest observed per-pair mean bandwidth across epochs, Mbps.
    pub min_bw_mbps: f64,
    /// Precision selected per worker DC (master's entry = `max_bits`).
    pub bits_per_worker: Vec<u32>,
}

/// Picks the precision for a worker whose believed bandwidth to the master
/// is `bw_mbps`: the largest `bits` whose exchange fits the time budget.
pub fn bits_for(bw_mbps: f64, cfg: &QuantConfig) -> u32 {
    // Exchange at `bits` moves grad_mb·bits/32 MB ⇒ seconds = MB·8/bw.
    let affordable =
        (cfg.target_transfer_s * bw_mbps * f64::from(cfg.max_bits)) / (cfg.grad_mb_per_epoch * 8.0);
    (affordable.floor() as u32).clamp(cfg.min_bits, cfg.max_bits)
}

/// Runs the training loop on the simulated WAN.
///
/// `conns` and `hook` carry WANify's parallel-connection plan and local
/// agents for the WQ variant; pass `None` for single connections.
///
/// # Panics
///
/// Panics if the master id is out of range or a bandwidth matrix has the
/// wrong size.
pub fn run_training<'a, 'b: 'a>(
    sim: &mut NetSim,
    cfg: &QuantConfig,
    policy: &QuantPolicy,
    conns: Option<&ConnMatrix>,
    mut hook: Option<&'a mut (dyn EpochHook + 'b)>,
) -> TrainingReport {
    let n = sim.topology().len();
    assert!(cfg.master.0 < n, "master DC out of range");
    let conns = conns.cloned().unwrap_or_else(|| ConnMatrix::filled(n, 1));

    let bits: Vec<u32> = (0..n)
        .map(|w| {
            if w == cfg.master.0 {
                cfg.max_bits
            } else {
                match policy {
                    QuantPolicy::FullPrecision => cfg.max_bits,
                    QuantPolicy::BwDriven(bw) => {
                        assert_eq!(bw.len(), n, "belief matrix size mismatch");
                        // The exchange is bidirectional; the weaker believed
                        // direction gates the budget.
                        let up = bw.get(w, cfg.master.0);
                        let down = bw.get(cfg.master.0, w);
                        bits_for(up.min(down), cfg)
                    }
                }
            }
        })
        .collect();

    let mut training_s = 0.0;
    let mut min_bw = f64::INFINITY;
    let mut egress_gb = vec![0.0; n];
    for _ in 0..cfg.epochs {
        sim.advance(cfg.compute_s_per_epoch);
        training_s += cfg.compute_s_per_epoch;
        let mut transfers = Vec::new();
        for (w, &worker_bits) in bits.iter().enumerate() {
            if w == cfg.master.0 {
                continue;
            }
            let gb =
                cfg.grad_mb_per_epoch / 1024.0 * f64::from(worker_bits) / f64::from(cfg.max_bits);
            // Gradients up, quantized model deltas down.
            transfers.push(Transfer::from_gigabytes(DcId(w), cfg.master, gb));
            transfers.push(Transfer::from_gigabytes(cfg.master, DcId(w), gb));
        }
        let report = sim.run_transfers(&transfers, &conns, hook.as_deref_mut());
        training_s += report.makespan_s;
        min_bw = min_bw.min(report.min_pair_bw_mbps);
        for (i, gb) in report.egress_gigabits.iter().enumerate() {
            egress_gb[i] += gb / 8.0;
        }
    }

    let cost = CostModel::new().price(sim.topology(), training_s, &egress_gb, cfg.input_gb);
    TrainingReport {
        training_s,
        cost,
        min_bw_mbps: if min_bw.is_finite() { min_bw } else { 0.0 },
        bits_per_worker: bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanify_netsim::{paper_testbed_n, LinkModelParams, VmType};

    fn sim(n: usize) -> NetSim {
        NetSim::new(paper_testbed_n(VmType::t2_medium(), n), LinkModelParams::frozen(), 21)
    }

    fn small_cfg() -> QuantConfig {
        QuantConfig {
            grad_mb_per_epoch: 400.0,
            compute_s_per_epoch: 30.0,
            epochs: 2,
            target_transfer_s: 5.0,
            ..QuantConfig::default()
        }
    }

    #[test]
    fn bits_scale_with_believed_bandwidth() {
        let cfg = QuantConfig::default();
        assert_eq!(bits_for(10_000.0, &cfg), 32);
        let weak = bits_for(120.0, &cfg);
        let strong = bits_for(1700.0, &cfg);
        assert!(weak < strong, "weak link {weak} bits vs strong {strong} bits");
        assert!(weak >= cfg.min_bits);
    }

    #[test]
    fn bits_clamped_to_range() {
        let cfg = QuantConfig::default();
        assert_eq!(bits_for(0.0, &cfg), cfg.min_bits);
        assert_eq!(bits_for(f64::MAX, &cfg), cfg.max_bits);
    }

    #[test]
    fn quantization_shortens_training() {
        let cfg = small_cfg();
        let mut s1 = sim(4);
        let noq = run_training(&mut s1, &cfg, &QuantPolicy::FullPrecision, None, None);
        let mut s2 = sim(4);
        let belief = s2.measure_runtime(&ConnMatrix::filled(4, 1), 5).bw;
        let quant = run_training(&mut s2, &cfg, &QuantPolicy::BwDriven(belief), None, None);
        assert!(
            quant.training_s < noq.training_s,
            "quantized {} vs full {}",
            quant.training_s,
            noq.training_s
        );
        assert!(quant.bits_per_worker.iter().any(|&b| b < 32));
    }

    #[test]
    fn master_keeps_full_precision() {
        let cfg = small_cfg();
        let mut s = sim(3);
        let belief = BwMatrix::filled(3, 50.0);
        let r = run_training(&mut s, &cfg, &QuantPolicy::BwDriven(belief), None, None);
        assert_eq!(r.bits_per_worker[cfg.master.0], cfg.max_bits);
    }

    #[test]
    fn parallel_connections_cut_network_time() {
        let cfg = small_cfg();
        let mut s1 = sim(4);
        let single = run_training(&mut s1, &cfg, &QuantPolicy::FullPrecision, None, None);
        let mut s2 = sim(4);
        let conns = ConnMatrix::from_fn(4, |i, j| if i == j { 1 } else { 6 });
        let parallel = run_training(&mut s2, &cfg, &QuantPolicy::FullPrecision, Some(&conns), None);
        assert!(parallel.training_s < single.training_s);
    }

    #[test]
    fn report_costs_are_positive() {
        let cfg = small_cfg();
        let mut s = sim(3);
        let r = run_training(&mut s, &cfg, &QuantPolicy::FullPrecision, None, None);
        assert!(r.cost.total_usd() > 0.0);
        assert!(r.min_bw_mbps > 0.0);
    }
}
