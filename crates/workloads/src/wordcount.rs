//! WordCount with controllable intermediate data and skew.
//!
//! The paper controls the shuffle volume by generating inputs of all
//! distinct words (§5.3.2: the Python generator) and controls skew by
//! moving HDFS blocks into four regions (§5.8.1).

use wanify_gda::{DataLayout, JobProfile, StageProfile};

/// vCPU-seconds per GB for tokenize+count map.
const MAP_COMPUTE_S_PER_GB: f64 = 2.5;
/// vCPU-seconds per GB for the final aggregation.
const REDUCE_COMPUTE_S_PER_GB: f64 = 1.0;

/// Builds a WordCount whose map stage emits exactly `intermediate_mb` of
/// shuffle data from `input_mb` of input spread over `layout`.
///
/// # Panics
///
/// Panics if `input_mb <= 0`.
pub fn job_with_intermediate(layout: DataLayout, intermediate_mb: f64) -> JobProfile {
    let input_mb = layout.total_gb() * 1024.0;
    assert!(input_mb > 0.0, "wordcount needs a non-empty input");
    let selectivity = (intermediate_mb / input_mb).max(0.0);
    JobProfile::new(
        "wordcount",
        layout,
        vec![
            StageProfile::shuffling("tokenize-map", selectivity, MAP_COMPUTE_S_PER_GB),
            StageProfile::terminal("count-reduce", 0.2, REDUCE_COMPUTE_S_PER_GB),
        ],
    )
}

/// The Fig. 6 sweep: `input_mb` of all-distinct words over `n` DCs,
/// with the observed intermediate size from the paper's x-axis.
pub fn sweep_job(n_dcs: usize, input_mb: f64, intermediate_mb: f64) -> JobProfile {
    job_with_intermediate(DataLayout::uniform(n_dcs, input_mb / 1024.0), intermediate_mb)
}

/// The Fig. 10 skewed layout: 600 MB total with block mass concentrated in
/// the four named regions (US East, US West, AP South, AP SE = DCs 0-3 of
/// the paper testbed), leaving the rest nearly empty.
///
/// # Panics
///
/// Panics if `n_dcs < 4`.
pub fn skewed_layout(n_dcs: usize, total_mb: f64) -> DataLayout {
    assert!(n_dcs >= 4, "the skew experiment concentrates data in 4 DCs");
    let mut layout = DataLayout::uniform(n_dcs, total_mb / 1024.0);
    // Move everything from DCs 4.. into DCs 0-3 round-robin, emulating the
    // paper's HDFS block moves.
    for from in 4..n_dcs {
        let blocks = layout.blocks_per_dc[from];
        layout.move_blocks(from, from % 4, blocks);
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intermediate_size_is_respected() {
        let j = sweep_job(8, 300.0, 7.4);
        let shuffle_mb = j.estimated_shuffle_gb() * 1024.0;
        assert!((shuffle_mb - 7.4).abs() < 0.5, "got {shuffle_mb} MB");
    }

    #[test]
    fn zero_intermediate_allowed() {
        let j = sweep_job(4, 100.0, 0.0);
        assert_eq!(j.estimated_shuffle_gb(), 0.0);
    }

    #[test]
    fn skewed_layout_concentrates_in_first_four_dcs() {
        let l = skewed_layout(8, 600.0);
        let w = l.skew_weights();
        let head: f64 = w[..4].iter().sum();
        assert!(head > 0.99, "all mass in DCs 0-3, got {w:?}");
        assert!(l.skewness() > 0.1);
        assert!((l.total_gb() * 1024.0 - 600.0).abs() < 64.1, "mass conserved");
    }

    #[test]
    #[should_panic]
    fn skew_needs_four_dcs() {
        let _ = skewed_layout(3, 600.0);
    }
}
