//! Open-loop load generation for the serving gateway.
//!
//! Closed-loop drivers ([`wanify_gda::Arrivals::Closed`]) can never
//! overload a system — each client waits for its previous job. Measuring
//! overload behaviour needs an *open* loop: arrivals keep coming at the
//! offered rate whether or not the fleet keeps up. [`offered_load`]
//! samples a deterministic Poisson request stream over the mixed
//! multi-tenant trace, and [`rate_sweep`] scales one spec across a list
//! of offered rates (same jobs, same arrival *pattern*, compressed or
//! stretched in time) — the sweep a goodput-vs-load curve is measured
//! on, from well below saturation to far beyond it.

use crate::trace::{trace_iter, TraceConfig, TraceIter};
use wanify_gda::{poisson_times_iter, JobProfile, PoissonTimes};

/// Shape of one open-loop offered load.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Data centers every job's layout must cover.
    pub n_dcs: usize,
    /// Number of requests in the stream.
    pub jobs: usize,
    /// Seed of both the job-mix and the arrival streams.
    pub seed: u64,
    /// Multiplier on every job's input size.
    pub scale: f64,
    /// Offered arrival rate, requests per simulated second (> 0).
    pub rate_per_s: f64,
    /// Relative completion deadline granted to every request (arrival +
    /// slack); `None` issues requests without deadlines.
    pub deadline_slack_s: Option<f64>,
}

impl LoadSpec {
    /// An open-loop stream of `jobs` requests at `rate_per_s` over
    /// `n_dcs` data centers.
    pub fn new(n_dcs: usize, jobs: usize, seed: u64, rate_per_s: f64) -> Self {
        Self { n_dcs, jobs, seed, scale: 1.0, rate_per_s, deadline_slack_s: None }
    }

    /// Sets the input-size multiplier.
    #[must_use]
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Grants every request a completion deadline `slack_s` after its
    /// arrival.
    #[must_use]
    pub fn with_deadline_slack(mut self, slack_s: f64) -> Self {
        self.deadline_slack_s = Some(slack_s);
        self
    }

    /// The same spec at a different offered rate.
    #[must_use]
    pub fn at_rate(mut self, rate_per_s: f64) -> Self {
        self.rate_per_s = rate_per_s;
        self
    }
}

/// One request of an offered load: a job, when it arrives, and its
/// optional absolute deadline. Mirrors the gateway's request shape
/// without depending on the gateway crate.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferedJob {
    /// The query to run.
    pub job: JobProfile,
    /// Absolute arrival time at the front-end, seconds.
    pub arrival_s: f64,
    /// Absolute completion deadline, if the spec grants one.
    pub deadline_s: Option<f64>,
}

/// Samples the deterministic open-loop request stream of `spec`: the
/// mixed multi-tenant trace ([`mixed_trace`]) with Poisson arrival
/// times ([`poisson_arrival_times`]) at the offered rate, sorted by
/// arrival (Poisson times are already non-decreasing). Equal specs
/// produce bit-identical streams.
///
/// # Panics
///
/// Panics on a degenerate spec: no jobs, no DCs, a non-positive scale
/// or rate, or a non-positive deadline slack.
pub fn offered_load(spec: &LoadSpec) -> Vec<OfferedJob> {
    offered_load_iter(spec).collect()
}

/// The streaming form of [`offered_load`]: zips the streaming trace
/// ([`trace_iter`]) with the streaming Poisson arrival schedule
/// ([`poisson_times_iter`]), so a million-request stream is generated
/// in O(1) memory. `Clone + Send`; collecting it reproduces the
/// materialized Vec bit for bit.
///
/// # Panics
///
/// Panics on a degenerate spec: no jobs, no DCs, a non-positive scale
/// or rate, or a non-positive deadline slack.
pub fn offered_load_iter(spec: &LoadSpec) -> OfferedLoadIter {
    assert!(
        spec.rate_per_s.is_finite() && spec.rate_per_s > 0.0,
        "offered rate must be finite and positive, got {}",
        spec.rate_per_s
    );
    if let Some(slack) = spec.deadline_slack_s {
        assert!(
            slack.is_finite() && slack > 0.0,
            "deadline slack must be finite and positive, got {slack}"
        );
    }
    let jobs = trace_iter(&TraceConfig::new(spec.n_dcs, spec.jobs, spec.seed).scaled(spec.scale));
    let times = poisson_times_iter(spec.rate_per_s, spec.seed).expect("rate validated above");
    OfferedLoadIter { jobs, times, deadline_slack_s: spec.deadline_slack_s }
}

/// Streaming request source behind [`offered_load`]; see
/// [`offered_load_iter`].
#[derive(Debug, Clone)]
pub struct OfferedLoadIter {
    jobs: TraceIter,
    times: PoissonTimes,
    deadline_slack_s: Option<f64>,
}

impl Iterator for OfferedLoadIter {
    type Item = OfferedJob;

    fn next(&mut self) -> Option<OfferedJob> {
        let job = self.jobs.next()?;
        let arrival_s = self.times.next().expect("Poisson stream is unbounded");
        Some(OfferedJob {
            job,
            arrival_s,
            deadline_s: self.deadline_slack_s.map(|slack| arrival_s + slack),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.jobs.size_hint()
    }
}

impl ExactSizeIterator for OfferedLoadIter {}

/// The same base load at each offered rate: identical job mix and
/// arrival pattern, compressed or stretched in time. This is the sweep
/// a goodput-vs-offered-load curve is measured on — only the rate
/// varies between points, so the curve isolates overload behaviour from
/// workload noise.
pub fn rate_sweep(base: &LoadSpec, rates: &[f64]) -> Vec<(f64, Vec<OfferedJob>)> {
    rates.iter().map(|&r| (r, offered_load(&base.clone().at_rate(r)))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_is_deterministic_and_sorted() {
        let spec = LoadSpec::new(3, 25, 9, 0.05).with_deadline_slack(300.0);
        let a = offered_load(&spec);
        let b = offered_load(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        for w in a.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s, "arrivals must be non-decreasing");
        }
        for r in &a {
            assert_eq!(r.deadline_s, Some(r.arrival_s + 300.0));
        }
    }

    #[test]
    fn rate_scales_arrival_times_not_the_mix() {
        let base = LoadSpec::new(3, 10, 4, 0.01);
        let slow = offered_load(&base);
        let fast = offered_load(&base.clone().at_rate(0.1));
        let names = |l: &[OfferedJob]| l.iter().map(|o| o.job.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(&slow), names(&fast), "the job mix is rate-independent");
        let last = |l: &[OfferedJob]| l.last().unwrap().arrival_s;
        assert!(
            (last(&slow) / last(&fast) - 10.0).abs() < 1e-6,
            "10x the rate compresses the same pattern 10x in time"
        );
    }

    #[test]
    fn rate_sweep_covers_every_rate() {
        let sweep = rate_sweep(&LoadSpec::new(3, 5, 1, 0.01), &[0.005, 0.01, 0.02]);
        assert_eq!(sweep.len(), 3);
        for (rate, reqs) in &sweep {
            assert_eq!(reqs.len(), 5);
            assert!(*rate > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "offered rate")]
    fn zero_rate_panics() {
        let _ = offered_load(&LoadSpec::new(3, 5, 1, 0.0));
    }
}
