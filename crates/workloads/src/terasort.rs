//! TeraSort: the canonical shuffle-everything benchmark.
//!
//! Sorting shuffles its entire input across the cluster (selectivity ≈ 1),
//! which is why the paper uses it to stress parallel data transfer
//! approaches (§5.3.1, Fig. 5). The 100 GB configuration matches §5.1.

use wanify_gda::{DataLayout, JobProfile, StageProfile};

/// vCPU-seconds per GB for the partition/sample map pass.
const MAP_COMPUTE_S_PER_GB: f64 = 4.0;
/// vCPU-seconds per GB for the merge/sort reduce pass.
const REDUCE_COMPUTE_S_PER_GB: f64 = 6.0;

/// Builds a TeraSort job over `layout`.
///
/// # Examples
///
/// ```
/// use wanify_gda::DataLayout;
/// let job = wanify_workloads::terasort::job(DataLayout::uniform(8, 100.0));
/// assert_eq!(job.stages.len(), 2);
/// assert!((job.estimated_shuffle_gb() - 100.0).abs() < 0.5);
/// ```
pub fn job(layout: DataLayout) -> JobProfile {
    JobProfile::new(
        "terasort",
        layout,
        vec![
            StageProfile::shuffling("partition-map", 1.0, MAP_COMPUTE_S_PER_GB),
            StageProfile::terminal("sort-reduce", 1.0, REDUCE_COMPUTE_S_PER_GB),
        ],
    )
}

/// The paper's TeraSort configuration: 100 GB spread uniformly over `n` DCs.
pub fn paper_job(n_dcs: usize) -> JobProfile {
    job(DataLayout::uniform(n_dcs, 100.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffles_its_whole_input() {
        let j = paper_job(8);
        assert!((j.estimated_shuffle_gb() - 100.0).abs() < 0.5);
        assert!(j.stages[0].shuffles);
        assert!(!j.stages[1].shuffles);
    }

    #[test]
    fn input_matches_paper_setup() {
        assert!((paper_job(8).input_gb() - 100.0).abs() < 0.5);
    }
}
