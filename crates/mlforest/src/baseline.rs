//! Baseline regressors the paper compares the Random Forest against.
//!
//! §3.1 reports that statistical regression suffers from bandwidth
//! outliers and that a CNN attempt plateaued around 85% accuracy for lack
//! of training data. We provide ordinary least squares and k-nearest
//! neighbours as the weaker comparators for the model-selection benchmark.

use crate::dataset::Dataset;

/// Ordinary least-squares linear regression (normal equations with ridge
/// damping for numerical stability).
#[derive(Debug, Clone)]
pub struct LinearRegressor {
    /// Intercept followed by one coefficient per feature.
    coefficients: Vec<f64>,
}

impl LinearRegressor {
    /// Fits by solving `(XᵀX + λI) β = Xᵀy` with a tiny ridge `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let p = data.n_features() + 1; // + intercept
        let lambda = 1e-8;
        // Build normal equations.
        let mut xtx = vec![vec![0.0; p]; p];
        let mut xty = vec![0.0; p];
        for (row, y) in data.iter() {
            let mut x = Vec::with_capacity(p);
            x.push(1.0);
            x.extend_from_slice(row);
            for i in 0..p {
                xty[i] += x[i] * y;
                for j in 0..p {
                    xtx[i][j] += x[i] * x[j];
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += lambda;
        }
        let coefficients = solve_gaussian(xtx, xty);
        Self { coefficients }
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the training data.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len() + 1, self.coefficients.len(), "feature arity mismatch");
        self.coefficients[0]
            + row.iter().zip(&self.coefficients[1..]).map(|(x, c)| x * c).sum::<f64>()
    }

    /// Intercept and feature coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

/// Gaussian elimination with partial pivoting.
fn solve_gaussian(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite"))
            .expect("non-empty system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue; // singular direction; ridge damping keeps this rare
        }
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            let pivot_row: Vec<f64> = a[col][col..n].to_vec();
            for (k, pv) in (col..n).zip(pivot_row) {
                a[row][k] -= factor * pv;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in (col + 1)..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-12 { 0.0 } else { sum / a[col][col] };
    }
    x
}

/// k-nearest-neighbours regression with Euclidean distance.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    data: Dataset,
}

impl KnnRegressor {
    /// Stores the training data for lazy prediction.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `k == 0`.
    pub fn fit(data: &Dataset, k: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(k > 0, "k must be positive");
        Self { k: k.min(data.len()), data: data.clone() }
    }

    /// Mean target of the `k` nearest training rows.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut dists: Vec<(f64, f64)> = self
            .data
            .iter()
            .map(|(x, y)| {
                let d: f64 = x.iter().zip(row).map(|(a, b)| (a - b).powi(2)).sum();
                (d, y)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        dists.iter().take(self.k).map(|&(_, y)| y).sum::<f64>() / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            let x0 = f64::from(i);
            let x1 = f64::from(i % 5);
            d.push(vec![x0, x1], 2.0 * x0 - 3.0 * x1 + 7.0).unwrap();
        }
        d
    }

    #[test]
    fn ols_recovers_exact_linear_relation() {
        let m = LinearRegressor::fit(&linear_data());
        let c = m.coefficients();
        assert!((c[0] - 7.0).abs() < 1e-6, "intercept {}", c[0]);
        assert!((c[1] - 2.0).abs() < 1e-6);
        assert!((c[2] + 3.0).abs() < 1e-6);
        assert!((m.predict(&[10.0, 2.0]) - 21.0).abs() < 1e-6);
    }

    #[test]
    fn ols_handles_constant_feature() {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            d.push(vec![f64::from(i), 1.0], f64::from(i)).unwrap();
        }
        let m = LinearRegressor::fit(&d);
        assert!((m.predict(&[7.0, 1.0]) - 7.0).abs() < 1e-4);
    }

    #[test]
    fn knn_interpolates_locally() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push(vec![f64::from(i)], f64::from(i) * 10.0).unwrap();
        }
        let m = KnnRegressor::fit(&d, 1);
        assert_eq!(m.predict(&[3.2]), 30.0);
        let m3 = KnnRegressor::fit(&d, 3);
        assert_eq!(m3.predict(&[5.0]), 50.0); // neighbours 4,5,6 average to 50
    }

    #[test]
    fn knn_k_larger_than_dataset_is_clamped() {
        let mut d = Dataset::new(1);
        d.push(vec![0.0], 2.0).unwrap();
        d.push(vec![1.0], 4.0).unwrap();
        let m = KnnRegressor::fit(&d, 10);
        assert_eq!(m.predict(&[0.5]), 3.0);
    }

    #[test]
    #[should_panic]
    fn knn_zero_k_panics() {
        let _ = KnnRegressor::fit(&linear_data(), 0);
    }
}
