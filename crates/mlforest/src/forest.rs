//! Random Forest regression: bagging + feature subsampling + warm start.
//!
//! Fit and batch prediction are parallelized with `rayon`: bagging is
//! embarrassingly parallel, and determinism is preserved by deriving one
//! RNG seed per tree from the forest seed *before* fanning out, so the
//! ensemble is bit-identical at any thread count (see
//! `deterministic_across_thread_counts`).

use crate::dataset::Dataset;
use crate::tree::{RegressionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Hyper-parameters of a [`RandomForest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees. The paper settles on 100 estimators (§5.1).
    pub n_estimators: usize,
    /// Per-tree CART parameters.
    pub tree: TreeParams,
    /// Features sampled per split; `None` = `max(1, n_features / 3)`,
    /// the common regression default.
    pub features_per_split: Option<usize>,
    /// Draw bootstrap samples (with replacement) per tree.
    pub bootstrap: bool,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            tree: TreeParams { max_depth: 18, min_samples_leaf: 1, ..TreeParams::default() },
            features_per_split: None,
            bootstrap: true,
        }
    }
}

/// A fitted Random Forest regressor.
///
/// The ensemble mean of bootstrapped CART trees; supports
/// [`warm_start`](RandomForest::warm_start) retraining, which the paper uses
/// when the maximum cluster size grows (§3.3.2) or prediction error drifts
/// (§3.3.4).
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    /// Out-of-bag row sets per tree (indices into the training data).
    oob_rows: Vec<Vec<usize>>,
    params: ForestParams,
    n_features: usize,
    next_seed: u64,
}

impl RandomForest {
    /// Fits a forest of [`ForestParams::n_estimators`] trees on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `n_estimators` is zero.
    pub fn fit(data: &Dataset, params: &ForestParams, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(params.n_estimators > 0, "a forest needs at least one tree");
        let mut forest = Self {
            trees: Vec::new(),
            oob_rows: Vec::new(),
            params: params.clone(),
            n_features: data.n_features(),
            next_seed: seed,
        };
        forest.grow(data, params.n_estimators);
        forest
    }

    /// Adds `extra` trees trained on `data`, keeping the existing ensemble
    /// — the paper's warm-start retraining path.
    ///
    /// # Panics
    ///
    /// Panics if `data`'s width differs from the original training data.
    pub fn warm_start(&mut self, data: &Dataset, extra: usize) {
        assert_eq!(data.n_features(), self.n_features, "feature arity changed across warm start");
        self.grow(data, extra);
    }

    fn grow(&mut self, data: &Dataset, count: usize) {
        let tree_params = TreeParams {
            features_per_split: self
                .params
                .features_per_split
                .or(Some((data.n_features() / 3).max(1))),
            ..self.params.tree.clone()
        };
        // Pre-derive every tree's seed from the forest seed chain so the
        // per-tree work can fan out to any number of threads while the
        // fitted ensemble stays bit-identical to a sequential build.
        let seeds: Vec<u64> = (0..count)
            .map(|_| {
                let seed = self.next_seed;
                self.next_seed = self.next_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                seed
            })
            .collect();
        let bootstrap = self.params.bootstrap;
        let fitted: Vec<(RegressionTree, Vec<usize>)> = seeds
            .into_par_iter()
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let (sample, oob) = if bootstrap {
                    let n = data.len();
                    let mut in_bag = vec![false; n];
                    let indices: Vec<usize> = (0..n)
                        .map(|_| {
                            let i = rng.gen_range(0..n);
                            in_bag[i] = true;
                            i
                        })
                        .collect();
                    let oob: Vec<usize> = (0..n).filter(|&i| !in_bag[i]).collect();
                    (data.select(&indices), oob)
                } else {
                    (data.clone(), Vec::new())
                };
                (RegressionTree::fit(&sample, &tree_params, &mut rng), oob)
            })
            .collect();
        for (tree, oob) in fitted {
            self.trees.push(tree);
            self.oob_rows.push(oob);
        }
    }

    /// Ensemble-mean prediction for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the training feature count.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(row)).sum();
        sum / self.trees.len() as f64
    }

    /// Predictions for a batch of rows, computed in parallel across rows
    /// (each row's ensemble mean stays a sequential, order-stable sum, so
    /// results are bit-identical at any thread count).
    pub fn predict_batch<'a>(&self, rows: impl IntoIterator<Item = &'a [f64]>) -> Vec<f64> {
        let rows: Vec<&[f64]> = rows.into_iter().collect();
        rows.into_par_iter().map(|r| self.predict(r)).collect()
    }

    /// Number of trees currently in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Out-of-bag mean absolute error against `data` (the training set the
    /// forest was fitted on). Returns `None` when bootstrap was disabled or
    /// no row was ever out-of-bag.
    pub fn oob_mae(&self, data: &Dataset) -> Option<f64> {
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..data.len() {
            let mut sum = 0.0;
            let mut trees = 0usize;
            for (t, oob) in self.trees.iter().zip(&self.oob_rows) {
                if oob.binary_search(&i).is_ok() {
                    sum += t.predict(data.row(i));
                    trees += 1;
                }
            }
            if trees > 0 {
                total += (sum / trees as f64 - data.target(i)).abs();
                count += 1;
            }
        }
        (count > 0).then(|| total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn friedman_like(n: usize, seed: u64) -> Dataset {
        // A smooth nonlinear target over 4 features.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(4);
        for _ in 0..n {
            let x: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
            let y = 10.0 * (std::f64::consts::PI * x[0] * x[1]).sin()
                + 20.0 * (x[2] - 0.5).powi(2)
                + 10.0 * x[3];
            d.push(x, y).unwrap();
        }
        d
    }

    #[test]
    fn forest_beats_single_tree_on_noise() {
        let train = friedman_like(400, 1);
        let test = friedman_like(100, 2);
        let params = ForestParams { n_estimators: 40, ..ForestParams::default() };
        let forest = RandomForest::fit(&train, &params, 3);
        let single = RandomForest::fit(
            &train,
            &ForestParams { n_estimators: 1, bootstrap: false, ..params },
            3,
        );
        let err = |m: &RandomForest| {
            let preds: Vec<f64> = test.iter().map(|(x, _)| m.predict(x)).collect();
            metrics::mse(&preds, test.targets())
        };
        assert!(err(&forest) < err(&single), "ensemble should generalize better");
    }

    #[test]
    fn high_r2_on_smooth_function() {
        let train = friedman_like(600, 4);
        let test = friedman_like(150, 5);
        let forest = RandomForest::fit(&train, &ForestParams::default(), 6);
        let preds: Vec<f64> = test.iter().map(|(x, _)| forest.predict(x)).collect();
        let r2 = metrics::r2(&preds, test.targets());
        assert!(r2 > 0.85, "R² = {r2}");
    }

    #[test]
    fn warm_start_extends_ensemble() {
        let train = friedman_like(200, 7);
        let mut forest = RandomForest::fit(
            &train,
            &ForestParams { n_estimators: 10, ..ForestParams::default() },
            8,
        );
        assert_eq!(forest.n_trees(), 10);
        forest.warm_start(&train, 15);
        assert_eq!(forest.n_trees(), 25);
    }

    #[test]
    fn warm_start_on_new_data_improves_new_regime() {
        // Regime A: y = x; regime B (new cluster sizes): y = x + 50.
        let mut a = Dataset::new(2);
        let mut b = Dataset::new(2);
        for i in 0..150 {
            let x = f64::from(i) / 10.0;
            a.push(vec![x, 0.0], x).unwrap();
            b.push(vec![x, 1.0], x + 50.0).unwrap();
        }
        let mut forest =
            RandomForest::fit(&a, &ForestParams { n_estimators: 30, ..ForestParams::default() }, 9);
        let before = (forest.predict(&[5.0, 1.0]) - 55.0).abs();
        let mut merged = a.clone();
        merged.extend_from(&b).unwrap();
        forest.warm_start(&merged, 60);
        let after = (forest.predict(&[5.0, 1.0]) - 55.0).abs();
        assert!(after < before, "warm start should adapt: {after} vs {before}");
    }

    #[test]
    fn oob_error_available_with_bootstrap() {
        let train = friedman_like(300, 10);
        let forest = RandomForest::fit(
            &train,
            &ForestParams { n_estimators: 25, ..ForestParams::default() },
            11,
        );
        let mae = forest.oob_mae(&train).expect("bootstrap forests have OOB rows");
        assert!(mae > 0.0 && mae < 5.0, "OOB MAE = {mae}");
    }

    #[test]
    fn oob_error_absent_without_bootstrap() {
        let train = friedman_like(50, 12);
        let forest = RandomForest::fit(
            &train,
            &ForestParams { n_estimators: 3, bootstrap: false, ..ForestParams::default() },
            13,
        );
        assert!(forest.oob_mae(&train).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let train = friedman_like(100, 14);
        let p = ForestParams { n_estimators: 5, ..ForestParams::default() };
        let a = RandomForest::fit(&train, &p, 99);
        let b = RandomForest::fit(&train, &p, 99);
        assert_eq!(a.predict(&[0.3, 0.4, 0.5, 0.6]), b.predict(&[0.3, 0.4, 0.5, 0.6]));
    }

    #[test]
    #[should_panic]
    fn zero_estimators_panics() {
        let train = friedman_like(10, 15);
        let _ = RandomForest::fit(
            &train,
            &ForestParams { n_estimators: 0, ..ForestParams::default() },
            0,
        );
    }

    /// A Table-3-shaped dataset (6 features, bandwidth-scale targets) for
    /// the parallel-fit regression tests.
    fn table3_like(rows: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(6);
        for _ in 0..rows {
            let x: Vec<f64> = (0..6).map(|_| rng.gen::<f64>()).collect();
            // Snapshot BW dominates, host metrics and distance modulate.
            let y = 1800.0 * x[0] / (1.0 + 2.0 * x[5])
                + 120.0 * x[1]
                + 60.0 * (x[2] - 0.5)
                + 30.0 * x[3] * x[4];
            d.push(x, y).unwrap();
        }
        d
    }

    fn fit_with_threads(data: &Dataset, threads: usize) -> RandomForest {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            RandomForest::fit(
                data,
                &ForestParams { n_estimators: 24, ..ForestParams::default() },
                0xF0E1,
            )
        })
    }

    /// Regression pin: the rayon-parallel fit+predict path reproduces a
    /// fixed golden prediction for a seeded dataset, bit for bit. If this
    /// moves, forest determinism broke (seed chain, RNG, or reduction
    /// order).
    #[test]
    fn golden_prediction_regression() {
        let data = table3_like(400, 99);
        let forest = RandomForest::fit(
            &data,
            &ForestParams { n_estimators: 24, ..ForestParams::default() },
            0xF0E1,
        );
        let probe = [0.5, 0.25, 0.75, 0.1, 0.9, 0.33];
        let golden = f64::from_bits(GOLDEN_PREDICTION_BITS);
        assert_eq!(
            forest.predict(&probe).to_bits(),
            golden.to_bits(),
            "prediction {} drifted from golden {}",
            forest.predict(&probe),
            golden
        );
    }

    /// Bit pattern of the expected `golden_prediction_regression` output
    /// (582.4684602783736), produced by this crate's seeded pipeline.
    const GOLDEN_PREDICTION_BITS: u64 = 4648334662578092216;

    /// The parallel fit is bit-identical across thread counts, including
    /// the sequential (1-thread) path.
    #[test]
    fn deterministic_across_thread_counts() {
        let data = table3_like(300, 7);
        let probes = table3_like(40, 8);
        let single = fit_with_threads(&data, 1);
        for threads in [2, 4, 8] {
            let multi = fit_with_threads(&data, threads);
            for (row, _) in probes.iter() {
                assert_eq!(
                    single.predict(row).to_bits(),
                    multi.predict(row).to_bits(),
                    "{threads}-thread fit diverged from sequential"
                );
            }
            let batch_single: Vec<f64> = probes.iter().map(|(r, _)| single.predict(r)).collect();
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let batch_multi = pool.install(|| multi.predict_batch(probes.iter().map(|(r, _)| r)));
            assert_eq!(batch_single, batch_multi);
        }
    }

    /// On multi-core hosts the parallel fit must beat the 1-thread fit on
    /// a Table-3-sized training set (the outputs are asserted identical
    /// either way; the speedup assertion is skipped on single-core CI).
    /// Each arm takes its best of two runs so a transient scheduler burp
    /// cannot flip the comparison on a loaded machine.
    #[test]
    fn parallel_fit_is_faster_on_multicore() {
        let data = table3_like(1500, 21);
        let time_fit = |threads: usize| {
            let start = std::time::Instant::now();
            let forest = fit_with_threads(&data, threads);
            (start.elapsed(), forest)
        };
        // Warm up allocators/caches so the comparison is fair.
        let _ = fit_with_threads(&data, 1);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let (elapsed_single, single) = time_fit(1);
        let (elapsed_multi, multi) = time_fit(cores.min(8));
        let probe = [0.4, 0.6, 0.2, 0.8, 0.5, 0.1];
        assert_eq!(single.predict(&probe).to_bits(), multi.predict(&probe).to_bits());
        if cores > 1 {
            let best_single = elapsed_single.min(time_fit(1).0);
            let best_multi = elapsed_multi.min(time_fit(cores.min(8)).0);
            assert!(
                best_multi < best_single,
                "parallel fit {best_multi:?} should beat single-thread {best_single:?} \
                 on {cores} cores"
            );
        }
    }
}
