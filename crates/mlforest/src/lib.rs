//! # wanify-forest
//!
//! A from-scratch CART / Random-Forest **regressor**, the machine-learning
//! substrate of WANify's runtime-bandwidth prediction model (paper §3.1).
//!
//! The paper selects a decision-tree-based Random Forest because it handles
//! multivariate regression with outliers, needs far less training data than
//! deep learning, and is cheap to (re)train — including *warm starts* when
//! the cluster grows (§3.3.2) or the model goes stale (§3.3.4). This crate
//! implements exactly those capabilities:
//!
//! * [`RegressionTree`] — CART with variance-reduction splits;
//! * [`RandomForest`] — bootstrap aggregation with per-split feature
//!   subsampling, out-of-bag error estimation and [`RandomForest::warm_start`];
//! * [`Dataset`] — a simple row-major feature matrix;
//! * [`metrics`] — MSE/MAE/R² plus the paper's percentage "training
//!   accuracy" (100 − MAPE).
//!
//! ## Example
//!
//! ```
//! use wanify_forest::{Dataset, ForestParams, RandomForest};
//!
//! // y = 3·x0 + 1; the forest should recover it closely.
//! let mut data = Dataset::new(1);
//! for i in 0..200 {
//!     let x = f64::from(i) / 10.0;
//!     data.push(vec![x], 3.0 * x + 1.0)?;
//! }
//! let forest = RandomForest::fit(&data, &ForestParams::default(), 42);
//! let pred = forest.predict(&[5.05]);
//! assert!((pred - 16.15).abs() < 1.0);
//! # Ok::<(), wanify_forest::DatasetError>(())
//! ```

pub mod baseline;
pub mod dataset;
pub mod forest;
pub mod metrics;
pub mod tree;

pub use baseline::{KnnRegressor, LinearRegressor};
pub use dataset::{Dataset, DatasetError};
pub use forest::{ForestParams, RandomForest};
pub use tree::{RegressionTree, TreeParams};
