//! Regression quality metrics.

/// Mean squared error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    check(predictions, targets);
    predictions.iter().zip(targets).map(|(p, t)| (p - t).powi(2)).sum::<f64>()
        / predictions.len() as f64
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    check(predictions, targets);
    predictions.iter().zip(targets).map(|(p, t)| (p - t).abs()).sum::<f64>()
        / predictions.len() as f64
}

/// Coefficient of determination R².
///
/// Returns 0.0 when the targets have zero variance (so a perfect constant
/// predictor neither gains nor loses).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r2(predictions: &[f64], targets: &[f64]) -> f64 {
    check(predictions, targets);
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = predictions.iter().zip(targets).map(|(p, t)| (t - p).powi(2)).sum();
    1.0 - ss_res / ss_tot
}

/// Mean absolute percentage error, skipping zero targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mape(predictions: &[f64], targets: &[f64]) -> f64 {
    check(predictions, targets);
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, t) in predictions.iter().zip(targets) {
        if t.abs() > f64::EPSILON {
            total += ((p - t) / t).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// The paper's percentage "training accuracy" (§5.1 reports 98.51%):
/// `100 · (1 − MAPE)`, floored at zero.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy_pct(predictions: &[f64], targets: &[f64]) -> f64 {
    (100.0 * (1.0 - mape(predictions, targets))).max(0.0)
}

fn check(predictions: &[f64], targets: &[f64]) {
    assert_eq!(predictions.len(), targets.len(), "prediction/target length mismatch");
    assert!(!predictions.is_empty(), "metrics need at least one sample");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
        assert_eq!(accuracy_pct(&y, &y), 100.0);
    }

    #[test]
    fn known_errors() {
        let p = [2.0, 4.0];
        let t = [1.0, 2.0];
        assert_eq!(mse(&p, &t), (1.0 + 4.0) / 2.0);
        assert_eq!(mae(&p, &t), 1.5);
        assert!((mape(&p, &t) - 1.0).abs() < 1e-12);
        assert_eq!(accuracy_pct(&p, &t), 0.0);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&p, &t).abs() < 1e-12);
    }

    #[test]
    fn r2_degenerate_targets() {
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let p = [10.0, 2.2];
        let t = [0.0, 2.0];
        assert!((mape(&p, &t) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn metric_ranges(
                pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..40),
            ) {
                let (p, t): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
                prop_assert!(mse(&p, &t) >= 0.0);
                prop_assert!(mae(&p, &t) >= 0.0);
                prop_assert!(r2(&p, &t) <= 1.0 + 1e-12);
                let acc = accuracy_pct(&p, &t);
                prop_assert!((0.0..=100.0).contains(&acc));
            }

            #[test]
            fn mae_bounded_by_rmse(
                pairs in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..40),
            ) {
                // Jensen: MAE ≤ sqrt(MSE).
                let (p, t): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
                prop_assert!(mae(&p, &t) <= mse(&p, &t).sqrt() + 1e-9);
            }

            #[test]
            fn shifting_both_preserves_mse(
                pairs in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 2..20),
                shift in -10.0f64..10.0,
            ) {
                let (p, t): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
                let ps: Vec<f64> = p.iter().map(|x| x + shift).collect();
                let ts: Vec<f64> = t.iter().map(|x| x + shift).collect();
                prop_assert!((mse(&p, &t) - mse(&ps, &ts)).abs() < 1e-9);
            }
        }
    }
}
