//! CART regression trees with variance-reduction splits.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Hyper-parameters of a single regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum depth; the root is depth 0.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
    /// Features sampled per split (`None` = all features).
    pub features_per_split: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 16, min_samples_split: 2, min_samples_leaf: 1, features_per_split: None }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A fitted CART regression tree.
///
/// Splits minimize the weighted sum of child variances (equivalently,
/// maximize variance reduction), the standard CART criterion for
/// regression.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fits a tree on `data`.
    ///
    /// `rng` drives per-split feature subsampling when
    /// [`TreeParams::features_per_split`] is set (used by the forest).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, params: &TreeParams, rng: &mut StdRng) -> Self {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let mut tree = Self { nodes: Vec::new(), n_features: data.n_features() };
        let indices: Vec<usize> = (0..data.len()).collect();
        tree.build(data, indices, params, 0, rng);
        tree
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the training feature count.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature arity mismatch");
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    at = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        self.depth_below(0)
    }

    fn depth_below(&self, at: usize) -> usize {
        match &self.nodes[at] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => {
                1 + self.depth_below(*left).max(self.depth_below(*right))
            }
        }
    }

    /// Recursively builds the subtree for `indices`; returns its node index.
    fn build(
        &mut self,
        data: &Dataset,
        indices: Vec<usize>,
        params: &TreeParams,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let mean = indices.iter().map(|&i| data.target(i)).sum::<f64>() / indices.len() as f64;
        let leaf_ok = depth >= params.max_depth
            || indices.len() < params.min_samples_split
            || indices.len() < 2 * params.min_samples_leaf;
        if !leaf_ok {
            if let Some((feature, threshold)) = self.best_split(data, &indices, params, rng) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| data.row(i)[feature] <= threshold);
                if left_idx.len() >= params.min_samples_leaf
                    && right_idx.len() >= params.min_samples_leaf
                {
                    let at = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: mean }); // placeholder
                    let left = self.build(data, left_idx, params, depth + 1, rng);
                    let right = self.build(data, right_idx, params, depth + 1, rng);
                    self.nodes[at] = Node::Split { feature, threshold, left, right };
                    return at;
                }
            }
        }
        self.nodes.push(Node::Leaf { value: mean });
        self.nodes.len() - 1
    }

    /// Finds the (feature, threshold) minimizing weighted child variance.
    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let mut features: Vec<usize> = (0..data.n_features()).collect();
        if let Some(k) = params.features_per_split {
            features.shuffle(rng);
            features.truncate(k.max(1).min(data.n_features()));
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for &feature in &features {
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                data.row(a)[feature].partial_cmp(&data.row(b)[feature]).expect("finite feature")
            });
            // Prefix sums of y and y^2 over the sorted order enable O(1)
            // variance computation for every candidate cut.
            let n = order.len();
            let mut sum = vec![0.0; n + 1];
            let mut sum2 = vec![0.0; n + 1];
            for (k, &i) in order.iter().enumerate() {
                let y = data.target(i);
                sum[k + 1] = sum[k] + y;
                sum2[k + 1] = sum2[k] + y * y;
            }
            let sse = |lo: usize, hi: usize| -> f64 {
                // Sum of squared errors of targets in order[lo..hi].
                let cnt = (hi - lo) as f64;
                let s = sum[hi] - sum[lo];
                let s2 = sum2[hi] - sum2[lo];
                (s2 - s * s / cnt).max(0.0)
            };
            for cut in params.min_samples_leaf..=(n - params.min_samples_leaf) {
                if cut == 0 || cut == n {
                    continue;
                }
                let lo_val = data.row(order[cut - 1])[feature];
                let hi_val = data.row(order[cut])[feature];
                if lo_val == hi_val {
                    continue; // cannot separate equal feature values
                }
                let score = sse(0, cut) + sse(cut, n);
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((feature, (lo_val + hi_val) / 2.0, score));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn step_data() -> Dataset {
        // y = 10 for x < 5, y = 20 for x >= 5: one split suffices.
        let mut d = Dataset::new(1);
        for i in 0..10 {
            let x = f64::from(i);
            d.push(vec![x], if x < 5.0 { 10.0 } else { 20.0 }).unwrap();
        }
        d
    }

    #[test]
    fn learns_a_step_function() {
        let tree = RegressionTree::fit(&step_data(), &TreeParams::default(), &mut rng());
        assert_eq!(tree.predict(&[2.0]), 10.0);
        assert_eq!(tree.predict(&[7.0]), 20.0);
    }

    #[test]
    fn depth_zero_yields_global_mean() {
        let params = TreeParams { max_depth: 0, ..TreeParams::default() };
        let tree = RegressionTree::fit(&step_data(), &params, &mut rng());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[0.0]), 15.0);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn constant_targets_produce_single_leaf() {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            d.push(vec![f64::from(i), f64::from(i % 3)], 4.2).unwrap();
        }
        let tree = RegressionTree::fit(&d, &TreeParams::default(), &mut rng());
        // Splitting never reduces SSE below 0, but any split keeps SSE at 0;
        // predictions must be exact either way.
        assert_eq!(tree.predict(&[3.0, 1.0]), 4.2);
    }

    #[test]
    fn min_samples_leaf_limits_granularity() {
        let params = TreeParams { min_samples_leaf: 5, ..TreeParams::default() };
        let tree = RegressionTree::fit(&step_data(), &params, &mut rng());
        // With 10 samples and min leaf 5, at most one split is possible.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn multivariate_split_picks_informative_feature() {
        // Feature 1 is noise; feature 0 determines y.
        let mut d = Dataset::new(2);
        for i in 0..40 {
            let x = f64::from(i);
            d.push(vec![x, f64::from(i % 2)], if x < 20.0 { -5.0 } else { 5.0 }).unwrap();
        }
        let tree = RegressionTree::fit(&d, &TreeParams::default(), &mut rng());
        assert_eq!(tree.predict(&[3.0, 0.0]), -5.0);
        assert_eq!(tree.predict(&[33.0, 0.0]), 5.0);
    }

    #[test]
    fn piecewise_linear_approximation_improves_with_depth() {
        let mut d = Dataset::new(1);
        for i in 0..200 {
            let x = f64::from(i) / 20.0;
            d.push(vec![x], x.sin()).unwrap();
        }
        let shallow = RegressionTree::fit(
            &d,
            &TreeParams { max_depth: 2, ..TreeParams::default() },
            &mut rng(),
        );
        let deep = RegressionTree::fit(
            &d,
            &TreeParams { max_depth: 8, ..TreeParams::default() },
            &mut rng(),
        );
        let err = |t: &RegressionTree| -> f64 {
            d.iter().map(|(x, y)| (t.predict(x) - y).powi(2)).sum::<f64>() / d.len() as f64
        };
        assert!(err(&deep) < err(&shallow) / 4.0);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let d = Dataset::new(1);
        let _ = RegressionTree::fit(&d, &TreeParams::default(), &mut rng());
    }

    #[test]
    #[should_panic]
    fn predict_checks_arity() {
        let tree = RegressionTree::fit(&step_data(), &TreeParams::default(), &mut rng());
        let _ = tree.predict(&[1.0, 2.0]);
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn predictions_within_target_range(
                rows in proptest::collection::vec((0.0f64..100.0, -50.0f64..50.0), 5..60),
                probe in 0.0f64..100.0,
            ) {
                let mut d = Dataset::new(1);
                for (x, y) in &rows {
                    d.push(vec![*x], *y).unwrap();
                }
                let tree = RegressionTree::fit(&d, &TreeParams::default(), &mut rng());
                let lo = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
                let hi = rows.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
                let p = tree.predict(&[probe]);
                // Leaf values are means of training targets, so predictions
                // can never escape the convex hull of the targets.
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }

            #[test]
            fn training_points_fit_exactly_with_unlimited_depth(
                xs in proptest::collection::btree_set(0i32..1000, 2..40),
            ) {
                let mut d = Dataset::new(1);
                for &x in &xs {
                    d.push(vec![f64::from(x)], f64::from(x % 7)).unwrap();
                }
                let params = TreeParams { max_depth: 64, ..TreeParams::default() };
                let tree = RegressionTree::fit(&d, &params, &mut rng());
                for (row, y) in d.iter() {
                    prop_assert!((tree.predict(row) - y).abs() < 1e-9);
                }
            }
        }
    }
}
