//! Row-major regression datasets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Errors raised when assembling a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A row's feature count did not match the dataset's width.
    WrongArity {
        /// Expected number of features.
        expected: usize,
        /// Number of features in the offending row.
        got: usize,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::WrongArity { expected, got } => {
                write!(f, "row has {got} features but the dataset expects {expected}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A supervised regression dataset: rows of features plus one target each.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    n_features: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset expecting `n_features` features per row.
    pub fn new(n_features: usize) -> Self {
        Self { n_features, xs: Vec::new(), ys: Vec::new() }
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::WrongArity`] if `features.len()` differs from
    /// the dataset's width.
    pub fn push(&mut self, features: Vec<f64>, target: f64) -> Result<(), DatasetError> {
        if features.len() != self.n_features {
            return Err(DatasetError::WrongArity {
                expected: self.n_features,
                got: features.len(),
            });
        }
        self.xs.push(features);
        self.ys.push(target);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Number of features per row.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.xs[i]
    }

    /// Target of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn target(&self, i: usize) -> f64 {
        self.ys[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.ys
    }

    /// Iterates over `(features, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> {
        self.xs.iter().map(Vec::as_slice).zip(self.ys.iter().copied())
    }

    /// Merges another dataset of identical width into this one.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::WrongArity`] on width mismatch.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<(), DatasetError> {
        if other.n_features != self.n_features {
            return Err(DatasetError::WrongArity {
                expected: self.n_features,
                got: other.n_features,
            });
        }
        self.xs.extend(other.xs.iter().cloned());
        self.ys.extend(other.ys.iter().copied());
        Ok(())
    }

    /// Splits into `(train, test)` with `test_fraction` of samples held out,
    /// shuffled by `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is outside `[0, 1)`.
    pub fn train_test_split(&self, test_fraction: f64, rng: &mut StdRng) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_fraction), "test fraction must be in [0, 1)");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let n_test = (self.len() as f64 * test_fraction).round() as usize;
        let mut train = Dataset::new(self.n_features);
        let mut test = Dataset::new(self.n_features);
        for (k, &i) in order.iter().enumerate() {
            let dst = if k < n_test { &mut test } else { &mut train };
            dst.xs.push(self.xs[i].clone());
            dst.ys.push(self.ys[i]);
        }
        (train, test)
    }

    /// A new dataset containing the given row indices (with repetition),
    /// used for bootstrap sampling.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_features);
        for &i in indices {
            out.xs.push(self.xs[i].clone());
            out.ys.push(self.ys[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n {
            let x = i as f64;
            d.push(vec![x, -x], 2.0 * x).unwrap();
        }
        d
    }

    #[test]
    fn push_checks_arity() {
        let mut d = Dataset::new(3);
        let err = d.push(vec![1.0], 0.0).unwrap_err();
        assert_eq!(err, DatasetError::WrongArity { expected: 3, got: 1 });
        assert!(d.is_empty());
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy(100);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.train_test_split(0.2, &mut rng);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(train.n_features(), 2);
    }

    #[test]
    fn split_zero_fraction_keeps_everything_in_train() {
        let d = toy(10);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = d.train_test_split(0.0, &mut rng);
        assert_eq!(train.len(), 10);
        assert!(test.is_empty());
    }

    #[test]
    fn select_allows_repetition() {
        let d = toy(3);
        let b = d.select(&[0, 0, 2]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.target(0), 0.0);
        assert_eq!(b.target(2), 4.0);
    }

    #[test]
    fn extend_from_requires_same_width() {
        let mut a = toy(2);
        let b = Dataset::new(5);
        assert!(a.extend_from(&b).is_err());
        let c = toy(4);
        a.extend_from(&c).unwrap();
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn iter_yields_pairs() {
        let d = toy(3);
        let collected: Vec<f64> = d.iter().map(|(_, y)| y).collect();
        assert_eq!(collected, vec![0.0, 2.0, 4.0]);
    }
}
