//! Weighted max-min fair bandwidth allocation (progressive filling).
//!
//! Runtime contention is the core of the paper's motivation (§2.2): when
//! all DC pairs transfer simultaneously, each flow's throughput is decided
//! by how the shared resources — VM egress NICs, VM ingress NICs and
//! backbone paths — are divided. The simulator divides them with classic
//! progressive filling, weighted by each flow's TCP bias
//! (`connections / RTT^alpha`), subject to per-flow window ceilings.
//!
//! # Hot-path design
//!
//! The solver sits in the inner loop of [`crate::NetSim::run_transfers`]
//! and of every probe, so both the problem and the solver are built for
//! reuse:
//!
//! * [`FairnessProblem`] stores resource membership as CSR-style flat
//!   arrays (one shared member vector plus per-resource offsets) instead
//!   of a `Vec<Vec<usize>>`, and [`FairnessProblem::clear`] resets it
//!   without releasing capacity.
//! * [`FairnessWorkspace`] owns every buffer a solve needs (rates,
//!   active flags, per-resource `used` and active-weight sums, and the
//!   flow→resource CSR adjacency); repeated [`FairnessWorkspace::solve`]
//!   calls are allocation-free once the buffers have grown to size.
//! * Each progressive-filling round updates `used` and the active-weight
//!   sums incrementally — O(resources) per round plus O(membership
//!   degree) once per flow when it freezes — rather than re-summing every
//!   member of every resource each round.

/// Identifies a capacity-constrained resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Aggregate WAN egress NIC of a data center.
    Egress(usize),
    /// Aggregate WAN ingress NIC of a data center.
    Ingress(usize),
    /// Backbone path for a directed region pair.
    Path(usize, usize),
}

/// A weighted max-min allocation problem.
///
/// Flows are referenced by their index in insertion order. Each flow has a
/// contention `weight` and a throughput `ceiling` (its window limit); each
/// resource caps the sum of its member flows' rates.
#[derive(Debug, Clone, Default)]
pub struct FairnessProblem {
    weights: Vec<f64>,
    ceilings: Vec<f64>,
    res_kinds: Vec<ResourceKind>,
    res_caps: Vec<f64>,
    /// CSR offsets into `members`; resource `r` owns
    /// `members[res_bounds[r]..res_bounds[r + 1]]`.
    res_bounds: Vec<usize>,
    members: Vec<usize>,
}

impl FairnessProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the problem while keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.weights.clear();
        self.ceilings.clear();
        self.res_kinds.clear();
        self.res_caps.clear();
        self.res_bounds.clear();
        self.members.clear();
    }

    /// Adds a flow and returns its index.
    ///
    /// A non-positive `weight` or `ceiling` yields a flow that is allocated
    /// zero bandwidth.
    pub fn add_flow(&mut self, weight: f64, ceiling_mbps: f64) -> usize {
        self.weights.push(weight.max(0.0));
        self.ceilings.push(ceiling_mbps.max(0.0));
        self.weights.len() - 1
    }

    /// Adds a resource constraining the given member flows.
    ///
    /// # Panics
    ///
    /// Panics if any member index does not refer to an added flow.
    pub fn add_resource(&mut self, kind: ResourceKind, capacity_mbps: f64, members: &[usize]) {
        self.add_resource_with(kind, capacity_mbps, members.iter().copied());
    }

    /// Adds a resource whose members come from an iterator, copying them
    /// straight into the flat membership array (no intermediate `Vec`).
    ///
    /// # Panics
    ///
    /// Panics if any member index does not refer to an added flow.
    pub fn add_resource_with(
        &mut self,
        kind: ResourceKind,
        capacity_mbps: f64,
        members: impl IntoIterator<Item = usize>,
    ) {
        if self.res_bounds.is_empty() {
            self.res_bounds.push(0);
        }
        for m in members {
            assert!(m < self.weights.len(), "resource member {m} refers to an unknown flow");
            self.members.push(m);
        }
        self.res_kinds.push(kind);
        self.res_caps.push(capacity_mbps.max(0.0));
        self.res_bounds.push(self.members.len());
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of resources.
    pub fn resource_count(&self) -> usize {
        self.res_caps.len()
    }

    /// Member flows of resource `r`.
    fn members_of(&self, r: usize) -> &[usize] {
        &self.members[self.res_bounds[r]..self.res_bounds[r + 1]]
    }

    /// Iterates over `(kind, capacity_mbps, members)` for every resource.
    pub fn resources(&self) -> impl Iterator<Item = (ResourceKind, f64, &[usize])> + '_ {
        (0..self.resource_count())
            .map(|r| (self.res_kinds[r], self.res_caps[r], self.members_of(r)))
    }
}

/// Reusable buffers for [`allocate_max_min`]-style solves.
///
/// One workspace can serve any sequence of problems; buffers grow to the
/// high-water mark and are then reused without further allocation.
#[derive(Debug, Clone, Default)]
pub struct FairnessWorkspace {
    rates: Vec<f64>,
    active: Vec<bool>,
    /// Incrementally maintained bandwidth consumed per resource.
    used: Vec<f64>,
    /// Incrementally maintained sum of active member weights per resource.
    active_w: Vec<f64>,
    /// Active member count per resource; when it reaches zero `active_w`
    /// is pinned to exactly 0.0, so float residue from the incremental
    /// subtractions can never leave a ghost resource binding `t_star`.
    active_n: Vec<usize>,
    /// CSR adjacency flow → resources (offsets + flat resource indices).
    flow_res_bounds: Vec<usize>,
    flow_res: Vec<usize>,
    cursor: Vec<usize>,
}

impl FairnessWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-flow rates of the most recent [`FairnessWorkspace::solve`].
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Deactivates flow `f`, removing its weight from every resource it
    /// belongs to and folding `rate_delta` (a ceiling clamp correction)
    /// into those resources' `used` sums.
    fn freeze_flow(&mut self, f: usize, weight: f64, rate_delta: f64) {
        self.active[f] = false;
        for k in self.flow_res_bounds[f]..self.flow_res_bounds[f + 1] {
            let r = self.flow_res[k];
            self.used[r] += rate_delta;
            self.active_n[r] -= 1;
            self.active_w[r] =
                if self.active_n[r] == 0 { 0.0 } else { (self.active_w[r] - weight).max(0.0) };
        }
    }

    /// Solves `problem` by progressive filling; returns per-flow rates in
    /// Mbps (also available afterwards via [`FairnessWorkspace::rates`]).
    ///
    /// Properties (checked by tests below):
    /// * no resource is oversubscribed;
    /// * no flow exceeds its ceiling;
    /// * the allocation is max-min fair w.r.t. the weights: a flow is only
    ///   below its proportional share if a ceiling or a saturated resource
    ///   binds it.
    pub fn solve(&mut self, problem: &FairnessProblem) -> &[f64] {
        const EPS: f64 = 1e-9;
        let n = problem.flow_count();
        let nr = problem.resource_count();

        self.rates.clear();
        self.rates.resize(n, 0.0);
        self.active.clear();
        self.active.resize(n, false);
        self.used.clear();
        self.used.resize(nr, 0.0);
        self.active_w.clear();
        self.active_w.resize(nr, 0.0);
        self.active_n.clear();
        self.active_n.resize(nr, 0);

        // Flow → resource CSR adjacency via a counting sort over members.
        self.flow_res_bounds.clear();
        self.flow_res_bounds.resize(n + 1, 0);
        for &m in &problem.members {
            self.flow_res_bounds[m + 1] += 1;
        }
        for f in 0..n {
            self.flow_res_bounds[f + 1] += self.flow_res_bounds[f];
        }
        self.flow_res.clear();
        self.flow_res.resize(problem.members.len(), 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.flow_res_bounds[..n]);
        for r in 0..nr {
            for &m in problem.members_of(r) {
                self.flow_res[self.cursor[m]] = r;
                self.cursor[m] += 1;
            }
        }

        let mut active_count = 0usize;
        for f in 0..n {
            if problem.weights[f] > EPS && problem.ceilings[f] > EPS {
                self.active[f] = true;
                active_count += 1;
            }
        }
        for r in 0..nr {
            let active_members = problem.members_of(r).iter().filter(|&&m| self.active[m]);
            self.active_n[r] = active_members.clone().count();
            self.active_w[r] = active_members.map(|&m| problem.weights[m]).sum();
        }

        // Each round saturates at least one flow or resource, so the loop
        // runs at most flows + resources times.
        for _ in 0..(n + nr + 1) {
            if active_count == 0 {
                break;
            }
            // Smallest normalized headroom across ceilings and resources.
            let mut t_star = f64::INFINITY;
            for f in 0..n {
                if self.active[f] {
                    t_star = t_star.min((problem.ceilings[f] - self.rates[f]) / problem.weights[f]);
                }
            }
            for r in 0..nr {
                if self.active_w[r] > EPS {
                    t_star = t_star
                        .min((problem.res_caps[r] - self.used[r]).max(0.0) / self.active_w[r]);
                }
            }
            if !t_star.is_finite() {
                break;
            }
            for f in 0..n {
                if self.active[f] {
                    self.rates[f] += problem.weights[f] * t_star;
                }
            }
            for r in 0..nr {
                if self.active_w[r] > EPS {
                    self.used[r] += self.active_w[r] * t_star;
                }
            }
            // Freeze flows at their ceiling, then members of saturated
            // resources; the freeze work is O(membership degree) and each
            // flow freezes at most once over the whole solve.
            for f in 0..n {
                if self.active[f] && self.rates[f] + EPS >= problem.ceilings[f] {
                    let delta = problem.ceilings[f] - self.rates[f];
                    self.rates[f] = problem.ceilings[f];
                    self.freeze_flow(f, problem.weights[f], delta);
                    active_count -= 1;
                }
            }
            for r in 0..nr {
                if self.active_w[r] > EPS && self.used[r] + EPS >= problem.res_caps[r] {
                    for &m in problem.members_of(r) {
                        if self.active[m] {
                            self.freeze_flow(m, problem.weights[m], 0.0);
                            active_count -= 1;
                        }
                    }
                }
            }
            if t_star <= EPS {
                // Numerical stall: everything remaining is effectively frozen.
                break;
            }
        }
        &self.rates
    }
}

/// Solves the problem by progressive filling; returns per-flow rates in Mbps.
///
/// Convenience wrapper that allocates a fresh [`FairnessWorkspace`]; hot
/// paths should hold a workspace and call [`FairnessWorkspace::solve`].
pub fn allocate_max_min(problem: &FairnessProblem) -> Vec<f64> {
    let mut ws = FairnessWorkspace::new();
    ws.solve(problem);
    ws.rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(rates: &[f64], members: &[usize]) -> f64 {
        members.iter().map(|&m| rates[m]).sum()
    }

    #[test]
    fn single_flow_hits_min_of_ceiling_and_capacity() {
        let mut p = FairnessProblem::new();
        let f = p.add_flow(1.0, 500.0);
        p.add_resource(ResourceKind::Egress(0), 1000.0, &[f]);
        assert!((allocate_max_min(&p)[f] - 500.0).abs() < 1e-6);

        let mut p = FairnessProblem::new();
        let f = p.add_flow(1.0, 5000.0);
        p.add_resource(ResourceKind::Egress(0), 1000.0, &[f]);
        assert!((allocate_max_min(&p)[f] - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn equal_weights_split_equally() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(1.0, 1e9);
        let b = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 1000.0, &[a, b]);
        let r = allocate_max_min(&p);
        assert!((r[a] - 500.0).abs() < 1e-6 && (r[b] - 500.0).abs() < 1e-6);
    }

    #[test]
    fn weights_bias_the_split() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(3.0, 1e9);
        let b = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 1000.0, &[a, b]);
        let r = allocate_max_min(&p);
        assert!((r[a] - 750.0).abs() < 1e-6 && (r[b] - 250.0).abs() < 1e-6);
    }

    #[test]
    fn ceiling_frees_capacity_for_others() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(1.0, 100.0); // window-limited
        let b = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 1000.0, &[a, b]);
        let r = allocate_max_min(&p);
        assert!((r[a] - 100.0).abs() < 1e-6);
        assert!((r[b] - 900.0).abs() < 1e-6, "b should absorb a's unused share, got {}", r[b]);
    }

    #[test]
    fn multiple_resources_bind_the_tightest() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 800.0, &[a]);
        p.add_resource(ResourceKind::Ingress(1), 300.0, &[a]);
        p.add_resource(ResourceKind::Path(0, 1), 4000.0, &[a]);
        assert!((allocate_max_min(&p)[a] - 300.0).abs() < 1e-6);
    }

    #[test]
    fn zero_weight_flow_gets_nothing() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(0.0, 1e9);
        let b = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 1000.0, &[a, b]);
        let r = allocate_max_min(&p);
        assert_eq!(r[a], 0.0);
        assert!((r[b] - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_problem_returns_empty() {
        assert!(allocate_max_min(&FairnessProblem::new()).is_empty());
    }

    #[test]
    fn shared_middle_resource_triangle() {
        // Two flows share host 0 egress; one of them is also path-limited.
        let mut p = FairnessProblem::new();
        let near = p.add_flow(4.0, 1e9);
        let far = p.add_flow(1.0, 120.0);
        p.add_resource(ResourceKind::Egress(0), 1000.0, &[near, far]);
        let r = allocate_max_min(&p);
        assert!((r[far] - 120.0).abs() < 1e-6);
        assert!((r[near] - 880.0).abs() < 1e-6);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_state() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(1.0, 100.0);
        p.add_resource(ResourceKind::Egress(0), 50.0, &[a]);
        p.clear();
        assert_eq!(p.flow_count(), 0);
        assert_eq!(p.resource_count(), 0);
        let b = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 700.0, &[b]);
        assert!((allocate_max_min(&p)[b] - 700.0).abs() < 1e-6);
    }

    #[test]
    fn huge_weights_leave_no_ghost_resources() {
        // Float residue from the incremental active-weight subtraction
        // must not let a saturated resource whose members all froze keep
        // binding t_star; flows on other resources must still fill up.
        let mut p = FairnessProblem::new();
        let a = p.add_flow(1.0e8 / 3.0, 1e9);
        let b = p.add_flow(1.0e8 / 7.0, 1e9);
        let c = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 500.0, &[a, b]);
        p.add_resource(ResourceKind::Egress(1), 800.0, &[c]);
        let fast = allocate_max_min(&p);
        let slow = reference_solve(&p);
        for (f, (&x, &y)) in fast.iter().zip(&slow).enumerate() {
            assert!((x - y).abs() < 1e-6, "flow {f}: incremental {x} vs reference {y}");
        }
        assert!((fast[c] - 800.0).abs() < 1e-6, "flow c must fill its own NIC, got {}", fast[c]);
    }

    #[test]
    fn workspace_reuse_is_consistent() {
        let mut ws = FairnessWorkspace::new();
        let mut big = FairnessProblem::new();
        for i in 0..20 {
            let f = big.add_flow(1.0 + i as f64, 1e9);
            big.add_resource(ResourceKind::Egress(i), 100.0, &[f]);
        }
        let first = ws.solve(&big).to_vec();

        // A smaller problem in between must not leak state…
        let mut small = FairnessProblem::new();
        let a = small.add_flow(2.0, 1e9);
        small.add_resource(ResourceKind::Egress(0), 10.0, &[a]);
        assert!((ws.solve(&small)[a] - 10.0).abs() < 1e-6);

        // …and re-solving the big problem is bit-identical.
        assert_eq!(ws.solve(&big), first.as_slice());
    }

    /// Textbook progressive filling with per-round full recomputation —
    /// the reference the incremental solver is checked against.
    fn reference_solve(p: &FairnessProblem) -> Vec<f64> {
        const EPS: f64 = 1e-9;
        let n = p.flow_count();
        let mut rates = vec![0.0_f64; n];
        let mut active: Vec<bool> =
            (0..n).map(|f| p.weights[f] > EPS && p.ceilings[f] > EPS).collect();
        for _ in 0..(n + p.resource_count() + 1) {
            if !active.iter().any(|&a| a) {
                break;
            }
            let mut t_star = f64::INFINITY;
            for f in 0..n {
                if active[f] {
                    t_star = t_star.min((p.ceilings[f] - rates[f]) / p.weights[f]);
                }
            }
            for (_, cap, members) in p.resources() {
                let used: f64 = members.iter().map(|&m| rates[m]).sum();
                let w: f64 = members.iter().filter(|&&m| active[m]).map(|&m| p.weights[m]).sum();
                if w > EPS {
                    t_star = t_star.min((cap - used).max(0.0) / w);
                }
            }
            if !t_star.is_finite() {
                break;
            }
            for f in 0..n {
                if active[f] {
                    rates[f] += p.weights[f] * t_star;
                }
            }
            for f in 0..n {
                if active[f] && rates[f] + EPS >= p.ceilings[f] {
                    rates[f] = p.ceilings[f];
                    active[f] = false;
                }
            }
            for (_, cap, members) in p.resources() {
                let used: f64 = members.iter().map(|&m| rates[m]).sum();
                if used + EPS >= cap {
                    for &m in members {
                        active[m] = false;
                    }
                }
            }
            if t_star <= EPS {
                break;
            }
        }
        rates
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_problem() -> impl Strategy<Value = FairnessProblem> {
            (2usize..6, 1usize..4).prop_flat_map(|(nf, nr)| {
                let flows = proptest::collection::vec((0.1f64..10.0, 10.0f64..5000.0), nf);
                let resources = proptest::collection::vec(
                    (50.0f64..3000.0, proptest::collection::vec(0usize..nf, 1..=nf)),
                    nr,
                );
                (flows, resources).prop_map(|(flows, resources)| {
                    let mut p = FairnessProblem::new();
                    for (w, c) in flows {
                        p.add_flow(w, c);
                    }
                    for (i, (cap, mut members)) in resources.into_iter().enumerate() {
                        members.sort_unstable();
                        members.dedup();
                        p.add_resource(ResourceKind::Egress(i), cap, &members);
                    }
                    p
                })
            })
        }

        proptest! {
            #[test]
            fn no_resource_oversubscribed(p in arb_problem()) {
                let rates = allocate_max_min(&p);
                for (kind, cap, members) in p.resources() {
                    let used = total(&rates, members);
                    prop_assert!(used <= cap + 1e-6,
                        "{kind:?} used {used} of {cap}");
                }
            }

            #[test]
            fn no_flow_exceeds_ceiling(p in arb_problem()) {
                let rates = allocate_max_min(&p);
                for (f, &rate) in rates.iter().enumerate() {
                    prop_assert!(rate <= p.ceilings[f] + 1e-6);
                    prop_assert!(rate >= 0.0);
                }
            }

            #[test]
            fn allocation_is_pareto_efficient(p in arb_problem()) {
                // Every flow is blocked by its ceiling or by a saturated resource.
                let rates = allocate_max_min(&p);
                for f in 0..p.flow_count() {
                    if rates[f] + 1e-6 >= p.ceilings[f] {
                        continue;
                    }
                    let blocked = p.resources().any(|(_, cap, members)| {
                        members.contains(&f) && total(&rates, members) + 1e-6 >= cap
                    });
                    let unconstrained = !p.resources().any(|(_, _, members)| members.contains(&f));
                    prop_assert!(blocked || unconstrained,
                        "flow {f} at {} below ceiling {} with slack everywhere",
                        rates[f], p.ceilings[f]);
                }
            }

            #[test]
            fn incremental_matches_reference_solver(p in arb_problem()) {
                let fast = allocate_max_min(&p);
                let slow = reference_solve(&p);
                for (f, (&a, &b)) in fast.iter().zip(&slow).enumerate() {
                    prop_assert!((a - b).abs() < 1e-6,
                        "flow {f}: incremental {a} vs reference {b}");
                }
            }
        }
    }
}
