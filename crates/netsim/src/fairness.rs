//! Weighted max-min fair bandwidth allocation (progressive filling).
//!
//! Runtime contention is the core of the paper's motivation (§2.2): when
//! all DC pairs transfer simultaneously, each flow's throughput is decided
//! by how the shared resources — VM egress NICs, VM ingress NICs and
//! backbone paths — are divided. The simulator divides them with classic
//! progressive filling, weighted by each flow's TCP bias
//! (`connections / RTT^alpha`), subject to per-flow window ceilings.

/// Identifies a capacity-constrained resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Aggregate WAN egress NIC of a data center.
    Egress(usize),
    /// Aggregate WAN ingress NIC of a data center.
    Ingress(usize),
    /// Backbone path for a directed region pair.
    Path(usize, usize),
}

/// One capacity constraint and the flows it applies to.
#[derive(Debug, Clone)]
struct Resource {
    #[allow(dead_code)] // diagnostic only: surfaces in Debug output and test failure messages
    kind: ResourceKind,
    capacity_mbps: f64,
    members: Vec<usize>,
}

/// A weighted max-min allocation problem.
///
/// Flows are referenced by their index in insertion order. Each flow has a
/// contention `weight` and a throughput `ceiling` (its window limit); each
/// resource caps the sum of its member flows' rates.
#[derive(Debug, Clone, Default)]
pub struct FairnessProblem {
    weights: Vec<f64>,
    ceilings: Vec<f64>,
    resources: Vec<Resource>,
}

impl FairnessProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a flow and returns its index.
    ///
    /// A non-positive `weight` or `ceiling` yields a flow that is allocated
    /// zero bandwidth.
    pub fn add_flow(&mut self, weight: f64, ceiling_mbps: f64) -> usize {
        self.weights.push(weight.max(0.0));
        self.ceilings.push(ceiling_mbps.max(0.0));
        self.weights.len() - 1
    }

    /// Adds a resource constraining the given member flows.
    ///
    /// # Panics
    ///
    /// Panics if any member index does not refer to an added flow.
    pub fn add_resource(&mut self, kind: ResourceKind, capacity_mbps: f64, members: Vec<usize>) {
        for &m in &members {
            assert!(m < self.weights.len(), "resource member {m} refers to an unknown flow");
        }
        self.resources.push(Resource { kind, capacity_mbps: capacity_mbps.max(0.0), members });
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.weights.len()
    }
}

/// Solves the problem by progressive filling; returns per-flow rates in Mbps.
///
/// Properties (checked by tests below):
/// * no resource is oversubscribed;
/// * no flow exceeds its ceiling;
/// * the allocation is max-min fair w.r.t. the weights: a flow is only
///   below its proportional share if a ceiling or a saturated resource
///   binds it.
pub fn allocate_max_min(problem: &FairnessProblem) -> Vec<f64> {
    const EPS: f64 = 1e-9;
    let n = problem.flow_count();
    let mut rates = vec![0.0_f64; n];
    let mut active: Vec<bool> =
        (0..n).map(|f| problem.weights[f] > EPS && problem.ceilings[f] > EPS).collect();

    // Each iteration saturates at least one flow or resource, so the loop
    // runs at most flows + resources times.
    for _ in 0..(n + problem.resources.len() + 1) {
        if !active.iter().any(|&a| a) {
            break;
        }
        // Smallest normalized headroom across ceilings and resources.
        let mut t_star = f64::INFINITY;
        for f in 0..n {
            if active[f] {
                t_star = t_star.min((problem.ceilings[f] - rates[f]) / problem.weights[f]);
            }
        }
        for r in &problem.resources {
            let used: f64 = r.members.iter().map(|&m| rates[m]).sum();
            let w: f64 =
                r.members.iter().filter(|&&m| active[m]).map(|&m| problem.weights[m]).sum();
            if w > EPS {
                t_star = t_star.min((r.capacity_mbps - used).max(0.0) / w);
            }
        }
        if !t_star.is_finite() {
            break;
        }
        for f in 0..n {
            if active[f] {
                rates[f] += problem.weights[f] * t_star;
            }
        }
        // Freeze flows at their ceiling and members of saturated resources.
        for f in 0..n {
            if active[f] && rates[f] + EPS >= problem.ceilings[f] {
                rates[f] = problem.ceilings[f];
                active[f] = false;
            }
        }
        for r in &problem.resources {
            let used: f64 = r.members.iter().map(|&m| rates[m]).sum();
            if used + EPS >= r.capacity_mbps {
                for &m in &r.members {
                    active[m] = false;
                }
            }
        }
        if t_star <= EPS {
            // Numerical stall: everything remaining is effectively frozen.
            break;
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(rates: &[f64], members: &[usize]) -> f64 {
        members.iter().map(|&m| rates[m]).sum()
    }

    #[test]
    fn single_flow_hits_min_of_ceiling_and_capacity() {
        let mut p = FairnessProblem::new();
        let f = p.add_flow(1.0, 500.0);
        p.add_resource(ResourceKind::Egress(0), 1000.0, vec![f]);
        assert!((allocate_max_min(&p)[f] - 500.0).abs() < 1e-6);

        let mut p = FairnessProblem::new();
        let f = p.add_flow(1.0, 5000.0);
        p.add_resource(ResourceKind::Egress(0), 1000.0, vec![f]);
        assert!((allocate_max_min(&p)[f] - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn equal_weights_split_equally() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(1.0, 1e9);
        let b = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 1000.0, vec![a, b]);
        let r = allocate_max_min(&p);
        assert!((r[a] - 500.0).abs() < 1e-6 && (r[b] - 500.0).abs() < 1e-6);
    }

    #[test]
    fn weights_bias_the_split() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(3.0, 1e9);
        let b = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 1000.0, vec![a, b]);
        let r = allocate_max_min(&p);
        assert!((r[a] - 750.0).abs() < 1e-6 && (r[b] - 250.0).abs() < 1e-6);
    }

    #[test]
    fn ceiling_frees_capacity_for_others() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(1.0, 100.0); // window-limited
        let b = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 1000.0, vec![a, b]);
        let r = allocate_max_min(&p);
        assert!((r[a] - 100.0).abs() < 1e-6);
        assert!((r[b] - 900.0).abs() < 1e-6, "b should absorb a's unused share, got {}", r[b]);
    }

    #[test]
    fn multiple_resources_bind_the_tightest() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 800.0, vec![a]);
        p.add_resource(ResourceKind::Ingress(1), 300.0, vec![a]);
        p.add_resource(ResourceKind::Path(0, 1), 4000.0, vec![a]);
        assert!((allocate_max_min(&p)[a] - 300.0).abs() < 1e-6);
    }

    #[test]
    fn zero_weight_flow_gets_nothing() {
        let mut p = FairnessProblem::new();
        let a = p.add_flow(0.0, 1e9);
        let b = p.add_flow(1.0, 1e9);
        p.add_resource(ResourceKind::Egress(0), 1000.0, vec![a, b]);
        let r = allocate_max_min(&p);
        assert_eq!(r[a], 0.0);
        assert!((r[b] - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_problem_returns_empty() {
        assert!(allocate_max_min(&FairnessProblem::new()).is_empty());
    }

    #[test]
    fn shared_middle_resource_triangle() {
        // Two flows share host 0 egress; one of them is also path-limited.
        let mut p = FairnessProblem::new();
        let near = p.add_flow(4.0, 1e9);
        let far = p.add_flow(1.0, 120.0);
        p.add_resource(ResourceKind::Egress(0), 1000.0, vec![near, far]);
        let r = allocate_max_min(&p);
        assert!((r[far] - 120.0).abs() < 1e-6);
        assert!((r[near] - 880.0).abs() < 1e-6);
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_problem() -> impl Strategy<Value = FairnessProblem> {
            (2usize..6, 1usize..4).prop_flat_map(|(nf, nr)| {
                let flows = proptest::collection::vec((0.1f64..10.0, 10.0f64..5000.0), nf);
                let resources = proptest::collection::vec(
                    (50.0f64..3000.0, proptest::collection::vec(0usize..nf, 1..=nf)),
                    nr,
                );
                (flows, resources).prop_map(|(flows, resources)| {
                    let mut p = FairnessProblem::new();
                    for (w, c) in flows {
                        p.add_flow(w, c);
                    }
                    for (i, (cap, mut members)) in resources.into_iter().enumerate() {
                        members.sort_unstable();
                        members.dedup();
                        p.add_resource(ResourceKind::Egress(i), cap, members);
                    }
                    p
                })
            })
        }

        proptest! {
            #[test]
            fn no_resource_oversubscribed(p in arb_problem()) {
                let rates = allocate_max_min(&p);
                for r in &p.resources {
                    let used = total(&rates, &r.members);
                    prop_assert!(used <= r.capacity_mbps + 1e-6,
                        "{:?} used {used} of {}", r.kind, r.capacity_mbps);
                }
            }

            #[test]
            fn no_flow_exceeds_ceiling(p in arb_problem()) {
                let rates = allocate_max_min(&p);
                for (f, &rate) in rates.iter().enumerate() {
                    prop_assert!(rate <= p.ceilings[f] + 1e-6);
                    prop_assert!(rate >= 0.0);
                }
            }

            #[test]
            fn allocation_is_pareto_efficient(p in arb_problem()) {
                // Every flow is blocked by its ceiling or by a saturated resource.
                let rates = allocate_max_min(&p);
                for f in 0..p.flow_count() {
                    if rates[f] + 1e-6 >= p.ceilings[f] {
                        continue;
                    }
                    let blocked = p.resources.iter().any(|r| {
                        r.members.contains(&f)
                            && total(&rates, &r.members) + 1e-6 >= r.capacity_mbps
                    });
                    let unconstrained = !p.resources.iter().any(|r| r.members.contains(&f));
                    prop_assert!(blocked || unconstrained,
                        "flow {f} at {} below ceiling {} with slack everywhere",
                        rates[f], p.ceilings[f]);
                }
            }
        }
    }
}
