//! # wanify-netsim
//!
//! A deterministic, flow-level wide-area-network (WAN) simulator that stands
//! in for the AWS multi-region testbed used by the WANify paper (IISWC'25).
//!
//! The simulator models the four structural phenomena that WANify exploits:
//!
//! 1. **Window-limited single connections** — a single TCP connection over a
//!    long-RTT path achieves `K / RTT^alpha` Mbps, so distant regions see far
//!    less throughput than nearby ones (US East ↔ US West ≈ 1700 Mbps vs
//!    US East ↔ AP Southeast ≈ 121 Mbps with default calibration).
//! 2. **Runtime contention** — simultaneous all-to-all transfers share each
//!    VM's egress/ingress capacity under RTT-biased weighted max-min
//!    fairness, so statically measured bandwidth does not match runtime
//!    bandwidth (paper Table 1).
//! 3. **Connection-count leverage** — a flow's ceiling grows with its number
//!    of parallel connections, and its share of a contended NIC grows with
//!    its RTT-biased weight, so *heterogeneous* connection counts can raise
//!    the weakest link at the cost of the strongest (paper Fig. 2).
//! 4. **Congestion collapse** — oversubscribing a host's connection budget
//!    wastes goodput on retransmissions, so uniform parallelism stops helping
//!    (paper §2.2).
//!
//! Everything is seeded and reproducible; temporal dynamics follow an
//! Ornstein-Uhlenbeck process per directed region pair (paper §5.7).
//!
//! ## Performance model
//!
//! [`NetSim::run_transfers`] coalesces epochs between *events* — pair
//! drains, fault boundaries, dynamics ticks and hook wakes — performing
//! one fairness solve per event and jumping whole segments at a time,
//! bit-identically to per-epoch stepping (see the [`sim`] module docs).
//! Live dynamics stay coalescible because [`Dynamics`] is quantized onto
//! a configurable tick ([`LinkModelParams::dynamics_tick_s`]); hooks stay
//! coalescible when they schedule their wakes via
//! [`EpochHook::next_wake`], as the AIMD agent does. The solver runs
//! allocation-free through [`FairnessWorkspace`] / [`RateScratch`]
//! reusable buffers. Only the legacy continuous dynamics
//! (`dynamics_tick_s <= 0`) and hooks that decline to schedule force
//! stepping every epoch.
//!
//! For multi-tenant workloads — many queries' shuffles contending on one
//! WAN — the [`engine`] module generalizes the same machinery into the
//! resumable [`NetEngine`]: job-tagged flow groups submitted mid-flight,
//! completion events, and caller deadlines, still at one fairness solve
//! per event. The [`backbone`] module couples *several* such engines —
//! one per fleet shard — through finite inter-group trunks divided by a
//! coarse epoch exchange, so shards coalesce independently between sync
//! points and scale out across cores.
//!
//! ## Quick example
//!
//! ```
//! use wanify_netsim::{NetSim, Topology, Region, VmType, LinkModelParams};
//!
//! let topo = Topology::builder()
//!     .dc(Region::UsEast, VmType::t2_medium(), 1)
//!     .dc(Region::UsWest, VmType::t2_medium(), 1)
//!     .dc(Region::ApSoutheast1, VmType::t2_medium(), 1)
//!     .build()
//!     .expect("at least two data centers");
//! let mut sim = NetSim::new(topo, LinkModelParams::default(), 42);
//! let static_bw = sim.measure_static_independent();
//! let runtime = sim.measure_static_simultaneous();
//! assert!(static_bw.max_off_diag() > runtime.min_off_diag());
//! ```

pub mod backbone;
pub mod dynamics;
pub mod engine;
pub mod fairness;
pub mod faults;
pub mod flow;
pub mod geo;
pub mod grid;
pub mod probe;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod vm;

mod params;

pub use backbone::{Backbone, BackboneHierarchy};
pub use dynamics::Dynamics;
pub use engine::{GroupId, GroupReport, NetEngine};
pub use fairness::{allocate_max_min, FairnessProblem, FairnessWorkspace, ResourceKind};
pub use faults::{FaultEvent, FaultKind, FaultSchedule};
pub use flow::{FlowId, FlowSpec, Transfer, TransferReport};
pub use geo::{haversine_miles, GeoPoint, Region};
pub use grid::{BwMatrix, ConnMatrix, Grid};
pub use params::LinkModelParams;
pub use probe::{HostMetrics, ProbeReading};
pub use sim::{EpochCtx, EpochHook, NetSim, RateScratch, RunStats};
pub use topology::{DataCenter, DcId, Topology, TopologyBuilder, TopologyError};
pub use vm::VmType;

/// Convenience constructor for the paper's 8-region AWS testbed (Fig. 1)
/// with one VM of `vm` per data center.
///
/// The regions are, in index order: US East (N. Virginia), US West
/// (N. California), AP South (Mumbai), AP Southeast (Singapore),
/// AP Southeast 2 (Sydney), AP Northeast (Tokyo), EU West (Ireland) and
/// SA East (São Paulo).
///
/// # Examples
///
/// ```
/// use wanify_netsim::{paper_testbed, VmType};
/// let topo = paper_testbed(VmType::t2_medium());
/// assert_eq!(topo.len(), 8);
/// ```
pub fn paper_testbed(vm: VmType) -> Topology {
    Topology::builder()
        .dc(Region::UsEast, vm.clone(), 1)
        .dc(Region::UsWest, vm.clone(), 1)
        .dc(Region::ApSouth, vm.clone(), 1)
        .dc(Region::ApSoutheast1, vm.clone(), 1)
        .dc(Region::ApSoutheast2, vm.clone(), 1)
        .dc(Region::ApNortheast, vm.clone(), 1)
        .dc(Region::EuWest, vm.clone(), 1)
        .dc(Region::SaEast, vm, 1)
        .build()
        .expect("paper testbed has 8 DCs")
}

/// A testbed restricted to the first `n` regions of [`paper_testbed`],
/// used by the varying-cluster-size experiments (paper §3.3.2, Fig. 11a).
///
/// # Panics
///
/// Panics if `n < 2` or `n > 8`.
pub fn paper_testbed_n(vm: VmType, n: usize) -> Topology {
    assert!((2..=8).contains(&n), "paper testbed supports 2..=8 DCs, got {n}");
    let regions = Region::paper_order();
    let mut b = Topology::builder();
    for region in regions.iter().take(n) {
        b = b.dc(*region, vm.clone(), 1);
    }
    b.build().expect("n >= 2 DCs")
}

/// A testbed of `n` DCs tiling the eight paper regions in
/// [`Region::paper_order`] — DC `i` lives in region `i % 8` — for the
/// 64+ DC scale experiments the 8-region testbed cannot express. Every
/// region hosts `ceil(n / 8)`-ish DCs, so [`Backbone::regional`] /
/// [`backbone::BackboneHierarchy::regional_continental`] give it a
/// natural two-tier decomposition.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn paper_testbed_tiled(vm: VmType, n: usize) -> Topology {
    assert!(n >= 2, "a tiled testbed needs at least 2 DCs, got {n}");
    let regions = Region::paper_order();
    let mut b = Topology::builder();
    for i in 0..n {
        b = b.dc(regions[i % regions.len()], vm.clone(), 1);
    }
    b.build().expect("n >= 2 DCs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_has_eight_regions() {
        let topo = paper_testbed(VmType::t2_medium());
        assert_eq!(topo.len(), 8);
        assert_eq!(topo.dc(DcId(0)).region, Region::UsEast);
        assert_eq!(topo.dc(DcId(7)).region, Region::SaEast);
    }

    #[test]
    fn paper_testbed_n_truncates() {
        let topo = paper_testbed_n(VmType::t3_nano(), 3);
        assert_eq!(topo.len(), 3);
        assert_eq!(topo.dc(DcId(2)).region, Region::ApSouth);
    }

    #[test]
    #[should_panic]
    fn paper_testbed_n_rejects_one_dc() {
        let _ = paper_testbed_n(VmType::t3_nano(), 1);
    }
}
