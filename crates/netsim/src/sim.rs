//! The WAN simulator: rate allocation, temporal evolution and transfers.

use crate::dynamics::Dynamics;
use crate::fairness::{allocate_max_min, FairnessProblem, ResourceKind};
use crate::flow::{FlowSpec, Transfer, TransferReport};
use crate::grid::{BwMatrix, ConnMatrix, Grid};
use crate::params::LinkModelParams;
use crate::topology::{DcId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Context handed to an [`EpochHook`] once per simulated second.
///
/// WANify's local agents (paper §4.1.3) plug in here: they observe the
/// monitored per-pair bandwidth (the simulator's stand-in for `ifTop`),
/// and may adjust connection counts and traffic-control throttles for the
/// next epoch.
#[derive(Debug)]
pub struct EpochCtx<'a> {
    /// Simulation time at the start of the epoch, in seconds.
    pub time_s: f64,
    /// Throughput observed during the previous epoch, per directed pair.
    pub observed_bw: &'a BwMatrix,
    /// Remaining payload per directed pair, in gigabits.
    pub remaining_gb: &'a BwMatrix,
    /// Connection counts to use from the next epoch on (mutable).
    pub conns: &'a mut ConnMatrix,
    /// Per-pair throughput caps in Mbps (`f64::INFINITY` = unthrottled).
    pub throttles: &'a mut Grid<f64>,
}

/// Per-epoch callback driven by [`NetSim::run_transfers`].
pub trait EpochHook {
    /// Invoked after every simulated second.
    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>);
}

/// The deterministic WAN simulator.
///
/// See the crate-level documentation for the model; all randomness flows
/// from the seed given to [`NetSim::new`].
#[derive(Debug)]
pub struct NetSim {
    topo: Topology,
    params: LinkModelParams,
    dynamics: Dynamics,
    rng: StdRng,
    time_s: f64,
    throttles: Grid<f64>,
}

impl NetSim {
    /// Creates a simulator over `topo` with the given parameters and seed.
    pub fn new(topo: Topology, params: LinkModelParams, seed: u64) -> Self {
        let n = topo.len();
        let dynamics = Dynamics::new(n, params.dynamics_sigma, params.dynamics_theta);
        Self {
            topo,
            params,
            dynamics,
            rng: StdRng::seed_from_u64(seed),
            time_s: 0.0,
            throttles: Grid::filled(n, f64::INFINITY),
        }
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The link-model parameters.
    pub fn params(&self) -> &LinkModelParams {
        &self.params
    }

    /// Current simulation time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Mutable access to the RNG (probe noise shares the seed stream).
    pub(crate) fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Current dynamics multipliers (for inspection/testing).
    pub fn dynamics(&self) -> &Dynamics {
        &self.dynamics
    }

    /// Caps the directed pair `src → dst` at `cap_mbps` (traffic control,
    /// paper §3.2.2 "Throttling BW").
    pub fn set_throttle(&mut self, src: DcId, dst: DcId, cap_mbps: f64) {
        self.throttles.put(src, dst, cap_mbps.max(0.0));
    }

    /// Removes all traffic-control caps.
    pub fn clear_throttles(&mut self) {
        let n = self.topo.len();
        self.throttles = Grid::filled(n, f64::INFINITY);
    }

    /// Current throttle table.
    pub fn throttles(&self) -> &Grid<f64> {
        &self.throttles
    }

    /// Advances wall-clock time and bandwidth dynamics by `dt_s` seconds.
    pub fn advance(&mut self, dt_s: f64) {
        self.dynamics.advance(dt_s, &mut self.rng);
        self.time_s += dt_s;
    }

    /// Jumps to an independent point in time (a different hour/day), as the
    /// paper does when collecting training data over a week (§5.1).
    pub fn shuffle_time(&mut self) {
        self.dynamics.shuffle_epoch(&mut self.rng);
        self.time_s += 3600.0;
    }

    /// Ceiling of a flow in Mbps: window limit × dynamics × provider factor,
    /// capped by any traffic-control throttle.
    fn flow_ceiling(&self, f: &FlowSpec) -> f64 {
        let dist = self.topo.distance_miles(f.src, f.dst);
        let mut cap = f64::from(f.conns) * self.params.conn_cap_mbps(dist);
        cap *= self.dynamics.multiplier(f.src.0, f.dst.0);
        let src_provider = self.topo.dc(f.src).region.provider();
        let dst_provider = self.topo.dc(f.dst).region.provider();
        if src_provider != dst_provider {
            cap *= self.params.cross_provider_factor;
        }
        cap.min(self.throttles.at(f.src, f.dst))
    }

    /// Contention weight of a flow (connections × per-connection RTT bias).
    fn flow_weight(&self, f: &FlowSpec) -> f64 {
        let dist = self.topo.distance_miles(f.src, f.dst);
        f64::from(f.conns) * self.params.conn_weight(dist)
    }

    /// Allocates instantaneous rates (Mbps) to a set of concurrent flows
    /// under weighted max-min fairness with congestion-degraded NIC caps.
    ///
    /// Intra-DC flows (`src == dst`) are never WAN-limited and receive an
    /// effectively unbounded rate, matching the paper's system model (§2.1).
    pub fn allocate_rates(&self, flows: &[FlowSpec]) -> Vec<f64> {
        let n = self.topo.len();
        let mut problem = FairnessProblem::new();
        let mut egress_members: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut ingress_members: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut host_conns = vec![0u32; n];
        let mut rates = vec![0.0; flows.len()];

        let mut problem_index: Vec<Option<usize>> = vec![None; flows.len()];
        for (i, f) in flows.iter().enumerate() {
            if f.src == f.dst || f.conns == 0 {
                continue; // intra-DC or idle: handled after the solve
            }
            let idx = problem.add_flow(self.flow_weight(f), self.flow_ceiling(f));
            problem_index[i] = Some(idx);
            egress_members[f.src.0].push(idx);
            ingress_members[f.dst.0].push(idx);
            host_conns[f.src.0] += f.conns;
            host_conns[f.dst.0] += f.conns;
        }

        for dc in 0..n {
            let d = self.topo.dc(DcId(dc));
            let divisor = self.params.congestion_divisor(host_conns[dc], d.conn_budget());
            if !egress_members[dc].is_empty() {
                problem.add_resource(
                    ResourceKind::Egress(dc),
                    d.egress_cap_mbps() / divisor,
                    egress_members[dc].clone(),
                );
            }
            if !ingress_members[dc].is_empty() {
                problem.add_resource(
                    ResourceKind::Ingress(dc),
                    d.ingress_cap_mbps() / divisor,
                    ingress_members[dc].clone(),
                );
            }
        }
        // Backbone path capacity per directed pair with at least one flow.
        let mut path_members: std::collections::HashMap<(usize, usize), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, f) in flows.iter().enumerate() {
            if let Some(idx) = problem_index[i] {
                path_members.entry((f.src.0, f.dst.0)).or_default().push(idx);
            }
        }
        for ((s, d), members) in path_members {
            let cap = self.params.path_cap_mbps * self.dynamics.multiplier(s, d);
            problem.add_resource(ResourceKind::Path(s, d), cap, members);
        }

        let solved = allocate_max_min(&problem);
        for (i, f) in flows.iter().enumerate() {
            rates[i] = match problem_index[i] {
                Some(idx) => solved[idx],
                // Intra-DC transfers run at LAN speed; model as very fast.
                None if f.src == f.dst && f.conns > 0 => INTRA_DC_MBPS,
                None => 0.0,
            };
        }
        rates
    }

    /// Total active connections per host implied by `flows`.
    pub fn host_connection_counts(&self, flows: &[FlowSpec]) -> Vec<u32> {
        let mut counts = vec![0u32; self.topo.len()];
        for f in flows {
            if f.src != f.dst {
                counts[f.src.0] += f.conns;
                counts[f.dst.0] += f.conns;
            }
        }
        counts
    }

    /// Simulates the given transfers to completion in 1-second epochs.
    ///
    /// `conns` gives the initial parallel-connection matrix; an optional
    /// [`EpochHook`] (WANify's local agents) may mutate connections and
    /// throttles between epochs. Returns per-transfer completion times and
    /// bandwidth statistics.
    ///
    /// # Panics
    ///
    /// Panics if any transfer has a negative payload.
    pub fn run_transfers<'a, 'b: 'a>(
        &mut self,
        transfers: &[Transfer],
        conns: &ConnMatrix,
        mut hook: Option<&'a mut (dyn EpochHook + 'b)>,
    ) -> TransferReport {
        let n = self.topo.len();
        assert_eq!(conns.len(), n, "connection matrix must match topology size");
        for t in transfers {
            assert!(t.gigabits >= 0.0, "transfer payload must be non-negative");
        }

        // Aggregate per directed pair: multiple transfers on a pair share
        // one flow (Spark executors multiplex a connection pool per peer).
        let mut remaining = BwMatrix::new(n);
        for t in transfers {
            let cur = remaining.at(t.src, t.dst);
            remaining.put(t.src, t.dst, cur + t.gigabits);
        }
        let total_by_pair = remaining.clone();
        let mut conns = conns.clone();
        let mut busy_s = BwMatrix::new(n);
        let mut moved_gb = BwMatrix::new(n);
        let mut epochs = 0usize;
        const MAX_EPOCHS: usize = 4_000_000;
        const EPS_GB: f64 = 1e-9;

        while remaining.iter_pairs().any(|(_, _, r)| r > EPS_GB)
            || (0..n).any(|i| remaining.get(i, i) > EPS_GB)
        {
            // Build the active flow set for this epoch.
            let mut flows = Vec::new();
            let mut pair_of_flow = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if remaining.get(i, j) > EPS_GB {
                        let c = if i == j { 1 } else { conns.get(i, j).max(1) };
                        flows.push(FlowSpec::new(DcId(i), DcId(j), c));
                        pair_of_flow.push((i, j));
                    }
                }
            }
            let rates = self.allocate_rates(&flows);
            let dt = self.params.epoch_dt_s.max(1e-3);
            let mut observed = BwMatrix::new(n);
            for (f, &(i, j)) in pair_of_flow.iter().enumerate() {
                let rate = rates[f];
                observed.set(i, j, rate);
                let gb = (rate * dt / 1000.0).min(remaining.get(i, j));
                remaining.set(i, j, remaining.get(i, j) - gb);
                moved_gb.set(i, j, moved_gb.get(i, j) + gb);
                busy_s.set(i, j, busy_s.get(i, j) + dt);
            }
            self.advance(dt);
            epochs += 1;
            if let Some(h) = hook.as_deref_mut() {
                let mut ctx = EpochCtx {
                    time_s: self.time_s,
                    observed_bw: &observed,
                    remaining_gb: &remaining,
                    conns: &mut conns,
                    throttles: &mut self.throttles,
                };
                h.on_epoch(&mut ctx);
            }
            if epochs >= MAX_EPOCHS {
                break; // safety valve; tests assert we never reach it
            }
        }

        // Per-pair mean achieved throughput while busy.
        let achieved = BwMatrix::from_fn(n, |i, j| {
            let busy = busy_s.get(i, j);
            if busy > 0.0 {
                moved_gb.get(i, j) * 1000.0 / busy
            } else {
                0.0
            }
        });
        let min_pair = achieved
            .iter_pairs()
            .filter(|&(i, j, _)| total_by_pair.get(i, j) > EPS_GB)
            .map(|(_, _, v)| v)
            .fold(f64::INFINITY, f64::min);
        let mut egress = vec![0.0; n];
        for (i, j, gb) in moved_gb.iter_pairs() {
            let _ = j;
            egress[i] += gb;
        }
        // Completion time per original transfer: the epoch when its pair drained.
        // Since transfers on a pair share a flow, each finishes with the pair.
        let dt = self.params.epoch_dt_s.max(1e-3);
        let completion: Vec<f64> = transfers
            .iter()
            .map(|t| busy_s.at(t.src, t.dst).max(if t.gigabits > 0.0 { dt } else { 0.0 }))
            .collect();
        let makespan = completion.iter().copied().fold(0.0, f64::max);
        TransferReport {
            makespan_s: makespan,
            completion_s: completion,
            achieved_bw: achieved,
            min_pair_bw_mbps: if min_pair.is_finite() { min_pair } else { 0.0 },
            egress_gigabits: egress,
            epochs,
        }
    }
}

/// Effective intra-DC transfer rate in Mbps (LAN, never the bottleneck).
pub const INTRA_DC_MBPS: f64 = 25_000.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Region;
    use crate::vm::VmType;

    fn sim3() -> NetSim {
        let topo = Topology::builder()
            .dc(Region::UsEast, VmType::t3_nano(), 1)
            .dc(Region::UsWest, VmType::t3_nano(), 1)
            .dc(Region::ApSoutheast1, VmType::t3_nano(), 1)
            .build()
            .unwrap();
        NetSim::new(topo, LinkModelParams::frozen(), 1)
    }

    #[test]
    fn lone_flow_is_window_limited_on_long_paths() {
        let sim = sim3();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(2), 1)]);
        assert!((100.0..150.0).contains(&rates[0]), "US East→AP SE single conn: {}", rates[0]);
    }

    #[test]
    fn lone_flow_nic_limited_on_short_paths() {
        let sim = sim3();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 4)]);
        let nic = sim.topology().dc(DcId(0)).egress_cap_mbps();
        assert!(rates[0] <= nic + 1e-6);
        assert!(rates[0] > 0.8 * nic, "4 conns should saturate the NIC, got {}", rates[0]);
    }

    #[test]
    fn parallel_connections_raise_weak_link_throughput() {
        let sim = sim3();
        let one = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(2), 1)])[0];
        let nine = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(2), 9)])[0];
        assert!(nine > 6.0 * one, "9 conns: {nine} vs 1 conn: {one}");
        assert!((800.0..1300.0).contains(&nine), "paper: ~1 Gbps with 9 conns, got {nine}");
    }

    #[test]
    fn contention_starves_long_rtt_flows() {
        let sim = sim3();
        let flows = [
            FlowSpec::new(DcId(0), DcId(1), 8), // nearby, well-parallelized
            FlowSpec::new(DcId(0), DcId(2), 1), // distant, same egress NIC
        ];
        let rates = sim.allocate_rates(&flows);
        let alone = sim.allocate_rates(&[flows[1]])[0];
        assert!(rates[1] < alone, "contended {} vs alone {alone}", rates[1]);
        assert!(rates[0] > 4.0 * rates[1], "RTT bias should favor the nearby flow");
    }

    #[test]
    fn throttle_caps_flow() {
        let mut sim = sim3();
        sim.set_throttle(DcId(0), DcId(1), 200.0);
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 8)]);
        assert!(rates[0] <= 200.0 + 1e-6);
        sim.clear_throttles();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 8)]);
        assert!(rates[0] > 1000.0);
    }

    #[test]
    fn intra_dc_flows_run_at_lan_speed() {
        let sim = sim3();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(1), DcId(1), 1)]);
        assert_eq!(rates[0], INTRA_DC_MBPS);
    }

    #[test]
    fn zero_conn_flow_gets_zero() {
        let sim = sim3();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 0)]);
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn oversubscribed_host_loses_goodput() {
        let sim = sim3();
        let modest = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 8)])[0];
        let flooded = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 64)])[0];
        assert!(
            flooded < modest,
            "64 conns ({flooded}) should underperform 8 conns ({modest}) via congestion"
        );
    }

    #[test]
    fn run_transfers_completes_and_reports() {
        let mut sim = sim3();
        let transfers = [
            Transfer::new(DcId(0), DcId(1), 4.0),
            Transfer::new(DcId(0), DcId(2), 1.0),
            Transfer::new(DcId(2), DcId(1), 0.5),
        ];
        let conns = ConnMatrix::filled(3, 1);
        let report = sim.run_transfers(&transfers, &conns, None);
        assert!(report.makespan_s >= 1.0);
        assert_eq!(report.completion_s.len(), 3);
        assert!(report.min_pair_bw_mbps > 0.0);
        assert!(report.egress_gigabits[0] > 4.9, "DC0 sent 5 Gb total");
        assert!(report.max_pair_bw_mbps() >= report.min_pair_bw_mbps);
    }

    #[test]
    fn run_transfers_with_zero_payload_is_instant() {
        let mut sim = sim3();
        let conns = ConnMatrix::filled(3, 1);
        let report = sim.run_transfers(&[Transfer::new(DcId(0), DcId(1), 0.0)], &conns, None);
        assert_eq!(report.epochs, 0);
        assert_eq!(report.completion_s[0], 0.0);
    }

    #[test]
    fn hook_can_raise_connections_mid_transfer() {
        struct Booster;
        impl EpochHook for Booster {
            fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
                ctx.conns.set(0, 2, 9);
            }
        }
        let mut sim = sim3();
        let conns = ConnMatrix::filled(3, 1);
        let slow = sim.run_transfers(&[Transfer::new(DcId(0), DcId(2), 2.0)], &conns, None);
        let mut sim = sim3();
        let fast =
            sim.run_transfers(&[Transfer::new(DcId(0), DcId(2), 2.0)], &conns, Some(&mut Booster));
        assert!(
            fast.makespan_s < slow.makespan_s,
            "boosted {} vs single-conn {}",
            fast.makespan_s,
            slow.makespan_s
        );
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_flows() -> impl Strategy<Value = Vec<FlowSpec>> {
            proptest::collection::vec((0usize..3, 0usize..3, 0u32..12), 1..10).prop_map(|raw| {
                raw.into_iter().map(|(s, d, c)| FlowSpec::new(DcId(s), DcId(d), c)).collect()
            })
        }

        proptest! {
            #[test]
            fn rates_are_nonnegative_and_window_bounded(flows in arb_flows()) {
                let sim = sim3();
                let rates = sim.allocate_rates(&flows);
                for (f, &rate) in flows.iter().zip(&rates) {
                    prop_assert!(rate >= 0.0);
                    if f.src != f.dst && f.conns > 0 {
                        let dist = sim.topology().distance_miles(f.src, f.dst);
                        let window =
                            f64::from(f.conns) * sim.params().conn_cap_mbps(dist);
                        prop_assert!(rate <= window + 1e-6,
                            "flow {f:?} rate {rate} exceeds window {window}");
                    }
                }
            }

            #[test]
            fn no_host_nic_oversubscribed(flows in arb_flows()) {
                let sim = sim3();
                let rates = sim.allocate_rates(&flows);
                for h in 0..3 {
                    let egress: f64 = flows
                        .iter()
                        .zip(&rates)
                        .filter(|(f, _)| f.src == DcId(h) && f.src != f.dst)
                        .map(|(_, &r)| r)
                        .sum();
                    let cap = sim.topology().dc(DcId(h)).egress_cap_mbps();
                    prop_assert!(egress <= cap + 1e-6,
                        "host {h} egress {egress} exceeds NIC {cap}");
                }
            }

            #[test]
            fn transfers_conserve_payload(
                payloads in proptest::collection::vec(0.0f64..5.0, 3),
            ) {
                let mut sim = sim3();
                let transfers: Vec<Transfer> = payloads
                    .iter()
                    .enumerate()
                    .map(|(k, &gb)| Transfer::new(DcId(k % 3), DcId((k + 1) % 3), gb))
                    .collect();
                let conns = ConnMatrix::filled(3, 2);
                let report = sim.run_transfers(&transfers, &conns, None);
                let moved: f64 = report.egress_gigabits.iter().sum();
                let requested: f64 = payloads.iter().sum();
                prop_assert!((moved - requested).abs() < 1e-6,
                    "moved {moved} Gb vs requested {requested} Gb");
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = || {
            let topo = Topology::builder()
                .dc(Region::UsEast, VmType::t3_nano(), 1)
                .dc(Region::EuWest, VmType::t3_nano(), 1)
                .build()
                .unwrap();
            let mut sim = NetSim::new(topo, LinkModelParams::default(), 99);
            let conns = ConnMatrix::filled(2, 2);
            sim.run_transfers(&[Transfer::new(DcId(0), DcId(1), 3.0)], &conns, None).makespan_s
        };
        assert_eq!(run(), run());
    }
}
