//! The WAN simulator: rate allocation, temporal evolution and transfers.
//!
//! # The event-coalescing transfer loop
//!
//! [`NetSim::run_transfers`] advances bulk transfers in fixed epochs of
//! [`LinkModelParams::epoch_dt_s`] seconds. Within a *rate segment* — a
//! stretch of epochs over which a pair's allocated rate is unchanged — the
//! per-pair accounting is closed-form: after `m` epochs at quota `g`
//! (gigabits per epoch), the remaining payload is `r0 − m·g`, the moved
//! payload `m0 + m·g` and the busy time `b0 + m·dt`.
//!
//! Rates can only change at *schedulable events*: a pair draining, a
//! scheduled fault boundary, a dynamics tick (the OU grid and piecewise
//! components evolve only on the quantized tick — see
//! [`crate::Dynamics`]), or an [`EpochHook`] wake. The loop solves
//! weighted max-min fairness once per segment and jumps straight to the
//! nearest of those horizons: `O(events)` fairness solves instead of
//! `O(simulated seconds)`, under frozen *and* live dynamics, hooked or
//! not. Because both modes evaluate the same closed-form float
//! expressions at the same anchor points — and tick-quantized dynamics
//! consume identical RNG draws whether time advances in one jump or many
//! steps — the fast path is *bit-identical* to per-epoch stepping. Only
//! the legacy continuous dynamics (`dynamics_tick_s <= 0`) and hooks
//! that decline to schedule a wake ([`EpochHook::next_wake`] returning
//! `None`, the default) force stepping every epoch.
//!
//! [`NetSim::last_run_stats`] reports how many solves the previous run
//! performed, which the perf tests and `BENCH_netsim.json` runner track.

use crate::dynamics::Dynamics;
use crate::fairness::{FairnessProblem, FairnessWorkspace, ResourceKind};
use crate::faults::{ActiveFaults, FaultSchedule};
use crate::flow::{FlowSpec, Transfer, TransferReport};
use crate::grid::{BwMatrix, ConnMatrix, Grid};
use crate::params::LinkModelParams;
use crate::topology::{DcId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Safety valve on the number of simulated epochs per `run_transfers`.
pub const MAX_EPOCHS: usize = 4_000_000;

/// Payload below which a pair counts as drained, in gigabits (~1 bit).
pub const PAYLOAD_EPS_GB: f64 = 1e-9;

/// Effective intra-DC transfer rate in Mbps (LAN, never the bottleneck).
pub const INTRA_DC_MBPS: f64 = 25_000.0;

/// Context handed to an [`EpochHook`] once per simulated second.
///
/// WANify's local agents (paper §4.1.3) plug in here: they observe the
/// monitored per-pair bandwidth (the simulator's stand-in for `ifTop`),
/// and may adjust connection counts and traffic-control throttles for the
/// next epoch.
#[derive(Debug)]
pub struct EpochCtx<'a> {
    /// Simulation time at the start of the epoch, in seconds.
    pub time_s: f64,
    /// Throughput observed during the previous epoch, per directed pair.
    pub observed_bw: &'a BwMatrix,
    /// Remaining payload per directed pair, in gigabits.
    pub remaining_gb: &'a BwMatrix,
    /// Connection counts to use from the next epoch on (mutable).
    pub conns: &'a mut ConnMatrix,
    /// Per-pair throughput caps in Mbps (`f64::INFINITY` = unthrottled).
    pub throttles: &'a mut Grid<f64>,
}

/// Per-epoch callback driven by [`NetSim::run_transfers`].
///
/// By default a hook observes and may intervene after *every* simulated
/// epoch — no epochs are coalesced away from under it. Hooks that only
/// act on a schedule (the AIMD agent updates every `interval_s`) can
/// override [`EpochHook::next_wake`] to tell the simulator when they
/// next need to run, which re-enables event coalescing between wakes.
pub trait EpochHook {
    /// Invoked after every served segment (every epoch unless the hook
    /// schedules wakes via [`EpochHook::next_wake`]).
    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>);

    /// The next absolute simulation time this hook needs to observe, or
    /// `None` to be invoked after every epoch (the default, preserving
    /// strict per-epoch semantics).
    ///
    /// Returning `Some(w)` lets the transfer loop coalesce whole
    /// multi-epoch segments up to `w`. The hook is still invoked at the
    /// end of *every* segment — drains, fault boundaries and dynamics
    /// ticks end segments too, and float rounding may land an invocation
    /// an epoch early — so a scheduling hook must treat off-wake
    /// invocations as no-ops (re-checking `ctx.time_s` against its own
    /// schedule), exactly as an interval-guarded per-epoch hook already
    /// does.
    fn next_wake(&mut self, now_s: f64) -> Option<f64> {
        let _ = now_s;
        None
    }
}

/// Statistics about the most recent [`NetSim::run_transfers`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Fairness solves performed (one per rate segment).
    pub solves: u64,
    /// Epochs simulated (matches [`TransferReport::epochs`]).
    pub epochs: u64,
    /// Whether the event-coalescing fast path served multi-epoch
    /// segments: the dynamics were schedulable and any installed hook
    /// scheduled its wakes.
    pub coalesced: bool,
}

/// Reusable buffers for [`NetSim::allocate_rates_with`].
///
/// One scratch serves any sequence of calls on any simulator; every
/// buffer grows to its high-water mark and is then reused, so repeated
/// solves on the hot path are allocation-free.
#[derive(Debug, Clone, Default)]
pub struct RateScratch {
    problem: FairnessProblem,
    ws: FairnessWorkspace,
    /// Problem index per input flow (`usize::MAX` = not WAN-constrained).
    problem_index: Vec<usize>,
    host_conns: Vec<u32>,
    /// CSR grouping of WAN flows by directed-pair key `src·n + dst`:
    /// egress resources are contiguous row ranges, paths are key runs.
    sd_offsets: Vec<usize>,
    sd_cursor: Vec<usize>,
    sd_flows: Vec<usize>,
    /// CSR grouping of WAN flows by destination (ingress resources).
    dst_offsets: Vec<usize>,
    dst_cursor: Vec<usize>,
    dst_flows: Vec<usize>,
    rates: Vec<f64>,
}

const NOT_IN_PROBLEM: usize = usize::MAX;

/// Progress of one directed pair through `run_transfers` (and the
/// multi-tenant [`crate::engine::NetEngine`]), kept as an anchor plus a
/// whole number of epochs served at the current quota so coalesced jumps
/// and per-epoch steps evaluate identical expressions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PairProgress {
    pub(crate) src: usize,
    pub(crate) dst: usize,
    /// Remaining payload at the segment anchor, gigabits.
    pub(crate) remaining: f64,
    /// Moved payload at the anchor, gigabits.
    pub(crate) moved: f64,
    /// Busy time at the anchor, seconds.
    pub(crate) busy: f64,
    /// Per-epoch quota at the current rate (`rate · dt / 1000`), gigabits.
    pub(crate) quota: f64,
    /// Whole epochs served since the anchor.
    pub(crate) served: u64,
    pub(crate) active: bool,
}

impl PairProgress {
    pub(crate) fn new(src: usize, dst: usize, total: f64) -> Self {
        Self {
            src,
            dst,
            remaining: total,
            moved: 0.0,
            busy: 0.0,
            quota: 0.0,
            served: 0,
            active: total > PAYLOAD_EPS_GB,
        }
    }

    /// Remaining payload after the served epochs, in gigabits.
    pub(crate) fn current_remaining(&self) -> f64 {
        self.remaining - self.served as f64 * self.quota
    }

    /// Folds the served epochs into the anchor; called when the pair's
    /// quota is about to change and when a run ends mid-segment.
    pub(crate) fn reanchor(&mut self, dt: f64) {
        if self.served > 0 {
            let m = self.served as f64;
            self.remaining -= m * self.quota;
            self.moved += m * self.quota;
            self.busy += m * dt;
            self.served = 0;
        }
    }

    /// Marks the pair drained: its last served epoch moved the remainder
    /// (including any sub-epsilon crumb, ~1 bit at most).
    pub(crate) fn drain(&mut self, dt: f64) {
        self.busy += self.served as f64 * dt;
        self.moved += self.remaining;
        self.remaining = 0.0;
        self.served = 0;
        self.active = false;
    }

    /// Serves a *fraction* of an epoch (`0 < frac < 1`) at the current
    /// quota, folding straight into the anchor. Only the multi-tenant
    /// engine uses this, when an external deadline (a compute timer of
    /// another tenant) lands strictly inside an epoch; single-group runs
    /// never take this path, which keeps them bit-identical to
    /// [`NetSim::run_transfers`].
    pub(crate) fn serve_partial(&mut self, frac: f64, dt: f64) {
        self.reanchor(dt);
        let moved = (frac * self.quota).min(self.remaining);
        self.remaining -= moved;
        self.moved += moved;
        self.busy += frac * dt;
    }
}

/// Smallest epoch count `m > served` at which a pair at `quota` gigabits
/// per epoch falls to ≤ [`PAYLOAD_EPS_GB`] remaining, or `None` if it
/// never drains (zero or vanishing rate). Evaluates the exact float
/// expression of [`PairProgress::current_remaining`], so the answer
/// matches per-epoch stepping bit for bit.
pub(crate) fn epochs_to_drain(remaining: f64, quota: f64, served: u64) -> Option<u64> {
    if quota <= 0.0 {
        return None;
    }
    let left_after = |m: u64| remaining - m as f64 * quota;
    const CAP: u64 = 1 << 53;
    let est = ((remaining - PAYLOAD_EPS_GB) / quota).ceil();
    let mut hi = if est.is_finite() && est >= 0.0 && est < CAP as f64 {
        (est as u64).max(served + 1)
    } else {
        served + 1
    };
    while left_after(hi) > PAYLOAD_EPS_GB {
        if hi >= CAP {
            return None;
        }
        hi = hi.saturating_mul(2).min(CAP);
    }
    // left_after is monotone non-increasing in m, left_after(served) > eps.
    let mut lo = served;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if left_after(mid) <= PAYLOAD_EPS_GB {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Whole epochs of length `dt` from `now_s` that the coalescing fast
/// path may jump without overshooting an event at `next_s` (≥ 1;
/// `u64::MAX` when the event time is not finite). The bound lands
/// exactly on the epoch whose solve point first sees the event, so
/// coalesced jumps apply it at the same simulated epoch as per-epoch
/// stepping — faults, dynamics ticks and hook wakes all share this clip.
pub(crate) fn epochs_until_event(now_s: f64, next_s: f64, dt: f64) -> u64 {
    if !next_s.is_finite() {
        return u64::MAX;
    }
    let k = ((next_s - now_s - 1e-9) / dt).ceil();
    if k <= 1.0 {
        1
    } else if k >= u64::MAX as f64 {
        u64::MAX
    } else {
        k as u64
    }
}

/// The deterministic WAN simulator.
///
/// See the crate-level documentation for the model; all randomness flows
/// from the seed given to [`NetSim::new`].
#[derive(Debug)]
pub struct NetSim {
    topo: Topology,
    params: LinkModelParams,
    dynamics: Dynamics,
    rng: StdRng,
    time_s: f64,
    throttles: Grid<f64>,
    /// Per-pair caps reserved by a cross-shard backbone exchange
    /// ([`crate::backbone`]); `f64::INFINITY` everywhere when this
    /// simulator is not a shard of a sharded fleet.
    backbone_caps: Grid<f64>,
    last_run_stats: RunStats,
    /// Installed fault schedule plus live fault state; `None` until
    /// [`NetSim::set_fault_schedule`], keeping fault-free runs bit-identical
    /// to builds that predate the fault layer.
    faults: Option<Box<ActiveFaults>>,
    /// Total simulated seconds spent with any fault active.
    degraded_s: f64,
}

impl NetSim {
    /// Creates a simulator over `topo` with the given parameters and seed.
    pub fn new(topo: Topology, params: LinkModelParams, seed: u64) -> Self {
        let n = topo.len();
        let dynamics = Dynamics::with_tick(
            n,
            params.dynamics_sigma,
            params.dynamics_theta,
            params.dynamics_tick_s,
        );
        Self {
            topo,
            params,
            dynamics,
            rng: StdRng::seed_from_u64(seed),
            time_s: 0.0,
            throttles: Grid::filled(n, f64::INFINITY),
            backbone_caps: Grid::filled(n, f64::INFINITY),
            last_run_stats: RunStats::default(),
            faults: None,
            degraded_s: 0.0,
        }
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The link-model parameters.
    pub fn params(&self) -> &LinkModelParams {
        &self.params
    }

    /// Current simulation time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Mutable access to the RNG (probe noise shares the seed stream).
    pub(crate) fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Current dynamics multipliers (for inspection/testing).
    pub fn dynamics(&self) -> &Dynamics {
        &self.dynamics
    }

    /// Mutable access to the dynamics, for installing piecewise
    /// components ([`Dynamics::set_diurnal`], [`Dynamics::set_decay`]).
    pub fn dynamics_mut(&mut self) -> &mut Dynamics {
        &mut self.dynamics
    }

    /// Whether the event-coalescing fast path may serve multi-epoch
    /// segments: rate changes must be schedulable, i.e. the dynamics are
    /// tick-quantized (frozen dynamics trivially are). The single gate
    /// shared by [`NetSim::run_transfers`] and the multi-tenant engine;
    /// only the legacy continuous process (`dynamics_tick_s <= 0`)
    /// reports `false`.
    pub fn coalescible(&self) -> bool {
        self.dynamics.is_schedulable()
    }

    /// Statistics about the most recent [`NetSim::run_transfers`] call or
    /// the cumulative work of an attached [`crate::engine::NetEngine`].
    pub fn last_run_stats(&self) -> RunStats {
        self.last_run_stats
    }

    /// Overwrites the run statistics; the multi-tenant engine mirrors its
    /// cumulative solve/epoch counters here after every step so the stats
    /// stay coherent across mid-flight submissions.
    pub(crate) fn set_last_run_stats(&mut self, stats: RunStats) {
        self.last_run_stats = stats;
    }

    /// Caps the directed pair `src → dst` at `cap_mbps` (traffic control,
    /// paper §3.2.2 "Throttling BW").
    pub fn set_throttle(&mut self, src: DcId, dst: DcId, cap_mbps: f64) {
        self.throttles.put(src, dst, cap_mbps.max(0.0));
    }

    /// Removes all traffic-control caps.
    pub fn clear_throttles(&mut self) {
        let n = self.topo.len();
        self.throttles = Grid::filled(n, f64::INFINITY);
    }

    /// Current throttle table.
    pub fn throttles(&self) -> &Grid<f64> {
        &self.throttles
    }

    /// Replaces the backbone reservation caps wholesale. A sharded fleet
    /// driver calls this at every epoch-exchange sync point with the
    /// per-pair shares its shard reserved on the cross-shard backbone;
    /// `f64::INFINITY` cells leave a pair unconstrained. Composes with
    /// (does not overwrite) any traffic-control throttles.
    ///
    /// # Panics
    ///
    /// Panics if `caps` does not match the topology size.
    pub fn set_backbone_caps(&mut self, caps: Grid<f64>) {
        assert_eq!(caps.len(), self.topo.len(), "backbone caps must match topology size");
        self.backbone_caps = caps;
    }

    /// Removes every backbone reservation cap.
    pub fn clear_backbone_caps(&mut self) {
        let n = self.topo.len();
        self.backbone_caps = Grid::filled(n, f64::INFINITY);
    }

    /// Current backbone reservation caps.
    pub fn backbone_caps(&self) -> &Grid<f64> {
        &self.backbone_caps
    }

    /// Installs a [`FaultSchedule`]: events fire at the first solve point
    /// at or after their timestamp as the simulation advances, scaling
    /// per-pair bandwidth multiplicatively (a downed DC zeroes every WAN
    /// pair touching it). Replaces any prior schedule and resets the fault
    /// state to healthy; event times are absolute simulation seconds.
    ///
    /// # Panics
    ///
    /// Panics if an event names a DC outside the topology.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = Some(Box::new(ActiveFaults::install(schedule, self.topo.len())));
    }

    /// Applies every scheduled fault due at the current simulation time;
    /// returns how many events fired. `run_transfers` and the multi-tenant
    /// engine call this at every solve point; per-epoch reference loops
    /// (and tests) may call it directly to mirror that cadence.
    pub fn poll_faults(&mut self) -> usize {
        let now = self.time_s;
        self.faults.as_mut().map_or(0, |f| f.poll(now))
    }

    /// Timestamp of the next unapplied fault event, or `INFINITY`.
    pub fn next_fault_s(&self) -> f64 {
        self.faults.as_ref().map_or(f64::INFINITY, |f| f.next_at_s())
    }

    /// Whether any scheduled fault event has yet to fire. A stalled flow
    /// with pending faults may still recover; without them it never will.
    pub fn has_pending_faults(&self) -> bool {
        self.next_fault_s().is_finite()
    }

    /// Effective fault factor of the directed WAN pair `(i, j)`:
    /// 1.0 when healthy (or no schedule installed), 0.0 when either
    /// endpoint is down, the product of link/straggler/global factors
    /// otherwise. Intra-DC traffic is never faulted.
    pub fn fault_factor(&self, i: usize, j: usize) -> f64 {
        self.faults.as_ref().map_or(1.0, |f| f.state.factor(i, j))
    }

    /// Whether any fault is currently active.
    pub fn fault_degraded(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.state.is_degraded())
    }

    /// Total simulated seconds spent with any fault active.
    pub fn degraded_s(&self) -> f64 {
        self.degraded_s
    }

    /// Whether the DC is currently up (always true without a schedule).
    pub fn dc_is_up(&self, dc: DcId) -> bool {
        self.faults.as_ref().is_none_or(|f| f.state.dc_is_up(dc.0))
    }

    /// Up/down status of every DC (all up without a schedule).
    pub fn dcs_up(&self) -> Vec<bool> {
        match &self.faults {
            Some(f) => f.state.dcs_up().to_vec(),
            None => vec![true; self.topo.len()],
        }
    }

    /// Whole epochs of length `dt` the coalescing fast path may jump
    /// without overshooting the next scheduled fault (≥ 1; `u64::MAX`
    /// when no fault is pending). See [`epochs_until_event`].
    pub(crate) fn epochs_until_next_fault(&self, dt: f64) -> u64 {
        epochs_until_event(self.time_s, self.next_fault_s(), dt)
    }

    /// Whole epochs of length `dt` the coalescing fast path may jump
    /// without overshooting the next dynamics tick (≥ 1; `u64::MAX` when
    /// the multipliers will never change again). The bound lands on the
    /// epoch whose closing [`NetSim::advance`] crosses the tick, so the
    /// next solve sees the post-tick multipliers at the same simulated
    /// epoch as per-epoch stepping.
    pub(crate) fn epochs_until_next_rate_change(&self, dt: f64) -> u64 {
        match self.dynamics.next_change_after(self.time_s) {
            Some(next) => epochs_until_event(self.time_s, next, dt),
            None => u64::MAX,
        }
    }

    /// Advances to `until_s`, pausing at each scheduled fault time to
    /// apply it, so idle jumps (no active flows) keep the fault state and
    /// degraded-time accounting exact.
    pub(crate) fn advance_through_faults(&mut self, until_s: f64) {
        loop {
            let next = self.next_fault_s();
            if next > until_s {
                break;
            }
            let dt = next - self.time_s;
            if dt > 0.0 {
                self.advance(dt);
            }
            self.poll_faults();
        }
        let dt = until_s - self.time_s;
        if dt > 0.0 {
            self.advance(dt);
        }
    }

    /// Advances wall-clock time and bandwidth dynamics by `dt_s` seconds.
    pub fn advance(&mut self, dt_s: f64) {
        self.dynamics.advance(dt_s, &mut self.rng);
        self.time_s += dt_s;
        if self.fault_degraded() {
            self.degraded_s += dt_s;
        }
    }

    /// Jumps to an independent point in time (a different hour/day), as the
    /// paper does when collecting training data over a week (§5.1).
    pub fn shuffle_time(&mut self) {
        self.dynamics.shuffle_epoch(&mut self.rng);
        self.time_s += 3600.0;
    }

    /// Ceiling of a flow in Mbps *before* backbone reservations: window
    /// limit × dynamics × provider factor, capped by any traffic-control
    /// throttle. This is the demand signal a cross-shard epoch exchange
    /// measures — deliberately blind to the backbone caps it feeds, so a
    /// shard's reservation tracks what it *wants*, not what it was last
    /// granted.
    pub fn unreserved_ceiling_mbps(&self, f: &FlowSpec) -> f64 {
        let dist = self.topo.distance_miles(f.src, f.dst);
        let mut cap = f64::from(f.conns) * self.params.conn_cap_mbps(dist);
        cap *= self.dynamics.multiplier(f.src.0, f.dst.0);
        cap *= self.fault_factor(f.src.0, f.dst.0);
        let src_provider = self.topo.dc(f.src).region.provider();
        let dst_provider = self.topo.dc(f.dst).region.provider();
        if src_provider != dst_provider {
            cap *= self.params.cross_provider_factor;
        }
        cap.min(self.throttles.at(f.src, f.dst))
    }

    /// Effective ceiling of a flow in Mbps: the unreserved ceiling further
    /// capped by any backbone reservation on the pair.
    fn flow_ceiling(&self, f: &FlowSpec) -> f64 {
        self.unreserved_ceiling_mbps(f).min(self.backbone_caps.at(f.src, f.dst))
    }

    /// Contention weight of a flow (connections × per-connection RTT bias).
    fn flow_weight(&self, f: &FlowSpec) -> f64 {
        let dist = self.topo.distance_miles(f.src, f.dst);
        f64::from(f.conns) * self.params.conn_weight(dist)
    }

    /// Allocates instantaneous rates (Mbps) to a set of concurrent flows
    /// under weighted max-min fairness with congestion-degraded NIC caps.
    ///
    /// Intra-DC flows (`src == dst`) are never WAN-limited and receive an
    /// effectively unbounded rate, matching the paper's system model (§2.1).
    ///
    /// Convenience wrapper over [`NetSim::allocate_rates_with`] that pays
    /// for fresh buffers; hot loops should hold a [`RateScratch`].
    pub fn allocate_rates(&self, flows: &[FlowSpec]) -> Vec<f64> {
        let mut scratch = RateScratch::default();
        self.allocate_rates_with(flows, &mut scratch).to_vec()
    }

    /// Allocation-free variant of [`NetSim::allocate_rates`]: builds the
    /// fairness problem in `scratch`'s reused buffers and solves it with
    /// the reused workspace. Resources are constructed in a fully
    /// deterministic order (per-DC egress/ingress, then backbone paths in
    /// ascending `(src, dst)` order), so identical inputs always produce
    /// bit-identical rates across runs and platforms.
    pub fn allocate_rates_with<'s>(
        &self,
        flows: &[FlowSpec],
        scratch: &'s mut RateScratch,
    ) -> &'s [f64] {
        let n = self.topo.len();
        let s = scratch;
        s.problem.clear();
        s.problem_index.clear();
        s.host_conns.clear();
        s.host_conns.resize(n, 0);

        for f in flows {
            if f.src == f.dst || f.conns == 0 {
                s.problem_index.push(NOT_IN_PROBLEM); // handled after the solve
                continue;
            }
            let idx = s.problem.add_flow(self.flow_weight(f), self.flow_ceiling(f));
            s.problem_index.push(idx);
            s.host_conns[f.src.0] += f.conns;
            s.host_conns[f.dst.0] += f.conns;
        }
        let wan_flows = s.problem.flow_count();

        // Counting sorts: WAN flows grouped by directed pair (egress NICs
        // are contiguous row ranges, backbone paths are key runs) and by
        // destination (ingress NICs).
        s.sd_offsets.clear();
        s.sd_offsets.resize(n * n + 1, 0);
        s.dst_offsets.clear();
        s.dst_offsets.resize(n + 1, 0);
        for (i, f) in flows.iter().enumerate() {
            if s.problem_index[i] != NOT_IN_PROBLEM {
                s.sd_offsets[f.src.0 * n + f.dst.0 + 1] += 1;
                s.dst_offsets[f.dst.0 + 1] += 1;
            }
        }
        for k in 0..n * n {
            s.sd_offsets[k + 1] += s.sd_offsets[k];
        }
        for k in 0..n {
            s.dst_offsets[k + 1] += s.dst_offsets[k];
        }
        s.sd_cursor.clear();
        s.sd_cursor.extend_from_slice(&s.sd_offsets[..n * n]);
        s.dst_cursor.clear();
        s.dst_cursor.extend_from_slice(&s.dst_offsets[..n]);
        s.sd_flows.clear();
        s.sd_flows.resize(wan_flows, 0);
        s.dst_flows.clear();
        s.dst_flows.resize(wan_flows, 0);
        for (i, f) in flows.iter().enumerate() {
            let idx = s.problem_index[i];
            if idx == NOT_IN_PROBLEM {
                continue;
            }
            let key = f.src.0 * n + f.dst.0;
            s.sd_flows[s.sd_cursor[key]] = idx;
            s.sd_cursor[key] += 1;
            s.dst_flows[s.dst_cursor[f.dst.0]] = idx;
            s.dst_cursor[f.dst.0] += 1;
        }

        for dc in 0..n {
            let d = self.topo.dc(DcId(dc));
            let divisor = self.params.congestion_divisor(s.host_conns[dc], d.conn_budget());
            let egress = &s.sd_flows[s.sd_offsets[dc * n]..s.sd_offsets[(dc + 1) * n]];
            if !egress.is_empty() {
                s.problem.add_resource(
                    ResourceKind::Egress(dc),
                    d.egress_cap_mbps() / divisor,
                    egress,
                );
            }
            let ingress = &s.dst_flows[s.dst_offsets[dc]..s.dst_offsets[dc + 1]];
            if !ingress.is_empty() {
                s.problem.add_resource(
                    ResourceKind::Ingress(dc),
                    d.ingress_cap_mbps() / divisor,
                    ingress,
                );
            }
        }
        // Backbone path capacity per directed pair with at least one flow,
        // in ascending (src, dst) order — deterministic, unlike the
        // HashMap iteration this replaces.
        for src in 0..n {
            for dst in 0..n {
                let key = src * n + dst;
                let members = &s.sd_flows[s.sd_offsets[key]..s.sd_offsets[key + 1]];
                if !members.is_empty() {
                    let cap = self.params.path_cap_mbps
                        * self.dynamics.multiplier(src, dst)
                        * self.fault_factor(src, dst);
                    s.problem.add_resource(ResourceKind::Path(src, dst), cap, members);
                }
            }
        }

        s.ws.solve(&s.problem);
        s.rates.clear();
        for (i, f) in flows.iter().enumerate() {
            let idx = s.problem_index[i];
            let rate = if idx != NOT_IN_PROBLEM {
                s.ws.rates()[idx]
            } else if f.src == f.dst && f.conns > 0 {
                // Intra-DC transfers run at LAN speed; model as very fast.
                INTRA_DC_MBPS
            } else {
                0.0
            };
            s.rates.push(rate);
        }
        &s.rates
    }

    /// Total active connections per host implied by `flows`.
    pub fn host_connection_counts(&self, flows: &[FlowSpec]) -> Vec<u32> {
        let mut counts = vec![0u32; self.topo.len()];
        for f in flows {
            if f.src != f.dst {
                counts[f.src.0] += f.conns;
                counts[f.dst.0] += f.conns;
            }
        }
        counts
    }

    /// Simulates the given transfers to completion.
    ///
    /// `conns` gives the initial parallel-connection matrix; an optional
    /// [`EpochHook`] (WANify's local agents) may mutate connections and
    /// throttles between epochs. Returns per-transfer completion times and
    /// bandwidth statistics.
    ///
    /// Epochs between rate-change events — pair drains, fault
    /// boundaries, dynamics ticks and hook wakes — are coalesced:
    /// fairness is re-solved only where rates can actually change, with
    /// results bit-identical to per-epoch stepping (see the module
    /// docs). A hook whose [`EpochHook::next_wake`] returns `None` (the
    /// default) and the legacy continuous dynamics force the per-epoch
    /// path. [`NetSim::last_run_stats`] exposes the solve count either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if any transfer has a negative payload.
    pub fn run_transfers<'a, 'b: 'a>(
        &mut self,
        transfers: &[Transfer],
        conns: &ConnMatrix,
        mut hook: Option<&'a mut (dyn EpochHook + 'b)>,
    ) -> TransferReport {
        let n = self.topo.len();
        assert_eq!(conns.len(), n, "connection matrix must match topology size");
        for t in transfers {
            assert!(t.gigabits >= 0.0, "transfer payload must be non-negative");
        }

        // Aggregate per directed pair: multiple transfers on a pair share
        // one flow (Spark executors multiplex a connection pool per peer).
        let mut totals = BwMatrix::new(n);
        for t in transfers {
            totals.put(t.src, t.dst, totals.at(t.src, t.dst) + t.gigabits);
        }
        let mut pairs: Vec<PairProgress> = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if totals.get(i, j) > PAYLOAD_EPS_GB {
                    pairs.push(PairProgress::new(i, j, totals.get(i, j)));
                }
            }
        }

        let mut conns = conns.clone();
        let dt = self.params.epoch_dt_s.max(1e-3);
        let coalescible = self.coalescible();
        // Reported flag; with a hook it tracks whether the hook actually
        // scheduled wakes (re-sampled each segment, last one wins).
        let mut coalesced = coalescible && hook.is_none();
        let mut active_count = pairs.len();
        let mut epochs = 0usize;
        let mut solves = 0u64;

        let mut scratch = RateScratch::default();
        let mut flows: Vec<FlowSpec> = Vec::with_capacity(pairs.len());
        let mut flow_pairs: Vec<usize> = Vec::with_capacity(pairs.len());
        // Hook-facing matrices; hook-free runs skip the two O(n²)
        // allocations (a 0×0 Grid is well-formed and never read).
        let (mut observed, mut remaining_mx) = if hook.is_some() {
            (BwMatrix::new(n), totals.clone())
        } else {
            (BwMatrix::new(0), BwMatrix::new(0))
        };

        while active_count > 0 && epochs < MAX_EPOCHS {
            // Apply any fault events due at this solve point: rates below
            // reflect the post-event network.
            self.poll_faults();
            // Build the active flow set for this segment (reused buffers).
            flows.clear();
            flow_pairs.clear();
            for (p, pair) in pairs.iter().enumerate() {
                if pair.active {
                    let c =
                        if pair.src == pair.dst { 1 } else { conns.get(pair.src, pair.dst).max(1) };
                    flows.push(FlowSpec::new(DcId(pair.src), DcId(pair.dst), c));
                    flow_pairs.push(p);
                }
            }
            let rates = self.allocate_rates_with(&flows, &mut scratch);
            solves += 1;

            // Re-anchor any pair whose per-epoch quota changed.
            for (f, &p) in flow_pairs.iter().enumerate() {
                let quota = rates[f] * dt / 1000.0;
                let pair = &mut pairs[p];
                if quota != pair.quota {
                    pair.reanchor(dt);
                    pair.quota = quota;
                }
            }

            // Ask an installed hook for its next wake time; `None` means
            // it wants every epoch, which disables coalescing.
            let wake: Option<Option<f64>> = hook.as_deref_mut().map(|h| h.next_wake(self.time_s));
            if wake.is_some() {
                coalesced = coalescible && wake.flatten().is_some();
            }

            // Epochs to advance in one step: up to the nearest rate-change
            // horizon — a pair draining, the next scheduled fault, the
            // next dynamics tick, or the hook's wake — exactly one when
            // rates are unschedulable or the hook declined to schedule.
            let k: u64 = if !coalescible || wake == Some(None) {
                1
            } else {
                let mut k = u64::MAX;
                for &p in &flow_pairs {
                    let pair = &pairs[p];
                    if let Some(m) = epochs_to_drain(pair.remaining, pair.quota, pair.served) {
                        k = k.min(m - pair.served);
                    }
                }
                k = k
                    .min((MAX_EPOCHS - epochs) as u64)
                    .max(1)
                    .min(self.epochs_until_next_fault(dt))
                    .min(self.epochs_until_next_rate_change(dt));
                if let Some(Some(w)) = wake {
                    k = k.min(epochs_until_event(self.time_s, w, dt));
                }
                k
            };

            for &p in &flow_pairs {
                let pair = &mut pairs[p];
                pair.served += k;
                if pair.current_remaining() <= PAYLOAD_EPS_GB {
                    pair.drain(dt);
                    active_count -= 1;
                }
            }
            epochs += k as usize;
            self.advance(k as f64 * dt);

            if let Some(h) = hook.as_deref_mut() {
                // Invoked at the end of every served segment; a
                // wake-scheduling hook treats off-wake calls as no-ops.
                for pair in &pairs {
                    observed.set(pair.src, pair.dst, 0.0);
                }
                for (f, &p) in flow_pairs.iter().enumerate() {
                    let pair = &pairs[p];
                    observed.set(pair.src, pair.dst, rates[f]);
                    let left = if pair.active { pair.current_remaining() } else { 0.0 };
                    remaining_mx.set(pair.src, pair.dst, left);
                }
                let mut ctx = EpochCtx {
                    time_s: self.time_s,
                    observed_bw: &observed,
                    remaining_gb: &remaining_mx,
                    conns: &mut conns,
                    throttles: &mut self.throttles,
                };
                h.on_epoch(&mut ctx);
            }
        }

        // Fold any segment left open by the MAX_EPOCHS safety valve, then
        // materialize the per-pair accounting.
        let mut busy_s = BwMatrix::new(n);
        let mut moved_gb = BwMatrix::new(n);
        for pair in &mut pairs {
            pair.reanchor(dt);
            busy_s.set(pair.src, pair.dst, pair.busy);
            moved_gb.set(pair.src, pair.dst, pair.moved);
        }

        // Per-pair mean achieved throughput while busy.
        let achieved = BwMatrix::from_fn(n, |i, j| {
            let busy = busy_s.get(i, j);
            if busy > 0.0 {
                moved_gb.get(i, j) * 1000.0 / busy
            } else {
                0.0
            }
        });
        let min_pair = achieved
            .iter_pairs()
            .filter(|&(i, j, _)| totals.get(i, j) > PAYLOAD_EPS_GB)
            .map(|(_, _, v)| v)
            .fold(f64::INFINITY, f64::min);
        let mut egress = vec![0.0; n];
        for (i, _, gb) in moved_gb.iter_pairs() {
            egress[i] += gb;
        }
        // Completion time per original transfer: the epoch when its pair
        // drained. Transfers on a pair share a flow, so each finishes with
        // the pair.
        let completion: Vec<f64> = transfers
            .iter()
            .map(|t| busy_s.at(t.src, t.dst).max(if t.gigabits > 0.0 { dt } else { 0.0 }))
            .collect();
        let makespan = completion.iter().copied().fold(0.0, f64::max);
        self.last_run_stats = RunStats { solves, epochs: epochs as u64, coalesced };
        TransferReport {
            makespan_s: makespan,
            completion_s: completion,
            achieved_bw: achieved,
            min_pair_bw_mbps: if min_pair.is_finite() { min_pair } else { 0.0 },
            egress_gigabits: egress,
            epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Region;
    use crate::vm::VmType;

    fn sim3() -> NetSim {
        let topo = Topology::builder()
            .dc(Region::UsEast, VmType::t3_nano(), 1)
            .dc(Region::UsWest, VmType::t3_nano(), 1)
            .dc(Region::ApSoutheast1, VmType::t3_nano(), 1)
            .build()
            .unwrap();
        NetSim::new(topo, LinkModelParams::frozen(), 1)
    }

    #[test]
    fn lone_flow_is_window_limited_on_long_paths() {
        let sim = sim3();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(2), 1)]);
        assert!((100.0..150.0).contains(&rates[0]), "US East→AP SE single conn: {}", rates[0]);
    }

    #[test]
    fn lone_flow_nic_limited_on_short_paths() {
        let sim = sim3();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 4)]);
        let nic = sim.topology().dc(DcId(0)).egress_cap_mbps();
        assert!(rates[0] <= nic + 1e-6);
        assert!(rates[0] > 0.8 * nic, "4 conns should saturate the NIC, got {}", rates[0]);
    }

    #[test]
    fn parallel_connections_raise_weak_link_throughput() {
        let sim = sim3();
        let one = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(2), 1)])[0];
        let nine = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(2), 9)])[0];
        assert!(nine > 6.0 * one, "9 conns: {nine} vs 1 conn: {one}");
        assert!((800.0..1300.0).contains(&nine), "paper: ~1 Gbps with 9 conns, got {nine}");
    }

    #[test]
    fn contention_starves_long_rtt_flows() {
        let sim = sim3();
        let flows = [
            FlowSpec::new(DcId(0), DcId(1), 8), // nearby, well-parallelized
            FlowSpec::new(DcId(0), DcId(2), 1), // distant, same egress NIC
        ];
        let rates = sim.allocate_rates(&flows);
        let alone = sim.allocate_rates(&[flows[1]])[0];
        assert!(rates[1] < alone, "contended {} vs alone {alone}", rates[1]);
        assert!(rates[0] > 4.0 * rates[1], "RTT bias should favor the nearby flow");
    }

    #[test]
    fn throttle_caps_flow() {
        let mut sim = sim3();
        sim.set_throttle(DcId(0), DcId(1), 200.0);
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 8)]);
        assert!(rates[0] <= 200.0 + 1e-6);
        sim.clear_throttles();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 8)]);
        assert!(rates[0] > 1000.0);
    }

    #[test]
    fn backbone_caps_compose_with_throttles_and_clear() {
        let mut sim = sim3();
        let flow = [FlowSpec::new(DcId(0), DcId(1), 8)];
        let free = sim.allocate_rates(&flow)[0];
        // A backbone reservation caps the pair like a throttle would…
        let mut caps = Grid::filled(3, f64::INFINITY);
        caps.set(0, 1, 150.0);
        sim.set_backbone_caps(caps);
        assert!(sim.allocate_rates(&flow)[0] <= 150.0 + 1e-6);
        // …composes with (does not overwrite) traffic control: the
        // tighter of the two wins.
        sim.set_throttle(DcId(0), DcId(1), 90.0);
        assert!(sim.allocate_rates(&flow)[0] <= 90.0 + 1e-6);
        // The demand signal stays blind to the reservation, capped only
        // by the throttle.
        assert!((sim.unreserved_ceiling_mbps(&flow[0]) - 90.0).abs() < 1e-6);
        // Clearing the reservation restores the throttled rate; clearing
        // the throttle restores the free rate bit for bit.
        sim.clear_backbone_caps();
        assert!(sim.backbone_caps().get(0, 1).is_infinite());
        assert!(sim.allocate_rates(&flow)[0] <= 90.0 + 1e-6);
        sim.clear_throttles();
        assert_eq!(sim.allocate_rates(&flow)[0].to_bits(), free.to_bits());
    }

    #[test]
    fn intra_dc_flows_run_at_lan_speed() {
        let sim = sim3();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(1), DcId(1), 1)]);
        assert_eq!(rates[0], INTRA_DC_MBPS);
    }

    #[test]
    fn zero_conn_flow_gets_zero() {
        let sim = sim3();
        let rates = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 0)]);
        assert_eq!(rates[0], 0.0);
    }

    #[test]
    fn oversubscribed_host_loses_goodput() {
        let sim = sim3();
        let modest = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 8)])[0];
        let flooded = sim.allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 64)])[0];
        assert!(
            flooded < modest,
            "64 conns ({flooded}) should underperform 8 conns ({modest}) via congestion"
        );
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        let sim = sim3();
        let mut scratch = RateScratch::default();
        let mixed = [
            FlowSpec::new(DcId(0), DcId(1), 8),
            FlowSpec::new(DcId(1), DcId(1), 1), // intra-DC
            FlowSpec::new(DcId(0), DcId(2), 2),
            FlowSpec::new(DcId(2), DcId(0), 0), // idle
        ];
        let first = sim.allocate_rates_with(&mixed, &mut scratch).to_vec();
        assert_eq!(first, sim.allocate_rates(&mixed));
        // A differently-shaped problem in between must not leak state…
        let _ = sim.allocate_rates_with(&[FlowSpec::new(DcId(2), DcId(1), 3)], &mut scratch);
        // …and re-solving the original is bit-identical.
        assert_eq!(sim.allocate_rates_with(&mixed, &mut scratch), first.as_slice());
    }

    #[test]
    fn allocate_rates_is_deterministic_across_calls() {
        // Regression for the HashMap-ordered Path resources the CSR
        // grouping replaced: repeated solves must be bit-identical.
        let sim = sim3();
        let flows: Vec<FlowSpec> = (0..3)
            .flat_map(|i| (0..3).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| FlowSpec::new(DcId(i), DcId(j), 1 + (i + 2 * j) as u32))
            .collect();
        let first = sim.allocate_rates(&flows);
        for _ in 0..10 {
            assert_eq!(sim.allocate_rates(&flows), first);
        }
    }

    #[test]
    fn run_transfers_completes_and_reports() {
        let mut sim = sim3();
        let transfers = [
            Transfer::new(DcId(0), DcId(1), 4.0),
            Transfer::new(DcId(0), DcId(2), 1.0),
            Transfer::new(DcId(2), DcId(1), 0.5),
        ];
        let conns = ConnMatrix::filled(3, 1);
        let report = sim.run_transfers(&transfers, &conns, None);
        assert!(report.makespan_s >= 1.0);
        assert_eq!(report.completion_s.len(), 3);
        assert!(report.min_pair_bw_mbps > 0.0);
        assert!(report.egress_gigabits[0] > 4.9, "DC0 sent 5 Gb total");
        assert!(report.max_pair_bw_mbps() >= report.min_pair_bw_mbps);
    }

    #[test]
    fn run_transfers_with_zero_payload_is_instant() {
        let mut sim = sim3();
        let conns = ConnMatrix::filled(3, 1);
        let report = sim.run_transfers(&[Transfer::new(DcId(0), DcId(1), 0.0)], &conns, None);
        assert_eq!(report.epochs, 0);
        assert_eq!(report.completion_s[0], 0.0);
        assert_eq!(sim.last_run_stats().solves, 0);
    }

    #[test]
    fn coalescing_solves_once_per_drain_event() {
        // Three pairs, frozen dynamics, no hook: the fast path may solve
        // at most once per pair-drain event (drains can coincide).
        let mut sim = sim3();
        let transfers = [
            Transfer::new(DcId(0), DcId(1), 40.0),
            Transfer::new(DcId(0), DcId(2), 10.0),
            Transfer::new(DcId(2), DcId(1), 5.0),
        ];
        let conns = ConnMatrix::filled(3, 2);
        let report = sim.run_transfers(&transfers, &conns, None);
        let stats = sim.last_run_stats();
        assert!(stats.coalesced);
        assert!(stats.solves <= 3, "3 drain events but {} solves", stats.solves);
        assert!(
            report.epochs as u64 > stats.solves * 10,
            "coalescing should skip most epochs: {} epochs, {} solves",
            report.epochs,
            stats.solves
        );
    }

    #[test]
    fn per_epoch_path_solves_every_epoch() {
        struct Noop;
        impl EpochHook for Noop {
            fn on_epoch(&mut self, _ctx: &mut EpochCtx<'_>) {}
        }
        let mut sim = sim3();
        let conns = ConnMatrix::filled(3, 1);
        let report =
            sim.run_transfers(&[Transfer::new(DcId(0), DcId(1), 2.0)], &conns, Some(&mut Noop));
        let stats = sim.last_run_stats();
        assert!(!stats.coalesced);
        assert_eq!(stats.solves, report.epochs as u64);
    }

    #[test]
    fn hook_can_raise_connections_mid_transfer() {
        struct Booster;
        impl EpochHook for Booster {
            fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
                ctx.conns.set(0, 2, 9);
            }
        }
        let mut sim = sim3();
        let conns = ConnMatrix::filled(3, 1);
        let slow = sim.run_transfers(&[Transfer::new(DcId(0), DcId(2), 2.0)], &conns, None);
        let mut sim = sim3();
        let fast =
            sim.run_transfers(&[Transfer::new(DcId(0), DcId(2), 2.0)], &conns, Some(&mut Booster));
        assert!(
            fast.makespan_s < slow.makespan_s,
            "boosted {} vs single-conn {}",
            fast.makespan_s,
            slow.makespan_s
        );
    }

    #[cfg(test)]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_flows() -> impl Strategy<Value = Vec<FlowSpec>> {
            proptest::collection::vec((0usize..3, 0usize..3, 0u32..12), 1..10).prop_map(|raw| {
                raw.into_iter().map(|(s, d, c)| FlowSpec::new(DcId(s), DcId(d), c)).collect()
            })
        }

        proptest! {
            #[test]
            fn rates_are_nonnegative_and_window_bounded(flows in arb_flows()) {
                let sim = sim3();
                let rates = sim.allocate_rates(&flows);
                for (f, &rate) in flows.iter().zip(&rates) {
                    prop_assert!(rate >= 0.0);
                    if f.src != f.dst && f.conns > 0 {
                        let dist = sim.topology().distance_miles(f.src, f.dst);
                        let window =
                            f64::from(f.conns) * sim.params().conn_cap_mbps(dist);
                        prop_assert!(rate <= window + 1e-6,
                            "flow {f:?} rate {rate} exceeds window {window}");
                    }
                }
            }

            #[test]
            fn no_host_nic_oversubscribed(flows in arb_flows()) {
                let sim = sim3();
                let rates = sim.allocate_rates(&flows);
                for h in 0..3 {
                    let egress: f64 = flows
                        .iter()
                        .zip(&rates)
                        .filter(|(f, _)| f.src == DcId(h) && f.src != f.dst)
                        .map(|(_, &r)| r)
                        .sum();
                    let cap = sim.topology().dc(DcId(h)).egress_cap_mbps();
                    prop_assert!(egress <= cap + 1e-6,
                        "host {h} egress {egress} exceeds NIC {cap}");
                }
            }

            #[test]
            fn transfers_conserve_payload(
                payloads in proptest::collection::vec(0.0f64..5.0, 3),
            ) {
                let mut sim = sim3();
                let transfers: Vec<Transfer> = payloads
                    .iter()
                    .enumerate()
                    .map(|(k, &gb)| Transfer::new(DcId(k % 3), DcId((k + 1) % 3), gb))
                    .collect();
                let conns = ConnMatrix::filled(3, 2);
                let report = sim.run_transfers(&transfers, &conns, None);
                let moved: f64 = report.egress_gigabits.iter().sum();
                let requested: f64 = payloads.iter().sum();
                prop_assert!((moved - requested).abs() < 1e-6,
                    "moved {moved} Gb vs requested {requested} Gb");
            }
        }
    }

    #[test]
    fn empty_fault_schedule_is_bit_identical_to_none() {
        let transfers =
            [Transfer::new(DcId(0), DcId(2), 8.0), Transfer::new(DcId(0), DcId(1), 3.0)];
        let conns = ConnMatrix::filled(3, 2);
        let mut plain = sim3();
        let baseline = plain.run_transfers(&transfers, &conns, None);
        let mut faulted = sim3();
        faulted.set_fault_schedule(crate::faults::FaultSchedule::new());
        let report = faulted.run_transfers(&transfers, &conns, None);
        assert_eq!(report.makespan_s.to_bits(), baseline.makespan_s.to_bits());
        assert_eq!(report.min_pair_bw_mbps.to_bits(), baseline.min_pair_bw_mbps.to_bits());
        assert_eq!(report.epochs, baseline.epochs);
        assert_eq!(faulted.degraded_s(), 0.0);
    }

    #[test]
    fn dc_outage_stalls_the_pair_until_recovery() {
        let transfers = [Transfer::new(DcId(0), DcId(1), 4.0)];
        let conns = ConnMatrix::filled(3, 2);
        let mut clean = sim3();
        let fast = clean.run_transfers(&transfers, &conns, None);

        let mut sim = sim3();
        sim.set_fault_schedule(crate::faults::FaultSchedule::new().dc_outage(DcId(1), 1.0, 30.0));
        let slow = sim.run_transfers(&transfers, &conns, None);
        assert!(
            slow.makespan_s > 29.0,
            "payload must wait out the outage: {} vs clean {}",
            slow.makespan_s,
            fast.makespan_s
        );
        assert!((sim.degraded_s() - 29.0).abs() < 0.5, "degraded for ~29 s: {}", sim.degraded_s());
        assert!(!sim.fault_degraded(), "outage healed by completion");
        assert!(!sim.has_pending_faults());
        // Payload is conserved through the stall.
        let moved: f64 = slow.egress_gigabits.iter().sum();
        assert!((moved - 4.0).abs() < 1e-6);
    }

    #[test]
    fn link_degradation_scales_the_ceiling() {
        let mut sim = sim3();
        let flow = [FlowSpec::new(DcId(0), DcId(1), 2)];
        let healthy = sim.unreserved_ceiling_mbps(&flow[0]);
        sim.set_fault_schedule(crate::faults::FaultSchedule::new().at(
            0.0,
            crate::faults::FaultKind::LinkFactor { src: DcId(0), dst: DcId(1), factor: 0.25 },
        ));
        sim.poll_faults();
        let degraded = sim.unreserved_ceiling_mbps(&flow[0]);
        assert!((degraded - 0.25 * healthy).abs() < 1e-9, "{degraded} vs {healthy}");
        assert!(sim.fault_degraded());
        assert!(sim.dc_is_up(DcId(0)) && sim.dc_is_up(DcId(1)));
    }

    #[test]
    fn faulted_fast_path_matches_per_epoch_stepping() {
        // The coalesced jump must clip at each fault event and land on the
        // same epochs as per-epoch stepping (a Noop hook forces it).
        struct Noop;
        impl EpochHook for Noop {
            fn on_epoch(&mut self, _ctx: &mut EpochCtx<'_>) {}
        }
        let schedule = || {
            crate::faults::FaultSchedule::new()
                .dc_outage(DcId(2), 3.0, 9.0)
                .link_flap(DcId(0), DcId(1), 0.4, 2.0, 5.0, 3)
                .straggler(DcId(1), 0.7, 12.0)
                .diurnal(40.0, 0.6, 4, 1)
        };
        let transfers = [
            Transfer::new(DcId(0), DcId(1), 10.0),
            Transfer::new(DcId(0), DcId(2), 2.0),
            Transfer::new(DcId(2), DcId(1), 1.0),
        ];
        let conns = ConnMatrix::filled(3, 2);
        let mut coalesced = sim3();
        coalesced.set_fault_schedule(schedule());
        let a = coalesced.run_transfers(&transfers, &conns, None);
        assert!(coalesced.last_run_stats().coalesced);
        let mut stepped = sim3();
        stepped.set_fault_schedule(schedule());
        let b = stepped.run_transfers(&transfers, &conns, Some(&mut Noop));
        assert!(!stepped.last_run_stats().coalesced);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        assert_eq!(a.min_pair_bw_mbps.to_bits(), b.min_pair_bw_mbps.to_bits());
        for (x, y) in a.completion_s.iter().zip(&b.completion_s) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(coalesced.degraded_s().to_bits(), stepped.degraded_s().to_bits());
    }

    #[test]
    fn faulted_runs_are_bit_identical_across_repeats() {
        let run = || {
            let mut sim = sim3();
            sim.set_fault_schedule(
                crate::faults::FaultSchedule::new()
                    .dc_outage(DcId(1), 2.0, 12.0)
                    .diurnal(30.0, 0.5, 6, 2),
            );
            let conns = ConnMatrix::filled(3, 1);
            let r = sim.run_transfers(&[Transfer::new(DcId(0), DcId(1), 6.0)], &conns, None);
            (r.makespan_s.to_bits(), sim.degraded_s().to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = || {
            let topo = Topology::builder()
                .dc(Region::UsEast, VmType::t3_nano(), 1)
                .dc(Region::EuWest, VmType::t3_nano(), 1)
                .build()
                .unwrap();
            let mut sim = NetSim::new(topo, LinkModelParams::default(), 99);
            let conns = ConnMatrix::filled(2, 2);
            sim.run_transfers(&[Transfer::new(DcId(0), DcId(1), 3.0)], &conns, None).makespan_s
        };
        assert_eq!(run(), run());
    }
}
