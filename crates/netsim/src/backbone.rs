//! Cross-shard backbone: finite inter-group trunks shared by shard-local
//! simulators through a coarse epoch exchange.
//!
//! A sharded fleet partitions tenants across several independent
//! [`NetEngine`](crate::NetEngine)s so each shard's event loop stays small
//! and shards can run on separate cores. The shards are not fully
//! independent, though: traffic that leaves a shard's *region group*
//! rides trunks every shard shares — the inter-continental backbone. This
//! module models that coupling without forcing the shards into lockstep:
//!
//! * [`Backbone`] partitions the data centers into **region groups** and
//!   assigns every directed group pair a finite trunk capacity;
//! * at every **sync point** (each [`Backbone::sync_every_s`] simulated
//!   seconds) the fleet driver collects each shard's cross-group *demand*
//!   (the unreserved ceilings of its in-flight boundary flows, see
//!   [`crate::NetEngine::cross_group_demand_mbps`]), and
//!   [`Backbone::allocate`] splits every trunk across shards by max-min
//!   fairness, spreading any headroom evenly;
//! * each shard applies its granted share as per-pair caps
//!   ([`crate::NetEngine::apply_backbone_allocation`]) and then simulates
//!   the next window **independently**, event-coalescing as usual.
//!
//! The exchange is deliberately coarse: reservations trail demand by one
//! window (a shard whose boundary traffic appears mid-window runs on the
//! previous grant — or uncapped, if it had none — until the next sync).
//! That is the price of keeping shards independently coalescing between
//! sync points, and it shrinks with `sync_every_s`. Everything here is
//! pure arithmetic over caller-supplied state, so a fixed sync schedule
//! yields bit-identical allocations regardless of how many OS threads
//! drive the shards.

use crate::geo::Region;
use crate::grid::Grid;
use crate::topology::{DcId, Topology};

/// The cross-shard backbone model. See the module docs.
#[derive(Debug, Clone)]
pub struct Backbone {
    /// Region group of each DC, indexed by `DcId`.
    group_of: Vec<usize>,
    n_groups: usize,
    /// Trunk capacity per directed group pair, Mbps (`f64::INFINITY` =
    /// unconstrained trunk; the diagonal is ignored — intra-group traffic
    /// never crosses the backbone).
    capacity_mbps: Grid<f64>,
    /// Simulated seconds between epoch-exchange sync points.
    sync_every_s: f64,
}

impl Backbone {
    /// Builds a backbone over an explicit DC → group map and a per-group
    /// directed trunk-capacity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `group_of` is empty, any group index is out of range for
    /// `capacity_mbps`, any capacity is negative or NaN, or
    /// `sync_every_s` is not finite and positive.
    pub fn new(group_of: Vec<usize>, capacity_mbps: Grid<f64>, sync_every_s: f64) -> Self {
        assert!(!group_of.is_empty(), "a backbone needs at least one data center");
        let n_groups = capacity_mbps.len();
        for (dc, &g) in group_of.iter().enumerate() {
            assert!(g < n_groups, "DC{dc} assigned to group {g}, but only {n_groups} groups exist");
        }
        for i in 0..n_groups {
            for j in 0..n_groups {
                let c = capacity_mbps.get(i, j);
                assert!(c >= 0.0, "trunk capacity ({i},{j}) must be non-negative, got {c}");
            }
        }
        assert!(
            sync_every_s.is_finite() && sync_every_s > 0.0,
            "sync interval must be finite and positive, got {sync_every_s}"
        );
        Self { group_of, n_groups, capacity_mbps, sync_every_s }
    }

    /// A backbone with the same trunk capacity on every directed group
    /// pair.
    pub fn uniform(group_of: Vec<usize>, trunk_mbps: f64, sync_every_s: f64) -> Self {
        let n_groups = group_of.iter().copied().max().map_or(0, |g| g + 1);
        Self::new(group_of, Grid::filled(n_groups, trunk_mbps), sync_every_s)
    }

    /// A backbone grouping `topo`'s DCs by continent (Americas, Europe,
    /// Asia-Pacific), with `trunk_mbps` capacity per directed trunk — the
    /// natural region-group decomposition of the paper's 8-DC testbed.
    /// Group ids are compacted in order of first appearance, so
    /// topologies spanning fewer continents still get dense groups
    /// (important for `group % n_shards` style placement).
    pub fn continental(topo: &Topology, trunk_mbps: f64, sync_every_s: f64) -> Self {
        let mut seen: Vec<usize> = Vec::new();
        let group_of: Vec<usize> = topo
            .iter()
            .map(|(_, dc)| {
                let c = continent_of(dc.region);
                match seen.iter().position(|&s| s == c) {
                    Some(dense) => dense,
                    None => {
                        seen.push(c);
                        seen.len() - 1
                    }
                }
            })
            .collect();
        Self::new(group_of, Grid::filled(seen.len(), trunk_mbps), sync_every_s)
    }

    /// A backbone grouping `topo`'s DCs by cloud region, with
    /// `trunk_mbps` capacity per directed trunk — the fine tier of a
    /// [`BackboneHierarchy`] over tiled many-DC topologies
    /// ([`crate::paper_testbed_tiled`]), where every region hosts
    /// several DCs. Group ids are compacted in order of first
    /// appearance, like [`Backbone::continental`].
    pub fn regional(topo: &Topology, trunk_mbps: f64, sync_every_s: f64) -> Self {
        let mut seen: Vec<Region> = Vec::new();
        let group_of: Vec<usize> = topo
            .iter()
            .map(|(_, dc)| match seen.iter().position(|&s| s == dc.region) {
                Some(dense) => dense,
                None => {
                    seen.push(dc.region);
                    seen.len() - 1
                }
            })
            .collect();
        Self::new(group_of, Grid::filled(seen.len(), trunk_mbps), sync_every_s)
    }

    /// Region group of a DC.
    ///
    /// # Panics
    ///
    /// Panics if `dc` is out of range.
    pub fn group_of(&self, dc: DcId) -> usize {
        self.group_of[dc.0]
    }

    /// The DC → group map, indexed by `DcId`.
    pub fn groups(&self) -> &[usize] {
        &self.group_of
    }

    /// Number of region groups.
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// Simulated seconds between epoch-exchange sync points.
    pub fn sync_every_s(&self) -> f64 {
        self.sync_every_s
    }

    /// Whether a directed DC pair crosses a group boundary (and therefore
    /// rides the backbone).
    pub fn is_cross(&self, src: DcId, dst: DcId) -> bool {
        self.group_of[src.0] != self.group_of[dst.0]
    }

    /// Trunk capacity of a directed group pair, Mbps.
    pub fn trunk_mbps(&self, from_group: usize, to_group: usize) -> f64 {
        self.capacity_mbps.get(from_group, to_group)
    }

    /// The epoch exchange: splits every directed trunk across shards.
    ///
    /// `demands[s]` is shard `s`'s wanted Mbps per directed group pair
    /// (its in-flight boundary flows' unreserved ceilings). Each trunk is
    /// divided by max-min fairness — every shard gets up to an equal
    /// share, unused portions are redistributed to still-hungry shards —
    /// and any capacity left after all demands are met is spread evenly
    /// across all shards as headroom, so a shard whose boundary traffic
    /// grows mid-window is not strangled at its stale demand. Trunks with
    /// infinite capacity grant `f64::INFINITY` to everyone.
    ///
    /// Pure and deterministic: the result depends only on the inputs, in
    /// shard-index order.
    ///
    /// # Panics
    ///
    /// Panics if any demand grid does not match the group count.
    pub fn allocate(&self, demands: &[Grid<f64>]) -> Vec<Grid<f64>> {
        let g = self.n_groups;
        for d in demands {
            assert_eq!(d.len(), g, "demand grid must be n_groups × n_groups");
        }
        let shards = demands.len();
        let mut shares = vec![Grid::filled(g, f64::INFINITY); shards];
        if shards == 0 {
            return shares;
        }
        let mut grant = vec![0.0f64; shards];
        for from in 0..g {
            for to in 0..g {
                if from == to {
                    continue;
                }
                let cap = self.capacity_mbps.get(from, to);
                if cap.is_infinite() {
                    continue; // every shard keeps f64::INFINITY
                }
                // Max-min over the shards' demands: repeatedly hand every
                // unsatisfied shard an equal slice of what is left.
                for slot in grant.iter_mut() {
                    *slot = 0.0;
                }
                let mut remaining = cap;
                // Hungry means the same thing here as in the serving loop
                // below (> 1e-12 unmet demand); a looser bound would let a
                // sub-epsilon demand count as hungry yet never be served
                // or satisfied, aborting the water-fill a round early.
                let mut hungry: usize =
                    (0..shards).filter(|&s| demands[s].get(from, to) > 1e-12).count();
                while hungry > 0 && remaining > 1e-9 {
                    let slice = remaining / hungry as f64;
                    let mut satisfied_this_round = 0usize;
                    let mut used = 0.0;
                    for s in 0..shards {
                        let want = demands[s].get(from, to);
                        if want - grant[s] <= 1e-12 {
                            continue;
                        }
                        let take = slice.min(want - grant[s]);
                        grant[s] += take;
                        used += take;
                        if want - grant[s] <= 1e-12 {
                            satisfied_this_round += 1;
                        }
                    }
                    remaining -= used;
                    if satisfied_this_round == 0 {
                        break; // everyone hungry took a full slice
                    }
                    hungry -= satisfied_this_round;
                }
                // Headroom: spread leftover capacity evenly over all
                // shards so growth between syncs is not capped at zero.
                let bonus = remaining.max(0.0) / shards as f64;
                for s in 0..shards {
                    shares[s].set(from, to, grant[s] + bonus);
                }
            }
        }
        shares
    }
}

/// A two-tier backbone: shards-of-shards.
///
/// Large fleets split a 64+ DC topology across many shards, but a flat
/// [`Backbone`] forces every shard pair through one exchange at one
/// granularity. A hierarchy layers two:
///
/// * **tier 1** (fine): region groups with their own trunk capacities,
///   exchanged every `tier1.sync_every_s()` — the frequent, cheap sync
///   between sibling shards;
/// * **tier 2** (coarse): super-groups (e.g. continents) with their own
///   trunks, exchanged every `tier2.sync_every_s()` — an integer
///   multiple of the tier-1 window, so tier-2 syncs land exactly on
///   every `sync_ratio()`-th tier-1 sync point.
///
/// Tier 1 must **refine** tier 2: two DCs sharing a tier-1 group always
/// share a tier-2 super-group, so a boundary pair's tier-2 trunk is a
/// strictly coarser constraint and the two grants compose by per-pair
/// minimum ([`crate::NetEngine::apply_backbone_tiers`]). Between tier-2
/// syncs a shard keeps running on its stale tier-2 grant — the same
/// one-window coarseness the flat exchange already accepts, one level
/// up.
#[derive(Debug, Clone)]
pub struct BackboneHierarchy {
    tier1: Backbone,
    tier2: Backbone,
    sync_ratio: usize,
}

impl BackboneHierarchy {
    /// Builds the hierarchy and validates its invariants.
    ///
    /// # Panics
    ///
    /// Panics if the tiers cover different DC counts, tier 1 does not
    /// refine tier 2, or tier 2's sync window is not an integer multiple
    /// of tier 1's.
    pub fn new(tier1: Backbone, tier2: Backbone) -> Self {
        assert_eq!(
            tier1.groups().len(),
            tier2.groups().len(),
            "both tiers must group the same data centers"
        );
        // Refinement: every tier-1 group maps into exactly one tier-2
        // super-group.
        let mut super_of_group: Vec<Option<usize>> = vec![None; tier1.n_groups()];
        for (dc, (&g, &s)) in tier1.groups().iter().zip(tier2.groups()).enumerate() {
            match super_of_group[g] {
                None => super_of_group[g] = Some(s),
                Some(prev) => assert_eq!(
                    prev, s,
                    "tier 1 must refine tier 2: DC{dc} puts group {g} in super-group {s}, \
                     but another DC put it in {prev}"
                ),
            }
        }
        let ratio = tier2.sync_every_s() / tier1.sync_every_s();
        let sync_ratio = ratio.round() as usize;
        assert!(
            sync_ratio >= 1 && (ratio - sync_ratio as f64).abs() < 1e-9,
            "tier-2 sync window ({}s) must be an integer multiple of tier 1's ({}s)",
            tier2.sync_every_s(),
            tier1.sync_every_s()
        );
        Self { tier1, tier2, sync_ratio }
    }

    /// The natural hierarchy for tiled paper topologies: tier 1 groups
    /// by cloud region, tier 2 by continent.
    pub fn regional_continental(
        topo: &Topology,
        regional_trunk_mbps: f64,
        continental_trunk_mbps: f64,
        tier1_sync_s: f64,
        tier2_sync_s: f64,
    ) -> Self {
        Self::new(
            Backbone::regional(topo, regional_trunk_mbps, tier1_sync_s),
            Backbone::continental(topo, continental_trunk_mbps, tier2_sync_s),
        )
    }

    /// The fine tier (region groups).
    pub fn tier1(&self) -> &Backbone {
        &self.tier1
    }

    /// The coarse tier (super-groups).
    pub fn tier2(&self) -> &Backbone {
        &self.tier2
    }

    /// How many tier-1 windows one tier-2 window spans.
    pub fn sync_ratio(&self) -> usize {
        self.sync_ratio
    }
}

/// Continent of a region, for [`Backbone::continental`].
fn continent_of(region: Region) -> usize {
    match region {
        Region::UsEast | Region::UsWest | Region::SaEast | Region::GcpUsCentral => 0,
        Region::EuWest => 1,
        Region::ApSouth | Region::ApSoutheast1 | Region::ApSoutheast2 | Region::ApNortheast => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmType;

    fn demand(g: usize, cells: &[(usize, usize, f64)]) -> Grid<f64> {
        let mut d = Grid::filled(g, 0.0);
        for &(i, j, v) in cells {
            d.set(i, j, v);
        }
        d
    }

    #[test]
    fn continental_groups_the_paper_testbed() {
        let topo = crate::paper_testbed(VmType::t2_medium());
        let bb = Backbone::continental(&topo, 1000.0, 10.0);
        assert_eq!(bb.n_groups(), 3);
        // US East / US West / SA East share the Americas group.
        assert_eq!(bb.group_of(DcId(0)), bb.group_of(DcId(1)));
        assert_eq!(bb.group_of(DcId(0)), bb.group_of(DcId(7)));
        // Mumbai..Tokyo share Asia-Pacific; Ireland is alone in Europe.
        assert_eq!(bb.group_of(DcId(2)), bb.group_of(DcId(5)));
        assert!(bb.is_cross(DcId(0), DcId(6)));
        assert!(!bb.is_cross(DcId(0), DcId(1)));
    }

    #[test]
    fn allocate_splits_contended_trunks_max_min() {
        let bb = Backbone::uniform(vec![0, 1], 900.0, 10.0);
        // Shard 0 wants 600, shard 1 wants 200: max-min gives 200 to the
        // small one, 600 to the big one, and splits the 100 headroom.
        let shares = bb.allocate(&[demand(2, &[(0, 1, 600.0)]), demand(2, &[(0, 1, 200.0)])]);
        assert!((shares[0].get(0, 1) - 650.0).abs() < 1e-6, "{}", shares[0].get(0, 1));
        assert!((shares[1].get(0, 1) - 250.0).abs() < 1e-6, "{}", shares[1].get(0, 1));
        // The reverse trunk had no demand: all capacity is headroom.
        assert!((shares[0].get(1, 0) - 450.0).abs() < 1e-6);
    }

    #[test]
    fn allocate_caps_oversubscribed_trunks_at_equal_shares() {
        let bb = Backbone::uniform(vec![0, 1], 300.0, 10.0);
        let shares = bb.allocate(&[
            demand(2, &[(0, 1, 500.0)]),
            demand(2, &[(0, 1, 500.0)]),
            demand(2, &[(0, 1, 500.0)]),
        ]);
        let total: f64 = (0..3).map(|s| shares[s].get(0, 1)).sum();
        assert!((total - 300.0).abs() < 1e-6, "grants must exhaust the trunk, got {total}");
        for s in &shares {
            assert!((s.get(0, 1) - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sub_epsilon_demands_do_not_starve_the_water_fill() {
        // Regression: a shard wanting < 1e-12 Mbps must not count as
        // hungry (it can never be served or satisfied), or the max-min
        // loop aborts after one round and underallocates the trunk.
        let bb = Backbone::uniform(vec![0, 1], 100.0, 10.0);
        let shares = bb.allocate(&[demand(2, &[(0, 1, 5e-13)]), demand(2, &[(0, 1, 1000.0)])]);
        assert!(
            shares[1].get(0, 1) >= 100.0 - 1e-6,
            "the real demand must get (at least) the whole trunk, got {}",
            shares[1].get(0, 1)
        );
    }

    #[test]
    fn infinite_trunks_grant_infinity() {
        let bb = Backbone::uniform(vec![0, 1], f64::INFINITY, 5.0);
        let shares = bb.allocate(&[demand(2, &[(0, 1, 100.0)])]);
        assert!(shares[0].get(0, 1).is_infinite());
    }

    #[test]
    fn allocation_is_deterministic() {
        let bb = Backbone::uniform(vec![0, 0, 1, 2], 750.0, 20.0);
        let demands: Vec<Grid<f64>> = (0..4)
            .map(|s| {
                Grid::from_fn(3, |i, j| {
                    if i == j {
                        0.0
                    } else {
                        ((s * 7 + i * 3 + j) % 5) as f64 * 123.456
                    }
                })
            })
            .collect();
        let a = bb.allocate(&demands);
        let b = bb.allocate(&demands);
        for (x, y) in a.iter().zip(&b) {
            for i in 0..3 {
                for j in 0..3 {
                    assert_eq!(x.get(i, j).to_bits(), y.get(i, j).to_bits());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "sync interval")]
    fn zero_sync_interval_is_rejected() {
        let _ = Backbone::uniform(vec![0, 1], 100.0, 0.0);
    }

    #[test]
    fn regional_groups_a_tiled_testbed_by_region() {
        let topo = crate::paper_testbed_tiled(VmType::t2_medium(), 20);
        let bb = Backbone::regional(&topo, 2000.0, 10.0);
        assert_eq!(bb.n_groups(), 8, "20 DCs tile all 8 paper regions");
        // DC 0 and DC 8 are both US East: same region group.
        assert_eq!(bb.group_of(DcId(0)), bb.group_of(DcId(8)));
        assert!(bb.is_cross(DcId(0), DcId(1)));
        assert!(!bb.is_cross(DcId(3), DcId(11)));
    }

    #[test]
    fn hierarchy_validates_refinement_and_sync_ratio() {
        let topo = crate::paper_testbed_tiled(VmType::t2_medium(), 16);
        let h = BackboneHierarchy::regional_continental(&topo, 2000.0, 5000.0, 10.0, 30.0);
        assert_eq!(h.sync_ratio(), 3);
        assert_eq!(h.tier1().n_groups(), 8);
        assert_eq!(h.tier2().n_groups(), 3);
        // Refinement in action: a regional boundary inside a continent
        // crosses tier 1 but not tier 2.
        assert!(h.tier1().is_cross(DcId(0), DcId(1)));
        assert!(!h.tier2().is_cross(DcId(0), DcId(1)), "US East / US West share a continent");
    }

    #[test]
    #[should_panic(expected = "refine")]
    fn hierarchy_rejects_non_refining_tiers() {
        // Tier 1 lumps DCs 0 and 1 together, but tier 2 separates them.
        let t1 = Backbone::uniform(vec![0, 0, 1], 100.0, 10.0);
        let t2 = Backbone::uniform(vec![0, 1, 1], 100.0, 20.0);
        let _ = BackboneHierarchy::new(t1, t2);
    }

    #[test]
    #[should_panic(expected = "integer multiple")]
    fn hierarchy_rejects_misaligned_sync_windows() {
        let t1 = Backbone::uniform(vec![0, 0, 1], 100.0, 10.0);
        let t2 = Backbone::uniform(vec![0, 0, 1], 100.0, 25.0);
        let _ = BackboneHierarchy::new(t1, t2);
    }

    #[test]
    #[should_panic(expected = "group")]
    fn out_of_range_group_is_rejected() {
        let _ = Backbone::new(vec![0, 5], Grid::filled(2, 100.0), 10.0);
    }
}
