//! Virtual machine types: compute capacity, NIC limits and pricing.
//!
//! Cloud providers throttle WAN bandwidth based on instance type and size
//! (paper §2.1: an m5.large has 10 Gbps of aggregate network bandwidth but
//! only up to 5 Gbps across the WAN). The experiments use unlimited-burst
//! t3.nano probes and t2.medium/t2.large workers, with a $0.05 per
//! vCPU-hour burst surcharge added to cost figures (paper §5.1).

/// A virtual machine flavor.
#[derive(Debug, Clone, PartialEq)]
pub struct VmType {
    /// Flavor name, e.g. `"t2.medium"`.
    pub name: String,
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Memory in GiB.
    pub mem_gib: f64,
    /// WAN egress NIC cap in Mbps (already halved from LAN per §2.1).
    pub wan_egress_mbps: f64,
    /// WAN ingress NIC cap in Mbps.
    pub wan_ingress_mbps: f64,
    /// Parallel-connection budget before congestion losses kick in.
    pub conn_budget: u32,
    /// On-demand price in USD per instance-hour.
    pub price_per_hour: f64,
    /// Whether CPU bursting is unlimited (adds the vCPU-hour surcharge).
    pub unlimited_burst: bool,
}

impl VmType {
    /// AWS t3.nano with unlimited burst — the paper's bandwidth probe VM
    /// (§2.2, §5.1).
    pub fn t3_nano() -> Self {
        Self {
            name: "t3.nano".to_string(),
            vcpus: 2,
            mem_gib: 0.5,
            wan_egress_mbps: 1900.0,
            wan_ingress_mbps: 1900.0,
            conn_budget: 16,
            price_per_hour: 0.0052,
            unlimited_burst: true,
        }
    }

    /// AWS t2.medium — the paper's Spark worker VM (§5.1).
    pub fn t2_medium() -> Self {
        Self {
            name: "t2.medium".to_string(),
            vcpus: 2,
            mem_gib: 4.0,
            wan_egress_mbps: 2600.0,
            wan_ingress_mbps: 2600.0,
            conn_budget: 24,
            price_per_hour: 0.0464,
            unlimited_burst: true,
        }
    }

    /// AWS t2.large — the paper's Spark master VM (§5.1).
    pub fn t2_large() -> Self {
        Self {
            name: "t2.large".to_string(),
            vcpus: 2,
            mem_gib: 8.0,
            wan_egress_mbps: 3000.0,
            wan_ingress_mbps: 3000.0,
            conn_budget: 32,
            price_per_hour: 0.0928,
            unlimited_burst: true,
        }
    }

    /// AWS m5.large — the §2.1 example (10 Gbps network, 5 Gbps WAN).
    pub fn m5_large() -> Self {
        Self {
            name: "m5.large".to_string(),
            vcpus: 2,
            mem_gib: 8.0,
            wan_egress_mbps: 5000.0,
            wan_ingress_mbps: 5000.0,
            conn_budget: 48,
            price_per_hour: 0.096,
            unlimited_burst: false,
        }
    }

    /// GCP e2-medium — the multi-cloud comparison VM (§5.8.3).
    pub fn e2_medium() -> Self {
        Self {
            name: "e2-medium".to_string(),
            vcpus: 2,
            mem_gib: 4.0,
            wan_egress_mbps: 1800.0,
            wan_ingress_mbps: 1800.0,
            conn_budget: 24,
            price_per_hour: 0.0335,
            unlimited_burst: false,
        }
    }

    /// Effective compute price per hour including the unlimited-burst
    /// surcharge of $0.05 per vCPU-hour (paper §5.1).
    pub fn effective_price_per_hour(&self) -> f64 {
        let surcharge = if self.unlimited_burst { 0.05 * f64::from(self.vcpus) } else { 0.0 };
        self.price_per_hour + surcharge
    }
}

impl std::fmt::Display for VmType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_surcharge_applies_per_vcpu() {
        let vm = VmType::t2_medium();
        assert!((vm.effective_price_per_hour() - (0.0464 + 0.10)).abs() < 1e-12);
    }

    #[test]
    fn non_burst_vm_has_no_surcharge() {
        let vm = VmType::m5_large();
        assert!((vm.effective_price_per_hour() - 0.096).abs() < 1e-12);
    }

    #[test]
    fn nic_caps_ordered_by_size() {
        assert!(VmType::t3_nano().wan_egress_mbps < VmType::t2_medium().wan_egress_mbps);
        assert!(VmType::t2_medium().wan_egress_mbps < VmType::m5_large().wan_egress_mbps);
    }

    #[test]
    fn display_is_flavor_name() {
        assert_eq!(VmType::t3_nano().to_string(), "t3.nano");
    }
}
